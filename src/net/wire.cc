#include "net/wire.h"

#include <cstring>

#include "common/checksum.h"

namespace tilestore {
namespace net {

namespace {

// Little-endian u16/u32/u64 into a raw header buffer.
void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

Status CorruptPayload(const char* what) {
  return Status::Corruption(std::string("wire payload: ") + what);
}

}  // namespace

std::string_view WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kPing:
      return "ping";
    case WireOp::kOpenMDD:
      return "open_mdd";
    case WireOp::kRangeQuery:
      return "range_query";
    case WireOp::kAggregate:
      return "aggregate";
    case WireOp::kInsertTiles:
      return "insert_tiles";
    case WireOp::kStats:
      return "stats";
    case WireOp::kRetile:
      return "retile";
    case WireOp::kHello:
      return "hello";
    case WireOp::kCompact:
      return "compact";
    case WireOp::kFilterQuery:
      return "filter_query";
  }
  return "unknown";
}

bool WireOpValid(uint16_t raw) {
  return raw >= static_cast<uint16_t>(WireOp::kPing) &&
         raw <= static_cast<uint16_t>(WireOp::kFilterQuery);
}

std::vector<uint8_t> EncodeFrame(WireOp op, bool response,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload,
                                 uint16_t version) {
  std::vector<uint8_t> frame(kHeaderBytes + payload.size());
  uint8_t* h = frame.data();
  PutU32(h, kWireMagic);
  PutU16(h + 4, version);
  const uint16_t op_raw =
      static_cast<uint16_t>(op) | (response ? kResponseFlag : 0);
  PutU16(h + 6, op_raw);
  PutU64(h + 8, request_id);
  PutU32(h + 16, static_cast<uint32_t>(payload.size()));
  // An empty vector's data() may be null; memcpy/Crc32c over a null
  // pointer is UB even for size 0 (pings have empty payloads).
  PutU32(h + 20, payload.empty() ? Crc32c(h, 0)
                                 : Crc32c(payload.data(), payload.size()));
  PutU32(h + 24, Crc32c(h, 24));
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

Status DecodeHeader(const uint8_t* buf, FrameHeader* out) {
  if (GetU32(buf + 24) != Crc32c(buf, 24)) {
    return Status::Corruption("wire header CRC mismatch");
  }
  if (GetU32(buf) != kWireMagic) {
    return Status::Corruption("bad wire magic");
  }
  const uint16_t version = GetU16(buf + 4);
  if (version < kMinWireVersion || version > kWireVersion) {
    return Status::Unimplemented("unsupported wire version " +
                                 std::to_string(version) + " (speaking " +
                                 std::to_string(kWireVersion) + ")");
  }
  const uint16_t op_raw = GetU16(buf + 6);
  const uint16_t op_code = op_raw & static_cast<uint16_t>(~kResponseFlag);
  if (!WireOpValid(op_code)) {
    return Status::Corruption("unknown wire op " + std::to_string(op_code));
  }
  const uint32_t payload_len = GetU32(buf + 16);
  if (payload_len > kMaxPayloadBytes) {
    return Status::Corruption("wire payload length " +
                              std::to_string(payload_len) +
                              " exceeds the protocol bound");
  }
  out->version = version;
  out->op = static_cast<WireOp>(op_code);
  out->response = (op_raw & kResponseFlag) != 0;
  out->request_id = GetU64(buf + 8);
  out->payload_len = payload_len;
  out->payload_crc = GetU32(buf + 20);
  return Status::OK();
}

Status VerifyPayload(const FrameHeader& header,
                     const std::vector<uint8_t>& payload) {
  if (payload.size() != header.payload_len) {
    return Status::Corruption("wire payload length mismatch");
  }
  static const uint8_t kEmpty = 0;
  const uint32_t crc = payload.empty()
                           ? Crc32c(&kEmpty, 0)
                           : Crc32c(payload.data(), payload.size());
  if (crc != header.payload_crc) {
    return Status::Corruption("wire payload CRC mismatch");
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Interval serde. Unbounded ('*') bounds travel as their sentinel values.

void WriteIntervalWire(ByteWriter* w, const MInterval& iv) {
  w->U8(static_cast<uint8_t>(iv.dim()));
  for (size_t i = 0; i < iv.dim(); ++i) {
    w->I64(iv.lo(i));
    w->I64(iv.hi(i));
  }
}

Status ReadIntervalWire(ByteReader* r, MInterval* out) {
  uint8_t dim = 0;
  Status st = r->U8(&dim);
  if (!st.ok()) return st;
  if (dim == 0) return CorruptPayload("zero-dimensional interval");
  std::vector<Coord> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    st = r->I64(&lo[i]);
    if (!st.ok()) return st;
    st = r->I64(&hi[i]);
    if (!st.ok()) return st;
  }
  Result<MInterval> iv = MInterval::Create(std::move(lo), std::move(hi));
  if (!iv.ok()) {
    return CorruptPayload("invalid interval bounds");
  }
  *out = std::move(iv).MoveValue();
  return Status::OK();
}

// --------------------------------------------------------------------------
// Requests.

std::vector<uint8_t> EncodeOpenMDDRequest(const OpenMDDRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  return w.Take();
}

Status DecodeOpenMDDRequest(const std::vector<uint8_t>& payload,
                            OpenMDDRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in open_mdd");
  return Status::OK();
}

std::vector<uint8_t> EncodeRangeQueryRequest(const RangeQueryRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  WriteIntervalWire(&w, req.region);
  return w.Take();
}

Status DecodeRangeQueryRequest(const std::vector<uint8_t>& payload,
                               RangeQueryRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  st = ReadIntervalWire(&r, &out->region);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in range_query");
  return Status::OK();
}

std::vector<uint8_t> EncodeAggregateRequest(const AggregateRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  WriteIntervalWire(&w, req.region);
  w.U8(req.op);
  return w.Take();
}

Status DecodeAggregateRequest(const std::vector<uint8_t>& payload,
                              AggregateRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  st = ReadIntervalWire(&r, &out->region);
  if (!st.ok()) return st;
  st = r.U8(&out->op);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in aggregate");
  return Status::OK();
}

std::vector<uint8_t> EncodeInsertTilesRequest(const InsertTilesRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  w.U8(req.create_if_missing ? 1 : 0);
  if (req.create_if_missing) {
    WriteIntervalWire(&w, req.definition_domain);
    w.U8(req.cell_type_id);
  }
  w.U32(static_cast<uint32_t>(req.tiles.size()));
  for (const WireTile& tile : req.tiles) {
    WriteIntervalWire(&w, tile.domain);
    w.U64(tile.cells.size());
    w.Bytes(tile.cells.data(), tile.cells.size());
  }
  return w.Take();
}

Status DecodeInsertTilesRequest(const std::vector<uint8_t>& payload,
                                InsertTilesRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  uint8_t create = 0;
  st = r.U8(&create);
  if (!st.ok()) return st;
  out->create_if_missing = create != 0;
  if (out->create_if_missing) {
    st = ReadIntervalWire(&r, &out->definition_domain);
    if (!st.ok()) return st;
    st = r.U8(&out->cell_type_id);
    if (!st.ok()) return st;
  }
  uint32_t count = 0;
  st = r.U32(&count);
  if (!st.ok()) return st;
  // The count is attacker-controlled: bound it against the bytes actually
  // present before reserving, or a single CRC-valid frame could request a
  // multi-hundred-GB allocation. Each encoded tile occupies at least
  // 1 (dim) + 16 (one bound pair) + 8 (cell length) payload bytes.
  constexpr size_t kMinWireTileBytes = 1 + 16 + 8;
  const size_t remaining = payload.size() - r.position();
  if (count > remaining / kMinWireTileBytes) {
    return CorruptPayload("tile count exceeds payload size");
  }
  out->tiles.clear();
  out->tiles.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireTile tile;
    st = ReadIntervalWire(&r, &tile.domain);
    if (!st.ok()) return st;
    uint64_t n = 0;
    st = r.U64(&n);
    if (!st.ok()) return st;
    if (n > kMaxPayloadBytes) return CorruptPayload("oversized tile");
    tile.cells.resize(static_cast<size_t>(n));
    st = r.Bytes(tile.cells.data(), tile.cells.size());
    if (!st.ok()) return st;
    out->tiles.push_back(std::move(tile));
  }
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in insert_tiles");
  return Status::OK();
}

std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& req) {
  ByteWriter w;
  w.U8(req.format);
  return w.Take();
}

Status DecodeStatsRequest(const std::vector<uint8_t>& payload,
                          StatsRequest* out) {
  ByteReader r(payload);
  Status st = r.U8(&out->format);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in stats");
  return Status::OK();
}

std::vector<uint8_t> EncodeRetileRequest(const RetileRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  return w.Take();
}

Status DecodeRetileRequest(const std::vector<uint8_t>& payload,
                           RetileRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in retile");
  return Status::OK();
}

std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& req) {
  ByteWriter w;
  w.U16(req.max_version);
  w.U32(req.expected_shard_id);
  return w.Take();
}

Status DecodeHelloRequest(const std::vector<uint8_t>& payload,
                          HelloRequest* out) {
  ByteReader r(payload);
  Status st = r.U16(&out->max_version);
  if (!st.ok()) return st;
  st = r.U32(&out->expected_shard_id);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in hello");
  return Status::OK();
}

std::vector<uint8_t> EncodeCompactRequest(const CompactRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  return w.Take();
}

Status DecodeCompactRequest(const std::vector<uint8_t>& payload,
                            CompactRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in compact");
  return Status::OK();
}

std::vector<uint8_t> EncodeFilterQueryRequest(const FilterQueryRequest& req) {
  ByteWriter w;
  w.Str(req.name);
  WriteIntervalWire(&w, req.region);
  w.U8(req.pred_kind);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(req.pred_a));
  std::memcpy(&bits, &req.pred_a, sizeof(bits));
  w.U64(bits);
  std::memcpy(&bits, &req.pred_b, sizeof(bits));
  w.U64(bits);
  return w.Take();
}

Status DecodeFilterQueryRequest(const std::vector<uint8_t>& payload,
                                FilterQueryRequest* out) {
  ByteReader r(payload);
  Status st = r.Str(&out->name);
  if (!st.ok()) return st;
  st = ReadIntervalWire(&r, &out->region);
  if (!st.ok()) return st;
  st = r.U8(&out->pred_kind);
  if (!st.ok()) return st;
  uint64_t bits = 0;
  st = r.U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(&out->pred_a, &bits, sizeof(out->pred_a));
  st = r.U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(&out->pred_b, &bits, sizeof(out->pred_b));
  if (!r.AtEnd()) return CorruptPayload("trailing bytes in filter_query");
  return Status::OK();
}

// --------------------------------------------------------------------------
// Responses.

namespace {

ByteWriter OkWriter() {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(StatusCode::kOk));
  return w;
}

}  // namespace

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

std::vector<uint8_t> EncodePingResponse() { return OkWriter().Take(); }

std::vector<uint8_t> EncodeOpenMDDResponse(const OpenMDDResponse& resp) {
  ByteWriter w = OkWriter();
  WriteIntervalWire(&w, resp.definition_domain);
  w.U8(resp.has_current_domain ? 1 : 0);
  if (resp.has_current_domain) WriteIntervalWire(&w, resp.current_domain);
  w.U8(resp.cell_type_id);
  w.U64(resp.tile_count);
  return w.Take();
}

std::vector<uint8_t> EncodeRangeQueryResponse(const RangeQueryResponse& resp) {
  ByteWriter w = OkWriter();
  WriteIntervalWire(&w, resp.domain);
  w.U8(resp.cell_type_id);
  w.U64(resp.cells.size());
  w.Bytes(resp.cells.data(), resp.cells.size());
  return w.Take();
}

std::vector<uint8_t> EncodeAggregateResponse(const AggregateResponse& resp) {
  ByteWriter w = OkWriter();
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(resp.value));
  std::memcpy(&bits, &resp.value, sizeof(bits));
  w.U64(bits);
  return w.Take();
}

std::vector<uint8_t> EncodeInsertTilesResponse(
    const InsertTilesResponse& resp) {
  ByteWriter w = OkWriter();
  w.U64(resp.tiles_inserted);
  return w.Take();
}

std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp) {
  ByteWriter w = OkWriter();
  w.Str(resp.text);
  return w.Take();
}

std::vector<uint8_t> EncodeRetileResponse(const RetileResponse& resp) {
  ByteWriter w = OkWriter();
  w.U8(resp.migrated ? 1 : 0);
  w.Str(resp.kind);
  w.Str(resp.rationale);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(resp.predicted_gain));
  std::memcpy(&bits, &resp.predicted_gain, sizeof(bits));
  w.U64(bits);
  w.U64(resp.steps);
  w.U64(resp.tiles_before);
  w.U64(resp.tiles_after);
  w.U64(resp.cells_moved);
  return w.Take();
}

Status DecodeResponseStatus(ByteReader* r, Status* server_status) {
  uint8_t code = 0;
  Status st = r->U8(&code);
  if (!st.ok()) return st;
  if (code > static_cast<uint8_t>(StatusCode::kPartialResult)) {
    return CorruptPayload("unknown response status code");
  }
  if (code == static_cast<uint8_t>(StatusCode::kOk)) {
    *server_status = Status::OK();
    return Status::OK();
  }
  std::string message;
  st = r->Str(&message);
  if (!st.ok()) return st;
  *server_status = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

Status DecodePingResponse(const std::vector<uint8_t>& payload,
                          Status* server_status) {
  ByteReader r(payload);
  return DecodeResponseStatus(&r, server_status);
}

Status DecodeOpenMDDResponse(const std::vector<uint8_t>& payload,
                             Status* server_status, OpenMDDResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  st = ReadIntervalWire(&r, &out->definition_domain);
  if (!st.ok()) return st;
  uint8_t has_current = 0;
  st = r.U8(&has_current);
  if (!st.ok()) return st;
  out->has_current_domain = has_current != 0;
  if (out->has_current_domain) {
    st = ReadIntervalWire(&r, &out->current_domain);
    if (!st.ok()) return st;
  }
  st = r.U8(&out->cell_type_id);
  if (!st.ok()) return st;
  return r.U64(&out->tile_count);
}

Status DecodeRangeQueryResponse(const std::vector<uint8_t>& payload,
                                Status* server_status,
                                RangeQueryResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  st = ReadIntervalWire(&r, &out->domain);
  if (!st.ok()) return st;
  st = r.U8(&out->cell_type_id);
  if (!st.ok()) return st;
  uint64_t n = 0;
  st = r.U64(&n);
  if (!st.ok()) return st;
  if (n > kMaxPayloadBytes) return CorruptPayload("oversized result");
  out->cells.resize(static_cast<size_t>(n));
  return r.Bytes(out->cells.data(), out->cells.size());
}

Status DecodeAggregateResponse(const std::vector<uint8_t>& payload,
                               Status* server_status, AggregateResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  uint64_t bits = 0;
  st = r.U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(&out->value, &bits, sizeof(out->value));
  return Status::OK();
}

Status DecodeInsertTilesResponse(const std::vector<uint8_t>& payload,
                                 Status* server_status,
                                 InsertTilesResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  return r.U64(&out->tiles_inserted);
}

Status DecodeStatsResponse(const std::vector<uint8_t>& payload,
                           Status* server_status, StatsResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  return r.Str(&out->text);
}

std::vector<uint8_t> EncodeHelloResponse(const HelloResponse& resp) {
  ByteWriter w = OkWriter();
  w.U16(resp.version);
  w.U32(resp.shard_id);
  w.U32(resp.shard_count);
  return w.Take();
}

Status DecodeHelloResponse(const std::vector<uint8_t>& payload,
                           Status* server_status, HelloResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  st = r.U16(&out->version);
  if (!st.ok()) return st;
  st = r.U32(&out->shard_id);
  if (!st.ok()) return st;
  st = r.U32(&out->shard_count);
  if (!st.ok()) return st;
  if (out->version < kMinWireVersion || out->version > kWireVersion) {
    return CorruptPayload("negotiated version outside supported range");
  }
  if (out->shard_count == 0 || out->shard_id >= out->shard_count) {
    return CorruptPayload("inconsistent shard identity in hello");
  }
  return Status::OK();
}

Status DecodeRetileResponse(const std::vector<uint8_t>& payload,
                            Status* server_status, RetileResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  uint8_t migrated = 0;
  st = r.U8(&migrated);
  if (!st.ok()) return st;
  out->migrated = migrated != 0;
  st = r.Str(&out->kind);
  if (!st.ok()) return st;
  st = r.Str(&out->rationale);
  if (!st.ok()) return st;
  uint64_t bits = 0;
  st = r.U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(&out->predicted_gain, &bits, sizeof(out->predicted_gain));
  st = r.U64(&out->steps);
  if (!st.ok()) return st;
  st = r.U64(&out->tiles_before);
  if (!st.ok()) return st;
  st = r.U64(&out->tiles_after);
  if (!st.ok()) return st;
  return r.U64(&out->cells_moved);
}

std::vector<uint8_t> EncodeFilterQueryResponse(
    const FilterQueryResponse& resp) {
  ByteWriter w = OkWriter();
  WriteIntervalWire(&w, resp.domain);
  w.U8(resp.cell_type_id);
  w.U64(resp.cells.size());
  w.Bytes(resp.cells.data(), resp.cells.size());
  return w.Take();
}

Status DecodeFilterQueryResponse(const std::vector<uint8_t>& payload,
                                 Status* server_status,
                                 FilterQueryResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  st = ReadIntervalWire(&r, &out->domain);
  if (!st.ok()) return st;
  st = r.U8(&out->cell_type_id);
  if (!st.ok()) return st;
  uint64_t n = 0;
  st = r.U64(&n);
  if (!st.ok()) return st;
  if (n > kMaxPayloadBytes) return CorruptPayload("oversized result");
  out->cells.resize(static_cast<size_t>(n));
  return r.Bytes(out->cells.data(), out->cells.size());
}

std::vector<uint8_t> EncodeCompactResponse(const CompactResponse& resp) {
  ByteWriter w = OkWriter();
  w.U8(resp.compacted ? 1 : 0);
  w.Str(resp.rationale);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(resp.frag_before));
  std::memcpy(&bits, &resp.frag_before, sizeof(bits));
  w.U64(bits);
  std::memcpy(&bits, &resp.frag_after, sizeof(bits));
  w.U64(bits);
  w.U64(resp.steps);
  w.U64(resp.tiles_moved);
  w.U64(resp.bytes_moved);
  return w.Take();
}

Status DecodeCompactResponse(const std::vector<uint8_t>& payload,
                             Status* server_status, CompactResponse* out) {
  ByteReader r(payload);
  Status st = DecodeResponseStatus(&r, server_status);
  if (!st.ok() || !server_status->ok()) return st;
  uint8_t compacted = 0;
  st = r.U8(&compacted);
  if (!st.ok()) return st;
  out->compacted = compacted != 0;
  st = r.Str(&out->rationale);
  if (!st.ok()) return st;
  uint64_t bits = 0;
  st = r.U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(&out->frag_before, &bits, sizeof(out->frag_before));
  st = r.U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(&out->frag_after, &bits, sizeof(out->frag_after));
  st = r.U64(&out->steps);
  if (!st.ok()) return st;
  st = r.U64(&out->tiles_moved);
  if (!st.ok()) return st;
  return r.U64(&out->bytes_moved);
}

}  // namespace net
}  // namespace tilestore
