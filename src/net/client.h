#ifndef TILESTORE_NET_CLIENT_H_
#define TILESTORE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/aggregate.h"
#include "core/array.h"
#include "core/minterval.h"
#include "net/socket.h"
#include "net/wire.h"

namespace tilestore {
namespace net {

struct TileClientOptions {
  /// Per-attempt connect timeout.
  int connect_timeout_ms = 5000;
  /// Total connect attempts (>= 1); refused/odd connections are retried
  /// with linear backoff — covers the races of a server still binding.
  int connect_attempts = 5;
  int retry_backoff_ms = 100;
  /// Per-request deadline covering send + server execution + response
  /// read. Expiry poisons the connection (the stream may hold a stale
  /// response), so the next call fails until `Connect` is used again.
  int request_timeout_ms = 10000;
};

/// Remote object metadata, the response of `OpenMDD`.
struct RemoteMDDInfo {
  MInterval definition_domain;
  std::optional<MInterval> current_domain;
  CellType cell_type;
  uint64_t tile_count = 0;
};

/// \brief Client side of the tilestore wire protocol: one TCP connection,
/// synchronous request/response. Not thread-safe — use one `TileClient`
/// per thread (the loadgen does exactly that).
class TileClient {
 public:
  static Result<std::unique_ptr<TileClient>> Connect(
      const std::string& host, uint16_t port,
      TileClientOptions options = TileClientOptions());

  Status Ping();
  Result<RemoteMDDInfo> OpenMDD(const std::string& name);
  /// Executes a range query remotely; the returned array is byte-identical
  /// to in-process `RangeQueryExecutor::Execute` on the same store.
  Result<Array> RangeQuery(const std::string& name, const MInterval& region);
  Result<double> Aggregate(const std::string& name, const MInterval& region,
                           AggregateOp op);
  /// Inserts tiles (uncompressed cell buffers); with `create_if_missing`
  /// the object is created first with `definition_domain`/`cell_type`.
  Status InsertTiles(const std::string& name, std::span<const Array> tiles,
                     bool create_if_missing = false,
                     const MInterval& definition_domain = MInterval(),
                     CellType cell_type = CellType());
  /// Server-side obs snapshot. format 0 = metrics JSON, 1 = Prometheus
  /// text, 2 = drained trace JSON.
  Result<std::string> Stats(uint8_t format = 0);
  /// Admin: synchronously evaluate (and, when the predicted gain clears the
  /// server's bar, migrate) `name`'s tiling against its recorded workload.
  Result<RetileResponse> Retile(const std::string& name);

  /// True until an I/O or protocol error poisoned the connection.
  bool healthy() const { return healthy_; }
  void Close() { socket_.Close(); healthy_ = false; }

 private:
  TileClient(Socket socket, TileClientOptions options)
      : socket_(std::move(socket)), options_(options) {}

  /// Sends one request frame and reads the matching response payload.
  /// Protocol/transport errors poison the connection; server-side errors
  /// (in the response status byte) do not.
  Status RoundTrip(WireOp op, const std::vector<uint8_t>& request,
                   std::vector<uint8_t>* response);

  Socket socket_;
  TileClientOptions options_;
  uint64_t next_request_id_ = 1;
  bool healthy_ = true;
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_CLIENT_H_
