#ifndef TILESTORE_NET_CLIENT_H_
#define TILESTORE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/client_api.h"
#include "net/socket.h"
#include "net/wire.h"

namespace tilestore {
namespace net {

struct TileClientOptions {
  /// Per-attempt connect timeout.
  int connect_timeout_ms = 5000;
  /// Total connect attempts (>= 1); refused/odd connections are retried
  /// with linear backoff — covers the races of a server still binding.
  int connect_attempts = 5;
  int retry_backoff_ms = 100;
  /// Per-request deadline covering send + server execution + response
  /// read. Expiry poisons the connection (the stream may hold a stale
  /// response), so the next call fails until `Connect` is used again.
  int request_timeout_ms = 10000;
  /// Send a kHello as the first request after connecting, negotiating the
  /// wire version and learning the server's shard identity. Against a v1
  /// server (which drops the connection on the unknown op) the client
  /// reconnects and speaks v1. Off by default so plain clients cost one
  /// round trip, not two; the routing client always turns it on.
  bool handshake = false;
  /// With `handshake`, fail `Connect` unless the server reports exactly
  /// this shard id. `kAnyShard` accepts any server.
  uint32_t expected_shard_id = kAnyShard;
};

/// \brief Client side of the tilestore wire protocol: one TCP connection,
/// synchronous request/response, every op flowing through the unified
/// `Call` seam. Not thread-safe — use one `TileClient` per thread (the
/// loadgen does exactly that).
class TileClient : public ClientInterface {
 public:
  static Result<std::unique_ptr<TileClient>> Connect(
      const std::string& host, uint16_t port,
      TileClientOptions options = TileClientOptions());

  /// One round trip: encode, send, receive, decode. Transport and
  /// protocol failures poison the connection; clean server-side errors do
  /// not.
  Result<Response> Call(const Request& request) override;

  /// True until an I/O or protocol error poisoned the connection.
  bool healthy() const override { return healthy_; }
  void Close() { socket_.Close(); healthy_ = false; }

  /// Negotiated protocol version (kWireVersion without a handshake).
  uint16_t wire_version() const { return wire_version_; }
  /// Shard identity learned from the handshake (0 of 1 without one).
  uint32_t shard_id() const { return shard_id_; }
  uint32_t shard_count() const { return shard_count_; }

 private:
  TileClient(Socket socket, TileClientOptions options)
      : socket_(std::move(socket)), options_(options) {}

  /// Sends one request frame and reads the matching response payload.
  Status RoundTrip(WireOp op, const std::vector<uint8_t>& request,
                   std::vector<uint8_t>* response);

  /// Runs the kHello exchange; on success records the negotiated version
  /// and shard identity. Returns NotFound-as-downgrade via `*downgrade`
  /// when the server does not speak v2.
  Status Handshake(bool* downgrade);

  Socket socket_;
  TileClientOptions options_;
  uint64_t next_request_id_ = 1;
  bool healthy_ = true;
  uint16_t wire_version_ = kWireVersion;
  uint32_t shard_id_ = 0;
  uint32_t shard_count_ = 1;
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_CLIENT_H_
