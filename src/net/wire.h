#ifndef TILESTORE_NET_WIRE_H_
#define TILESTORE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/status.h"
#include "core/cell_type.h"
#include "core/minterval.h"

namespace tilestore {
namespace net {

/// \brief The tilestore binary wire protocol (DESIGN.md §9).
///
/// Every message is one *frame*: a fixed 28-byte header followed by a
/// variable payload. All integers are little-endian, matching the on-disk
/// format.
///
///   magic       u32   'TSN1'
///   version     u16   kWireVersion; a server rejects newer majors
///   op          u16   WireOp, high bit (kResponseFlag) set on responses
///   request_id  u64   echoed verbatim in the response
///   payload_len u32   <= kMaxPayloadBytes
///   payload_crc u32   CRC-32C of the payload bytes
///   header_crc  u32   CRC-32C of the preceding 24 header bytes
///
/// The header CRC lets a receiver reject a corrupt length before
/// allocating; the payload CRC protects the body. Response payloads always
/// begin with one status byte (`StatusCode`); non-OK responses follow with
/// a length-prefixed message string and nothing else, OK responses with
/// the op-specific body documented per encoder below.
constexpr uint32_t kWireMagic = 0x54534E31;  // "TSN1"
/// Highest protocol version this build speaks. v2 adds the kHello
/// negotiation op carrying shard identity (shard_id/shard_count), used by
/// the cluster routing client to detect misconfigured shard maps. The
/// frame layout is unchanged between v1 and v2, so every peer accepts
/// frames stamped with any version in [kMinWireVersion, kWireVersion] and
/// the negotiated version only gates which ops may be sent.
constexpr uint16_t kWireVersion = 2;
constexpr uint16_t kMinWireVersion = 1;
constexpr uint16_t kResponseFlag = 0x8000;
constexpr size_t kHeaderBytes = 28;
/// Upper bound on one frame's payload: large enough for any sane tile
/// batch or query result, small enough that a corrupt or hostile length
/// cannot balloon server memory.
constexpr size_t kMaxPayloadBytes = 64u << 20;

enum class WireOp : uint16_t {
  kPing = 1,
  kOpenMDD = 2,
  kRangeQuery = 3,
  kAggregate = 4,
  kInsertTiles = 5,
  kStats = 6,
  kRetile = 7,
  /// v2: version/shard negotiation. A v1 server treats the op as unknown
  /// and drops the connection, which clients take as "speak v1".
  kHello = 8,
  /// Admin op: synchronously measure (and, past the server's tile floor,
  /// compact) one object's physical layout. See `Compactor::CompactNow`.
  kCompact = 9,
  /// v2: range query with a cell-value predicate pushed down to the
  /// server, which prunes whole tiles via per-tile summaries. A v1 server
  /// treats the op as unknown and drops the connection; v2-negotiated
  /// clients refuse to send it to a v1 peer.
  kFilterQuery = 10,
};

/// Static-literal op name ("range_query", ...), usable as a trace span
/// name. Unknown ops map to "unknown".
std::string_view WireOpName(WireOp op);
bool WireOpValid(uint16_t raw);

/// Decoded frame header.
struct FrameHeader {
  uint16_t version = 0;
  WireOp op = WireOp::kPing;
  bool response = false;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// Serializes a full frame (header + payload) ready to send. `version`
/// stamps the header; clients that negotiated down pass the agreed value.
std::vector<uint8_t> EncodeFrame(WireOp op, bool response,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload,
                                 uint16_t version = kWireVersion);

/// Validates magic/version/CRC/length of the `kHeaderBytes` at `buf`.
/// Versions outside [kMinWireVersion, kWireVersion] yield Unimplemented;
/// everything else Corruption.
Status DecodeHeader(const uint8_t* buf, FrameHeader* out);

/// Checks the payload bytes against the header's CRC.
Status VerifyPayload(const FrameHeader& header,
                     const std::vector<uint8_t>& payload);

// --------------------------------------------------------------------------
// Interval / payload serde helpers shared by client and server.

void WriteIntervalWire(ByteWriter* w, const MInterval& iv);
Status ReadIntervalWire(ByteReader* r, MInterval* out);

// --------------------------------------------------------------------------
// Request payloads.

struct OpenMDDRequest {
  std::string name;
};

struct RangeQueryRequest {
  std::string name;
  MInterval region;  // '*' bounds allowed, resolved server-side
};

struct AggregateRequest {
  std::string name;
  MInterval region;
  uint8_t op = 0;  // AggregateOp
};

/// One tile travelling over the wire, always as raw (uncompressed) cell
/// bytes; the server re-applies the object's selective compression when
/// storing.
struct WireTile {
  MInterval domain;
  std::vector<uint8_t> cells;
};

struct InsertTilesRequest {
  std::string name;
  /// When set and the object does not exist, it is created first with
  /// `definition_domain` / `cell_type_id`.
  bool create_if_missing = false;
  MInterval definition_domain;
  uint8_t cell_type_id = 0;
  std::vector<WireTile> tiles;
};

struct StatsRequest {
  /// 0 = metrics JSON, 1 = Prometheus text, 2 = drained trace JSON.
  uint8_t format = 0;
};

/// Admin op: synchronously evaluate (and, if the predicted gain clears the
/// server's improvement bar, migrate) one object's tiling against its
/// recorded workload. See `Retiler::RetileNow`.
struct RetileRequest {
  std::string name;
};

/// Sentinel for HelloRequest::expected_shard_id: the client does not care
/// which shard answers.
constexpr uint32_t kAnyShard = 0xFFFFFFFFu;

/// v2 negotiation, sent as the first request on a connection by clients
/// that opt in. The server answers with the highest mutually supported
/// version and its shard identity; a routing client that expected a
/// specific shard id can detect a misrouted/miswired endpoint from the
/// response instead of silently querying the wrong store.
struct HelloRequest {
  /// Highest version the client speaks.
  uint16_t max_version = kWireVersion;
  /// Shard id the client believes this endpoint serves, or kAnyShard.
  uint32_t expected_shard_id = kAnyShard;
};

/// Admin op: synchronously measure one object's fragmentation and rewrite
/// its tile blobs into SFC-contiguous page runs. See
/// `Compactor::CompactNow`.
struct CompactRequest {
  std::string name;
};

/// v2: a range query filtered by a cell-value predicate (DESIGN.md §15).
/// The predicate travels as its kind (`ValuePredicate::Kind`) plus both
/// operand doubles; `pred_b` is meaningful only for the between kind but
/// always occupies its slot so the encoding is fixed-width.
struct FilterQueryRequest {
  std::string name;
  MInterval region;  // '*' bounds allowed, resolved server-side
  uint8_t pred_kind = 0;  // ValuePredicate::Kind
  double pred_a = 0;
  double pred_b = 0;
};

std::vector<uint8_t> EncodeOpenMDDRequest(const OpenMDDRequest& req);
Status DecodeOpenMDDRequest(const std::vector<uint8_t>& payload,
                            OpenMDDRequest* out);
std::vector<uint8_t> EncodeRangeQueryRequest(const RangeQueryRequest& req);
Status DecodeRangeQueryRequest(const std::vector<uint8_t>& payload,
                               RangeQueryRequest* out);
std::vector<uint8_t> EncodeAggregateRequest(const AggregateRequest& req);
Status DecodeAggregateRequest(const std::vector<uint8_t>& payload,
                              AggregateRequest* out);
std::vector<uint8_t> EncodeInsertTilesRequest(const InsertTilesRequest& req);
Status DecodeInsertTilesRequest(const std::vector<uint8_t>& payload,
                                InsertTilesRequest* out);
std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& req);
Status DecodeStatsRequest(const std::vector<uint8_t>& payload,
                          StatsRequest* out);
std::vector<uint8_t> EncodeRetileRequest(const RetileRequest& req);
Status DecodeRetileRequest(const std::vector<uint8_t>& payload,
                           RetileRequest* out);
std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& req);
Status DecodeHelloRequest(const std::vector<uint8_t>& payload,
                          HelloRequest* out);
std::vector<uint8_t> EncodeCompactRequest(const CompactRequest& req);
Status DecodeCompactRequest(const std::vector<uint8_t>& payload,
                            CompactRequest* out);
std::vector<uint8_t> EncodeFilterQueryRequest(const FilterQueryRequest& req);
Status DecodeFilterQueryRequest(const std::vector<uint8_t>& payload,
                                FilterQueryRequest* out);

// --------------------------------------------------------------------------
// Response payloads. Every encoder emits the leading status byte; decoders
// return the decoded server-side Status (possibly non-OK) through
// `*server_status` and fill the body only when it is OK.

/// Error response usable for any op: status byte + message.
std::vector<uint8_t> EncodeErrorResponse(const Status& status);

struct OpenMDDResponse {
  MInterval definition_domain;
  bool has_current_domain = false;
  MInterval current_domain;
  uint8_t cell_type_id = 0;
  uint64_t tile_count = 0;
};

struct RangeQueryResponse {
  MInterval domain;
  uint8_t cell_type_id = 0;
  std::vector<uint8_t> cells;
};

struct AggregateResponse {
  double value = 0;
};

struct InsertTilesResponse {
  uint64_t tiles_inserted = 0;
};

struct StatsResponse {
  std::string text;
};

/// Answer to kHello: the version both sides will speak from now on plus
/// the server's shard identity (shard_id/shard_count are 0/1 for a
/// standalone, unsharded server).
struct HelloResponse {
  uint16_t version = kWireVersion;
  uint32_t shard_id = 0;
  uint32_t shard_count = 1;
};

/// Mirrors `RetileReport`.
struct RetileResponse {
  bool migrated = false;
  std::string kind;
  std::string rationale;
  double predicted_gain = 0;
  uint64_t steps = 0;
  uint64_t tiles_before = 0;
  uint64_t tiles_after = 0;
  uint64_t cells_moved = 0;
};

/// Result of a filter query: the resolved region with every non-matching
/// cell set to the object's default value. Identical shape to
/// `RangeQueryResponse`, kept distinct so the two ops can evolve
/// independently.
struct FilterQueryResponse {
  MInterval domain;
  uint8_t cell_type_id = 0;
  std::vector<uint8_t> cells;
};

/// Mirrors `layout::CompactReport`.
struct CompactResponse {
  bool compacted = false;
  std::string rationale;
  double frag_before = 0;
  double frag_after = 0;
  uint64_t steps = 0;
  uint64_t tiles_moved = 0;
  uint64_t bytes_moved = 0;
};

std::vector<uint8_t> EncodePingResponse();
std::vector<uint8_t> EncodeOpenMDDResponse(const OpenMDDResponse& resp);
std::vector<uint8_t> EncodeRangeQueryResponse(const RangeQueryResponse& resp);
std::vector<uint8_t> EncodeAggregateResponse(const AggregateResponse& resp);
std::vector<uint8_t> EncodeInsertTilesResponse(
    const InsertTilesResponse& resp);
std::vector<uint8_t> EncodeStatsResponse(const StatsResponse& resp);
std::vector<uint8_t> EncodeRetileResponse(const RetileResponse& resp);
std::vector<uint8_t> EncodeHelloResponse(const HelloResponse& resp);
std::vector<uint8_t> EncodeCompactResponse(const CompactResponse& resp);
std::vector<uint8_t> EncodeFilterQueryResponse(const FilterQueryResponse& resp);

Status DecodeResponseStatus(ByteReader* r, Status* server_status);
Status DecodePingResponse(const std::vector<uint8_t>& payload,
                          Status* server_status);
Status DecodeOpenMDDResponse(const std::vector<uint8_t>& payload,
                             Status* server_status, OpenMDDResponse* out);
Status DecodeRangeQueryResponse(const std::vector<uint8_t>& payload,
                                Status* server_status,
                                RangeQueryResponse* out);
Status DecodeAggregateResponse(const std::vector<uint8_t>& payload,
                               Status* server_status, AggregateResponse* out);
Status DecodeInsertTilesResponse(const std::vector<uint8_t>& payload,
                                 Status* server_status,
                                 InsertTilesResponse* out);
Status DecodeStatsResponse(const std::vector<uint8_t>& payload,
                           Status* server_status, StatsResponse* out);
Status DecodeRetileResponse(const std::vector<uint8_t>& payload,
                            Status* server_status, RetileResponse* out);
Status DecodeHelloResponse(const std::vector<uint8_t>& payload,
                           Status* server_status, HelloResponse* out);
Status DecodeCompactResponse(const std::vector<uint8_t>& payload,
                             Status* server_status, CompactResponse* out);
Status DecodeFilterQueryResponse(const std::vector<uint8_t>& payload,
                                 Status* server_status,
                                 FilterQueryResponse* out);

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_WIRE_H_
