#ifndef TILESTORE_NET_SOCKET_H_
#define TILESTORE_NET_SOCKET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace tilestore {
namespace net {

/// Deadline type used throughout the net layer. `Deadline::max()` means
/// "no deadline".
using Deadline = std::chrono::steady_clock::time_point;

/// A deadline `ms` milliseconds from now (or none when `ms <= 0`).
Deadline DeadlineAfterMs(int ms);

/// \brief RAII TCP socket with deadline-bounded blocking I/O.
///
/// All blocking operations poll in short slices so they can honour both a
/// deadline (-> `DeadlineExceeded`) and an optional cancellation flag
/// (-> `Unavailable`), which is how the server interrupts connections
/// parked in a read during shutdown without resorting to signals.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to `host:port` (numeric or resolvable host), bounded by
  /// `timeout_ms`.
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                   int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes exactly `n` bytes or fails. `cancel`, when set and observed
  /// true, aborts with `Unavailable`.
  Status SendAll(const uint8_t* data, size_t n, Deadline deadline,
                 const std::atomic<bool>* cancel = nullptr);

  /// Reads exactly `n` bytes or fails. A peer close before the first byte
  /// yields `NotFound("eof")` (a clean end-of-stream the caller can treat
  /// as a normal hangup); a close mid-message is an `IOError`.
  Status RecvAll(uint8_t* out, size_t n, Deadline deadline,
                 const std::atomic<bool>* cancel = nullptr);

  /// Non-blocking single read for event-loop use: returns the bytes read
  /// (> 0), 0 when the call would block, `NotFound("eof")` on a clean peer
  /// close, or `IOError`. The fd must be in non-blocking mode (accepted
  /// and connected sockets are).
  Result<size_t> RecvSome(uint8_t* out, size_t n);

  /// Non-blocking single write: bytes written (> 0) or 0 when the call
  /// would block.
  Result<size_t> SendSome(const uint8_t* data, size_t n);

  /// Shuts down both directions (wakes a peer blocked in a read).
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// \brief Listening TCP socket bound to the loopback (or any) interface.
class Listener {
 public:
  /// Binds and listens. `port` 0 picks an ephemeral port (see `port()`).
  /// `loopback_only` binds 127.0.0.1, otherwise INADDR_ANY.
  static Result<Listener> Bind(uint16_t port, int backlog,
                               bool loopback_only = true);

  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts one connection, waiting at most `timeout_ms`
  /// (-> `DeadlineExceeded` when nothing arrived).
  Result<Socket> Accept(int timeout_ms);

  /// Accepts one pending connection without waiting; `DeadlineExceeded`
  /// when none is queued. Event-loop companion to registering `fd()` for
  /// readability.
  Result<Socket> AcceptNonBlocking();

  /// The listening fd, for event-loop registration.
  int fd() const { return fd_; }

  /// The actually bound port (resolves port 0 requests).
  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_SOCKET_H_
