#include "net/server.h"

#include <algorithm>
#include <chrono>

#include "core/aggregate.h"
#include "layout/sfc.h"
#include "obs/trace.h"
#include "query/range_query.h"

namespace tilestore {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

}  // namespace

bool TileServer::Admission::Acquire(int wait_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < capacity_) {
    ++inflight_;
    return true;
  }
  if (waiting_ >= queue_limit_) return false;
  ++waiting_;
  const bool got = cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                                [this] { return inflight_ < capacity_; });
  --waiting_;
  if (!got) return false;
  ++inflight_;
  return true;
}

void TileServer::Admission::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

TileServer::TileServer(MDDStore* store, TileServerOptions options)
    : store_(store),
      options_(options),
      admission_(std::max<size_t>(options.max_inflight_requests, 1),
                 options.admission_queue_limit) {
  obs::MetricsRegistry* m = store_->metrics();
  accepted_ = m->counter("net.connections_accepted");
  refused_ = m->counter("net.connections_refused");
  conns_gauge_ = m->gauge("net.connections_active");
  requests_ = m->counter("net.requests");
  inflight_gauge_ = m->gauge("net.requests_inflight");
  rejected_overload_ = m->counter("net.rejected_overload");
  request_timeouts_ = m->counter("net.request_timeouts");
  frame_errors_ = m->counter("net.frame_errors");
  idle_disconnects_ = m->counter("net.idle_disconnects");
  bytes_received_ = m->counter("net.bytes_received");
  bytes_sent_ = m->counter("net.bytes_sent");
  op_latency_ms_.resize(static_cast<size_t>(WireOp::kFilterQuery) + 1,
                        nullptr);
  for (uint16_t op = static_cast<uint16_t>(WireOp::kPing);
       op <= static_cast<uint16_t>(WireOp::kFilterQuery); ++op) {
    const std::string name =
        "net.op." +
        std::string(WireOpName(static_cast<WireOp>(op))) + "_ms";
    op_latency_ms_[op] = m->latency_histogram(name);
  }
  eventloop_loops_ = m->counter("net.eventloop.loops");
  eventloop_events_ = m->counter("net.eventloop.events");
  eventloop_watched_fds_ = m->gauge("net.eventloop.watched_fds");
  threads_gauge_ = m->gauge("net.threads");

  RetilerOptions retile_options;
  retile_options.poll_interval =
      std::chrono::milliseconds(std::max(options_.retile_poll_ms, 1));
  retile_options.min_queries = options_.retile_min_queries;
  retile_options.min_improvement = options_.retile_min_improvement;
  retile_options.step_cell_budget = options_.retile_step_cell_budget;
  retile_options.migration_cost_weight = options_.retile_migration_cost_weight;
  retile_options.cooldown =
      std::chrono::milliseconds(std::max(options_.retile_cooldown_ms, 0));
  retile_options.catalog_mu = &catalog_mu_;
  // Parked migration plans survive restarts via a sidecar next to the
  // database, so a drain mid-migration resumes instead of forgetting.
  retile_options.pending_path = store_->path() + ".retile";
  retiler_ = std::make_unique<Retiler>(store_, retile_options);

  layout::CompactorOptions compact_options;
  compact_options.poll_interval =
      std::chrono::milliseconds(std::max(options_.compact_poll_ms, 1));
  compact_options.min_fragmentation = options_.compact_min_fragmentation;
  compact_options.step_byte_budget = options_.compact_step_bytes;
  compact_options.catalog_mu = &catalog_mu_;
  // Parked relocation plans survive restarts the same way.
  compact_options.pending_path = store_->path() + ".compact";
  compactor_ = std::make_unique<layout::Compactor>(store_, compact_options);
}

TileServer::~TileServer() { Stop(); }

Status TileServer::Start() {
  if (running_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  // A server sized for N connections must also absorb an N-connection
  // burst: a backlog below max_connections drops SYNs during connect
  // storms and the clients stall on kernel retransmit timers.
  const int backlog = std::max(
      options_.backlog, static_cast<int>(options_.max_connections));
  Result<Listener> listener =
      Listener::Bind(options_.port, backlog, options_.loopback_only);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).MoveValue();
  port_ = listener_.port();
  if (options_.event_loop) return StartEventLoop();
  pool_ =
      std::make_unique<ThreadPool>(std::max<size_t>(options_.max_connections,
                                                    1));
  threads_gauge_->Set(1 + static_cast<int64_t>(pool_->size()));
  running_.store(true, std::memory_order_release);
  listen_thread_ = std::thread([this] { ListenLoop(); });
  if (options_.auto_retile) retiler_->Start();
  if (options_.auto_compact) compactor_->Start();
  return Status::OK();
}

Status TileServer::StartEventLoop() {
  Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create();
  if (!loop.ok()) return loop.status();
  loop_ = std::move(loop).MoveValue();
  // The listener's tag is the Listener itself; connections tag their
  // EventConn. One fixed worker pool executes requests — connection count
  // is bounded by `max_connections` fds, not by threads.
  Status st = loop_->Add(listener_.fd(), /*want_read=*/true,
                         /*want_write=*/false, &listener_);
  if (!st.ok()) return st;
  const size_t workers =
      options_.event_loop_workers != 0
          ? options_.event_loop_workers
          : std::clamp<size_t>(ThreadPool::DefaultThreadCount(), 2, 8);
  pool_ = std::make_unique<ThreadPool>(workers);
  threads_gauge_->Set(1 + static_cast<int64_t>(pool_->size()));
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoopMain(); });
  if (options_.auto_retile) retiler_->Start();
  if (options_.auto_compact) compactor_->Start();
  return Status::OK();
}

void TileServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Drain the re-tiler and compactor first: their in-flight steps
  // complete (an atomic RetileRegion / RelocateTiles), remaining steps
  // are parked — the object is left in a valid state either way.
  if (retiler_) retiler_->Stop();
  if (compactor_) compactor_->Stop();
  if (options_.event_loop) {
    StopEventLoop();
    return;
  }
  if (listen_thread_.joinable()) listen_thread_.join();
  listener_.Close();

  // Grace period: connections notice `stopping_` within one poll slice,
  // finish (and answer) their in-flight request, then close themselves.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.drain_timeout_ms),
                       [this] { return active_conns_ == 0; });
  }
  // Anything still alive is blocked on a dead peer: force it shut.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Socket* sock : conns_) sock->ShutdownBoth();
  }
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return active_conns_ == 0; });
  }
  pool_.reset();
}

void TileServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      // Listener broke (fd closed, FD exhaustion burst): brief pause, try
      // again rather than spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      if (active_conns_ < options_.max_connections &&
          !stopping_.load(std::memory_order_acquire)) {
        ++active_conns_;
        admit = true;
      }
    }
    if (!admit) {
      refused_->Add(1);
      continue;  // RAII-closes the socket: explicit refusal, no queue
    }
    accepted_->Add(1);
    auto sock = std::make_shared<Socket>(std::move(accepted).MoveValue());
    pool_->Submit([this, sock] { ServeConnection(sock); });
  }
}

void TileServer::ServeConnection(std::shared_ptr<Socket> sock) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.insert(sock.get());
  }
  conns_gauge_->Add(1);

  while (!stopping_.load(std::memory_order_acquire)) {
    // Wait for the next request header, bounded by the idle timeout.
    uint8_t header_buf[kHeaderBytes];
    Status st = sock->RecvAll(header_buf, kHeaderBytes,
                              DeadlineAfterMs(options_.idle_timeout_ms),
                              &stopping_);
    if (!st.ok()) {
      if (st.IsDeadlineExceeded()) idle_disconnects_->Add(1);
      // NotFound("eof") is the peer hanging up cleanly; Unavailable is our
      // own shutdown; both close quietly.
      break;
    }
    const Clock::time_point start = Clock::now();
    const Deadline deadline = DeadlineAfterMs(options_.request_timeout_ms);

    FrameHeader header;
    st = DecodeHeader(header_buf, &header);
    if (st.ok() && header.response) {
      st = Status::Corruption("unexpected response frame from client");
    }
    if (!st.ok()) {
      // Without a trusted header there is no request to answer; the
      // stream is unsynchronized, so drop the connection.
      frame_errors_->Add(1);
      break;
    }
    std::vector<uint8_t> payload(header.payload_len);
    st = sock->RecvAll(payload.data(), payload.size(), deadline, &stopping_);
    if (st.ok()) st = VerifyPayload(header, payload);
    if (!st.ok()) {
      frame_errors_->Add(1);
      break;
    }
    bytes_received_->Add(kHeaderBytes + payload.size());
    requests_->Add(1);

    // Admission control: bounded queue, explicit rejection.
    std::vector<uint8_t> response_payload;
    bool close_after_send = false;
    if (!admission_.Acquire(options_.admission_wait_ms)) {
      rejected_overload_->Add(1);
      response_payload = EncodeErrorResponse(Status::Unavailable(
          "overloaded: in-flight request limit reached"));
    } else {
      inflight_gauge_->Add(1);
      const uint64_t trace_id = store_->trace()->NextTraceId();
      {
        obs::TraceScope span(store_->trace(), trace_id,
                             WireOpName(header.op).data());
        if (options_.debug_handler_delay_ms > 0) {
          // Sliced so shutdown is never held up by the debug delay.
          const Deadline wake =
              DeadlineAfterMs(options_.debug_handler_delay_ms);
          while (Clock::now() < wake &&
                 !stopping_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        response_payload = Dispatch(header.op, payload, trace_id);
      }
      inflight_gauge_->Add(-1);
      admission_.Release();
      op_latency_ms_[static_cast<size_t>(header.op)]->Observe(
          ElapsedMs(start));
      if (Clock::now() > deadline) {
        // The work finished after its deadline: the client has likely
        // given up; answer with a timeout status and drop the connection.
        request_timeouts_->Add(1);
        response_payload = EncodeErrorResponse(Status::DeadlineExceeded(
            "request deadline expired on the server"));
        close_after_send = true;
      }
    }

    const std::vector<uint8_t> frame = EncodeFrame(
        header.op, /*response=*/true, header.request_id, response_payload);
    // Responses flush even during shutdown (no cancel flag): a drain must
    // not swallow the answer of a request it admitted. A timeout answer
    // gets a fresh grace deadline — the request's own has already expired.
    const Deadline send_deadline =
        close_after_send ? DeadlineAfterMs(options_.request_timeout_ms)
                         : deadline;
    st = sock->SendAll(frame.data(), frame.size(), send_deadline, nullptr);
    if (!st.ok()) break;
    bytes_sent_->Add(frame.size());
    if (close_after_send) break;
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(sock.get());
  }
  sock->Close();
  conns_gauge_->Add(-1);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --active_conns_;
  }
  drain_cv_.notify_all();
}

/// One multiplexed connection: a small state machine driven by readiness
/// events on the loop thread. While `kExecuting` the fd is parked (no
/// interest) so level-triggered readiness does not spin.
struct TileServer::EventConn {
  enum class State { kHeader, kPayload, kExecuting, kWriting };

  Socket sock;
  State state = State::kHeader;
  uint8_t header_raw[kHeaderBytes];
  FrameHeader header;
  std::vector<uint8_t> in;  // payload being received (moved to the worker)
  size_t got = 0;
  std::vector<uint8_t> out;  // encoded response frame being flushed
  size_t out_pos = 0;
  bool close_after_send = false;
  /// Closed (hangup/forced) while a worker still owes a completion.
  bool doomed = false;
  /// A worker owns a pending completion for this connection.
  bool job_outstanding = false;
  bool in_admission_queue = false;
  Clock::time_point idle_since;
  Clock::time_point queued_at;
  Clock::time_point request_start;
  Deadline request_deadline = Deadline::max();
};

void TileServer::StopEventLoop() {
  if (loop_ != nullptr) loop_->Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  listener_.Close();
  // Joining the workers guarantees no one references loop_ or the
  // connection objects afterwards; late completions just settle gauges.
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    for (auto& completion : completions_) {
      (void)completion;
      inflight_gauge_->Add(-1);
    }
    completions_.clear();
  }
  econns_.clear();
  ev_zombies_.clear();
  ev_live_.clear();
  loop_.reset();
}

void TileServer::EventLoopMain() {
  std::vector<EventLoop::Event> events;
  bool draining = false;
  Clock::time_point drain_deadline{};
  // Sweeping walks every connection; under load the loop iterates once
  // per completion, so an unthrottled sweep is O(connections) per request.
  // Timeouts only need coarse granularity.
  constexpr auto kSweepInterval = std::chrono::milliseconds(10);
  Clock::time_point last_sweep = Clock::now();
  for (;;) {
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
      (void)loop_->Remove(listener_.fd());
      listener_.Close();
      // Idle connections close immediately (exactly when a per-connection
      // thread would notice `stopping_`); in-flight requests, queued
      // admissions, and pending responses drain below.
      std::vector<EventConn*> idle;
      for (auto& [fd, conn] : econns_) {
        if (conn->state == EventConn::State::kHeader) {
          idle.push_back(conn.get());
        } else if (conn->state == EventConn::State::kPayload) {
          frame_errors_->Add(1);
          idle.push_back(conn.get());
        }
      }
      for (EventConn* conn : idle) EventCloseConn(conn);
    }
    if (draining) {
      bool writing = false;
      for (auto& [fd, conn] : econns_) {
        if (conn->state == EventConn::State::kWriting) {
          writing = true;
          break;
        }
      }
      const bool drained =
          ev_inflight_ == 0 && ev_admission_queue_.empty() && !writing;
      if (drained || Clock::now() >= drain_deadline) break;
    }

    Result<size_t> n = loop_->Wait(/*timeout_ms=*/10, &events);
    eventloop_loops_->Add(1);
    eventloop_watched_fds_->Set(
        static_cast<int64_t>(loop_->watched_fds()));
    if (n.ok() && *n > 0) {
      eventloop_events_->Add(*n);
      for (const EventLoop::Event& ev : events) {
        if (ev.tag == &listener_) {
          if (!draining) EventAccept();
          continue;
        }
        EventConn* conn = static_cast<EventConn*>(ev.tag);
        // An earlier event in this batch may have closed the connection.
        if (ev_live_.count(conn) == 0) continue;
        EventHandleIo(conn, ev);
      }
    }

    // Completions from the workers (they Wake() after pushing).
    std::vector<std::pair<EventConn*, std::vector<uint8_t>>> finished;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      finished.swap(completions_);
    }
    for (auto& [conn, response] : finished) {
      EventFinish(conn, std::move(response));
    }

    const Clock::time_point now = Clock::now();
    if (now - last_sweep >= kSweepInterval) {
      last_sweep = now;
      EventSweep();
    }
  }

  // Forced exit: anything still open lost the drain race.
  for (auto& [fd, conn] : econns_) {
    conn->sock.Close();
    conns_gauge_->Add(-1);
  }
  eventloop_watched_fds_->Set(0);
}

void TileServer::EventAccept() {
  for (;;) {
    Result<Socket> accepted = listener_.AcceptNonBlocking();
    if (!accepted.ok()) return;  // drained (or the listener broke)
    if (econns_.size() >= options_.max_connections) {
      refused_->Add(1);
      continue;  // RAII-closes the socket: explicit refusal, no queue
    }
    accepted_->Add(1);
    auto conn = std::make_unique<EventConn>();
    conn->sock = std::move(accepted).MoveValue();
    conn->idle_since = Clock::now();
    const int fd = conn->sock.fd();
    if (!loop_->Add(fd, /*want_read=*/true, /*want_write=*/false,
                    conn.get())
             .ok()) {
      continue;  // fd limit burst: drop the connection
    }
    ev_live_.insert(conn.get());
    econns_[fd] = std::move(conn);
    conns_gauge_->Add(1);
  }
}

void TileServer::EventHandleIo(EventConn* conn, const EventLoop::Event& ev) {
  switch (conn->state) {
    case EventConn::State::kHeader:
    case EventConn::State::kPayload:
      (void)EventReadStep(conn);
      return;
    case EventConn::State::kWriting:
      if (ev.writable) {
        (void)EventWriteStep(conn);
      } else if (ev.hangup) {
        EventCloseConn(conn);
      }
      return;
    case EventConn::State::kExecuting:
      // Parked fds still report hangups; the response has nowhere to go.
      if (ev.hangup) EventCloseConn(conn);
      return;
  }
}

bool TileServer::EventReadStep(EventConn* conn) {
  for (;;) {
    uint8_t* buf = conn->state == EventConn::State::kHeader
                       ? conn->header_raw
                       : conn->in.data();
    const size_t need = conn->state == EventConn::State::kHeader
                            ? kHeaderBytes
                            : conn->in.size();
    while (conn->got < need) {
      Result<size_t> r = conn->sock.RecvSome(buf + conn->got,
                                             need - conn->got);
      if (!r.ok()) {
        // A clean hangup between requests closes quietly, like the
        // thread path's NotFound("eof"); a payload cut off mid-message
        // is a frame error there too.
        if (conn->state == EventConn::State::kPayload) {
          frame_errors_->Add(1);
        }
        EventCloseConn(conn);
        return false;
      }
      if (*r == 0) return true;  // drained; wait for the next event
      conn->got += *r;
    }
    if (conn->state == EventConn::State::kHeader) {
      Status st = DecodeHeader(conn->header_raw, &conn->header);
      if (st.ok() && conn->header.response) {
        st = Status::Corruption("unexpected response frame from client");
      }
      if (!st.ok()) {
        frame_errors_->Add(1);
        EventCloseConn(conn);
        return false;
      }
      // The request clock starts once the header is in, as in the
      // thread path.
      conn->request_start = Clock::now();
      conn->request_deadline = DeadlineAfterMs(options_.request_timeout_ms);
      conn->state = EventConn::State::kPayload;
      conn->in.assign(conn->header.payload_len, 0);
      conn->got = 0;
      continue;  // a zero-length payload completes immediately
    }
    Status st = VerifyPayload(conn->header, conn->in);
    if (!st.ok()) {
      frame_errors_->Add(1);
      EventCloseConn(conn);
      return false;
    }
    bytes_received_->Add(kHeaderBytes + conn->in.size());
    requests_->Add(1);
    conn->state = EventConn::State::kExecuting;
    (void)loop_->Update(conn->sock.fd(), /*want_read=*/false,
                        /*want_write=*/false);
    EventAdmit(conn);
    return true;
  }
}

void TileServer::EventAdmit(EventConn* conn) {
  const size_t capacity = std::max<size_t>(options_.max_inflight_requests, 1);
  if (ev_inflight_ < capacity) {
    ++ev_inflight_;
    inflight_gauge_->Add(1);
    EventExecute(conn);
    return;
  }
  if (ev_admission_queue_.size() >= options_.admission_queue_limit) {
    rejected_overload_->Add(1);
    EventSendResponse(conn,
                      EncodeErrorResponse(Status::Unavailable(
                          "overloaded: in-flight request limit reached")),
                      /*close_after_send=*/false);
    return;
  }
  conn->queued_at = Clock::now();
  conn->in_admission_queue = true;
  ev_admission_queue_.push_back(conn);
}

void TileServer::EventExecute(EventConn* conn) {
  conn->job_outstanding = true;
  pool_->Submit([this, conn, op = conn->header.op,
                 payload = std::move(conn->in)] {
    const uint64_t trace_id = store_->trace()->NextTraceId();
    std::vector<uint8_t> response;
    {
      obs::TraceScope span(store_->trace(), trace_id, WireOpName(op).data());
      if (options_.debug_handler_delay_ms > 0) {
        // Sliced so shutdown is never held up by the debug delay.
        const Deadline wake = DeadlineAfterMs(options_.debug_handler_delay_ms);
        while (Clock::now() < wake &&
               !stopping_.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      response = Dispatch(op, payload, trace_id);
    }
    // One wake per queue transition, not per completion: the loop drains
    // the whole queue each iteration, so a non-empty queue already has a
    // pending wake-up and further writes to the pipe would only add
    // syscall churn under load.
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      first = completions_.empty();
      completions_.emplace_back(conn, std::move(response));
    }
    if (first) loop_->Wake();
  });
}

void TileServer::EventFinish(EventConn* conn,
                             std::vector<uint8_t> response) {
  conn->job_outstanding = false;
  --ev_inflight_;
  inflight_gauge_->Add(-1);

  if (conn->doomed) {
    // Peer hung up while the request ran; drop the response and the husk.
    for (auto it = ev_zombies_.begin(); it != ev_zombies_.end(); ++it) {
      if (it->get() == conn) {
        ev_zombies_.erase(it);
        break;
      }
    }
  } else {
    op_latency_ms_[static_cast<size_t>(conn->header.op)]->Observe(
        ElapsedMs(conn->request_start));
    bool close_after_send = false;
    if (Clock::now() > conn->request_deadline) {
      // Finished after its deadline: the client has likely given up;
      // answer with a timeout status and drop the connection.
      request_timeouts_->Add(1);
      response = EncodeErrorResponse(Status::DeadlineExceeded(
          "request deadline expired on the server"));
      close_after_send = true;
    }
    EventSendResponse(conn, std::move(response), close_after_send);
  }

  // Freed slots admit queued waiters in arrival order.
  const size_t capacity = std::max<size_t>(options_.max_inflight_requests, 1);
  while (ev_inflight_ < capacity && !ev_admission_queue_.empty()) {
    EventConn* next = ev_admission_queue_.front();
    ev_admission_queue_.pop_front();
    next->in_admission_queue = false;
    ++ev_inflight_;
    inflight_gauge_->Add(1);
    EventExecute(next);
  }
}

void TileServer::EventSendResponse(EventConn* conn,
                                   std::vector<uint8_t> payload,
                                   bool close_after_send) {
  conn->out = EncodeFrame(conn->header.op, /*response=*/true,
                          conn->header.request_id, payload);
  conn->out_pos = 0;
  conn->close_after_send = close_after_send;
  conn->state = EventConn::State::kWriting;
  if (close_after_send) {
    // A timeout answer gets a fresh grace deadline — the request's own
    // has already expired.
    conn->request_deadline = DeadlineAfterMs(options_.request_timeout_ms);
  }
  // Optimistic flush; anything left waits for writability.
  if (EventWriteStep(conn) &&
      conn->state == EventConn::State::kWriting) {
    (void)loop_->Update(conn->sock.fd(), /*want_read=*/false,
                        /*want_write=*/true);
  }
}

bool TileServer::EventWriteStep(EventConn* conn) {
  while (conn->out_pos < conn->out.size()) {
    Result<size_t> put = conn->sock.SendSome(conn->out.data() + conn->out_pos,
                                             conn->out.size() - conn->out_pos);
    if (!put.ok()) {
      EventCloseConn(conn);
      return false;
    }
    if (*put == 0) return true;  // kernel buffer full; wait for writable
    conn->out_pos += *put;
  }
  bytes_sent_->Add(conn->out.size());
  conn->out.clear();
  if (conn->close_after_send ||
      stopping_.load(std::memory_order_acquire)) {
    EventCloseConn(conn);
    return false;
  }
  conn->state = EventConn::State::kHeader;
  conn->got = 0;
  conn->idle_since = Clock::now();
  conn->request_deadline = Deadline::max();
  (void)loop_->Update(conn->sock.fd(), /*want_read=*/true,
                      /*want_write=*/false);
  return true;
}

void TileServer::EventCloseConn(EventConn* conn) {
  ev_live_.erase(conn);
  if (conn->in_admission_queue) {
    for (auto it = ev_admission_queue_.begin();
         it != ev_admission_queue_.end(); ++it) {
      if (*it == conn) {
        ev_admission_queue_.erase(it);
        break;
      }
    }
    conn->in_admission_queue = false;
  }
  const int fd = conn->sock.fd();
  (void)loop_->Remove(fd);
  conn->sock.Close();
  conns_gauge_->Add(-1);
  auto it = econns_.find(fd);
  if (it == econns_.end()) return;
  if (conn->job_outstanding) {
    // A worker still owes a completion that names this object; keep the
    // husk until EventFinish reaps it.
    conn->doomed = true;
    ev_zombies_.push_back(std::move(it->second));
  }
  econns_.erase(it);
}

void TileServer::EventSweep() {
  const Clock::time_point now = Clock::now();

  // Queued admissions time out exactly like a thread blocked in
  // `Admission::Acquire`: after `admission_wait_ms`, overloaded.
  while (!ev_admission_queue_.empty()) {
    EventConn* front = ev_admission_queue_.front();
    if (now - front->queued_at <
        std::chrono::milliseconds(options_.admission_wait_ms)) {
      break;
    }
    ev_admission_queue_.pop_front();
    front->in_admission_queue = false;
    rejected_overload_->Add(1);
    EventSendResponse(front,
                      EncodeErrorResponse(Status::Unavailable(
                          "overloaded: in-flight request limit reached")),
                      /*close_after_send=*/false);
  }

  std::vector<EventConn*> idle;
  std::vector<EventConn*> overdue;
  for (auto& [fd, conn] : econns_) {
    switch (conn->state) {
      case EventConn::State::kHeader:
        if (options_.idle_timeout_ms > 0 &&
            now - conn->idle_since >
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          idle.push_back(conn.get());
        }
        break;
      case EventConn::State::kPayload:
      case EventConn::State::kWriting:
        if (now > conn->request_deadline) overdue.push_back(conn.get());
        break;
      case EventConn::State::kExecuting:
        break;  // completion handles its own deadline accounting
    }
  }
  for (EventConn* conn : idle) {
    idle_disconnects_->Add(1);
    EventCloseConn(conn);
  }
  for (EventConn* conn : overdue) {
    // A payload that never finishes arriving is a frame error (the thread
    // path's RecvAll deadline); a write that cannot flush closes quietly.
    if (conn->state == EventConn::State::kPayload) frame_errors_->Add(1);
    EventCloseConn(conn);
  }
}

std::vector<uint8_t> TileServer::Dispatch(WireOp op,
                                          const std::vector<uint8_t>& payload,
                                          uint64_t trace_id) {
  switch (op) {
    case WireOp::kPing:
      return EncodePingResponse();
    case WireOp::kOpenMDD:
      return HandleOpenMDD(payload);
    case WireOp::kRangeQuery:
      return HandleRangeQuery(payload, trace_id);
    case WireOp::kAggregate:
      return HandleAggregate(payload, trace_id);
    case WireOp::kInsertTiles:
      return HandleInsertTiles(payload);
    case WireOp::kStats:
      return HandleStats(payload);
    case WireOp::kRetile:
      return HandleRetile(payload);
    case WireOp::kHello:
      return HandleHello(payload);
    case WireOp::kCompact:
      return HandleCompact(payload);
    case WireOp::kFilterQuery:
      return HandleFilterQuery(payload, trace_id);
  }
  return EncodeErrorResponse(Status::Unimplemented("unknown op"));
}

std::vector<uint8_t> TileServer::HandleHello(
    const std::vector<uint8_t>& payload) {
  HelloRequest req;
  Status st = DecodeHelloRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  if (options_.max_wire_version < 2 || req.max_version < 2) {
    // No common version above 1 — and a v1 conversation has no hello, so
    // the op itself is the thing we cannot serve.
    return EncodeErrorResponse(Status::Unimplemented(
        "no common wire version above 1 (server max " +
        std::to_string(options_.max_wire_version) + ", client max " +
        std::to_string(req.max_version) + ")"));
  }
  if (req.expected_shard_id != kAnyShard &&
      req.expected_shard_id != options_.shard_id) {
    // Answer with our true identity in the message so a misrouted client
    // can log which shard actually lives here.
    return EncodeErrorResponse(Status::InvalidArgument(
        "shard mismatch: this server is shard " +
        std::to_string(options_.shard_id) + "/" +
        std::to_string(options_.shard_count) + ", client expected shard " +
        std::to_string(req.expected_shard_id)));
  }
  HelloResponse resp;
  resp.version = std::min<uint16_t>(req.max_version,
                                    std::min<uint16_t>(options_.max_wire_version,
                                                       kWireVersion));
  resp.shard_id = options_.shard_id;
  resp.shard_count = std::max<uint32_t>(options_.shard_count, 1);
  return EncodeHelloResponse(resp);
}

std::vector<uint8_t> TileServer::HandleOpenMDD(
    const std::vector<uint8_t>& payload) {
  OpenMDDRequest req;
  Status st = DecodeOpenMDDRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  OpenMDDResponse resp;
  resp.definition_domain = (*obj)->definition_domain();
  resp.has_current_domain = (*obj)->current_domain().has_value();
  if (resp.has_current_domain) {
    resp.current_domain = *(*obj)->current_domain();
  }
  resp.cell_type_id = static_cast<uint8_t>((*obj)->cell_type().id());
  resp.tile_count = (*obj)->tile_count();
  return EncodeOpenMDDResponse(resp);
}

std::vector<uint8_t> TileServer::HandleRangeQuery(
    const std::vector<uint8_t>& payload, uint64_t trace_id) {
  (void)trace_id;  // spans are emitted by the executor under its own id
  RangeQueryRequest req;
  Status st = DecodeRangeQueryRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  RangeQueryOptions options;
  options.parallelism = options_.query_parallelism;
  RangeQueryExecutor executor(store_, options);
  Result<Array> array = executor.Execute(*obj, req.region);
  if (!array.ok()) return EncodeErrorResponse(array.status());
  RangeQueryResponse resp;
  resp.domain = array->domain();
  resp.cell_type_id = static_cast<uint8_t>(array->cell_type().id());
  resp.cells = std::move(*array).TakeBuffer();
  // Encoding overhead: status byte + interval (1 + 16*dim) + cell type +
  // u64 length prefix; rounded up so the framed payload can never exceed
  // the protocol bound and poison the client's connection.
  const size_t overhead = 16 + 16 * resp.domain.dim();
  if (resp.cells.size() + overhead > kMaxPayloadBytes) {
    return EncodeErrorResponse(Status::OutOfRange(
        "query result exceeds the wire message bound; split the region"));
  }
  return EncodeRangeQueryResponse(resp);
}

std::vector<uint8_t> TileServer::HandleFilterQuery(
    const std::vector<uint8_t>& payload, uint64_t trace_id) {
  (void)trace_id;  // spans are emitted by the executor under its own id
  // A server pinned to wire v1 never announced the op in its hello, so it
  // answers the way a genuine v1 peer's op table would: unimplemented.
  if (options_.max_wire_version < 2) {
    return EncodeErrorResponse(
        Status::Unimplemented("filter_query requires wire version 2"));
  }
  FilterQueryRequest req;
  Status st = DecodeFilterQueryRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  if (req.pred_kind > static_cast<uint8_t>(ValuePredicate::Kind::kEqual)) {
    return EncodeErrorResponse(
        Status::InvalidArgument("unknown predicate kind on wire"));
  }
  ValuePredicate pred;
  pred.kind = static_cast<ValuePredicate::Kind>(req.pred_kind);
  pred.a = req.pred_a;
  pred.b = req.pred_b;
  st = pred.Validate();
  if (!st.ok()) return EncodeErrorResponse(st);
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  RangeQueryOptions options;
  options.parallelism = options_.query_parallelism;
  options.predicate = pred;
  RangeQueryExecutor executor(store_, options);
  Result<Array> array = executor.Execute(*obj, req.region);
  if (!array.ok()) return EncodeErrorResponse(array.status());
  FilterQueryResponse resp;
  resp.domain = array->domain();
  resp.cell_type_id = static_cast<uint8_t>(array->cell_type().id());
  resp.cells = std::move(*array).TakeBuffer();
  // Same wire bound as range_query: status byte + interval + cell type +
  // u64 length prefix, rounded up.
  const size_t overhead = 16 + 16 * resp.domain.dim();
  if (resp.cells.size() + overhead > kMaxPayloadBytes) {
    return EncodeErrorResponse(Status::OutOfRange(
        "query result exceeds the wire message bound; split the region"));
  }
  return EncodeFilterQueryResponse(resp);
}

std::vector<uint8_t> TileServer::HandleAggregate(
    const std::vector<uint8_t>& payload, uint64_t trace_id) {
  (void)trace_id;
  AggregateRequest req;
  Status st = DecodeAggregateRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  if (req.op > static_cast<uint8_t>(AggregateOp::kCount)) {
    return EncodeErrorResponse(
        Status::InvalidArgument("unknown aggregate op"));
  }
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  RangeQueryOptions options;
  options.parallelism = options_.query_parallelism;
  RangeQueryExecutor executor(store_, options);
  Result<double> value = executor.ExecuteAggregate(
      *obj, req.region, static_cast<AggregateOp>(req.op));
  if (!value.ok()) return EncodeErrorResponse(value.status());
  AggregateResponse resp;
  resp.value = *value;
  return EncodeAggregateResponse(resp);
}

std::vector<uint8_t> TileServer::HandleInsertTiles(
    const std::vector<uint8_t>& payload) {
  InsertTilesRequest req;
  Status st = DecodeInsertTilesRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);

  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  bool created = false;
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok() && obj.status().IsNotFound() && req.create_if_missing) {
    // Validate the wire byte before CellType::Of, which asserts on
    // non-builtin ids (opaque cells have no wire-expressible size).
    if (req.cell_type_id > static_cast<uint8_t>(CellTypeId::kRGB8)) {
      return EncodeErrorResponse(
          Status::InvalidArgument("unknown cell type id on wire"));
    }
    obj = store_->CreateMDD(
        req.name, req.definition_domain,
        CellType::Of(static_cast<CellTypeId>(req.cell_type_id)));
    created = obj.ok();
  }
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  MDDObject* object = *obj;

  // WAL mode: the whole batch is one atomic transaction; a failed insert
  // aborts everything, including a just-created object. Without a WAL
  // there is no tile-level rollback: a just-created object is dropped
  // whole, while a mid-batch failure against a pre-existing object leaves
  // the earlier tiles inserted — the error message says so.
  const bool txn = store_->txn_manager() != nullptr;
  if (txn) {
    st = store_->Begin();
    if (!st.ok()) return EncodeErrorResponse(st);
  }
  InsertTilesResponse resp;
  const auto fail = [&](Status failure) {
    if (txn) {
      (void)store_->Abort();
    } else if (created) {
      (void)store_->DropMDD(req.name);
    } else if (resp.tiles_inserted > 0) {
      failure = Status(
          failure.code(),
          failure.message() + " (store has no WAL: the first " +
              std::to_string(resp.tiles_inserted) +
              " tiles of the batch stay inserted and are not rolled back)");
    }
    return EncodeErrorResponse(failure);
  };
  // With SFC placement on, inserting the batch in curve order makes the
  // freshly allocated blob pages follow the curve too.
  if (store_->options().sfc_placement && req.tiles.size() > 1) {
    std::vector<MInterval> domains;
    domains.reserve(req.tiles.size());
    for (const WireTile& t : req.tiles) domains.push_back(t.domain);
    std::vector<size_t> order =
        layout::SfcOrder(domains, store_->options().sfc_curve);
    std::vector<WireTile> sorted;
    sorted.reserve(req.tiles.size());
    for (size_t i : order) sorted.push_back(std::move(req.tiles[i]));
    req.tiles = std::move(sorted);
  }
  for (const WireTile& wire_tile : req.tiles) {
    Result<Array> tile = Array::FromBuffer(
        wire_tile.domain, object->cell_type(),
        std::vector<uint8_t>(wire_tile.cells));
    if (tile.ok()) st = object->InsertTile(*tile);
    if (!tile.ok() || !st.ok()) {
      return fail(tile.ok() ? st : tile.status());
    }
    ++resp.tiles_inserted;
  }
  st = txn ? store_->Commit() : store_->Save();
  if (!st.ok()) return fail(st);
  return EncodeInsertTilesResponse(resp);
}

std::vector<uint8_t> TileServer::HandleStats(
    const std::vector<uint8_t>& payload) {
  StatsRequest req;
  Status st = DecodeStatsRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  StatsResponse resp;
  switch (req.format) {
    case 0:
      resp.text = store_->metrics()->Snapshot().ToJson();
      break;
    case 1:
      resp.text = store_->metrics()->Snapshot().ToPrometheusText();
      break;
    case 2:
      resp.text = store_->trace()->DrainJson();
      break;
    default:
      return EncodeErrorResponse(
          Status::InvalidArgument("unknown stats format"));
  }
  return EncodeStatsResponse(resp);
}

std::vector<uint8_t> TileServer::HandleRetile(
    const std::vector<uint8_t>& payload) {
  RetileRequest req;
  Status st = DecodeRetileRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  // Deliberately NOT under catalog_mu_: the re-tiler takes it shared for
  // evaluation and exclusive per migration step, so concurrent queries
  // keep flowing between steps of a long migration.
  Result<RetileReport> report = retiler_->RetileNow(req.name);
  if (!report.ok()) return EncodeErrorResponse(report.status());
  RetileResponse resp;
  resp.migrated = report->migrated;
  resp.kind = report->kind;
  resp.rationale = report->rationale;
  resp.predicted_gain = report->predicted_gain;
  resp.steps = report->steps;
  resp.tiles_before = report->tiles_before;
  resp.tiles_after = report->tiles_after;
  resp.cells_moved = report->cells_moved;
  return EncodeRetileResponse(resp);
}

std::vector<uint8_t> TileServer::HandleCompact(
    const std::vector<uint8_t>& payload) {
  CompactRequest req;
  Status st = DecodeCompactRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  // Deliberately NOT under catalog_mu_: the compactor takes it shared for
  // measurement and exclusive per relocation step, so concurrent queries
  // keep flowing between steps of a long compaction.
  Result<layout::CompactReport> report = compactor_->CompactNow(req.name);
  if (!report.ok()) return EncodeErrorResponse(report.status());
  CompactResponse resp;
  resp.compacted = report->compacted;
  resp.rationale = report->rationale;
  resp.frag_before = report->frag_before;
  resp.frag_after = report->frag_after;
  resp.steps = report->steps;
  resp.tiles_moved = report->tiles_moved;
  resp.bytes_moved = report->bytes_moved;
  return EncodeCompactResponse(resp);
}

}  // namespace net
}  // namespace tilestore
