#include "net/server.h"

#include <algorithm>
#include <chrono>

#include "core/aggregate.h"
#include "obs/trace.h"
#include "query/range_query.h"

namespace tilestore {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

}  // namespace

bool TileServer::Admission::Acquire(int wait_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < capacity_) {
    ++inflight_;
    return true;
  }
  if (waiting_ >= queue_limit_) return false;
  ++waiting_;
  const bool got = cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                                [this] { return inflight_ < capacity_; });
  --waiting_;
  if (!got) return false;
  ++inflight_;
  return true;
}

void TileServer::Admission::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

TileServer::TileServer(MDDStore* store, TileServerOptions options)
    : store_(store),
      options_(options),
      admission_(std::max<size_t>(options.max_inflight_requests, 1),
                 options.admission_queue_limit) {
  obs::MetricsRegistry* m = store_->metrics();
  accepted_ = m->counter("net.connections_accepted");
  refused_ = m->counter("net.connections_refused");
  conns_gauge_ = m->gauge("net.connections_active");
  requests_ = m->counter("net.requests");
  inflight_gauge_ = m->gauge("net.requests_inflight");
  rejected_overload_ = m->counter("net.rejected_overload");
  request_timeouts_ = m->counter("net.request_timeouts");
  frame_errors_ = m->counter("net.frame_errors");
  idle_disconnects_ = m->counter("net.idle_disconnects");
  bytes_received_ = m->counter("net.bytes_received");
  bytes_sent_ = m->counter("net.bytes_sent");
  op_latency_ms_.resize(static_cast<size_t>(WireOp::kStats) + 1, nullptr);
  for (uint16_t op = static_cast<uint16_t>(WireOp::kPing);
       op <= static_cast<uint16_t>(WireOp::kStats); ++op) {
    const std::string name =
        "net.op." +
        std::string(WireOpName(static_cast<WireOp>(op))) + "_ms";
    op_latency_ms_[op] = m->latency_histogram(name);
  }
}

TileServer::~TileServer() { Stop(); }

Status TileServer::Start() {
  if (running_.load(std::memory_order_acquire) ||
      stopping_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  Result<Listener> listener =
      Listener::Bind(options_.port, options_.backlog, options_.loopback_only);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).MoveValue();
  port_ = listener_.port();
  pool_ =
      std::make_unique<ThreadPool>(std::max<size_t>(options_.max_connections,
                                                    1));
  running_.store(true, std::memory_order_release);
  listen_thread_ = std::thread([this] { ListenLoop(); });
  return Status::OK();
}

void TileServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (listen_thread_.joinable()) listen_thread_.join();
  listener_.Close();

  // Grace period: connections notice `stopping_` within one poll slice,
  // finish (and answer) their in-flight request, then close themselves.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.drain_timeout_ms),
                       [this] { return active_conns_ == 0; });
  }
  // Anything still alive is blocked on a dead peer: force it shut.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Socket* sock : conns_) sock->ShutdownBoth();
  }
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return active_conns_ == 0; });
  }
  pool_.reset();
}

void TileServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      // Listener broke (fd closed, FD exhaustion burst): brief pause, try
      // again rather than spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    bool admit = false;
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      if (active_conns_ < options_.max_connections &&
          !stopping_.load(std::memory_order_acquire)) {
        ++active_conns_;
        admit = true;
      }
    }
    if (!admit) {
      refused_->Add(1);
      continue;  // RAII-closes the socket: explicit refusal, no queue
    }
    accepted_->Add(1);
    auto sock = std::make_shared<Socket>(std::move(accepted).MoveValue());
    pool_->Submit([this, sock] { ServeConnection(sock); });
  }
}

void TileServer::ServeConnection(std::shared_ptr<Socket> sock) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.insert(sock.get());
  }
  conns_gauge_->Add(1);

  while (!stopping_.load(std::memory_order_acquire)) {
    // Wait for the next request header, bounded by the idle timeout.
    uint8_t header_buf[kHeaderBytes];
    Status st = sock->RecvAll(header_buf, kHeaderBytes,
                              DeadlineAfterMs(options_.idle_timeout_ms),
                              &stopping_);
    if (!st.ok()) {
      if (st.IsDeadlineExceeded()) idle_disconnects_->Add(1);
      // NotFound("eof") is the peer hanging up cleanly; Unavailable is our
      // own shutdown; both close quietly.
      break;
    }
    const Clock::time_point start = Clock::now();
    const Deadline deadline = DeadlineAfterMs(options_.request_timeout_ms);

    FrameHeader header;
    st = DecodeHeader(header_buf, &header);
    if (st.ok() && header.response) {
      st = Status::Corruption("unexpected response frame from client");
    }
    if (!st.ok()) {
      // Without a trusted header there is no request to answer; the
      // stream is unsynchronized, so drop the connection.
      frame_errors_->Add(1);
      break;
    }
    std::vector<uint8_t> payload(header.payload_len);
    st = sock->RecvAll(payload.data(), payload.size(), deadline, &stopping_);
    if (st.ok()) st = VerifyPayload(header, payload);
    if (!st.ok()) {
      frame_errors_->Add(1);
      break;
    }
    bytes_received_->Add(kHeaderBytes + payload.size());
    requests_->Add(1);

    // Admission control: bounded queue, explicit rejection.
    std::vector<uint8_t> response_payload;
    bool close_after_send = false;
    if (!admission_.Acquire(options_.admission_wait_ms)) {
      rejected_overload_->Add(1);
      response_payload = EncodeErrorResponse(Status::Unavailable(
          "overloaded: in-flight request limit reached"));
    } else {
      inflight_gauge_->Add(1);
      const uint64_t trace_id = store_->trace()->NextTraceId();
      {
        obs::TraceScope span(store_->trace(), trace_id,
                             WireOpName(header.op).data());
        if (options_.debug_handler_delay_ms > 0) {
          // Sliced so shutdown is never held up by the debug delay.
          const Deadline wake =
              DeadlineAfterMs(options_.debug_handler_delay_ms);
          while (Clock::now() < wake &&
                 !stopping_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        response_payload = Dispatch(header.op, payload, trace_id);
      }
      inflight_gauge_->Add(-1);
      admission_.Release();
      op_latency_ms_[static_cast<size_t>(header.op)]->Observe(
          ElapsedMs(start));
      if (Clock::now() > deadline) {
        // The work finished after its deadline: the client has likely
        // given up; answer with a timeout status and drop the connection.
        request_timeouts_->Add(1);
        response_payload = EncodeErrorResponse(Status::DeadlineExceeded(
            "request deadline expired on the server"));
        close_after_send = true;
      }
    }

    const std::vector<uint8_t> frame = EncodeFrame(
        header.op, /*response=*/true, header.request_id, response_payload);
    // Responses flush even during shutdown (no cancel flag): a drain must
    // not swallow the answer of a request it admitted. A timeout answer
    // gets a fresh grace deadline — the request's own has already expired.
    const Deadline send_deadline =
        close_after_send ? DeadlineAfterMs(options_.request_timeout_ms)
                         : deadline;
    st = sock->SendAll(frame.data(), frame.size(), send_deadline, nullptr);
    if (!st.ok()) break;
    bytes_sent_->Add(frame.size());
    if (close_after_send) break;
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(sock.get());
  }
  sock->Close();
  conns_gauge_->Add(-1);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --active_conns_;
  }
  drain_cv_.notify_all();
}

std::vector<uint8_t> TileServer::Dispatch(WireOp op,
                                          const std::vector<uint8_t>& payload,
                                          uint64_t trace_id) {
  switch (op) {
    case WireOp::kPing:
      return EncodePingResponse();
    case WireOp::kOpenMDD:
      return HandleOpenMDD(payload);
    case WireOp::kRangeQuery:
      return HandleRangeQuery(payload, trace_id);
    case WireOp::kAggregate:
      return HandleAggregate(payload, trace_id);
    case WireOp::kInsertTiles:
      return HandleInsertTiles(payload);
    case WireOp::kStats:
      return HandleStats(payload);
  }
  return EncodeErrorResponse(Status::Unimplemented("unknown op"));
}

std::vector<uint8_t> TileServer::HandleOpenMDD(
    const std::vector<uint8_t>& payload) {
  OpenMDDRequest req;
  Status st = DecodeOpenMDDRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  OpenMDDResponse resp;
  resp.definition_domain = (*obj)->definition_domain();
  resp.has_current_domain = (*obj)->current_domain().has_value();
  if (resp.has_current_domain) {
    resp.current_domain = *(*obj)->current_domain();
  }
  resp.cell_type_id = static_cast<uint8_t>((*obj)->cell_type().id());
  resp.tile_count = (*obj)->tile_count();
  return EncodeOpenMDDResponse(resp);
}

std::vector<uint8_t> TileServer::HandleRangeQuery(
    const std::vector<uint8_t>& payload, uint64_t trace_id) {
  (void)trace_id;  // spans are emitted by the executor under its own id
  RangeQueryRequest req;
  Status st = DecodeRangeQueryRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  RangeQueryOptions options;
  options.parallelism = options_.query_parallelism;
  RangeQueryExecutor executor(store_, options);
  Result<Array> array = executor.Execute(*obj, req.region);
  if (!array.ok()) return EncodeErrorResponse(array.status());
  RangeQueryResponse resp;
  resp.domain = array->domain();
  resp.cell_type_id = static_cast<uint8_t>(array->cell_type().id());
  resp.cells = std::move(*array).TakeBuffer();
  // Encoding overhead: status byte + interval (1 + 16*dim) + cell type +
  // u64 length prefix; rounded up so the framed payload can never exceed
  // the protocol bound and poison the client's connection.
  const size_t overhead = 16 + 16 * resp.domain.dim();
  if (resp.cells.size() + overhead > kMaxPayloadBytes) {
    return EncodeErrorResponse(Status::OutOfRange(
        "query result exceeds the wire message bound; split the region"));
  }
  return EncodeRangeQueryResponse(resp);
}

std::vector<uint8_t> TileServer::HandleAggregate(
    const std::vector<uint8_t>& payload, uint64_t trace_id) {
  (void)trace_id;
  AggregateRequest req;
  Status st = DecodeAggregateRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  if (req.op > static_cast<uint8_t>(AggregateOp::kCount)) {
    return EncodeErrorResponse(
        Status::InvalidArgument("unknown aggregate op"));
  }
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  RangeQueryOptions options;
  options.parallelism = options_.query_parallelism;
  RangeQueryExecutor executor(store_, options);
  Result<double> value = executor.ExecuteAggregate(
      *obj, req.region, static_cast<AggregateOp>(req.op));
  if (!value.ok()) return EncodeErrorResponse(value.status());
  AggregateResponse resp;
  resp.value = *value;
  return EncodeAggregateResponse(resp);
}

std::vector<uint8_t> TileServer::HandleInsertTiles(
    const std::vector<uint8_t>& payload) {
  InsertTilesRequest req;
  Status st = DecodeInsertTilesRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);

  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  bool created = false;
  Result<MDDObject*> obj = store_->GetMDD(req.name);
  if (!obj.ok() && obj.status().IsNotFound() && req.create_if_missing) {
    // Validate the wire byte before CellType::Of, which asserts on
    // non-builtin ids (opaque cells have no wire-expressible size).
    if (req.cell_type_id > static_cast<uint8_t>(CellTypeId::kRGB8)) {
      return EncodeErrorResponse(
          Status::InvalidArgument("unknown cell type id on wire"));
    }
    obj = store_->CreateMDD(
        req.name, req.definition_domain,
        CellType::Of(static_cast<CellTypeId>(req.cell_type_id)));
    created = obj.ok();
  }
  if (!obj.ok()) return EncodeErrorResponse(obj.status());
  MDDObject* object = *obj;

  // WAL mode: the whole batch is one atomic transaction; a failed insert
  // aborts everything, including a just-created object. Without a WAL
  // there is no tile-level rollback: a just-created object is dropped
  // whole, while a mid-batch failure against a pre-existing object leaves
  // the earlier tiles inserted — the error message says so.
  const bool txn = store_->txn_manager() != nullptr;
  if (txn) {
    st = store_->Begin();
    if (!st.ok()) return EncodeErrorResponse(st);
  }
  InsertTilesResponse resp;
  const auto fail = [&](Status failure) {
    if (txn) {
      (void)store_->Abort();
    } else if (created) {
      (void)store_->DropMDD(req.name);
    } else if (resp.tiles_inserted > 0) {
      failure = Status(
          failure.code(),
          failure.message() + " (store has no WAL: the first " +
              std::to_string(resp.tiles_inserted) +
              " tiles of the batch stay inserted and are not rolled back)");
    }
    return EncodeErrorResponse(failure);
  };
  for (const WireTile& wire_tile : req.tiles) {
    Result<Array> tile = Array::FromBuffer(
        wire_tile.domain, object->cell_type(),
        std::vector<uint8_t>(wire_tile.cells));
    if (tile.ok()) st = object->InsertTile(*tile);
    if (!tile.ok() || !st.ok()) {
      return fail(tile.ok() ? st : tile.status());
    }
    ++resp.tiles_inserted;
  }
  st = txn ? store_->Commit() : store_->Save();
  if (!st.ok()) return fail(st);
  return EncodeInsertTilesResponse(resp);
}

std::vector<uint8_t> TileServer::HandleStats(
    const std::vector<uint8_t>& payload) {
  StatsRequest req;
  Status st = DecodeStatsRequest(payload, &req);
  if (!st.ok()) return EncodeErrorResponse(st);
  StatsResponse resp;
  switch (req.format) {
    case 0:
      resp.text = store_->metrics()->Snapshot().ToJson();
      break;
    case 1:
      resp.text = store_->metrics()->Snapshot().ToPrometheusText();
      break;
    case 2:
      resp.text = store_->trace()->DrainJson();
      break;
    default:
      return EncodeErrorResponse(
          Status::InvalidArgument("unknown stats format"));
  }
  return EncodeStatsResponse(resp);
}

}  // namespace net
}  // namespace tilestore
