#ifndef TILESTORE_NET_CLIENT_API_H_
#define TILESTORE_NET_CLIENT_API_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/aggregate.h"
#include "core/array.h"
#include "core/cell_type.h"
#include "core/minterval.h"
#include "core/predicate.h"
#include "net/wire.h"

namespace tilestore {
namespace net {

/// \brief The unified client surface (DESIGN.md §13).
///
/// Every wire op is one `Request` alternative in, one `Response`
/// alternative out, flowing through a single `Call` seam. `TileClient`
/// implements `Call` as one round trip on one connection;
/// `RoutingTileClient` implements it as a scatter-gather across shards.
/// The familiar per-op methods (`Ping`, `RangeQuery`, ...) survive as thin
/// typed wrappers implemented once on `ClientInterface`, so they behave
/// identically against a single server and against a cluster.

/// kPing carries no body; this empty struct is its `Request` alternative.
struct PingRequest {};
/// kPing's OK response carries no body either.
struct PingResponse {};

/// One alternative per wire op, in `WireOp` order.
using Request =
    std::variant<PingRequest, OpenMDDRequest, RangeQueryRequest,
                 AggregateRequest, InsertTilesRequest, StatsRequest,
                 RetileRequest, HelloRequest, CompactRequest,
                 FilterQueryRequest>;

using Response =
    std::variant<PingResponse, OpenMDDResponse, RangeQueryResponse,
                 AggregateResponse, InsertTilesResponse, StatsResponse,
                 RetileResponse, HelloResponse, CompactResponse,
                 FilterQueryResponse>;

/// The wire op a request alternative travels as.
WireOp RequestOp(const Request& request);

/// Serializes the request payload for its op.
std::vector<uint8_t> EncodeRequest(const Request& request);

/// Decodes a response payload for `op`. A non-OK return means the bytes
/// are malformed (protocol corruption — connection-poisoning territory);
/// `*server_status` receives the server's verdict from the leading status
/// byte, and `*out` holds the matching alternative only when both are OK.
/// Structural validation (cell-type range, cells-vs-domain size) happens
/// here so the typed wrappers are infallible conversions.
Status DecodeResponsePayload(WireOp op, const std::vector<uint8_t>& payload,
                             Status* server_status, Response* out);

/// Remote object metadata, the response of `OpenMDD`.
struct RemoteMDDInfo {
  MInterval definition_domain;
  std::optional<MInterval> current_domain;
  CellType cell_type;
  uint64_t tile_count = 0;
};

/// \brief Abstract client: one `Call` core plus typed wrappers.
///
/// Implementations are not thread-safe; use one instance per thread.
class ClientInterface {
 public:
  virtual ~ClientInterface() = default;

  /// The single seam every op flows through. Transport, protocol and
  /// server-side failures all surface as the error status; the response
  /// alternative always matches the request's op.
  virtual Result<Response> Call(const Request& request) = 0;

  /// Liveness: false once the implementation's transport cannot serve any
  /// further call (a poisoned connection, every shard unreachable).
  virtual bool healthy() const { return true; }

  // Typed wrappers over `Call`, kept signature-compatible with the
  // pre-cluster per-op `TileClient` methods so existing callers keep
  // compiling. New ops should prefer `Call` directly.
  Status Ping();
  Result<RemoteMDDInfo> OpenMDD(const std::string& name);
  /// Executes a range query remotely; the returned array is byte-identical
  /// to in-process `RangeQueryExecutor::Execute` on the same data.
  Result<Array> RangeQuery(const std::string& name, const MInterval& region);
  Result<double> Aggregate(const std::string& name, const MInterval& region,
                           AggregateOp op);
  /// Inserts tiles (uncompressed cell buffers); with `create_if_missing`
  /// the object is created first with `definition_domain`/`cell_type`.
  Status InsertTiles(const std::string& name, std::span<const Array> tiles,
                     bool create_if_missing = false,
                     const MInterval& definition_domain = MInterval(),
                     CellType cell_type = CellType());
  /// Server-side obs snapshot. format 0 = metrics JSON, 1 = Prometheus
  /// text, 2 = drained trace JSON.
  Result<std::string> Stats(uint8_t format = 0);
  /// Admin: synchronously evaluate (and, when the predicted gain clears the
  /// server's bar, migrate) `name`'s tiling against its recorded workload.
  Result<RetileResponse> Retile(const std::string& name);
  /// Admin: measure `name`'s physical fragmentation and rewrite its tile
  /// blobs into SFC-contiguous page runs (`Compactor::CompactNow`).
  Result<CompactResponse> Compact(const std::string& name);
  /// Range query with a cell-value predicate pushed to the server
  /// (DESIGN.md §15): non-matching cells come back as the object's
  /// default value, byte-identical to in-process
  /// `RangeQueryExecutor::Execute` with the same predicate. Requires a
  /// v2-negotiated connection; `TileClient` refuses against a v1 server.
  Result<Array> FilterQuery(const std::string& name, const MInterval& region,
                            const ValuePredicate& predicate);
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_CLIENT_API_H_
