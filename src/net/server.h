#ifndef TILESTORE_NET_SERVER_H_
#define TILESTORE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "mdd/mdd_store.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "layout/compactor.h"
#include "obs/metrics.h"
#include "tiling/retiler.h"

namespace tilestore {
namespace net {

/// Server tuning knobs. The defaults suit a loopback development server;
/// `tilestore_cli serve` exposes the interesting ones as flags.
struct TileServerOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via `port()`).
  uint16_t port = 0;
  /// Bind 127.0.0.1 only (the default) or all interfaces.
  bool loopback_only = true;
  int backlog = 64;
  /// Connection workers == maximum concurrent connections: the server is
  /// thread-per-connection over one `ThreadPool`; connections beyond this
  /// are refused at accept (counted, never queued invisibly).
  size_t max_connections = 32;
  /// Admission control: at most this many requests execute at once.
  size_t max_inflight_requests = 16;
  /// Requests beyond the in-flight limit wait in a bounded queue of this
  /// size; a request arriving with the queue full is rejected immediately
  /// with `Unavailable` ("overloaded").
  size_t admission_queue_limit = 16;
  /// How long an admitted-queue request waits for a slot before it too is
  /// rejected as overloaded.
  int admission_wait_ms = 1000;
  /// Connections idle longer than this are closed.
  int idle_timeout_ms = 30000;
  /// Per-request deadline: payload read, execution, and response write
  /// must finish within it; expiry answers with `DeadlineExceeded` and
  /// closes the connection.
  int request_timeout_ms = 10000;
  /// How long `Stop` waits for in-flight requests to finish before
  /// forcing connections shut.
  int drain_timeout_ms = 5000;
  /// Tile-retrieval parallelism used for query execution (see
  /// `RangeQueryOptions::parallelism`). Results are byte-identical at any
  /// value.
  int query_parallelism = 4;
  /// Test/bench aid: holds every admitted request for this long before
  /// executing, making overload and deadline behaviour deterministic to
  /// test. 0 in production.
  int debug_handler_delay_ms = 0;
  /// Event-loop mode (DESIGN.md §11): one loop thread multiplexes every
  /// connection over readiness notifications (epoll, or poll when forced
  /// with `TILESTORE_EVENT_LOOP=poll`) and a small fixed worker pool
  /// executes requests, so thousands of mostly-idle connections cost file
  /// descriptors rather than threads. Limits, deadlines, drain semantics,
  /// and all `net.*` metrics behave exactly as in thread-per-connection
  /// mode.
  bool event_loop = false;
  /// Request-execution workers in event-loop mode; 0 picks a machine
  /// default. Ignored in thread-per-connection mode, which sizes its pool
  /// by `max_connections`.
  size_t event_loop_workers = 0;
  /// Run the online re-tiler's background loop (DESIGN.md §12): hot
  /// objects are periodically re-tiled to fit the observed workload.
  /// The `retile` wire op works either way; this flag only controls the
  /// automatic loop. `Stop` drains the re-tiler's in-flight migration
  /// step before closing connections.
  bool auto_retile = false;
  /// Re-tiler policy knobs, forwarded to `RetilerOptions` (the catalog
  /// lock is always the server's own). See that struct for semantics.
  int retile_poll_ms = 1000;
  uint64_t retile_min_queries = 32;
  double retile_min_improvement = 1.3;
  uint64_t retile_step_cell_budget = 1ull << 22;
  /// Re-tile hysteresis/cool-down, forwarded to `RetilerOptions`
  /// (`migration_cost_weight`, `cooldown`).
  double retile_migration_cost_weight = 0.0;
  int retile_cooldown_ms = 0;
  /// Run the online compactor's background loop (DESIGN.md §14):
  /// fragmented objects are periodically rewritten into SFC-contiguous
  /// page runs. The `compact` wire op works either way; this flag only
  /// controls the automatic loop. `Stop` drains the compactor's in-flight
  /// relocation step before closing connections.
  bool auto_compact = false;
  /// Compactor policy knobs, forwarded to `CompactorOptions` (the catalog
  /// lock is always the server's own). See that struct for semantics.
  int compact_poll_ms = 1000;
  double compact_min_fragmentation = 0.25;
  uint64_t compact_step_bytes = 4ull << 20;
  /// Shard identity reported in the kHello handshake (DESIGN.md §13).
  /// Defaults describe a standalone, unsharded server. A cluster launcher
  /// runs N processes with shard_id = 0..N-1, shard_count = N; the
  /// routing client verifies the identity per connection so a miswired
  /// shard map is a connect-time error, not silent wrong answers.
  uint32_t shard_id = 0;
  uint32_t shard_count = 1;
  /// Highest wire version this server will negotiate. Pinning 1 makes the
  /// server answer kHello with Unimplemented — the v2 client's downgrade
  /// test hook.
  uint16_t max_wire_version = kWireVersion;
};

/// \brief TCP front end for one `MDDStore` (DESIGN.md §9).
///
/// One listener thread accepts connections and hands each to a worker of
/// an owned `ThreadPool` (thread-per-connection). Read requests execute
/// concurrently through the store's thread-safe read path; `InsertTiles`
/// takes an exclusive lock (one writer, no concurrent readers), and is
/// applied as one atomic store transaction when the store runs in WAL
/// mode. Every event is reported to the store's `obs` registry under
/// `net.*` and each request emits trace spans into the store's ring.
///
/// Overload is explicit: beyond `max_inflight_requests` executing plus
/// `admission_queue_limit` waiting, requests are answered immediately with
/// `Unavailable` ("overloaded"), never silently stalled. `Stop` drains
/// gracefully: in-flight requests finish and their responses flush before
/// connections close.
class TileServer {
 public:
  explicit TileServer(MDDStore* store,
                      TileServerOptions options = TileServerOptions());
  ~TileServer();

  TileServer(const TileServer&) = delete;
  TileServer& operator=(const TileServer&) = delete;

  /// Binds the listener and starts serving. Fails if the port is taken or
  /// the server was already started.
  Status Start();

  /// Graceful shutdown: stop accepting, let in-flight requests finish
  /// (bounded by `drain_timeout_ms`), close all connections, join all
  /// threads. Idempotent; a stopped server cannot be restarted.
  void Stop();

  /// The bound port (valid after a successful `Start`).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The server's re-tiler (always constructed; its background loop runs
  /// only with `auto_retile`). Exposed for tests and embedders.
  Retiler* retiler() { return retiler_.get(); }

  /// The server's compactor (always constructed; its background loop runs
  /// only with `auto_compact`). Exposed for tests and embedders.
  layout::Compactor* compactor() { return compactor_.get(); }

 private:
  /// Counting semaphore with a bounded wait queue; the server's admission
  /// controller.
  class Admission {
   public:
    Admission(size_t capacity, size_t queue_limit)
        : capacity_(capacity), queue_limit_(queue_limit) {}

    /// Acquires an execution slot, waiting at most `wait_ms` in the
    /// bounded queue. False means "reject as overloaded".
    bool Acquire(int wait_ms);
    void Release();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    const size_t capacity_;
    const size_t queue_limit_;
    size_t inflight_ = 0;
    size_t waiting_ = 0;
  };

  void ListenLoop();
  void ServeConnection(std::shared_ptr<Socket> sock);

  // --- Event-loop mode (options_.event_loop). All EventXxx methods and
  // all ev_* state below belong to the loop thread exclusively; workers
  // only push into `completions_` (mutex) and call `loop_->Wake()`.
  struct EventConn;
  Status StartEventLoop();
  void StopEventLoop();
  void EventLoopMain();
  void EventAccept();
  void EventHandleIo(EventConn* conn, const EventLoop::Event& ev);
  /// Drains readable bytes, advancing kHeader -> kPayload -> admission.
  /// Returns false when the connection was closed.
  bool EventReadStep(EventConn* conn);
  /// Flushes pending response bytes. Returns false when closed.
  bool EventWriteStep(EventConn* conn);
  /// Admission control: execute, queue, or reject as overloaded.
  void EventAdmit(EventConn* conn);
  /// Hands the parked request to a pool worker.
  void EventExecute(EventConn* conn);
  /// Completion (loop thread): deadline check, response, next waiter.
  void EventFinish(EventConn* conn, std::vector<uint8_t> response);
  void EventSendResponse(EventConn* conn, std::vector<uint8_t> payload,
                         bool close_after_send);
  void EventCloseConn(EventConn* conn);
  /// Periodic timeouts: idle connections, stalled payloads/writes, and
  /// admission-queue waits.
  void EventSweep();
  /// Decodes and executes one request; returns the response payload.
  std::vector<uint8_t> Dispatch(WireOp op,
                                const std::vector<uint8_t>& payload,
                                uint64_t trace_id);
  std::vector<uint8_t> HandleOpenMDD(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleRangeQuery(const std::vector<uint8_t>& payload,
                                        uint64_t trace_id);
  std::vector<uint8_t> HandleAggregate(const std::vector<uint8_t>& payload,
                                       uint64_t trace_id);
  std::vector<uint8_t> HandleInsertTiles(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleStats(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleRetile(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleHello(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleCompact(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleFilterQuery(const std::vector<uint8_t>& payload,
                                         uint64_t trace_id);

  MDDStore* store_;
  const TileServerOptions options_;

  // Catalog guard: read ops share, InsertTiles is exclusive. The store's
  // tile read path is thread-safe; catalog mutation is not. The re-tiler
  // takes it exclusively per migration step, so readers interleave with a
  // migration at step granularity.
  std::shared_mutex catalog_mu_;

  // Online re-tiler (DESIGN.md §12); background loop gated on
  // options_.auto_retile, the `retile` op uses it synchronously.
  std::unique_ptr<Retiler> retiler_;

  // Online compactor (DESIGN.md §14); background loop gated on
  // options_.auto_compact, the `compact` op uses it synchronously.
  std::unique_ptr<layout::Compactor> compactor_;

  Admission admission_;
  Listener listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread listen_thread_;
  std::unique_ptr<ThreadPool> pool_;

  // Live connection registry, for forced shutdown after the drain grace
  // period. Connections deregister (under the mutex) before closing.
  std::mutex conns_mu_;
  std::set<Socket*> conns_;

  // Drain bookkeeping: connections still running their loop.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t active_conns_ = 0;

  // Event-loop state (loop thread only, except completions_/its mutex).
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  std::unordered_map<int, std::unique_ptr<EventConn>> econns_;  // by fd
  std::unordered_set<EventConn*> ev_live_;  // liveness check for event tags
  // Closed while a worker still owes a completion; destroyed at finish.
  std::vector<std::unique_ptr<EventConn>> ev_zombies_;
  size_t ev_inflight_ = 0;
  std::deque<EventConn*> ev_admission_queue_;
  std::mutex completions_mu_;
  std::vector<std::pair<EventConn*, std::vector<uint8_t>>> completions_;

  // net.* metrics, resolved once at construction.
  obs::Counter* accepted_;
  obs::Counter* refused_;
  obs::Gauge* conns_gauge_;
  obs::Counter* requests_;
  obs::Gauge* inflight_gauge_;
  obs::Counter* rejected_overload_;
  obs::Counter* request_timeouts_;
  obs::Counter* frame_errors_;
  obs::Counter* idle_disconnects_;
  obs::Counter* bytes_received_;
  obs::Counter* bytes_sent_;
  // Indexed by WireOp value (1..kFilterQuery); [0] unused.
  std::vector<obs::Histogram*> op_latency_ms_;
  // Registered in both modes (zero in thread-per-connection mode) so
  // snapshots always carry the series.
  obs::Counter* eventloop_loops_;
  obs::Counter* eventloop_events_;
  obs::Gauge* eventloop_watched_fds_;
  // Server threads: 1 + pool size (max_connections or event_loop workers).
  obs::Gauge* threads_gauge_;
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_SERVER_H_
