#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace tilestore {
namespace net {

namespace {

std::string ErrnoText(const char* context) {
  return std::string(context) + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(ErrnoText("fcntl O_NONBLOCK"));
  }
  return Status::OK();
}

bool ForcePoll() {
  const char* env = std::getenv("TILESTORE_EVENT_LOOP");
  return env != nullptr && std::strcmp(env, "poll") == 0;
}

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(ErrnoText("pipe"));
  }
  for (int fd : pipe_fds) {
    if (Status st = SetNonBlocking(fd); !st.ok()) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return st;
    }
  }

  int epoll_fd = -1;
#ifdef __linux__
  if (!ForcePoll()) {
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    // epoll failing (container seccomp, exotic kernels) just means the
    // portable poll backend — not an error.
  }
#endif
  std::unique_ptr<EventLoop> loop(
      new EventLoop(epoll_fd, pipe_fds[0], pipe_fds[1]));
  // The wake pipe is an ordinary registered fd with a null tag; Wait
  // recognizes it and drains it instead of reporting an event.
  if (Status st = loop->Add(pipe_fds[0], /*want_read=*/true,
                            /*want_write=*/false, loop.get());
      !st.ok()) {
    return st;
  }
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int wake_read_fd, int wake_write_fd)
    : epoll_fd_(epoll_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd) {}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

const char* EventLoop::backend() const {
  return epoll_fd_ >= 0 ? "epoll" : "poll";
}

Status EventLoop::Add(int fd, bool want_read, bool want_write, void* tag) {
  if (tag == nullptr) {
    return Status::InvalidArgument("event loop tags must be non-null");
  }
  if (!interest_.emplace(fd, Interest{tag, want_read, want_write}).second) {
    return Status::InvalidArgument("fd already registered with event loop");
  }
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      interest_.erase(fd);
      return Status::IOError(ErrnoText("epoll_ctl ADD"));
    }
  }
#endif
  return Status::OK();
}

Status EventLoop::Update(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    return Status::InvalidArgument("fd not registered with event loop");
  }
  it->second.want_read = want_read;
  it->second.want_write = want_write;
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    if (want_read) ev.events |= EPOLLIN;
    if (want_write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return Status::IOError(ErrnoText("epoll_ctl MOD"));
    }
  }
#endif
  return Status::OK();
}

Status EventLoop::Remove(int fd) {
  if (interest_.erase(fd) == 0) {
    return Status::InvalidArgument("fd not registered with event loop");
  }
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return Status::IOError(ErrnoText("epoll_ctl DEL"));
    }
  }
#endif
  return Status::OK();
}

Result<size_t> EventLoop::Wait(int timeout_ms, std::vector<Event>* out) {
  out->clear();
  auto drain_wake = [this] {
    uint8_t buf[64];
    while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
    }
  };

#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event events[128];
    const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return size_t{0};
      return Status::IOError(ErrnoText("epoll_wait"));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        drain_wake();
        continue;
      }
      auto it = interest_.find(fd);
      if (it == interest_.end()) continue;  // removed by an earlier event
      Event ev;
      ev.tag = it->second.tag;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      out->push_back(ev);
    }
    return out->size();
  }
#endif

  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  poll_tags_.clear();
  poll_tags_.reserve(interest_.size());
  for (const auto& [fd, interest] : interest_) {
    short events = 0;
    if (interest.want_read) events |= POLLIN;
    if (interest.want_write) events |= POLLOUT;
    fds.push_back(pollfd{fd, events, 0});
    poll_tags_.push_back(interest.tag);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return size_t{0};
    return Status::IOError(ErrnoText("poll"));
  }
  for (size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (fds[i].fd == wake_read_fd_) {
      drain_wake();
      continue;
    }
    Event ev;
    ev.tag = poll_tags_[i];
    ev.readable = (fds[i].revents & POLLIN) != 0;
    ev.writable = (fds[i].revents & POLLOUT) != 0;
    ev.hangup = (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out->push_back(ev);
  }
  return out->size();
}

void EventLoop::Wake() {
  const uint8_t byte = 1;
  // A full pipe already guarantees a pending wake-up.
  (void)!::write(wake_write_fd_, &byte, 1);
}

}  // namespace net
}  // namespace tilestore
