#ifndef TILESTORE_NET_EVENT_LOOP_H_
#define TILESTORE_NET_EVENT_LOOP_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tilestore {
namespace net {

/// \brief Small readiness-notification wrapper: epoll on Linux, poll(2)
/// everywhere (and when `TILESTORE_EVENT_LOOP=poll` forces the portable
/// path, which is how tests cover both).
///
/// Level-triggered semantics on both backends: a ready fd is reported on
/// every `Wait` until its condition is consumed or its interest set is
/// changed with `Update`. One opaque tag per fd is handed back in events.
/// `Wake` makes a concurrent `Wait` return early via a self-pipe; it is
/// the only method safe to call from other threads — everything else
/// belongs to the loop's owning thread.
class EventLoop {
 public:
  struct Event {
    void* tag = nullptr;
    bool readable = false;
    bool writable = false;
    /// Peer hung up or the fd errored; the owner should close it.
    bool hangup = false;
  };

  static Result<std::unique_ptr<EventLoop>> Create();

  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest set; `tag` is returned in
  /// events for it (must be non-null and unique per fd).
  Status Add(int fd, bool want_read, bool want_write, void* tag);

  /// Changes the interest set of a registered fd. Both false parks the fd
  /// (stays registered, reports nothing) — used while a request executes
  /// so level-triggered readiness does not spin.
  Status Update(int fd, bool want_read, bool want_write);

  /// Deregisters `fd` (does not close it).
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready events to
  /// `out` (cleared first). Returns the number of events. Wake-ups drain
  /// the self-pipe internally and report zero events.
  Result<size_t> Wait(int timeout_ms, std::vector<Event>* out);

  /// Interrupts a concurrent `Wait`. Thread-safe, async-signal unsafe.
  void Wake();

  /// "epoll" or "poll".
  const char* backend() const;

  size_t watched_fds() const { return interest_.size(); }

 private:
  struct Interest {
    void* tag;
    bool want_read;
    bool want_write;
  };

  EventLoop(int epoll_fd, int wake_read_fd, int wake_write_fd);

  int epoll_fd_;  // -1 = poll backend
  int wake_read_fd_;
  int wake_write_fd_;
  std::unordered_map<int, Interest> interest_;
  // Scratch for the poll backend, rebuilt per Wait.
  std::vector<void*> poll_tags_;
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_EVENT_LOOP_H_
