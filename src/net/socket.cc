#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tilestore {
namespace net {

namespace {

// Poll slice: the longest a blocking call stays in the kernel before
// re-checking its deadline and cancellation flag.
constexpr int kPollSliceMs = 100;

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

// Waits for `events` on `fd` until `deadline`. Returns 1 when ready, 0 on
// deadline, -1 on poll error (errno set), -2 when cancelled.
int WaitReady(int fd, short events, Deadline deadline,
              const std::atomic<bool>* cancel) {
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return -2;
    }
    int slice = kPollSliceMs;
    if (deadline != Deadline::max()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return 0;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      slice = static_cast<int>(
          std::min<long long>(left + 1, kPollSliceMs));
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, slice);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc > 0) return 1;
    // rc == 0: slice elapsed; loop re-checks deadline and cancel.
  }
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Deadline DeadlineAfterMs(int ms) {
  if (ms <= 0) return Deadline::max();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port,
                                  int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::IOError("resolve " + host + ": " + ::gai_strerror(gai));
  }

  const Deadline deadline = DeadlineAfterMs(timeout_ms);
  Status last = Status::IOError("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(ErrnoMessage("socket"));
      continue;
    }
    SetNonBlocking(fd);
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      const int ready = WaitReady(fd, POLLOUT, deadline, nullptr);
      if (ready == 0) {
        ::close(fd);
        last = Status::DeadlineExceeded("connect to " + host + ":" +
                                        port_text + " timed out");
        continue;
      }
      if (ready < 0) {
        ::close(fd);
        last = Status::IOError(ErrnoMessage("poll connect " + host));
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        ::close(fd);
        last = Status::IOError("connect to " + host + ":" + port_text + ": " +
                               std::strerror(err != 0 ? err : errno));
        continue;
      }
      rc = 0;
    }
    if (rc != 0) {
      const Status st = Status::IOError(ErrnoMessage("connect " + host));
      ::close(fd);
      last = st;
      continue;
    }
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    return Socket(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Status Socket::SendAll(const uint8_t* data, size_t n, Deadline deadline,
                       const std::atomic<bool>* cancel) {
  size_t done = 0;
  while (done < n) {
    const int ready = WaitReady(fd_, POLLOUT, deadline, cancel);
    if (ready == 0) return Status::DeadlineExceeded("send timed out");
    if (ready == -2) return Status::Unavailable("send cancelled");
    if (ready < 0) return Status::IOError(ErrnoMessage("poll send"));
    const ssize_t put =
        ::send(fd_, data + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(ErrnoMessage("send"));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Status Socket::RecvAll(uint8_t* out, size_t n, Deadline deadline,
                       const std::atomic<bool>* cancel) {
  size_t done = 0;
  while (done < n) {
    const int ready = WaitReady(fd_, POLLIN, deadline, cancel);
    if (ready == 0) return Status::DeadlineExceeded("recv timed out");
    if (ready == -2) return Status::Unavailable("recv cancelled");
    if (ready < 0) return Status::IOError(ErrnoMessage("poll recv"));
    const ssize_t got = ::recv(fd_, out + done, n - done, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(ErrnoMessage("recv"));
    }
    if (got == 0) {
      if (done == 0) return Status::NotFound("eof");
      return Status::IOError("connection closed mid-message");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(uint8_t* out, size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd_, out, n, 0);
    if (got > 0) return static_cast<size_t>(got);
    if (got == 0) return Status::NotFound("eof");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Status::IOError(ErrnoMessage("recv"));
  }
}

Result<size_t> Socket::SendSome(const uint8_t* data, size_t n) {
  for (;;) {
    const ssize_t put = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (put >= 0) return static_cast<size_t>(put);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Status::IOError(ErrnoMessage("send"));
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Listener> Listener::Bind(uint16_t port, int backlog,
                                bool loopback_only) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(ErrnoMessage("socket"));
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IOError(ErrnoMessage("bind port " + std::to_string(port)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Status::IOError(ErrnoMessage("listen"));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    const Status st = Status::IOError(ErrnoMessage("getsockname"));
    ::close(fd);
    return st;
  }
  SetNonBlocking(fd);
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(int timeout_ms) {
  const Deadline deadline = DeadlineAfterMs(timeout_ms);
  for (;;) {
    const int ready = WaitReady(fd_, POLLIN, deadline, nullptr);
    if (ready == 0) return Status::DeadlineExceeded("accept timed out");
    if (ready < 0) return Status::IOError(ErrnoMessage("poll accept"));
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(ErrnoMessage("accept"));
    }
    // accept() does not inherit O_NONBLOCK from the listener on Linux.
    // SendAll/RecvAll's deadline loop relies on partial-write EAGAIN
    // semantics; a blocking fd would park the connection thread in the
    // kernel past both the deadline and the stop flag.
    SetNonBlocking(fd);
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

Result<Socket> Listener::AcceptNonBlocking() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("no pending connection");
      }
      return Status::IOError(ErrnoMessage("accept"));
    }
    SetNonBlocking(fd);
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace tilestore
