#include "net/client.h"

#include <thread>

namespace tilestore {
namespace net {

Result<std::unique_ptr<TileClient>> TileClient::Connect(
    const std::string& host, uint16_t port, TileClientOptions options) {
  const int attempts = std::max(options.connect_attempts, 1);
  Status last = Status::IOError("connect never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms * attempt));
    }
    Result<Socket> sock =
        Socket::ConnectTcp(host, port, options.connect_timeout_ms);
    if (sock.ok()) {
      return std::unique_ptr<TileClient>(
          new TileClient(std::move(sock).MoveValue(), options));
    }
    last = sock.status();
  }
  return last;
}

Status TileClient::RoundTrip(WireOp op, const std::vector<uint8_t>& request,
                             std::vector<uint8_t>* response) {
  if (!healthy_ || !socket_.valid()) {
    return Status::Unavailable("connection is closed or poisoned");
  }
  if (request.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("request exceeds the wire message bound");
  }
  const uint64_t id = next_request_id_++;
  const Deadline deadline = DeadlineAfterMs(options_.request_timeout_ms);
  const std::vector<uint8_t> frame =
      EncodeFrame(op, /*response=*/false, id, request);
  Status st = socket_.SendAll(frame.data(), frame.size(), deadline);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  uint8_t header_buf[kHeaderBytes];
  st = socket_.RecvAll(header_buf, kHeaderBytes, deadline);
  if (!st.ok()) {
    healthy_ = false;
    if (st.IsNotFound()) {
      return Status::Unavailable("server closed the connection");
    }
    return st;
  }
  FrameHeader header;
  st = DecodeHeader(header_buf, &header);
  if (st.ok() && (!header.response || header.op != op ||
                  header.request_id != id)) {
    st = Status::Corruption("response does not match the request");
  }
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  response->resize(header.payload_len);
  st = socket_.RecvAll(response->data(), response->size(), deadline);
  if (st.ok()) st = VerifyPayload(header, *response);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  return Status::OK();
}

Status TileClient::Ping() {
  std::vector<uint8_t> payload;
  Status st = RoundTrip(WireOp::kPing, {}, &payload);
  if (!st.ok()) return st;
  Status server;
  st = DecodePingResponse(payload, &server);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  return server;
}

Result<RemoteMDDInfo> TileClient::OpenMDD(const std::string& name) {
  OpenMDDRequest req;
  req.name = name;
  std::vector<uint8_t> payload;
  Status st = RoundTrip(WireOp::kOpenMDD, EncodeOpenMDDRequest(req), &payload);
  if (!st.ok()) return st;
  Status server;
  OpenMDDResponse resp;
  st = DecodeOpenMDDResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) return server;
  if (resp.cell_type_id > static_cast<uint8_t>(CellTypeId::kRGB8)) {
    healthy_ = false;
    return Status::Corruption("unknown cell type id in response");
  }
  RemoteMDDInfo info;
  info.definition_domain = std::move(resp.definition_domain);
  if (resp.has_current_domain) {
    info.current_domain = std::move(resp.current_domain);
  }
  info.cell_type = CellType::Of(static_cast<CellTypeId>(resp.cell_type_id));
  info.tile_count = resp.tile_count;
  return info;
}

Result<Array> TileClient::RangeQuery(const std::string& name,
                                     const MInterval& region) {
  RangeQueryRequest req;
  req.name = name;
  req.region = region;
  std::vector<uint8_t> payload;
  Status st =
      RoundTrip(WireOp::kRangeQuery, EncodeRangeQueryRequest(req), &payload);
  if (!st.ok()) return st;
  Status server;
  RangeQueryResponse resp;
  st = DecodeRangeQueryResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) return server;
  if (resp.cell_type_id > static_cast<uint8_t>(CellTypeId::kRGB8)) {
    healthy_ = false;
    return Status::Corruption("unknown cell type id in response");
  }
  Result<Array> array = Array::FromBuffer(
      resp.domain, CellType::Of(static_cast<CellTypeId>(resp.cell_type_id)),
      std::move(resp.cells));
  if (!array.ok()) {
    healthy_ = false;
    return Status::Corruption("malformed query result: " +
                              array.status().message());
  }
  return array;
}

Result<double> TileClient::Aggregate(const std::string& name,
                                     const MInterval& region,
                                     AggregateOp op) {
  AggregateRequest req;
  req.name = name;
  req.region = region;
  req.op = static_cast<uint8_t>(op);
  std::vector<uint8_t> payload;
  Status st =
      RoundTrip(WireOp::kAggregate, EncodeAggregateRequest(req), &payload);
  if (!st.ok()) return st;
  Status server;
  AggregateResponse resp;
  st = DecodeAggregateResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) return server;
  return resp.value;
}

Status TileClient::InsertTiles(const std::string& name,
                               std::span<const Array> tiles,
                               bool create_if_missing,
                               const MInterval& definition_domain,
                               CellType cell_type) {
  InsertTilesRequest req;
  req.name = name;
  req.create_if_missing = create_if_missing;
  if (create_if_missing) {
    req.definition_domain = definition_domain;
    req.cell_type_id = static_cast<uint8_t>(cell_type.id());
  }
  req.tiles.reserve(tiles.size());
  for (const Array& tile : tiles) {
    WireTile wire_tile;
    wire_tile.domain = tile.domain();
    wire_tile.cells.assign(tile.data(), tile.data() + tile.size_bytes());
    req.tiles.push_back(std::move(wire_tile));
  }
  std::vector<uint8_t> payload;
  Status st = RoundTrip(WireOp::kInsertTiles, EncodeInsertTilesRequest(req),
                        &payload);
  if (!st.ok()) return st;
  Status server;
  InsertTilesResponse resp;
  st = DecodeInsertTilesResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  return server;
}

Result<std::string> TileClient::Stats(uint8_t format) {
  StatsRequest req;
  req.format = format;
  std::vector<uint8_t> payload;
  Status st = RoundTrip(WireOp::kStats, EncodeStatsRequest(req), &payload);
  if (!st.ok()) return st;
  Status server;
  StatsResponse resp;
  st = DecodeStatsResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) return server;
  return std::move(resp.text);
}

Result<RetileResponse> TileClient::Retile(const std::string& name) {
  RetileRequest req;
  req.name = name;
  std::vector<uint8_t> payload;
  Status st = RoundTrip(WireOp::kRetile, EncodeRetileRequest(req), &payload);
  if (!st.ok()) return st;
  Status server;
  RetileResponse resp;
  st = DecodeRetileResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) return server;
  return resp;
}

}  // namespace net
}  // namespace tilestore
