#include "net/client.h"

#include <thread>

namespace tilestore {
namespace net {

Result<std::unique_ptr<TileClient>> TileClient::Connect(
    const std::string& host, uint16_t port, TileClientOptions options) {
  const int attempts = std::max(options.connect_attempts, 1);
  Status last = Status::IOError("connect never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_backoff_ms * attempt));
    }
    Result<Socket> sock =
        Socket::ConnectTcp(host, port, options.connect_timeout_ms);
    if (!sock.ok()) {
      last = sock.status();
      continue;
    }
    std::unique_ptr<TileClient> client(
        new TileClient(std::move(sock).MoveValue(), options));
    if (!options.handshake) return client;
    bool downgrade = false;
    Status st = client->Handshake(&downgrade);
    if (st.ok() && !downgrade) return client;
    if (st.ok() && downgrade) {
      // The server dropped the connection on the unknown kHello op — the
      // v1 behaviour. Reconnect fresh and speak v1; shard identity stays
      // at the standalone default.
      Result<Socket> again =
          Socket::ConnectTcp(host, port, options.connect_timeout_ms);
      if (!again.ok()) {
        last = again.status();
        continue;
      }
      client.reset(new TileClient(std::move(again).MoveValue(), options));
      client->wire_version_ = kMinWireVersion;
      return client;
    }
    // A timed-out handshake is transient — a busy server may answer the
    // next attempt.
    if (st.IsDeadlineExceeded()) {
      last = st;
      continue;
    }
    // A clean server-side rejection (e.g. the wrong shard answered) is
    // definitive — retrying the same endpoint cannot fix a miswired map.
    return st;
  }
  return last;
}

Status TileClient::Handshake(bool* downgrade) {
  *downgrade = false;
  HelloRequest hello;
  hello.max_version = kWireVersion;
  hello.expected_shard_id = options_.expected_shard_id;
  std::vector<uint8_t> payload;
  Status st = RoundTrip(WireOp::kHello, EncodeHelloRequest(hello), &payload);
  if (!st.ok()) {
    // A deadline expiry is a slow server, not a v1 one — downgrading here
    // would hide its shard identity behind the standalone defaults.
    if (st.IsDeadlineExceeded()) return st;
    // Any other transport failure right after a successful connect: almost
    // certainly a v1 server closing on the unknown op. Signal downgrade;
    // a genuinely dead server fails the v1 reconnect immediately after.
    *downgrade = true;
    return Status::OK();
  }
  Status server;
  HelloResponse resp;
  st = DecodeHelloResponse(payload, &server, &resp);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) {
    if (server.IsUnimplemented()) {
      // The server answered cleanly but is pinned to v1
      // (max_wire_version=1); the connection is still good.
      wire_version_ = kMinWireVersion;
      return Status::OK();
    }
    return server;
  }
  wire_version_ = resp.version;
  shard_id_ = resp.shard_id;
  shard_count_ = resp.shard_count;
  if (options_.expected_shard_id != kAnyShard &&
      resp.shard_id != options_.expected_shard_id) {
    return Status::InvalidArgument(
        "endpoint serves shard " + std::to_string(resp.shard_id) + "/" +
        std::to_string(resp.shard_count) + ", expected shard " +
        std::to_string(options_.expected_shard_id));
  }
  return Status::OK();
}

Status TileClient::RoundTrip(WireOp op, const std::vector<uint8_t>& request,
                             std::vector<uint8_t>* response) {
  if (!healthy_ || !socket_.valid()) {
    return Status::Unavailable("connection is closed or poisoned");
  }
  if (request.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("request exceeds the wire message bound");
  }
  const uint64_t id = next_request_id_++;
  const Deadline deadline = DeadlineAfterMs(options_.request_timeout_ms);
  // kHello frames are stamped with the client's maximum version (that is
  // the offer); everything later uses the negotiated one.
  const uint16_t version =
      op == WireOp::kHello ? kWireVersion : wire_version_;
  const std::vector<uint8_t> frame =
      EncodeFrame(op, /*response=*/false, id, request, version);
  Status st = socket_.SendAll(frame.data(), frame.size(), deadline);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  uint8_t header_buf[kHeaderBytes];
  st = socket_.RecvAll(header_buf, kHeaderBytes, deadline);
  if (!st.ok()) {
    healthy_ = false;
    if (st.IsNotFound()) {
      return Status::Unavailable("server closed the connection");
    }
    return st;
  }
  FrameHeader header;
  st = DecodeHeader(header_buf, &header);
  if (st.ok() && (!header.response || header.op != op ||
                  header.request_id != id)) {
    st = Status::Corruption("response does not match the request");
  }
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  response->resize(header.payload_len);
  st = socket_.RecvAll(response->data(), response->size(), deadline);
  if (st.ok()) st = VerifyPayload(header, *response);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  return Status::OK();
}

Result<Response> TileClient::Call(const Request& request) {
  const WireOp op = RequestOp(request);
  // v2-only ops never go out on a v1 conversation: a genuine v1 server
  // would drop the connection on the unknown op, poisoning it for every
  // later request. Refuse locally instead.
  if (op == WireOp::kFilterQuery && wire_version_ < 2) {
    return Status::Unimplemented(
        "filter_query requires wire version 2; this connection negotiated "
        "version " +
        std::to_string(wire_version_));
  }
  std::vector<uint8_t> payload;
  Status st = RoundTrip(op, EncodeRequest(request), &payload);
  if (!st.ok()) return st;
  Status server;
  Response response;
  st = DecodeResponsePayload(op, payload, &server, &response);
  if (!st.ok()) {
    healthy_ = false;
    return st;
  }
  if (!server.ok()) return server;
  return response;
}

}  // namespace net
}  // namespace tilestore
