#include "net/server_config.h"

#include <cstdint>

#include "layout/sfc.h"
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace tilestore {
namespace net {

namespace {

struct Flag {
  std::string name;   // without the leading "--"
  std::string value;  // empty for bare flags
  bool has_value = false;
  bool used = false;
};

Status ParseFlags(int argc, char** argv, std::vector<Flag>* out) {
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      return Status::InvalidArgument(std::string("unexpected argument '") +
                                     arg + "' (serve takes only --flags)");
    }
    Flag flag;
    const char* eq = std::strchr(arg + 2, '=');
    if (eq != nullptr) {
      flag.name.assign(arg + 2, eq);
      flag.value = eq + 1;
      flag.has_value = true;
    } else {
      flag.name = arg + 2;
    }
    out->push_back(std::move(flag));
  }
  return Status::OK();
}

class FlagSet {
 public:
  explicit FlagSet(std::vector<Flag>* flags) : flags_(flags) {}

  /// Bare switch: present or not. A value on a switch is an error.
  Result<bool> Switch(const std::string& name) {
    Flag* flag = Find(name);
    if (flag == nullptr) return false;
    if (flag->has_value) {
      return Status::InvalidArgument("--" + name + " takes no value");
    }
    return true;
  }

  /// Valued flag; nullopt when absent.
  Result<std::optional<std::string>> String(const std::string& name) {
    Flag* flag = Find(name);
    if (flag == nullptr) return std::optional<std::string>();
    if (!flag->has_value || flag->value.empty()) {
      return Status::InvalidArgument("--" + name + " needs a value");
    }
    return std::optional<std::string>(flag->value);
  }

  template <typename T>
  Status Integer(const std::string& name, T* out, int64_t min, int64_t max) {
    Result<std::optional<std::string>> text = String(name);
    if (!text.ok()) return text.status();
    if (!text->has_value()) return Status::OK();
    int64_t v = 0;
    try {
      size_t pos = 0;
      v = std::stoll(**text, &pos);
      if (pos != (*text)->size()) throw std::invalid_argument("trailing");
    } catch (...) {
      return Status::InvalidArgument("--" + name + "=" + **text +
                                     " is not a number");
    }
    if (v < min || v > max) {
      return Status::InvalidArgument(
          "--" + name + "=" + **text + " out of range [" +
          std::to_string(min) + ", " + std::to_string(max) + "]");
    }
    *out = static_cast<T>(v);
    return Status::OK();
  }

  Status Double(const std::string& name, double* out) {
    Result<std::optional<std::string>> text = String(name);
    if (!text.ok()) return text.status();
    if (!text->has_value()) return Status::OK();
    try {
      size_t pos = 0;
      *out = std::stod(**text, &pos);
      if (pos != (*text)->size()) throw std::invalid_argument("trailing");
    } catch (...) {
      return Status::InvalidArgument("--" + name + "=" + **text +
                                     " is not a number");
    }
    return Status::OK();
  }

  /// Every flag must have been consumed by one of the accessors above.
  Status CheckAllUsed() const {
    for (const Flag& flag : *flags_) {
      if (!flag.used) {
        return Status::InvalidArgument("unknown flag --" + flag.name);
      }
    }
    return Status::OK();
  }

 private:
  Flag* Find(const std::string& name) {
    Flag* found = nullptr;
    for (Flag& flag : *flags_) {
      if (flag.name == name) {
        flag.used = true;
        found = &flag;  // last occurrence wins, like env-style overrides
      }
    }
    return found;
  }

  std::vector<Flag>* flags_;
};

}  // namespace

Result<ServerConfig> ServerConfig::FromArgs(int argc, char** argv) {
  std::vector<Flag> flags;
  Status st = ParseFlags(argc, argv, &flags);
  if (!st.ok()) return st;
  FlagSet set(&flags);
  ServerConfig config;

  // Store-side knobs.
  uint64_t tile_cache_mb = 0;
  bool have_cache = false;
  {
    Result<std::optional<std::string>> v = set.String("tile-cache-mb");
    if (!v.ok()) return v.status();
    if (v->has_value()) {
      have_cache = true;
      st = set.Integer("tile-cache-mb", &tile_cache_mb, 0, 1 << 20);
      if (!st.ok()) return st;
    }
  }
  if (have_cache) {
    config.store_options.tile_cache_bytes =
        static_cast<size_t>(tile_cache_mb) << 20;
  }
  {
    // Per-tile summary statistics (DESIGN.md §15). On by default; "off"
    // disables both maintenance and the filter-query pruning that uses
    // them (filtered queries then inspect every candidate tile).
    Result<std::optional<std::string>> v = set.String("summaries");
    if (!v.ok()) return v.status();
    if (v->has_value()) {
      if (**v == "on") {
        config.store_options.tile_summaries = true;
      } else if (**v == "off") {
        config.store_options.tile_summaries = false;
      } else {
        return Status::InvalidArgument("--summaries wants on|off, got '" +
                                       **v + "'");
      }
    }
  }
  {
    Result<std::optional<std::string>> v = set.String("io-backend");
    if (!v.ok()) return v.status();
    if (v->has_value()) {
      Result<std::unique_ptr<IoBackend>> made = MakeIoBackend(**v);
      if (!made.ok()) return made.status();
      config.io_backend = std::move(made).MoveValue();
      config.store_options.io_backend = config.io_backend.get();
    }
  }

  // Server-side knobs.
  TileServerOptions& server = config.server_options;
  st = set.Integer("port", &server.port, 0, 65535);
  if (st.ok()) st = set.Integer("threads", &server.max_connections, 1, 4096);
  if (st.ok()) {
    st = set.Integer("max-connections", &server.max_connections, 1, 65536);
  }
  if (st.ok()) {
    st = set.Integer("max-inflight", &server.max_inflight_requests, 1, 4096);
  }
  if (st.ok()) st = set.Integer("queue", &server.admission_queue_limit, 0, 65536);
  if (st.ok()) {
    st = set.Integer("request-timeout-ms", &server.request_timeout_ms, 1,
                     3600 * 1000);
  }
  if (st.ok()) {
    st = set.Integer("idle-timeout-ms", &server.idle_timeout_ms, 1,
                     24 * 3600 * 1000);
  }
  if (st.ok()) st = set.Integer("parallelism", &server.query_parallelism, 1, 256);
  if (st.ok()) {
    st = set.Integer("workers", &server.event_loop_workers, 0, 4096);
  }
  if (st.ok()) {
    st = set.Integer("debug-handler-delay-ms", &server.debug_handler_delay_ms,
                     0, 60 * 1000);
  }
  if (st.ok()) {
    st = set.Integer("max-wire-version", &server.max_wire_version,
                     kMinWireVersion, kWireVersion);
  }
  if (!st.ok()) return st;
  {
    Result<bool> v = set.Switch("all-interfaces");
    if (!v.ok()) return v.status();
    if (*v) server.loopback_only = false;
  }
  {
    Result<bool> v = set.Switch("event-loop");
    if (!v.ok()) return v.status();
    if (*v) server.event_loop = true;
  }

  // Re-tiler knobs.
  {
    Result<bool> v = set.Switch("auto-retile");
    if (!v.ok()) return v.status();
    if (*v) server.auto_retile = true;
  }
  st = set.Integer("retile-poll-ms", &server.retile_poll_ms, 1, 3600 * 1000);
  if (st.ok()) {
    st = set.Integer("retile-min-queries", &server.retile_min_queries, 1,
                     int64_t{1} << 40);
  }
  if (st.ok()) st = set.Double("retile-min-improvement", &server.retile_min_improvement);
  if (st.ok()) {
    st = set.Integer("retile-cell-budget", &server.retile_step_cell_budget, 1,
                     int64_t{1} << 40);
  }
  if (st.ok()) {
    st = set.Double("retile-migration-cost", &server.retile_migration_cost_weight);
  }
  if (st.ok()) {
    st = set.Integer("retile-cooldown-ms", &server.retile_cooldown_ms, 0,
                     24 * 3600 * 1000);
  }
  if (!st.ok()) return st;

  // Layout knobs: SFC placement for new tile writes, plus the background
  // compactor that restores SFC-contiguity on aged stores.
  {
    Result<bool> v = set.Switch("sfc-placement");
    if (!v.ok()) return v.status();
    if (*v) config.store_options.sfc_placement = true;
  }
  {
    Result<std::optional<std::string>> v = set.String("sfc-curve");
    if (!v.ok()) return v.status();
    if (v->has_value()) {
      Result<layout::SfcCurve> curve = layout::ParseSfcCurve(**v);
      if (!curve.ok()) return curve.status();
      config.store_options.sfc_curve = *curve;
      config.store_options.sfc_placement = true;
    }
  }
  {
    Result<bool> v = set.Switch("auto-compact");
    if (!v.ok()) return v.status();
    if (*v) server.auto_compact = true;
  }
  st = set.Integer("compact-poll-ms", &server.compact_poll_ms, 1, 3600 * 1000);
  if (st.ok()) {
    st = set.Double("compact-min-frag", &server.compact_min_fragmentation);
  }
  if (st.ok()) {
    st = set.Integer("compact-step-bytes", &server.compact_step_bytes, 4096,
                     int64_t{1} << 40);
  }
  if (!st.ok()) return st;

  // Cluster identity: either from a map (authoritative endpoints and
  // count) or direct --shard-id/--shard-count for tests and launchers
  // that wire ports themselves.
  std::optional<std::string> map_path;
  {
    Result<std::optional<std::string>> v = set.String("cluster-map");
    if (!v.ok()) return v.status();
    map_path = *v;
  }
  uint32_t shard_id = 0;
  bool have_shard_id = false;
  {
    Result<std::optional<std::string>> v = set.String("shard-id");
    if (!v.ok()) return v.status();
    if (v->has_value()) {
      have_shard_id = true;
      st = set.Integer("shard-id", &shard_id, 0, 0xFFFFFFFEll);
      if (!st.ok()) return st;
    }
  }
  st = set.Integer("shard-count", &server.shard_count, 1, 0xFFFFFFFFll);
  if (!st.ok()) return st;
  if (map_path.has_value()) {
    Result<cluster::ShardMap> map = cluster::ShardMap::LoadFile(*map_path);
    if (!map.ok()) return map.status();
    if (!have_shard_id) {
      return Status::InvalidArgument(
          "--cluster-map needs --shard-id to pick this process's shard");
    }
    if (shard_id >= map->shard_count()) {
      return Status::InvalidArgument(
          "--shard-id=" + std::to_string(shard_id) + " out of range; map has " +
          std::to_string(map->shard_count()) + " shards");
    }
    server.shard_id = shard_id;
    server.shard_count = map->shard_count();
    // The map is the single source of ports; an explicit --port (e.g. 0
    // for an ephemeral test port) still wins.
    if (server.port == 0) server.port = map->endpoint(shard_id).port;
    config.cluster_map = std::move(map).MoveValue();
  } else if (have_shard_id) {
    server.shard_id = shard_id;
    if (server.shard_count <= shard_id) {
      return Status::InvalidArgument(
          "--shard-id=" + std::to_string(shard_id) +
          " needs --shard-count > it");
    }
  }

  st = set.CheckAllUsed();
  if (!st.ok()) return st;
  return config;
}

const char* ServerConfig::FlagHelp() {
  return "  serve  <db> [--port=N] [--threads=N] [--max-inflight=N]\n"
         "         [--queue=N] [--request-timeout-ms=N] [--idle-timeout-ms=N]\n"
         "         [--parallelism=N] [--tile-cache-mb=N] [--all-interfaces]\n"
         "         [--event-loop] [--workers=N] [--max-connections=N]\n"
         "         [--io-backend=auto|pread|uring] [--summaries=on|off]\n"
         "         [--auto-retile] [--retile-poll-ms=N]\n"
         "         [--retile-min-queries=N] [--retile-min-improvement=X]\n"
         "         [--retile-cell-budget=N] [--retile-migration-cost=X]\n"
         "         [--retile-cooldown-ms=N]\n"
         "         [--sfc-placement] [--sfc-curve=hilbert|zorder]\n"
         "         [--auto-compact] [--compact-poll-ms=N]\n"
         "         [--compact-min-frag=X] [--compact-step-bytes=N]\n"
         "         [--shard-id=N] [--shard-count=N] [--cluster-map=FILE]\n"
         "         [--max-wire-version=N] [--debug-handler-delay-ms=N]\n";
}

}  // namespace net
}  // namespace tilestore
