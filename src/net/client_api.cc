#include "net/client_api.h"

namespace tilestore {
namespace net {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

Status CellTypeInRange(uint8_t id) {
  if (id > static_cast<uint8_t>(CellTypeId::kRGB8)) {
    return Status::Corruption("unknown cell type id in response");
  }
  return Status::OK();
}

}  // namespace

WireOp RequestOp(const Request& request) {
  return std::visit(
      Overloaded{
          [](const PingRequest&) { return WireOp::kPing; },
          [](const OpenMDDRequest&) { return WireOp::kOpenMDD; },
          [](const RangeQueryRequest&) { return WireOp::kRangeQuery; },
          [](const AggregateRequest&) { return WireOp::kAggregate; },
          [](const InsertTilesRequest&) { return WireOp::kInsertTiles; },
          [](const StatsRequest&) { return WireOp::kStats; },
          [](const RetileRequest&) { return WireOp::kRetile; },
          [](const HelloRequest&) { return WireOp::kHello; },
          [](const CompactRequest&) { return WireOp::kCompact; },
          [](const FilterQueryRequest&) { return WireOp::kFilterQuery; },
      },
      request);
}

std::vector<uint8_t> EncodeRequest(const Request& request) {
  return std::visit(
      Overloaded{
          [](const PingRequest&) { return std::vector<uint8_t>(); },
          [](const OpenMDDRequest& r) { return EncodeOpenMDDRequest(r); },
          [](const RangeQueryRequest& r) {
            return EncodeRangeQueryRequest(r);
          },
          [](const AggregateRequest& r) { return EncodeAggregateRequest(r); },
          [](const InsertTilesRequest& r) {
            return EncodeInsertTilesRequest(r);
          },
          [](const StatsRequest& r) { return EncodeStatsRequest(r); },
          [](const RetileRequest& r) { return EncodeRetileRequest(r); },
          [](const HelloRequest& r) { return EncodeHelloRequest(r); },
          [](const CompactRequest& r) { return EncodeCompactRequest(r); },
          [](const FilterQueryRequest& r) {
            return EncodeFilterQueryRequest(r);
          },
      },
      request);
}

Status DecodeResponsePayload(WireOp op, const std::vector<uint8_t>& payload,
                             Status* server_status, Response* out) {
  Status st;
  switch (op) {
    case WireOp::kPing: {
      st = DecodePingResponse(payload, server_status);
      if (st.ok() && server_status->ok()) *out = PingResponse{};
      return st;
    }
    case WireOp::kOpenMDD: {
      OpenMDDResponse resp;
      st = DecodeOpenMDDResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      st = CellTypeInRange(resp.cell_type_id);
      if (!st.ok()) return st;
      *out = std::move(resp);
      return Status::OK();
    }
    case WireOp::kRangeQuery: {
      RangeQueryResponse resp;
      st = DecodeRangeQueryResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      st = CellTypeInRange(resp.cell_type_id);
      if (!st.ok()) return st;
      const CellType cell_type =
          CellType::Of(static_cast<CellTypeId>(resp.cell_type_id));
      // The domain is attacker-controlled; CellCount (not the OrDie
      // variant) keeps a hostile extent from aborting the client.
      Result<uint64_t> cells = resp.domain.IsFixed()
                                   ? resp.domain.CellCount()
                                   : Status::Corruption("unbounded domain");
      if (!cells.ok() || *cells > kMaxPayloadBytes ||
          resp.cells.size() != *cells * cell_type.size()) {
        return Status::Corruption("query result size does not match domain");
      }
      *out = std::move(resp);
      return Status::OK();
    }
    case WireOp::kAggregate: {
      AggregateResponse resp;
      st = DecodeAggregateResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      *out = resp;
      return Status::OK();
    }
    case WireOp::kInsertTiles: {
      InsertTilesResponse resp;
      st = DecodeInsertTilesResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      *out = resp;
      return Status::OK();
    }
    case WireOp::kStats: {
      StatsResponse resp;
      st = DecodeStatsResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      *out = std::move(resp);
      return Status::OK();
    }
    case WireOp::kRetile: {
      RetileResponse resp;
      st = DecodeRetileResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      *out = std::move(resp);
      return Status::OK();
    }
    case WireOp::kHello: {
      HelloResponse resp;
      st = DecodeHelloResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      *out = resp;
      return Status::OK();
    }
    case WireOp::kCompact: {
      CompactResponse resp;
      st = DecodeCompactResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      *out = std::move(resp);
      return Status::OK();
    }
    case WireOp::kFilterQuery: {
      FilterQueryResponse resp;
      st = DecodeFilterQueryResponse(payload, server_status, &resp);
      if (!st.ok() || !server_status->ok()) return st;
      st = CellTypeInRange(resp.cell_type_id);
      if (!st.ok()) return st;
      const CellType cell_type =
          CellType::Of(static_cast<CellTypeId>(resp.cell_type_id));
      // Same hostile-domain hardening as range_query.
      Result<uint64_t> cells = resp.domain.IsFixed()
                                   ? resp.domain.CellCount()
                                   : Status::Corruption("unbounded domain");
      if (!cells.ok() || *cells > kMaxPayloadBytes ||
          resp.cells.size() != *cells * cell_type.size()) {
        return Status::Corruption("query result size does not match domain");
      }
      *out = std::move(resp);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable wire op in decode");
}

Status ClientInterface::Ping() { return Call(PingRequest{}).status(); }

Result<RemoteMDDInfo> ClientInterface::OpenMDD(const std::string& name) {
  OpenMDDRequest req;
  req.name = name;
  Result<Response> result = Call(std::move(req));
  if (!result.ok()) return result.status();
  auto& resp = std::get<OpenMDDResponse>(*result);
  RemoteMDDInfo info;
  info.definition_domain = std::move(resp.definition_domain);
  if (resp.has_current_domain) {
    info.current_domain = std::move(resp.current_domain);
  }
  info.cell_type = CellType::Of(static_cast<CellTypeId>(resp.cell_type_id));
  info.tile_count = resp.tile_count;
  return info;
}

Result<Array> ClientInterface::RangeQuery(const std::string& name,
                                          const MInterval& region) {
  RangeQueryRequest req;
  req.name = name;
  req.region = region;
  Result<Response> result = Call(std::move(req));
  if (!result.ok()) return result.status();
  auto& resp = std::get<RangeQueryResponse>(*result);
  Result<Array> array = Array::FromBuffer(
      resp.domain, CellType::Of(static_cast<CellTypeId>(resp.cell_type_id)),
      std::move(resp.cells));
  if (!array.ok()) {
    return Status::Corruption("malformed query result: " +
                              array.status().message());
  }
  return array;
}

Result<double> ClientInterface::Aggregate(const std::string& name,
                                          const MInterval& region,
                                          AggregateOp op) {
  AggregateRequest req;
  req.name = name;
  req.region = region;
  req.op = static_cast<uint8_t>(op);
  Result<Response> result = Call(std::move(req));
  if (!result.ok()) return result.status();
  return std::get<AggregateResponse>(*result).value;
}

Status ClientInterface::InsertTiles(const std::string& name,
                                    std::span<const Array> tiles,
                                    bool create_if_missing,
                                    const MInterval& definition_domain,
                                    CellType cell_type) {
  InsertTilesRequest req;
  req.name = name;
  req.create_if_missing = create_if_missing;
  if (create_if_missing) {
    req.definition_domain = definition_domain;
    req.cell_type_id = static_cast<uint8_t>(cell_type.id());
  }
  req.tiles.reserve(tiles.size());
  for (const Array& tile : tiles) {
    WireTile wire_tile;
    wire_tile.domain = tile.domain();
    wire_tile.cells.assign(tile.data(), tile.data() + tile.size_bytes());
    req.tiles.push_back(std::move(wire_tile));
  }
  return Call(std::move(req)).status();
}

Result<std::string> ClientInterface::Stats(uint8_t format) {
  StatsRequest req;
  req.format = format;
  Result<Response> result = Call(req);
  if (!result.ok()) return result.status();
  return std::move(std::get<StatsResponse>(*result).text);
}

Result<RetileResponse> ClientInterface::Retile(const std::string& name) {
  RetileRequest req;
  req.name = name;
  Result<Response> result = Call(std::move(req));
  if (!result.ok()) return result.status();
  return std::move(std::get<RetileResponse>(*result));
}

Result<CompactResponse> ClientInterface::Compact(const std::string& name) {
  CompactRequest req;
  req.name = name;
  Result<Response> result = Call(std::move(req));
  if (!result.ok()) return result.status();
  return std::move(std::get<CompactResponse>(*result));
}

Result<Array> ClientInterface::FilterQuery(const std::string& name,
                                           const MInterval& region,
                                           const ValuePredicate& predicate) {
  Status st = predicate.Validate();
  if (!st.ok()) return st;
  FilterQueryRequest req;
  req.name = name;
  req.region = region;
  req.pred_kind = static_cast<uint8_t>(predicate.kind);
  req.pred_a = predicate.a;
  req.pred_b = predicate.b;
  Result<Response> result = Call(std::move(req));
  if (!result.ok()) return result.status();
  auto& resp = std::get<FilterQueryResponse>(*result);
  Result<Array> array = Array::FromBuffer(
      resp.domain, CellType::Of(static_cast<CellTypeId>(resp.cell_type_id)),
      std::move(resp.cells));
  if (!array.ok()) {
    return Status::Corruption("malformed query result: " +
                              array.status().message());
  }
  return array;
}

}  // namespace net
}  // namespace tilestore
