#ifndef TILESTORE_NET_SERVER_CONFIG_H_
#define TILESTORE_NET_SERVER_CONFIG_H_

#include <memory>
#include <optional>
#include <string>

#include "cluster/shard_map.h"
#include "common/result.h"
#include "common/status.h"
#include "mdd/mdd_store.h"
#include "net/server.h"
#include "storage/io_backend.h"

namespace tilestore {
namespace net {

/// \brief Everything a serving process needs, parsed once.
///
/// `tilestore_cli serve`, the cluster shard launcher, and server tests all
/// build their `MDDStore` + `TileServer` from this one struct, so a flag
/// means the same thing everywhere and new knobs are added in exactly one
/// place. Flags use the `--name=value` / bare `--name` convention of the
/// CLI; unknown `--flags` are rejected (a typo becomes an error instead of
/// a silently ignored knob). The io-backend additionally honours the
/// `TILESTORE_IO_BACKEND` environment override via `DefaultIoBackend` when
/// no `--io-backend` flag is given.
///
/// Cluster mode: `--cluster-map=<file>` (see `cluster::ShardMap` for the
/// format) plus `--shard-id=N` make this process shard N of the map — the
/// shard identity is stamped into the kHello handshake and, unless
/// `--port` overrides it, the shard's port is taken from its map entry.
/// `--shard-id`/`--shard-count` without a map configure the identity
/// directly (the form tests use).
struct ServerConfig {
  MDDStoreOptions store_options;
  TileServerOptions server_options;
  /// Explicit backend from `--io-backend`; `store_options.io_backend`
  /// points at it (or is null, deferring to the process default). Owned
  /// here so the config must outlive the store.
  std::unique_ptr<IoBackend> io_backend;
  /// Loaded from `--cluster-map`; the launcher uses it to spawn peers.
  std::optional<cluster::ShardMap> cluster_map;

  /// Parses `argv[0..argc)` (flags only, no positionals). On error the
  /// message names the offending flag.
  static Result<ServerConfig> FromArgs(int argc, char** argv);

  /// The serve-flag help block, shared with the CLI's usage text.
  static const char* FlagHelp();
};

}  // namespace net
}  // namespace tilestore

#endif  // TILESTORE_NET_SERVER_CONFIG_H_
