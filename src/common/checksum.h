#ifndef TILESTORE_COMMON_CHECKSUM_H_
#define TILESTORE_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace tilestore {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected) over `data`.
/// Software slicing-by-8 implementation; used for superblock, WAL record,
/// and per-page checksums. `seed` allows incremental computation:
/// Crc32c(b, n2, Crc32c(a, n1)) == Crc32c(concat(a, b), n1 + n2).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace tilestore

#endif  // TILESTORE_COMMON_CHECKSUM_H_
