#include "common/checksum.h"

#include <array>
#include <cstring>

namespace tilestore {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

struct Crc32cTables {
  // tables[k][b]: CRC contribution of byte b at distance k from the end of
  // an 8-byte block (slicing-by-8).
  std::array<std::array<uint32_t, 256>, 8> t;

  constexpr Crc32cTables() : t() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = (crc >> 8) ^ t[0][crc & 0xFFu];
        t[k][i] = crc;
      }
    }
  }
};

constexpr Crc32cTables kTables;

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace tilestore
