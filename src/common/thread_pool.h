#ifndef TILESTORE_COMMON_THREAD_POOL_H_
#define TILESTORE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tilestore {

/// \brief Fixed-size worker pool backing the concurrent read path.
///
/// Workers pull tasks from a FIFO queue, so tasks submitted in physical
/// page order start in (roughly) physical page order — the property the
/// `TileIOScheduler` relies on to keep batched retrieval sequential-ish on
/// the modelled disk. The pool is intentionally minimal: no priorities, no
/// resizing, no futures (callers wanting completion tracking use
/// `TaskGroup`).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers.
  void Submit(std::function<void()> task);

  size_t size() const { return threads_.size(); }

  /// A sensible default worker count for this machine (hardware
  /// concurrency clamped to [1, 16]).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// \brief Tracks a batch of tasks submitted to a `ThreadPool` so the
/// submitter can wait for all of them — the join point of every batched
/// fetch. With a null pool, `Run` executes inline on the calling thread,
/// which is exactly the serial (`parallelism = 1`) execution mode.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Not copyable; outstanding tasks hold `this`.
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for stragglers so tasks never outlive the group.
  ~TaskGroup() { Wait(); }

  /// Schedules `fn` on the pool (or runs it inline without a pool).
  void Run(std::function<void()> fn);

  /// Blocks until every task passed to `Run` has finished.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_COMMON_THREAD_POOL_H_
