#ifndef TILESTORE_COMMON_SERDE_H_
#define TILESTORE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace tilestore {

/// \brief Append-only little-endian byte writer used by the catalog and
/// index serializers. (All supported targets are little-endian; the
/// on-disk format is fixed to little-endian byte order.)
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void Bytes(const uint8_t* data, size_t n) { Raw(data, n); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  size_t size() const { return buf_.size(); }
  const uint8_t* data() const { return buf_.data(); }
  /// Pre-sizes the buffer (perf only; the writer grows on demand anyway).
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void Raw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<uint8_t> buf_;
};

/// \brief Bounds-checked reader over a byte image; every overrun yields a
/// Corruption status instead of UB.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U16(uint16_t* v) { return Raw(v, 2); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status I64(int64_t* v) { return Raw(v, 8); }
  Status Bytes(uint8_t* out, size_t n) { return Raw(out, n); }
  Status Str(std::string* s) {
    uint32_t n = 0;
    Status st = U32(&n);
    if (!st.ok()) return st;
    if (pos_ + n > buf_.size()) return Overrun();
    s->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  Status Raw(void* out, size_t n) {
    if (n == 0) return Status::OK();  // `out` may be a null data() pointer
    if (pos_ + n > buf_.size()) return Overrun();
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status Overrun() const {
    return Status::Corruption("serialized image truncated at offset " +
                              std::to_string(pos_));
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_COMMON_SERDE_H_
