#ifndef TILESTORE_COMMON_RESULT_H_
#define TILESTORE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tilestore {

/// \brief A value-or-error holder, analogous to arrow::Result / absl::StatusOr.
///
/// A `Result<T>` holds either a valid `T` or a non-OK `Status`. Accessing the
/// value of an errored result is a programming error and asserts in debug
/// builds.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring arrow::Result,
  /// so `return value;` works in functions returning Result<T>).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the result.
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tilestore

#endif  // TILESTORE_COMMON_RESULT_H_
