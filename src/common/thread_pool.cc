#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tilestore {

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw, 1, 16);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Notify under the lock: Wait() (and hence the group's destruction)
    // cannot proceed until this worker has released the mutex, so the
    // condition variable is guaranteed to outlive the notification.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace tilestore
