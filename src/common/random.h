#ifndef TILESTORE_COMMON_RANDOM_H_
#define TILESTORE_COMMON_RANDOM_H_

#include <cstdint>

namespace tilestore {

/// \brief Deterministic 64-bit PRNG (xorshift*), used by tests and
/// benchmarks so runs are reproducible across machines.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform value in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t state_;
};

}  // namespace tilestore

#endif  // TILESTORE_COMMON_RANDOM_H_
