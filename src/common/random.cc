#include "common/random.h"

#include <cassert>

namespace tilestore {

Random::Random(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

uint64_t Random::Next() {
  // xorshift64* — fast, good-enough statistical quality for workload
  // generation; not for cryptographic use.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dull;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  return Next() % n;
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace tilestore
