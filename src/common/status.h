#ifndef TILESTORE_COMMON_STATUS_H_
#define TILESTORE_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tilestore {

/// \brief Outcome codes used across the library.
///
/// The set mirrors the codes used by mature storage engines: a small,
/// closed enumeration that callers can branch on, with a free-form message
/// for humans.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kResourceExhausted = 7,
  kUnimplemented = 8,
  kInternal = 9,
  /// The resource exists but cannot serve right now (another process holds
  /// the database lock, a server is overloaded or shutting down). Retrying
  /// later may succeed.
  kUnavailable = 10,
  /// An operation's deadline expired before it completed.
  kDeadlineExceeded = 11,
  /// A fan-out operation succeeded on some shards but failed on others;
  /// the message enumerates the per-shard failures. Whatever data was
  /// returned alongside this status is incomplete but well-formed.
  kPartialResult = 12,
};

/// \brief Returns the canonical name of a status code (e.g. "IOError").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Cheap, value-semantic operation outcome.
///
/// All fallible operations in tilestore return `Status` (or `Result<T>`,
/// which wraps one). Exceptions are not used for error signalling, per the
/// project style. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status PartialResult(std::string msg) {
    return Status(StatusCode::kPartialResult, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsPartialResult() const {
    return code_ == StatusCode::kPartialResult;
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tilestore

#endif  // TILESTORE_COMMON_STATUS_H_
