#include "common/status.h"

namespace tilestore {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kPartialResult:
      return "PartialResult";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace tilestore
