#ifndef TILESTORE_COMMON_MACROS_H_
#define TILESTORE_COMMON_MACROS_H_

#include <utility>

#include "common/result.h"
#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define TILESTORE_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::tilestore::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define TILESTORE_CONCAT_IMPL(a, b) a##b
#define TILESTORE_CONCAT(a, b) TILESTORE_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define TILESTORE_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  TILESTORE_ASSIGN_OR_RETURN_IMPL(                                          \
      TILESTORE_CONCAT(_result_, __LINE__), lhs, rexpr)

#define TILESTORE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).MoveValue()

#endif  // TILESTORE_COMMON_MACROS_H_
