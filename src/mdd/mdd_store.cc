#include "mdd/mdd_store.h"

#include "common/serde.h"
#include "index/packed_rtree.h"

namespace tilestore {

namespace {

constexpr uint32_t kCatalogMagic = 0x54534354;  // "TSCT"
constexpr uint32_t kCatalogVersion = 2;

// --------------------------------------------------------------------------
// Catalog (de)serialization. The catalog is a single BLOB whose id lives in
// the page file's user-root slot.

void WriteInterval(ByteWriter* w, const MInterval& iv) {
  w->U8(static_cast<uint8_t>(iv.dim()));
  for (size_t i = 0; i < iv.dim(); ++i) {
    w->I64(iv.lo(i));
    w->I64(iv.hi(i));
  }
}

Status ReadInterval(ByteReader* r, MInterval* out) {
  uint8_t dim = 0;
  Status st = r->U8(&dim);
  if (!st.ok()) return st;
  if (dim == 0) return Status::Corruption("zero-dimensional catalog interval");
  std::vector<Coord> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    st = r->I64(&lo[i]);
    if (!st.ok()) return st;
    st = r->I64(&hi[i]);
    if (!st.ok()) return st;
  }
  Result<MInterval> iv = MInterval::Create(std::move(lo), std::move(hi));
  if (!iv.ok()) {
    return Status::Corruption("invalid catalog interval: " +
                              iv.status().message());
  }
  *out = std::move(iv).MoveValue();
  return Status::OK();
}

}  // namespace

MDDStore::MDDStore(std::unique_ptr<PageFile> file, MDDStoreOptions options)
    : options_(options),
      disk_model_(options.disk_params, &metrics_),
      file_(std::move(file)) {
  file_->set_disk_model(&disk_model_);
  file_->set_metrics(&metrics_);
  if (options_.io_backend != nullptr) {
    file_->set_io_backend(options_.io_backend);
  }
  pool_ = std::make_unique<BufferPool>(file_.get(), options_.pool_pages,
                                       &metrics_);
  blobs_ = std::make_unique<BlobStore>(pool_.get());
  if (options_.sfc_placement) {
    blobs_->set_placement(layout::PlacementMode::kContiguous);
  }
  scheduler_ = std::make_unique<TileIOScheduler>(blobs_.get());
  scheduler_->set_metrics(&metrics_);
  tile_cache_ = std::make_unique<TileCache>(options_.tile_cache_bytes);
  // Register tilecache.* even at capacity 0 so every snapshot carries the
  // (zero) series and dashboards need no conditional.
  tile_cache_->set_metrics(&metrics_);
  tile_summaries_ = std::make_unique<TileSummaryIndex>(options_.tile_summaries);
}

MDDStore::~MDDStore() {
  if (txns_ != nullptr) {
    // Clean shutdown: discard any open transaction, then checkpoint so the
    // superblock catches up with the log and the next Open needs no replay.
    if (txns_->in_txn()) (void)txns_->Abort();
    if (!txns_->poisoned() && wal_ != nullptr && wal_->size_bytes() > 0) {
      (void)txns_->CheckpointNow();
    }
    file_->set_txn_manager(nullptr);
    pool_->set_txn_manager(nullptr);
  }
  // After the checkpoint, so the sidecar carries the final epoch.
  SaveSummarySidecar();
}

Status MDDStore::InitWal(bool recover) {
  if (!options_.wal_enabled) return Status::OK();
  Result<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(file_->path() + ".wal", &disk_model_);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).MoveValue();
  wal_->set_metrics(&metrics_);
  if (!recover) {
    // A fresh store: any log at this path belongs to a predecessor file.
    Status st = wal_->Reset();
    if (!st.ok()) return st;
  } else {
    uint64_t max_lsn = 0;
    Result<uint64_t> replayed =
        RecoverFromWal(file_.get(), wal_->path(), &max_lsn);
    if (!replayed.ok()) return replayed.status();
    // LSNs must stay monotonic across sessions, not just within one: an
    // empty log restarts numbering at 1, below the superblock's
    // checkpoint LSN from the previous session — and recovery treats any
    // record with lsn <= checkpoint_lsn as already checkpointed, so a
    // crash mid-apply would silently skip committed transactions. Floor
    // the next LSN at the checkpoint LSN so new records always sort
    // after it.
    if (file_->checkpoint_lsn() > max_lsn) max_lsn = file_->checkpoint_lsn();
    if (max_lsn >= wal_->next_lsn()) wal_->set_next_lsn(max_lsn + 1);
    if (wal_->size_bytes() > 0) {
      // This was a crash recovery: the summary sidecar (written only on
      // clean checkpoints) predates the replayed tail and must be ignored.
      // The Checkpoint below also bumps the file epoch, so the stale
      // sidecar would be rejected by its epoch stamp anyway — the flag is
      // belt and braces.
      wal_replayed_ = true;
      // Fold the replayed state into the superblock, then start an empty
      // log: recovery is not repeated on the next Open.
      Status st = file_->Checkpoint(max_lsn);
      if (!st.ok()) return st;
      st = wal_->Reset();
      if (!st.ok()) return st;
    }
  }
  txns_ = std::make_unique<TxnManager>(file_.get(), pool_.get(), wal_.get(),
                                       options_.wal_checkpoint_bytes,
                                       &metrics_);
  file_->set_txn_manager(txns_.get());
  pool_->set_txn_manager(txns_.get());
  return Status::OK();
}

ThreadPool* MDDStore::thread_pool() {
  std::call_once(workers_once_, [this] {
    const size_t n = options_.worker_threads != 0
                         ? options_.worker_threads
                         : ThreadPool::DefaultThreadCount();
    workers_ = std::make_unique<ThreadPool>(n);
  });
  return workers_.get();
}

Result<std::vector<Tile>> MDDStore::FetchTiles(
    const MDDObject& object, std::span<const TileEntry> entries,
    int parallelism, TileIOStats* stats, uint64_t trace_id, bool use_cache) {
  std::vector<Tile> tiles(entries.size());
  TileIOOptions io;
  io.parallelism = parallelism;
  io.pool = parallelism > 1 ? thread_pool() : nullptr;
  io.trace = trace_id != 0 ? &trace_ : nullptr;
  io.trace_id = trace_id;
  if (use_cache && tile_cache_->enabled()) {
    io.cache = tile_cache_.get();
    io.cache_object_id = object.cache_id();
    Status st = scheduler_->FetchBatchShared(
        entries, object.cell_type(), io,
        [&tiles](size_t i, const Tile& tile) {
          // The vector owns its tiles, so hits are copied out of the cache.
          Result<Tile> copy = Tile::FromBuffer(
              tile.domain(), tile.cell_type(),
              std::vector<uint8_t>(tile.data(),
                                   tile.data() + tile.size_bytes()));
          if (!copy.ok()) return copy.status();
          tiles[i] = std::move(copy).MoveValue();
          return Status::OK();
        },
        stats);
    if (!st.ok()) return st;
    return tiles;
  }
  Status st = scheduler_->FetchBatch(
      entries, object.cell_type(), io,
      [&tiles](size_t i, Tile&& tile) {
        tiles[i] = std::move(tile);
        return Status::OK();
      },
      stats);
  if (!st.ok()) return st;
  return tiles;
}

void MDDStore::InvalidateTileCache(uint64_t cache_id) {
  if (cache_id == 0) return;
  tile_cache_->InvalidateObject(cache_id);
  // Inside an explicit transaction, remember which epochs saw uncommitted
  // state: a reader racing the staged mutation may cache tiles the rollback
  // takes back, so RestoreSnapshot re-epochs exactly these objects.
  if (txns_ != nullptr && txns_->in_txn()) {
    txn_touched_cache_ids_.insert(cache_id);
  }
}

Result<std::unique_ptr<MDDStore>> MDDStore::Create(const std::string& path,
                                                   MDDStoreOptions options) {
  // Existence is checked before the advisory lock so creating over a live
  // (locked) store still reports AlreadyExists, not lock contention.
  if (FileExists(path)) {
    return Status::AlreadyExists("database already exists: " + path);
  }
  Result<std::unique_ptr<FileLock>> lock = FileLock::Acquire(path + ".lock");
  if (!lock.ok()) return lock.status();
  Result<std::unique_ptr<PageFile>> file =
      PageFile::Create(path, options.page_size);
  if (!file.ok()) return file.status();
  std::unique_ptr<MDDStore> store(
      new MDDStore(std::move(file).MoveValue(), options));
  store->lock_ = std::move(lock).MoveValue();
  Status st = store->InitWal(/*recover=*/false);
  if (!st.ok()) return st;
  return store;
}

Result<std::unique_ptr<MDDStore>> MDDStore::Open(const std::string& path,
                                                 MDDStoreOptions options) {
  Result<std::unique_ptr<FileLock>> lock = FileLock::Acquire(path + ".lock");
  if (!lock.ok()) return lock.status();
  Result<std::unique_ptr<PageFile>> file = PageFile::Open(path);
  if (!file.ok()) return file.status();
  std::unique_ptr<MDDStore> store(
      new MDDStore(std::move(file).MoveValue(), options));
  store->lock_ = std::move(lock).MoveValue();
  // Replay the WAL before touching the catalog: the committed tail may
  // contain the very pages the catalog lives in.
  Status st = store->InitWal(/*recover=*/true);
  if (!st.ok()) return st;
  st = store->LoadCatalog();
  if (!st.ok()) return st;
  store->LoadSummarySidecar();
  return store;
}

Result<MDDObject*> MDDStore::CreateMDD(const std::string& name,
                                       const MInterval& definition_domain,
                                       CellType cell_type) {
  if (name.empty()) {
    return Status::InvalidArgument("MDD object name must not be empty");
  }
  if (objects_.count(name) > 0) {
    return Status::AlreadyExists("MDD object '" + name + "' already exists");
  }
  if (definition_domain.dim() == 0) {
    return Status::InvalidArgument("definition domain must have dim >= 1");
  }
  auto object = std::make_unique<MDDObject>(name, definition_domain, cell_type,
                                            blobs_.get(), options_.index_kind,
                                            this);
  object->set_cache_id(next_cache_id_++);
  MDDObject* raw = object.get();
  objects_[name] = std::move(object);
  catalog_dirty_ = true;
  return raw;
}

Result<MDDObject*> MDDStore::GetMDD(const std::string& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status::NotFound("no MDD object named '" + name + "'");
  }
  return it->second.get();
}

Status MDDStore::DropMDD(const std::string& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status::NotFound("no MDD object named '" + name + "'");
  }
  // Defer every free to the next catalog write: until the catalog stops
  // referencing these BLOBs, freeing them would let a crash leave the
  // persisted tile table pointing into reused pages. The deferral also
  // closes the historical index-image leak window between DropMDD and Save.
  for (const TileEntry& entry : it->second->AllTiles()) {
    pending_free_blobs_.push_back(entry.blob);
  }
  auto blob_it = index_blobs_.find(name);
  if (blob_it != index_blobs_.end()) {
    if (blob_it->second != kInvalidBlobId) {
      pending_free_blobs_.push_back(blob_it->second);
    }
    index_blobs_.erase(blob_it);
  }
  InvalidateTileCache(it->second->cache_id());
  tile_summaries_->InvalidateObject(it->second->cache_id());
  // A later namesake must not inherit this object's workload evidence.
  workload_.Forget(name);
  objects_.erase(it);
  catalog_dirty_ = true;
  return Status::OK();
}

void MDDStore::UndeferBlobFree(BlobId blob) {
  for (auto it = pending_free_blobs_.rbegin(); it != pending_free_blobs_.rend();
       ++it) {
    if (*it == blob) {
      pending_free_blobs_.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<std::string> MDDStore::ListMDD() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, object] : objects_) names.push_back(name);
  return names;
}

const std::string& MDDStore::path() const { return file_->path(); }

Status MDDStore::StageCatalog() {
  // Phase 1: persist each object's packed index image.
  std::map<std::string, BlobId> new_index_blobs;
  for (const auto& [name, object] : objects_) {
    Result<std::vector<uint8_t>> image = PackedRTree::Serialize(
        object->AllTiles(), object->definition_domain().dim());
    if (!image.ok()) return image.status();
    Result<BlobId> blob = blobs_->Put(image.value());
    if (!blob.ok()) return blob.status();
    new_index_blobs[name] = blob.value();
  }

  // Phase 2: the catalog references the index images.
  ByteWriter w;
  w.U32(kCatalogMagic);
  w.U32(kCatalogVersion);
  w.U32(static_cast<uint32_t>(objects_.size()));
  for (const auto& [name, object] : objects_) {
    w.Str(name);
    w.U8(static_cast<uint8_t>(object->cell_type().id()));
    w.U32(static_cast<uint32_t>(object->cell_size()));
    w.U8(object->index_kind() == IndexKind::kRTree ? 0 : 1);
    WriteInterval(&w, object->definition_domain());
    w.Bytes(object->default_cell().data(), object->default_cell().size());
    w.U64(new_index_blobs[name]);
  }

  const BlobId old_root = file_->user_root();
  Result<BlobId> root = blobs_->Put(w.Take());
  if (!root.ok()) return root.status();
  file_->set_user_root(root.value());

  // Phase 3: free the previous catalog and index images.
  if (old_root != kInvalidBlobId) {
    Status st = blobs_->Delete(old_root);
    if (!st.ok()) return st;
  }
  for (const auto& [name, blob] : index_blobs_) {
    if (blob == kInvalidBlobId) continue;
    Status st = blobs_->Delete(blob);
    if (!st.ok()) return st;
  }
  index_blobs_ = std::move(new_index_blobs);

  // Deferred frees from DropMDD: safe now, the new catalog no longer
  // references these BLOBs.
  for (BlobId blob : pending_free_blobs_) {
    Status st = blobs_->Delete(blob);
    if (!st.ok()) return st;
  }
  pending_free_blobs_.clear();
  catalog_dirty_ = false;
  return Status::OK();
}

Status MDDStore::Save() {
  if (txns_ != nullptr) {
    // Transactional: the catalog write and its deferred frees commit as one
    // WAL-logged unit (joining an explicit transaction when one is open).
    ScopedTxn txn(txns_.get());
    if (!txn.begin_status().ok()) return txn.begin_status();
    Status st = StageCatalog();
    if (!st.ok()) return st;
    st = txn.Commit();
    // Written after StageCatalog's deferred frees, so the sidecar is always
    // at least as fresh as the persisted catalog it will be checked against.
    if (st.ok()) SaveSummarySidecar();
    return st;
  }
  Status st = StageCatalog();
  if (!st.ok()) return st;
  st = file_->Flush();
  if (st.ok()) SaveSummarySidecar();
  return st;
}

Status MDDStore::Begin() {
  if (txns_ == nullptr) {
    return Status::InvalidArgument(
        "explicit transactions need wal_enabled = true");
  }
  Status st = txns_->Begin();
  if (!st.ok()) return st;
  // Capture the logical catalog so Abort can restore the in-memory side to
  // match the disk rollback.
  txn_snapshot_.clear();
  txn_snapshot_.reserve(objects_.size());
  for (const auto& [name, object] : objects_) {
    txn_snapshot_.push_back(ObjectSnapshot{
        name, object->definition_domain(), object->cell_type(),
        object->index_kind(), object->default_cell(), object->compression(),
        object->AllTiles(), object->cache_id()});
  }
  txn_index_blobs_snapshot_ = index_blobs_;
  txn_pending_frees_snapshot_ = pending_free_blobs_;
  txn_catalog_dirty_snapshot_ = catalog_dirty_;
  txn_touched_cache_ids_.clear();
  return Status::OK();
}

Status MDDStore::Commit() {
  if (txns_ == nullptr) {
    return Status::InvalidArgument(
        "explicit transactions need wal_enabled = true");
  }
  if (!txns_->in_txn()) {
    return Status::InvalidArgument("no active transaction to commit");
  }
  if (catalog_dirty_ || !pending_free_blobs_.empty()) {
    Status st = StageCatalog();
    if (!st.ok()) {
      // Leave the transaction open; the caller decides (typically Abort).
      return st;
    }
  }
  Status st = txns_->Commit();
  if (!st.ok()) {
    // The disk side rolled back (or poisoned); realign the memory side.
    Status restore = RestoreSnapshot();
    if (!restore.ok()) return restore;
    return st;
  }
  txn_snapshot_.clear();
  txn_index_blobs_snapshot_.clear();
  txn_pending_frees_snapshot_.clear();
  txn_touched_cache_ids_.clear();
  return Status::OK();
}

Status MDDStore::Abort() {
  if (txns_ == nullptr) {
    return Status::InvalidArgument(
        "explicit transactions need wal_enabled = true");
  }
  Status st = txns_->Abort();
  if (!st.ok()) return st;
  return RestoreSnapshot();
}

Status MDDStore::RestoreSnapshot() {
  // Rollback invalidation is per-object (DESIGN.md §12): only epochs the
  // transaction touched may hold cached tile states that never committed,
  // and those objects are re-epoched below so stale entries can never
  // match. Untouched objects are restored under their Begin-time epoch and
  // keep their warm decoded tiles. Objects created inside the transaction
  // vanish with the rollback; their epochs were invalidated at mutation
  // time (every mutation path ends in InvalidateTileCache) and are never
  // reissued.
  for (uint64_t cache_id : txn_touched_cache_ids_) {
    tile_cache_->InvalidateObject(cache_id);
    // Summaries recorded by mutations inside the rolled-back transaction
    // describe tile states that never committed; drop them with the epoch.
    tile_summaries_->InvalidateObject(cache_id);
  }
  objects_.clear();
  index_blobs_ = std::move(txn_index_blobs_snapshot_);
  pending_free_blobs_ = std::move(txn_pending_frees_snapshot_);
  catalog_dirty_ = txn_catalog_dirty_snapshot_;
  for (ObjectSnapshot& snap : txn_snapshot_) {
    auto object = std::make_unique<MDDObject>(
        snap.name, snap.definition_domain, snap.cell_type, blobs_.get(),
        snap.index_kind, this);
    const bool touched = snap.cache_id == 0 ||
                         txn_touched_cache_ids_.count(snap.cache_id) > 0;
    object->set_cache_id(touched ? next_cache_id_++ : snap.cache_id);
    Status st = object->SetDefaultCell(std::move(snap.default_cell));
    if (!st.ok()) return st;
    object->SetCompression(snap.compression);
    st = object->RestoreTiles(std::move(snap.entries));
    if (!st.ok()) return st;
    objects_[snap.name] = std::move(object);
  }
  txn_snapshot_.clear();
  txn_index_blobs_snapshot_.clear();
  txn_pending_frees_snapshot_.clear();
  txn_touched_cache_ids_.clear();
  // Restoring marked the catalog dirty through SetDefaultCell; the
  // snapshot value is authoritative.
  catalog_dirty_ = txn_catalog_dirty_snapshot_;
  return Status::OK();
}

Status MDDStore::Checkpoint() {
  Status st = txns_ != nullptr ? txns_->CheckpointNow() : file_->Flush();
  // The checkpoint bumped the file epoch; re-stamp the sidecar so it
  // survives the next Open's staleness check.
  if (st.ok()) SaveSummarySidecar();
  return st;
}

void MDDStore::SaveSummarySidecar() {
  if (tile_summaries_ == nullptr || !tile_summaries_->enabled()) return;
  std::vector<ObjectSummaries> out;
  out.reserve(objects_.size());
  for (const auto& [name, object] : objects_) {
    ObjectSummaries entry;
    entry.name = name;
    entry.entries = tile_summaries_->ObjectEntries(object->cache_id());
    if (!entry.entries.empty()) out.push_back(std::move(entry));
  }
  // Best-effort: the sidecar is a warm-start cache of rebuildable state; a
  // failed write only costs the next open some inspects.
  (void)SaveTileSummarySidecar(path() + ".summ", file_->epoch(), out);
}

void MDDStore::LoadSummarySidecar() {
  if (tile_summaries_ == nullptr || !tile_summaries_->enabled()) return;
  Result<LoadedSummarySidecar> side = LoadTileSummarySidecar(path() + ".summ");
  if (!side.ok()) return;  // absent or corrupt: rebuild lazily
  // A sidecar from before a crash describes tile states the WAL replay may
  // have superseded; the epoch stamp catches every flush/checkpoint since
  // it was written, and wal_replayed_ covers the replay itself.
  if (wal_replayed_ || side->epoch != file_->epoch()) return;
  for (ObjectSummaries& object_summaries : side->objects) {
    auto it = objects_.find(object_summaries.name);
    if (it == objects_.end()) continue;  // dropped since the sidecar
    const MDDObject& object = *it->second;
    // Only blobs the loaded catalog still references: an entry for a
    // freed/reused blob id must never classify the new occupant's tile.
    std::unordered_set<BlobId> live;
    for (const TileEntry& tile : object.AllTiles()) live.insert(tile.blob);
    for (const auto& [blob, summary] : object_summaries.entries) {
      if (live.count(blob) == 0) continue;
      tile_summaries_->Put(object.cache_id(), blob, summary);
    }
  }
}

Status MDDStore::LoadCatalog() {
  const BlobId root = file_->user_root();
  if (root == kInvalidBlobId) return Status::OK();  // empty store

  Result<std::vector<uint8_t>> raw = blobs_->Get(root);
  if (!raw.ok()) return raw.status();
  ByteReader r(raw.value());

  uint32_t magic = 0, version = 0, count = 0;
  Status st = r.U32(&magic);
  if (!st.ok()) return st;
  if (magic != kCatalogMagic) return Status::Corruption("bad catalog magic");
  st = r.U32(&version);
  if (!st.ok()) return st;
  if (version != kCatalogVersion) {
    return Status::Corruption("unsupported catalog version " +
                              std::to_string(version));
  }
  st = r.U32(&count);
  if (!st.ok()) return st;

  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    st = r.Str(&name);
    if (!st.ok()) return st;
    uint8_t type_id = 0;
    uint32_t cell_size = 0;
    uint8_t index_kind_raw = 0;
    st = r.U8(&type_id);
    if (!st.ok()) return st;
    st = r.U32(&cell_size);
    if (!st.ok()) return st;
    st = r.U8(&index_kind_raw);
    if (!st.ok()) return st;

    CellType cell_type;
    if (static_cast<CellTypeId>(type_id) == CellTypeId::kOpaque) {
      cell_type = CellType::Opaque(cell_size);
    } else {
      cell_type = CellType::Of(static_cast<CellTypeId>(type_id));
      if (cell_type.size() != cell_size) {
        return Status::Corruption("cell size mismatch for object '" + name +
                                  "'");
      }
    }

    MInterval definition_domain;
    st = ReadInterval(&r, &definition_domain);
    if (!st.ok()) return st;

    std::vector<uint8_t> default_cell(cell_size);
    st = r.Bytes(default_cell.data(), cell_size);
    if (!st.ok()) return st;

    const IndexKind kind =
        index_kind_raw == 0 ? IndexKind::kRTree : IndexKind::kDirectory;
    auto object = std::make_unique<MDDObject>(name, definition_domain,
                                              cell_type, blobs_.get(), kind,
                                              this);
    object->set_cache_id(next_cache_id_++);
    st = object->SetDefaultCell(std::move(default_cell));
    if (!st.ok()) return st;

    uint64_t index_blob = 0;
    st = r.U64(&index_blob);
    if (!st.ok()) return st;
    Result<std::vector<uint8_t>> image = blobs_->Get(index_blob);
    if (!image.ok()) return image.status();
    Result<std::unique_ptr<PackedRTree>> packed =
        PackedRTree::Parse(std::move(image).MoveValue());
    if (!packed.ok()) return packed.status();
    st = object->RestorePackedIndex(std::move(packed).MoveValue());
    if (!st.ok()) return st;
    index_blobs_[name] = index_blob;

    if (objects_.count(name) > 0) {
      return Status::Corruption("duplicate object '" + name +
                                "' in catalog");
    }
    objects_[name] = std::move(object);
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after catalog");
  }
  // The loaded catalog is the persisted one by definition.
  catalog_dirty_ = false;
  return Status::OK();
}

}  // namespace tilestore
