#ifndef TILESTORE_MDD_MDD_STORE_H_
#define TILESTORE_MDD_MDD_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "mdd/mdd_object.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/io_scheduler.h"
#include "storage/page_file.h"

namespace tilestore {

/// Store creation/open parameters.
struct MDDStoreOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Buffer pool capacity in pages (0 disables caching).
  size_t pool_pages = 4096;
  /// Index used by newly created objects.
  IndexKind index_kind = IndexKind::kRTree;
  /// Disk cost model parameters (attached to the page file).
  DiskParams disk_params;
  /// Fixed worker-pool size for the concurrent read path; 0 picks a
  /// machine default (hardware concurrency, clamped to 16). The pool is
  /// created lazily on first parallel fetch.
  size_t worker_threads = 0;
};

/// \brief The database of MDD objects: one page file holding tile BLOBs
/// and a persisted catalog (object metadata + tile tables).
///
/// This is the top of the storage manager: create a store, create MDD
/// objects in it, load arrays through tiling strategies, and run range
/// queries via `RangeQueryExecutor`. `Save()` persists the catalog; `Open`
/// restores all objects and rebuilds their tile indexes by bulk load.
class MDDStore {
 public:
  static Result<std::unique_ptr<MDDStore>> Create(
      const std::string& path, MDDStoreOptions options = MDDStoreOptions());

  static Result<std::unique_ptr<MDDStore>> Open(
      const std::string& path, MDDStoreOptions options = MDDStoreOptions());

  ~MDDStore();
  MDDStore(const MDDStore&) = delete;
  MDDStore& operator=(const MDDStore&) = delete;

  /// Creates an empty MDD object. `definition_domain` may have unbounded
  /// axes. Fails with AlreadyExists on a duplicate name.
  Result<MDDObject*> CreateMDD(const std::string& name,
                               const MInterval& definition_domain,
                               CellType cell_type);

  /// Looks an object up by name.
  Result<MDDObject*> GetMDD(const std::string& name);

  /// Drops an object, freeing all of its tile BLOBs.
  Status DropMDD(const std::string& name);

  std::vector<std::string> ListMDD() const;

  /// Persists the catalog and flushes the page file.
  Status Save();

  /// Batched tile retrieval through the `TileIOScheduler`: fetches every
  /// entry (typically an index probe's hits) and returns the decoded tiles
  /// in the same order as `entries`. `parallelism = 1` runs the exact
  /// serial tile-at-a-time path; higher values coalesce page runs and
  /// spread decode over the worker pool. The read path is thread-safe, so
  /// concurrent callers may overlap.
  Result<std::vector<Tile>> FetchTiles(const MDDObject& object,
                                       std::span<const TileEntry> entries,
                                       int parallelism = 1,
                                       TileIOStats* stats = nullptr);

  /// The worker pool behind parallel fetches (created on first use).
  ThreadPool* thread_pool();

  TileIOScheduler* io_scheduler() { return scheduler_.get(); }
  BlobStore* blob_store() { return blobs_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  PageFile* page_file() { return file_.get(); }
  DiskModel* disk_model() { return &disk_model_; }

 private:
  MDDStore(std::unique_ptr<PageFile> file, MDDStoreOptions options);

  Status LoadCatalog();

  MDDStoreOptions options_;
  DiskModel disk_model_;
  // BLOB holding each object's packed index image (kInvalidBlobId until
  // first Save).
  std::map<std::string, BlobId> index_blobs_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> blobs_;
  std::unique_ptr<TileIOScheduler> scheduler_;
  std::once_flag workers_once_;
  std::unique_ptr<ThreadPool> workers_;
  std::map<std::string, std::unique_ptr<MDDObject>> objects_;
};

}  // namespace tilestore

#endif  // TILESTORE_MDD_MDD_STORE_H_
