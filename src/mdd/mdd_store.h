#ifndef TILESTORE_MDD_MDD_STORE_H_
#define TILESTORE_MDD_MDD_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "layout/sfc.h"
#include "mdd/mdd_object.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/env.h"
#include "storage/io_scheduler.h"
#include "storage/page_file.h"
#include "storage/tile_cache.h"
#include "storage/tile_summary.h"
#include "storage/txn.h"
#include "storage/wal.h"
#include "tiling/workload_recorder.h"

namespace tilestore {

/// Store creation/open parameters.
struct MDDStoreOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Buffer pool capacity in pages (0 disables caching).
  size_t pool_pages = 4096;
  /// Index used by newly created objects.
  IndexKind index_kind = IndexKind::kRTree;
  /// Disk cost model parameters (attached to the page file).
  DiskParams disk_params;
  /// Fixed worker-pool size for the concurrent read path; 0 picks a
  /// machine default (hardware concurrency, clamped to 16). The pool is
  /// created lazily on first parallel fetch.
  size_t worker_threads = 0;
  /// Durable write path: every mutation runs inside a transaction whose
  /// effects are WAL-logged (to `<path>.wal`) and fsynced before they
  /// reach the page file, and `Open` replays the log after a crash. When
  /// false the store behaves like the historical write-through
  /// implementation — faster bulk loads, no crash safety.
  bool wal_enabled = true;
  /// WAL size after which a commit triggers an automatic checkpoint
  /// (superblock flip + log truncation). 0 disables automatic
  /// checkpoints; `Checkpoint()` can always be called manually.
  uint64_t wal_checkpoint_bytes = 4ull << 20;
  /// Byte budget of the decoded-tile cache above the buffer pool
  /// (DESIGN.md §10). 0 — the default — disables it entirely, keeping the
  /// cold read path and its cost-model numbers bit-identical to the
  /// uncached implementation.
  size_t tile_cache_bytes = 0;
  /// Batched-read engine for the parallel fetch path (DESIGN.md §11).
  /// Null uses `DefaultIoBackend()` (io_uring where available, otherwise
  /// threaded pread; override with `TILESTORE_IO_BACKEND`). The caller
  /// keeps ownership and must outlive the store.
  IoBackend* io_backend = nullptr;
  /// Space-filling-curve placement (DESIGN.md §14): new tile blob chains
  /// are allocated as contiguous page runs and batched tile writes (Load
  /// specs, WriteRegion growth tiles, RetileRegion targets) are ordered
  /// by `sfc_curve` keys over tile centers, so curve-adjacent tiles land
  /// in adjacent runs. Off by default: first-fit placement keeps the
  /// historical allocation order (and its cost accounting) bit-identical.
  bool sfc_placement = false;
  layout::SfcCurve sfc_curve = layout::SfcCurve::kHilbert;
  /// Per-tile summary statistics for predicate pushdown (DESIGN.md §15):
  /// every tile write also records min/max/count/null-count (+ a small
  /// histogram) in an in-memory index that filtered queries consult to
  /// skip whole tiles, persisted best-effort in a `<path>.summ` sidecar.
  /// Purely an optimization: results are byte-identical with summaries
  /// on, off, or the sidecar deleted/corrupt (it is then rebuilt lazily).
  bool tile_summaries = true;
};

/// \brief The database of MDD objects: one page file holding tile BLOBs
/// and a persisted catalog (object metadata + tile tables).
///
/// This is the top of the storage manager: create a store, create MDD
/// objects in it, load arrays through tiling strategies, and run range
/// queries via `RangeQueryExecutor`. `Save()` persists the catalog; `Open`
/// restores all objects and rebuilds their tile indexes by bulk load.
///
/// Transactions (WAL mode): every mutating call autocommits — it stages
/// its page writes in a transaction, logs them, fsyncs, and applies them,
/// so a crash never tears a tile. `Begin()`/`Commit()`/`Abort()` batch
/// many mutations into one atomic, fsynced unit; `Commit` also persists
/// the catalog, so committed changes are visible after reopen. Autocommit
/// protects physical integrity only — visibility across reopen still
/// requires `Save()` or an explicit `Commit()`, exactly like the
/// historical contract. `Abort` restores both disk and in-memory state to
/// the `Begin` snapshot (invalidating `MDDObject*` pointers).
class MDDStore {
 public:
  static Result<std::unique_ptr<MDDStore>> Create(
      const std::string& path, MDDStoreOptions options = MDDStoreOptions());

  static Result<std::unique_ptr<MDDStore>> Open(
      const std::string& path, MDDStoreOptions options = MDDStoreOptions());

  ~MDDStore();
  MDDStore(const MDDStore&) = delete;
  MDDStore& operator=(const MDDStore&) = delete;

  /// Creates an empty MDD object. `definition_domain` may have unbounded
  /// axes. Fails with AlreadyExists on a duplicate name.
  Result<MDDObject*> CreateMDD(const std::string& name,
                               const MInterval& definition_domain,
                               CellType cell_type);

  /// Looks an object up by name.
  Result<MDDObject*> GetMDD(const std::string& name);

  /// Drops an object. Its tile BLOBs and persisted index image are freed
  /// atomically with the next catalog write (`Save`/`Commit`), so a crash
  /// in between cannot leave the persisted catalog pointing at freed
  /// pages — the drop simply has not happened yet after recovery.
  Status DropMDD(const std::string& name);

  std::vector<std::string> ListMDD() const;

  /// Filesystem path of the backing page file; sidecars (`.wal`, `.lock`,
  /// the re-tiler's `.retile` plan file) derive their names from it.
  const std::string& path() const;

  /// Persists the catalog. In WAL mode this is a transactional, fsynced
  /// commit (joining the active transaction if one is open — durability
  /// then arrives at that transaction's commit); in unlogged mode it
  /// writes through and flushes the page file.
  Status Save();

  /// Opens an explicit transaction: subsequent mutations stage into it
  /// and nothing reaches the data file until `Commit`. Fails if the store
  /// is unlogged or a transaction is already active.
  Status Begin();

  /// Persists the catalog and atomically commits everything staged since
  /// `Begin` with one group-commit fsync.
  Status Commit();

  /// Discards everything staged since `Begin` and restores the in-memory
  /// catalog to the `Begin` snapshot. `MDDObject*` pointers obtained
  /// before the abort are invalidated.
  Status Abort();

  /// Forces a checkpoint: data fsynced, superblock flipped, WAL truncated.
  /// In unlogged mode this is a plain `PageFile::Flush`.
  Status Checkpoint();

  /// Batched tile retrieval through the `TileIOScheduler`: fetches every
  /// entry (typically an index probe's hits) and returns the decoded tiles
  /// in the same order as `entries`. `parallelism = 1` runs the exact
  /// serial tile-at-a-time path; higher values coalesce page runs and
  /// spread decode over the worker pool. The read path is thread-safe, so
  /// concurrent callers may overlap.
  /// `trace_id`, when nonzero, groups the batch's per-tile spans into the
  /// store's trace ring under that query id.
  /// With `use_cache` set (and a nonzero `tile_cache_bytes` budget),
  /// entries already in the decoded-tile cache skip the BLOB read and
  /// decode, and misses populate the cache; the returned tiles are always
  /// private copies. Off by default so existing callers keep the exact
  /// uncached path.
  Result<std::vector<Tile>> FetchTiles(const MDDObject& object,
                                       std::span<const TileEntry> entries,
                                       int parallelism = 1,
                                       TileIOStats* stats = nullptr,
                                       uint64_t trace_id = 0,
                                       bool use_cache = false);

  /// The worker pool behind parallel fetches (created on first use).
  ThreadPool* thread_pool();

  /// Marks the in-memory catalog as diverged from the persisted one
  /// (called by MDDObject mutations; `Commit` uses it to decide whether
  /// the catalog must be re-staged).
  void MarkCatalogDirty() { catalog_dirty_ = true; }

  /// Defers freeing a BLOB the *persisted* catalog may still reference
  /// (tile updates and drops): the pages are released inside the next
  /// catalog-writing transaction, atomically with the catalog that stops
  /// referencing them, so a crash in between leaves the old catalog
  /// readable.
  void DeferBlobFree(BlobId blob) { pending_free_blobs_.push_back(blob); }

  /// Removes the most recent deferred free of `blob` (mutation unwind
  /// after a failed commit).
  void UndeferBlobFree(BlobId blob);

  /// Drops the decoded-tile cache entries of one cache epoch (no-op for
  /// id 0 or with the cache disabled). Called by MDDObject mutations and
  /// DropMDD. Inside an explicit transaction the epoch is also remembered
  /// as *touched*, so a rollback re-epochs only the objects the
  /// transaction actually mutated — unrelated objects keep their warm
  /// entries (DESIGN.md §12 cache-epoch protocol).
  void InvalidateTileCache(uint64_t cache_id);

  /// The store-level ring of recent query regions per object (always on;
  /// `RangeQueryExecutor` records every resolved region). The background
  /// re-tiler mines it for migration decisions.
  WorkloadRecorder* workload() { return &workload_; }

  TileIOScheduler* io_scheduler() { return scheduler_.get(); }
  /// The decoded-tile cache (never null; disabled at capacity 0).
  TileCache* tile_cache() { return tile_cache_.get(); }
  /// Per-tile summary index (never null; disabled unless
  /// `options.tile_summaries`). Keyed by (cache epoch, blob id), exactly
  /// like the tile cache, so the same invalidation protocol covers both.
  TileSummaryIndex* tile_summaries() { return tile_summaries_.get(); }
  BlobStore* blob_store() { return blobs_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  PageFile* page_file() { return file_.get(); }
  DiskModel* disk_model() { return &disk_model_; }

  /// The store-wide metrics registry every layer reports into (`disk.*`,
  /// `pagefile.*`, `bufferpool.*`, `scheduler.*`, `wal.*`, `txn.*`,
  /// `index.*`, `query.*`). Snapshot it with
  /// `metrics()->Snapshot()`; see `MetricsSnapshot::ToJson()` and
  /// `ToPrometheusText()` for export.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// The store-wide trace ring query spans are emitted into; drain with
  /// `trace()->DrainJson()`.
  obs::TraceRing* trace() { return &trace_; }
  /// Null when the store is unlogged.
  TxnManager* txn_manager() { return txns_.get(); }
  /// Null when the store is unlogged.
  WriteAheadLog* wal() { return wal_.get(); }
  /// The options this store was created/opened with.
  const MDDStoreOptions& options() const { return options_; }

 private:
  /// Logical state of one object, captured at `Begin` for `Abort`.
  struct ObjectSnapshot {
    std::string name;
    MInterval definition_domain;
    CellType cell_type;
    IndexKind index_kind;
    std::vector<uint8_t> default_cell;
    Compression compression;
    std::vector<TileEntry> entries;
    // Cache epoch at Begin: untouched objects are restored under the same
    // epoch so their warm decoded tiles survive the rollback.
    uint64_t cache_id = 0;
  };

  MDDStore(std::unique_ptr<PageFile> file, MDDStoreOptions options);

  Status LoadCatalog();
  /// Opens the sidecar WAL, replays it when `recover` is set, and
  /// installs the transaction manager.
  Status InitWal(bool recover);
  /// Writes the catalog + index images (phases 1-3 of the historical
  /// Save) and releases deferred frees; does not flush or commit.
  Status StageCatalog();
  /// Rebuilds the in-memory catalog from the `Begin` snapshot (Abort and
  /// failed-Commit path).
  Status RestoreSnapshot();
  /// Best-effort persistence of the summary index to `<path>.summ`,
  /// stamped with the current page-file epoch. Called after successful
  /// Save/Checkpoint and at destruction; failures are swallowed — the
  /// sidecar is purely an optimization.
  void SaveSummarySidecar();
  /// Loads `<path>.summ` at open. The sidecar is discarded wholesale when
  /// its epoch does not match the page file's (it predates a crash,
  /// checkpoint, or WAL replay) and entry-by-entry when it references
  /// blobs the catalog no longer lists.
  void LoadSummarySidecar();

  MDDStoreOptions options_;
  // Advisory exclusive lock on `<path>.lock`, held for the store's
  // lifetime so a second opener fails with Unavailable instead of
  // corrupting the file. Declared before the page file so it is released
  // only after the file is closed.
  std::unique_ptr<FileLock> lock_;
  // The registry and trace ring outlive (and are resolved by) every other
  // member, so they must be declared first.
  obs::MetricsRegistry metrics_;
  obs::TraceRing trace_;
  DiskModel disk_model_;
  // BLOB holding each object's packed index image (kInvalidBlobId until
  // first Save).
  std::map<std::string, BlobId> index_blobs_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> blobs_;
  std::unique_ptr<TileIOScheduler> scheduler_;
  std::unique_ptr<TileCache> tile_cache_;
  std::unique_ptr<TileSummaryIndex> tile_summaries_;
  // Next decoded-tile-cache epoch; ids start at 1 (0 = uncacheable).
  uint64_t next_cache_id_ = 1;
  // Set when Open replayed a non-empty WAL: the summary sidecar predates
  // the crash and is ignored even if its epoch happens to match.
  bool wal_replayed_ = false;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<TxnManager> txns_;
  // BLOBs whose pages are still referenced by the persisted catalog;
  // freed inside the next catalog-writing transaction.
  std::vector<BlobId> pending_free_blobs_;
  bool catalog_dirty_ = false;
  // Captured at Begin; used by Abort to restore the in-memory catalog.
  std::vector<ObjectSnapshot> txn_snapshot_;
  // Cache epochs invalidated since Begin (i.e. objects the transaction
  // mutated or dropped): only these are re-epoched on rollback.
  std::unordered_set<uint64_t> txn_touched_cache_ids_;
  std::map<std::string, BlobId> txn_index_blobs_snapshot_;
  std::vector<BlobId> txn_pending_frees_snapshot_;
  bool txn_catalog_dirty_snapshot_ = false;
  std::once_flag workers_once_;
  std::unique_ptr<ThreadPool> workers_;
  WorkloadRecorder workload_;
  std::map<std::string, std::unique_ptr<MDDObject>> objects_;
};

}  // namespace tilestore

#endif  // TILESTORE_MDD_MDD_STORE_H_
