#include "mdd/mdd_object.h"

#include "core/region.h"
#include "index/directory_index.h"
#include "index/rtree_index.h"
#include "layout/sfc.h"
#include "mdd/mdd_store.h"
#include "storage/io_scheduler.h"
#include "storage/txn.h"
#include "tiling/aligned.h"
#include "tiling/validator.h"

namespace tilestore {

namespace {

std::unique_ptr<TileIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kRTree:
      return std::make_unique<RTreeIndex>();
    case IndexKind::kDirectory:
      return std::make_unique<DirectoryIndex>();
  }
  return std::make_unique<RTreeIndex>();
}

}  // namespace

MDDObject::MDDObject(std::string name, MInterval definition_domain,
                     CellType cell_type, BlobStore* blobs,
                     IndexKind index_kind, MDDStore* store)
    : store_(store),
      name_(std::move(name)),
      definition_domain_(std::move(definition_domain)),
      cell_type_(cell_type),
      default_cell_(cell_type.size(), 0),
      blobs_(blobs),
      index_kind_(index_kind),
      index_(MakeIndex(index_kind)) {}

TxnManager* MDDObject::txn_manager() const {
  return store_ != nullptr ? store_->txn_manager() : nullptr;
}

void MDDObject::MarkStoreDirty() const {
  if (store_ != nullptr) store_->MarkCatalogDirty();
}

void MDDObject::InvalidateCachedTiles() const {
  if (store_ != nullptr) store_->InvalidateTileCache(cache_id_);
}

TileSummaryIndex* MDDObject::summary_index() const {
  if (store_ == nullptr || cache_id_ == 0) return nullptr;
  TileSummaryIndex* summaries = store_->tile_summaries();
  return summaries != nullptr && summaries->enabled() ? summaries : nullptr;
}

void MDDObject::InvalidateTileSummaries() const {
  if (TileSummaryIndex* summaries = summary_index()) {
    summaries->InvalidateObject(cache_id_);
  }
}

TilingSpec MDDObject::PlacementOrdered(const TilingSpec& spec) const {
  TilingSpec ordered = spec;
  if (store_ != nullptr && store_->options().sfc_placement) {
    layout::SortBySfc(&ordered, store_->options().sfc_curve);
  }
  return ordered;
}

Status MDDObject::SetDefaultCell(std::vector<uint8_t> value) {
  if (value.size() != cell_size()) {
    return Status::InvalidArgument(
        "default cell must be exactly " + std::to_string(cell_size()) +
        " bytes, got " + std::to_string(value.size()));
  }
  default_cell_ = std::move(value);
  MarkStoreDirty();
  return Status::OK();
}

Status MDDObject::CheckInsertable(const MInterval& domain,
                                  size_t cell_size) const {
  if (cell_size != this->cell_size()) {
    return Status::InvalidArgument(
        "tile cell size " + std::to_string(cell_size) +
        " does not match object cell size " +
        std::to_string(this->cell_size()));
  }
  if (domain.dim() != definition_domain_.dim() || !domain.IsFixed()) {
    return Status::InvalidArgument("bad tile domain " + domain.ToString() +
                                   " for object with definition domain " +
                                   definition_domain_.ToString());
  }
  if (!definition_domain_.Contains(domain)) {
    return Status::OutOfRange("tile domain " + domain.ToString() +
                              " outside definition domain " +
                              definition_domain_.ToString());
  }
  if (!index_->Search(domain).empty()) {
    return Status::AlreadyExists("tile domain " + domain.ToString() +
                                 " overlaps an existing tile of '" + name_ +
                                 "'");
  }
  return Status::OK();
}

Status MDDObject::EnsureMutableIndex() {
  if (!index_packed_) return Status::OK();
  std::vector<TileEntry> entries;
  index_->GetAll(&entries);
  auto dynamic = MakeIndex(index_kind_);
  if (index_kind_ == IndexKind::kRTree) {
    Status st =
        static_cast<RTreeIndex*>(dynamic.get())->BulkLoad(std::move(entries));
    if (!st.ok()) return st;
  } else {
    for (const TileEntry& entry : entries) {
      Status st = dynamic->Insert(entry);
      if (!st.ok()) return st;
    }
  }
  index_ = std::move(dynamic);
  index_packed_ = false;
  return Status::OK();
}

Status MDDObject::InsertTile(const Tile& tile) {
  // Autocommit: the BLOB write stages into a transaction (or joins an
  // explicit one); on any failure the guard's abort discards the staged
  // pages and we unwind the in-memory index below.
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  Status st = EnsureMutableIndex();
  if (!st.ok()) return st;
  st = CheckInsertable(tile.domain(), tile.cell_size());
  if (!st.ok()) return st;
  // Selective compression: the configured codec is used only when it
  // actually shrinks this tile's cells.
  std::vector<uint8_t> stored;
  const std::vector<uint8_t> raw(tile.data(), tile.data() + tile.size_bytes());
  const Compression used = CompressIfSmaller(compression_, raw, &stored);
  Result<BlobId> blob = blobs_->Put(stored);
  if (!blob.ok()) return blob.status();
  st = index_->Insert(TileEntry{tile.domain(), blob.value(), used});
  if (!st.ok()) return st;
  const std::optional<MInterval> saved_domain = current_domain_;
  current_domain_ = current_domain_.has_value()
                        ? current_domain_->Hull(tile.domain())
                        : tile.domain();
  MarkStoreDirty();
  Status commit = txn.Commit();
  if (!commit.ok()) {
    (void)index_->Remove(tile.domain());
    current_domain_ = saved_domain;
  }
  // Invalidate on both outcomes: a reader racing the staged mutation may
  // have cached a tile state the unwind just took back.
  InvalidateCachedTiles();
  if (TileSummaryIndex* summaries = summary_index()) {
    if (commit.ok()) {
      // The decoded cells are at hand; summarize them now so a filtered
      // query can classify this tile without ever fetching it.
      std::optional<TileSummary> summary =
          BuildTileSummary(cell_type_, raw.data(),
                           tile.domain().CellCountOrDie(),
                           default_cell_.data());
      if (summary.has_value()) {
        summaries->Put(cache_id_, blob.value(), *summary);
      }
    } else {
      summaries->InvalidateObject(cache_id_);
    }
  }
  return commit;
}

Status MDDObject::Load(const Array& data, const TilingStrategy& strategy) {
  Result<TilingSpec> spec =
      strategy.ComputeTiling(data.domain(), data.cell_size());
  if (!spec.ok()) return spec.status();
  return Load(data, spec.value());
}

Status MDDObject::Load(const Array& data, const TilingSpec& spec) {
  // One transaction for the whole load: either every tile of the array is
  // durably inserted or none is.
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  const std::optional<MInterval> saved_domain = current_domain_;
  // Under SFC placement the batch is inserted in curve order, so blob
  // allocation order follows the curve.
  const TilingSpec ordered = PlacementOrdered(spec);
  std::vector<MInterval> inserted;
  inserted.reserve(ordered.size());
  auto unwind = [&] {
    for (const MInterval& domain : inserted) (void)index_->Remove(domain);
    current_domain_ = saved_domain;
    // Inner InsertTiles joined this transaction and recorded their tiles'
    // summaries when their (joined) commits returned; take those back.
    InvalidateTileSummaries();
  };
  // Cut tile by tile rather than materializing all tiles at once, so load
  // memory stays bounded by one tile.
  for (const MInterval& domain : ordered) {
    if (!data.domain().Contains(domain)) {
      unwind();
      return Status::InvalidArgument("tile domain " + domain.ToString() +
                                     " outside loaded array domain " +
                                     data.domain().ToString());
    }
    Result<Tile> tile = data.Slice(domain);
    if (!tile.ok()) {
      unwind();
      return tile.status();
    }
    Status st = InsertTile(tile.value());
    if (!st.ok()) {
      unwind();
      return st;
    }
    inserted.push_back(domain);
  }
  Status commit = txn.Commit();
  if (!commit.ok()) unwind();
  return commit;
}

Status MDDObject::Load(const Array& data) {
  return Load(data, AlignedTiling::Regular(data.domain().dim(),
                                           kDefaultMaxTileBytes));
}

Status MDDObject::LoadFrom(
    const TilingSpec& spec,
    const std::function<Result<Tile>(const MInterval&)>& producer) {
  // Like Load: one transaction spanning the whole streamed ingest.
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  const std::optional<MInterval> saved_domain = current_domain_;
  std::vector<MInterval> inserted;
  inserted.reserve(spec.size());
  auto unwind = [&] {
    for (const MInterval& domain : inserted) (void)index_->Remove(domain);
    current_domain_ = saved_domain;
    InvalidateTileSummaries();
  };
  for (const MInterval& domain : spec) {
    Result<Tile> tile = producer(domain);
    if (!tile.ok()) {
      unwind();
      return tile.status();
    }
    if (tile->domain() != domain) {
      unwind();
      return Status::InvalidArgument(
          "producer returned tile " + tile->domain().ToString() +
          " for requested domain " + domain.ToString());
    }
    if (tile->cell_type() != cell_type_) {
      unwind();
      return Status::InvalidArgument(
          "producer returned wrong cell type for tile " + domain.ToString());
    }
    Status st = InsertTile(tile.value());
    if (!st.ok()) {
      unwind();
      return st;
    }
    inserted.push_back(domain);
  }
  Status commit = txn.Commit();
  if (!commit.ok()) unwind();
  return commit;
}

Status MDDObject::RemoveTile(const MInterval& domain) {
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  Status mut = EnsureMutableIndex();
  if (!mut.ok()) return mut;
  std::vector<TileEntry> hits = index_->Search(domain);
  const TileEntry* exact = nullptr;
  for (const TileEntry& entry : hits) {
    if (entry.domain == domain) {
      exact = &entry;
      break;
    }
  }
  if (exact == nullptr) {
    return Status::NotFound("no tile with domain " + domain.ToString() +
                            " in '" + name_ + "'");
  }
  const TileEntry removed = *exact;  // survives the index mutation below
  const std::optional<MInterval> saved_domain = current_domain_;
  Status st = index_->Remove(domain);
  if (!st.ok()) return st;
  if (store_ != nullptr) {
    // The persisted catalog may still reference this BLOB; its pages are
    // released with the next catalog write, atomically with the tile
    // table that stops pointing at them.
    store_->DeferBlobFree(removed.blob);
  } else {
    st = blobs_->Delete(removed.blob);
    if (!st.ok()) {
      (void)index_->Insert(removed);
      return st;
    }
  }

  // Shrink the current domain to the hull of the remaining tiles.
  std::vector<TileEntry> remaining;
  index_->GetAll(&remaining);
  if (remaining.empty()) {
    current_domain_.reset();
  } else {
    MInterval hull = remaining.front().domain;
    for (size_t i = 1; i < remaining.size(); ++i) {
      hull = hull.Hull(remaining[i].domain);
    }
    current_domain_ = hull;
  }
  MarkStoreDirty();
  Status commit = txn.Commit();
  if (!commit.ok()) {
    if (store_ != nullptr) store_->UndeferBlobFree(removed.blob);
    (void)index_->Insert(removed);
    current_domain_ = saved_domain;
  }
  InvalidateCachedTiles();
  if (TileSummaryIndex* summaries = summary_index()) {
    if (commit.ok()) {
      // Erased before the deferred free executes, so a recycled blob id
      // can never be classified by its predecessor's summary.
      summaries->Erase(cache_id_, removed.blob);
    } else {
      summaries->InvalidateObject(cache_id_);
    }
  }
  return commit;
}

Status MDDObject::WriteRegion(const Array& data) {
  // One transaction for the whole region write: the read-modify-write of
  // covered tiles and the insertion of growth tiles commit together.
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  Status mut = EnsureMutableIndex();
  if (!mut.ok()) return mut;
  const MInterval& region = data.domain();
  if (data.cell_size() != cell_size()) {
    return Status::InvalidArgument("WriteRegion: cell size mismatch");
  }
  if (region.dim() != definition_domain_.dim() || !region.IsFixed()) {
    return Status::InvalidArgument("WriteRegion: bad region " +
                                   region.ToString());
  }
  if (!definition_domain_.Contains(region)) {
    return Status::OutOfRange("WriteRegion: region " + region.ToString() +
                              " outside definition domain " +
                              definition_domain_.ToString());
  }

  const std::optional<MInterval> saved_domain = current_domain_;
  std::vector<TileEntry> replaced;   // original entries of rewritten tiles
  std::vector<MInterval> inserted;   // domains of brand-new growth tiles
  std::vector<BlobId> deferred;      // old BLOBs queued for deferred free
  auto unwind = [&] {
    for (BlobId blob : deferred) store_->UndeferBlobFree(blob);
    for (const MInterval& domain : inserted) (void)index_->Remove(domain);
    for (const TileEntry& entry : replaced) {
      (void)index_->Remove(entry.domain);
      (void)index_->Insert(entry);
    }
    current_domain_ = saved_domain;
    InvalidateTileSummaries();
  };
  // Summaries of the rewritten tiles, computed while the decoded cells are
  // at hand but applied only after a successful commit.
  TileSummaryIndex* summaries = summary_index();
  std::vector<std::pair<BlobId, std::optional<TileSummary>>> rewritten;

  // Update the covered parts tile by tile (read-modify-write).
  const std::vector<TileEntry> hits = index_->Search(region);
  std::vector<MInterval> covered;
  covered.reserve(hits.size());
  for (const TileEntry& entry : hits) {
    covered.push_back(entry.domain);
    Result<Tile> tile = FetchTile(entry);
    if (!tile.ok()) {
      unwind();
      return tile.status();
    }
    const std::optional<MInterval> overlap =
        entry.domain.Intersection(region);
    Status st = tile->CopyFrom(data, *overlap);
    if (!st.ok()) {
      unwind();
      return st;
    }

    // Rewrite the BLOB (the codec choice is re-evaluated selectively).
    // The old BLOB is freed with the next catalog write, not here: the
    // persisted tile table still points at it, and a crash after this
    // commit must leave that table readable.
    if (store_ != nullptr) {
      store_->DeferBlobFree(entry.blob);
      deferred.push_back(entry.blob);
    } else {
      st = blobs_->Delete(entry.blob);
      if (!st.ok()) {
        unwind();
        return st;
      }
    }
    std::vector<uint8_t> stored;
    const std::vector<uint8_t> raw(tile->data(),
                                   tile->data() + tile->size_bytes());
    const Compression used = CompressIfSmaller(compression_, raw, &stored);
    Result<BlobId> blob = blobs_->Put(stored);
    if (!blob.ok()) {
      unwind();
      return blob.status();
    }
    if (summaries != nullptr) {
      rewritten.emplace_back(
          blob.value(),
          BuildTileSummary(cell_type_, raw.data(),
                           entry.domain.CellCountOrDie(),
                           default_cell_.data()));
    }
    // From here the index swap is in flight; record the original so the
    // unwind can restore it whether or not the swap completed.
    replaced.push_back(entry);
    st = index_->Remove(entry.domain);
    if (!st.ok()) {
      unwind();
      return st;
    }
    st = index_->Insert(TileEntry{entry.domain, blob.value(), used});
    if (!st.ok()) {
      unwind();
      return st;
    }
  }

  // Uncovered parts become new tiles (growth), split to the default
  // maximum tile size.
  const AlignedTiling splitter =
      AlignedTiling::Regular(region.dim(), kDefaultMaxTileBytes);
  for (const MInterval& piece : Subtract(region, covered)) {
    TilingSpec spec;
    if (piece.CellCountOrDie() * cell_size() > kDefaultMaxTileBytes) {
      Result<TilingSpec> sub = splitter.ComputeTiling(piece, cell_size());
      if (!sub.ok()) {
        unwind();
        return sub.status();
      }
      spec = std::move(sub).MoveValue();
    } else {
      spec.push_back(piece);
    }
    for (const MInterval& tile_domain : PlacementOrdered(spec)) {
      Result<Tile> tile = data.Slice(tile_domain);
      if (!tile.ok()) {
        unwind();
        return tile.status();
      }
      Status st = InsertTile(tile.value());
      if (!st.ok()) {
        unwind();
        return st;
      }
      inserted.push_back(tile_domain);
    }
  }
  current_domain_ = current_domain_.has_value()
                        ? current_domain_->Hull(region)
                        : region;
  MarkStoreDirty();
  Status commit = txn.Commit();
  if (!commit.ok()) unwind();
  InvalidateCachedTiles();
  if (commit.ok() && summaries != nullptr) {
    // Growth tiles were recorded by their (joined) InsertTiles; here the
    // rewritten tiles swap summaries along with their blobs.
    for (const TileEntry& entry : replaced) {
      summaries->Erase(cache_id_, entry.blob);
    }
    for (auto& [blob, summary] : rewritten) {
      if (summary.has_value()) summaries->Put(cache_id_, blob, *summary);
    }
  }
  return commit;
}

Status MDDObject::RetileRegion(const MInterval& region,
                               const TilingSpec& new_tiles) {
  // One transaction for the whole generation swap: new BLOBs, index
  // replacement, and deferred frees of the old BLOBs commit together, so a
  // crash recovers to exactly the old or the new tiling of this region.
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  Status mut = EnsureMutableIndex();
  if (!mut.ok()) return mut;
  if (region.dim() != definition_domain_.dim() || !region.IsFixed()) {
    return Status::InvalidArgument("RetileRegion: bad region " +
                                   region.ToString());
  }
  if (!definition_domain_.Contains(region)) {
    return Status::OutOfRange("RetileRegion: region " + region.ToString() +
                              " outside definition domain " +
                              definition_domain_.ToString());
  }
  for (const MInterval& domain : new_tiles) {
    if (domain.dim() != region.dim() || !domain.IsFixed() ||
        !region.Contains(domain)) {
      return Status::InvalidArgument("RetileRegion: new tile " +
                                     domain.ToString() +
                                     " not inside region " +
                                     region.ToString());
    }
  }
  Status st = CheckDisjoint(new_tiles);
  if (!st.ok()) return st;

  // Old generation: every tile intersecting the region must lie wholly
  // inside it, so the swap replaces complete tiles and the object is a
  // disjoint tile set — mixed generations included — at every boundary.
  const std::vector<TileEntry> old_entries = index_->Search(region);
  for (const TileEntry& entry : old_entries) {
    if (!region.Contains(entry.domain)) {
      return Status::InvalidArgument("RetileRegion: tile " +
                                     entry.domain.ToString() +
                                     " crosses the region boundary " +
                                     region.ToString());
    }
    // No data loss: every old cell must land in some new tile.
    if (!Subtract(entry.domain, new_tiles).empty()) {
      return Status::InvalidArgument(
          "RetileRegion: new tiling does not cover old tile " +
          entry.domain.ToString());
    }
  }
  if (old_entries.empty() && new_tiles.empty()) return txn.Commit();

  // Materialize the new generation default-filled, then scatter each old
  // tile's cells into the overlapping new arrays — each old tile is
  // fetched and decoded exactly once.
  bool default_is_zero = true;
  for (uint8_t b : default_cell_) default_is_zero = default_is_zero && b == 0;
  // Re-encode order is placement order: under SFC placement the new
  // generation's blobs land along the curve.
  const TilingSpec ordered = PlacementOrdered(new_tiles);
  std::vector<Array> staged;
  staged.reserve(ordered.size());
  for (const MInterval& domain : ordered) {
    Result<Array> array = Array::Create(domain, cell_type_);
    if (!array.ok()) return array.status();
    if (!default_is_zero) {
      st = array->Fill(domain, default_cell_.data());
      if (!st.ok()) return st;
    }
    staged.push_back(std::move(array).MoveValue());
  }
  for (const TileEntry& entry : old_entries) {
    Result<Tile> tile = FetchTile(entry);
    if (!tile.ok()) return tile.status();
    for (Array& target : staged) {
      const std::optional<MInterval> part =
          target.domain().Intersection(entry.domain);
      if (!part.has_value()) continue;
      st = target.CopyFrom(*tile, *part);
      if (!st.ok()) return st;
    }
  }

  const std::optional<MInterval> saved_domain = current_domain_;
  std::vector<TileEntry> removed;
  std::vector<MInterval> inserted;
  std::vector<BlobId> deferred;
  auto unwind = [&] {
    for (BlobId blob : deferred) store_->UndeferBlobFree(blob);
    for (const MInterval& domain : inserted) (void)index_->Remove(domain);
    for (const TileEntry& entry : removed) (void)index_->Insert(entry);
    current_domain_ = saved_domain;
    InvalidateTileSummaries();
  };

  // Write the new BLOBs (codec re-evaluated selectively per tile). The new
  // generation's summaries are computed here, while the decoded cells are
  // at hand, and applied only after the commit succeeds.
  TileSummaryIndex* summaries = summary_index();
  std::vector<std::optional<TileSummary>> fresh_summaries;
  std::vector<TileEntry> fresh;
  fresh.reserve(staged.size());
  for (Array& array : staged) {
    const MInterval domain = array.domain();
    std::vector<uint8_t> stored;
    const std::vector<uint8_t> raw = std::move(array).TakeBuffer();
    const Compression used = CompressIfSmaller(compression_, raw, &stored);
    Result<BlobId> blob = blobs_->Put(stored);
    if (!blob.ok()) {
      unwind();
      return blob.status();
    }
    if (summaries != nullptr) {
      fresh_summaries.push_back(BuildTileSummary(cell_type_, raw.data(),
                                                 domain.CellCountOrDie(),
                                                 default_cell_.data()));
    }
    fresh.push_back(TileEntry{domain, blob.value(), used});
  }

  // Swap the generations in the index. The old BLOBs are freed with the
  // next catalog write, not here: the persisted tile table still points at
  // them, and a crash after this commit must leave that table readable —
  // that deferral is exactly what gates recovery to old-or-new-never-mixed.
  for (const TileEntry& entry : old_entries) {
    st = index_->Remove(entry.domain);
    if (!st.ok()) {
      unwind();
      return st;
    }
    removed.push_back(entry);
    if (store_ != nullptr) {
      store_->DeferBlobFree(entry.blob);
      deferred.push_back(entry.blob);
    }
  }
  for (const TileEntry& entry : fresh) {
    st = index_->Insert(entry);
    if (!st.ok()) {
      unwind();
      return st;
    }
    inserted.push_back(entry.domain);
  }

  // Recompute the hull. Newly covered cells lie inside `region`, so when
  // the region is inside the old hull the current domain — and '*'
  // resolution — is unchanged.
  std::vector<TileEntry> remaining;
  index_->GetAll(&remaining);
  if (remaining.empty()) {
    current_domain_.reset();
  } else {
    MInterval hull = remaining.front().domain;
    for (size_t i = 1; i < remaining.size(); ++i) {
      hull = hull.Hull(remaining[i].domain);
    }
    current_domain_ = hull;
  }
  MarkStoreDirty();
  Status commit = txn.Commit();
  if (!commit.ok()) unwind();
  InvalidateCachedTiles();
  if (commit.ok() && summaries != nullptr) {
    for (const TileEntry& entry : old_entries) {
      summaries->Erase(cache_id_, entry.blob);
    }
    for (size_t t = 0; t < fresh.size(); ++t) {
      if (fresh_summaries[t].has_value()) {
        summaries->Put(cache_id_, fresh[t].blob, *fresh_summaries[t]);
      }
    }
  }
  if (commit.ok() && store_ == nullptr) {
    // Standalone (unlogged, test-only) objects have no catalog to defer
    // for; release the old BLOBs now that the swap is complete.
    for (const TileEntry& entry : old_entries) {
      (void)blobs_->Delete(entry.blob);
    }
  }
  return commit;
}

Result<uint64_t> MDDObject::RelocateTiles(
    const std::vector<MInterval>& domains) {
  if (domains.empty()) return static_cast<uint64_t>(0);
  // One transaction for the whole step: every blob of the step moves, or
  // none does. The unwind mirrors RetileRegion's — the index swap and the
  // deferred frees are both rolled back on a failed commit.
  ScopedTxn txn(txn_manager());
  if (!txn.begin_status().ok()) return txn.begin_status();
  Status mut = EnsureMutableIndex();
  if (!mut.ok()) return mut;

  // Resolve every domain to its exact entry up front, so a stale plan
  // (tile re-tiled or removed since planning) fails before any page is
  // written.
  std::vector<TileEntry> old_entries;
  old_entries.reserve(domains.size());
  for (const MInterval& domain : domains) {
    const std::vector<TileEntry> hits = index_->Search(domain);
    const TileEntry* exact = nullptr;
    for (const TileEntry& entry : hits) {
      if (entry.domain == domain) {
        exact = &entry;
        break;
      }
    }
    if (exact == nullptr) {
      return Status::NotFound("no tile with domain " + domain.ToString() +
                              " in '" + name_ + "'");
    }
    old_entries.push_back(*exact);
  }

  std::vector<TileEntry> removed;
  std::vector<MInterval> inserted;
  std::vector<BlobId> deferred;
  auto unwind = [&] {
    for (BlobId blob : deferred) store_->UndeferBlobFree(blob);
    for (const MInterval& domain : inserted) (void)index_->Remove(domain);
    for (const TileEntry& entry : removed) (void)index_->Insert(entry);
    InvalidateTileSummaries();
  };

  // The stored bytes move verbatim — still compressed if the tile was —
  // so relocation is byte-identical by construction.
  uint64_t bytes_moved = 0;
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(old_entries.size());
  for (const TileEntry& entry : old_entries) {
    Result<std::vector<uint8_t>> raw = blobs_->Get(entry.blob);
    if (!raw.ok()) {
      unwind();
      return raw.status();
    }
    bytes_moved += raw->size();
    payloads.push_back(std::move(*raw));
  }

  // All blobs of the step land back to back in ONE consecutive page run,
  // in plan (SFC) order — this is what turns a step into a single extent.
  // Per-blob contiguous placement would take a run per blob, and
  // single-page blobs would scatter across whatever holes the free list
  // offers first.
  Result<std::vector<BlobId>> packed = blobs_->PutContiguousBatch(payloads);
  if (!packed.ok()) {
    unwind();
    return packed.status();
  }

  for (size_t t = 0; t < old_entries.size(); ++t) {
    const TileEntry& entry = old_entries[t];
    Status st = index_->Remove(entry.domain);
    if (!st.ok()) {
      unwind();
      return st;
    }
    removed.push_back(entry);
    st = index_->Insert(TileEntry{entry.domain, (*packed)[t],
                                  entry.compression});
    if (!st.ok()) {
      unwind();
      return st;
    }
    inserted.push_back(entry.domain);
    // Old blobs are freed with the next catalog write, like RetileRegion:
    // the persisted tile table still points at them.
    if (store_ != nullptr) {
      store_->DeferBlobFree(entry.blob);
      deferred.push_back(entry.blob);
    }
  }
  MarkStoreDirty();
  Status commit = txn.Commit();
  if (!commit.ok()) unwind();
  InvalidateCachedTiles();
  if (commit.ok()) {
    if (TileSummaryIndex* summaries = summary_index()) {
      // Relocation is byte-identical, so the summary just follows its blob.
      for (size_t t = 0; t < old_entries.size(); ++t) {
        summaries->Move(cache_id_, old_entries[t].blob, (*packed)[t]);
      }
    }
  }
  if (commit.ok() && store_ == nullptr) {
    // Standalone (unlogged, test-only) objects have no catalog deferral;
    // release the old blobs now that the swap is durable.
    for (const TileEntry& entry : old_entries) {
      (void)blobs_->Delete(entry.blob);
    }
  }
  if (!commit.ok()) return commit;
  return bytes_moved;
}

Result<Tile> MDDObject::FetchTile(const TileEntry& entry) const {
  // One tile through the shared decode pipeline, serial paper-exact mode.
  TileIOScheduler scheduler(blobs_);
  return scheduler.FetchOne(entry, cell_type_, /*coalesce=*/false, nullptr);
}

std::vector<TileEntry> MDDObject::AllTiles() const {
  std::vector<TileEntry> out;
  index_->GetAll(&out);
  return out;
}

Status MDDObject::Validate() const {
  std::vector<TileEntry> entries = AllTiles();
  TilingSpec spec;
  spec.reserve(entries.size());
  for (const TileEntry& entry : entries) spec.push_back(entry.domain);
  Status st = CheckWithinDomain(spec, definition_domain_);
  if (!st.ok()) return st;
  return CheckDisjoint(spec);
}

Status MDDObject::RestoreTiles(std::vector<TileEntry> entries) {
  std::optional<MInterval> hull;
  for (const TileEntry& entry : entries) {
    hull = hull.has_value() ? hull->Hull(entry.domain) : entry.domain;
  }
  if (index_kind_ == IndexKind::kRTree) {
    auto* rtree = static_cast<RTreeIndex*>(index_.get());
    Status st = rtree->BulkLoad(std::move(entries));
    if (!st.ok()) return st;
  } else {
    for (const TileEntry& entry : entries) {
      Status st = index_->Insert(entry);
      if (!st.ok()) return st;
    }
  }
  if (hull.has_value()) {
    current_domain_ = current_domain_.has_value()
                          ? current_domain_->Hull(*hull)
                          : *hull;
  }
  return Status::OK();
}

Status MDDObject::RestorePackedIndex(std::unique_ptr<TileIndex> packed) {
  std::vector<TileEntry> entries;
  packed->GetAll(&entries);
  std::optional<MInterval> hull;
  for (const TileEntry& entry : entries) {
    hull = hull.has_value() ? hull->Hull(entry.domain) : entry.domain;
  }
  index_ = std::move(packed);
  index_packed_ = true;
  current_domain_ = hull;
  return Status::OK();
}

Status MDDObject::RestoreTile(const MInterval& domain, BlobId blob,
                              Compression compression) {
  Status st = index_->Insert(TileEntry{domain, blob, compression});
  if (!st.ok()) return st;
  current_domain_ = current_domain_.has_value()
                        ? current_domain_->Hull(domain)
                        : domain;
  return Status::OK();
}

}  // namespace tilestore
