#ifndef TILESTORE_MDD_MDD_OBJECT_H_
#define TILESTORE_MDD_MDD_OBJECT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/array.h"
#include "core/cell_type.h"
#include "core/minterval.h"
#include "core/tile.h"
#include "index/tile_index.h"
#include "storage/blob_store.h"
#include "tiling/tiling.h"

namespace tilestore {

class MDDStore;
class TileSummaryIndex;
class TxnManager;

/// Which index implementation an MDD object uses for its tiles.
enum class IndexKind {
  kRTree,
  kDirectory,
};

/// \brief A stored multidimensional discrete data object (Sections 3-5):
/// a definition domain (fixed per type, possibly unbounded), a current
/// domain (the minimal interval covering all cells inserted so far), a set
/// of disjoint tiles stored as BLOBs, and a spatial index over the tiles.
///
/// Tiles need not cover the current domain: uncovered areas read back as
/// the object's default cell value (zero bytes unless set), the paper's
/// mechanism for sparse data.
///
/// Instances are owned by their `MDDStore`; pointers returned by the store
/// stay valid until the object is dropped or the store is destroyed.
///
/// Durability: when the owning store runs in WAL mode, each mutating call
/// (`InsertTile`, `Load`, `LoadFrom`, `RemoveTile`, `WriteRegion`) is an
/// atomic autocommitted transaction — it either applies completely or, on
/// any error, leaves both the file and this object's in-memory index
/// exactly as they were. Calls made between `MDDStore::Begin()` and
/// `Commit()` join that explicit transaction instead.
class MDDObject {
 public:
  /// Constructed by MDDStore; not for direct use. `store` may be null for
  /// standalone (test) objects — mutations then write through unlogged.
  MDDObject(std::string name, MInterval definition_domain, CellType cell_type,
            BlobStore* blobs, IndexKind index_kind, MDDStore* store = nullptr);

  MDDObject(const MDDObject&) = delete;
  MDDObject& operator=(const MDDObject&) = delete;

  const std::string& name() const { return name_; }
  const MInterval& definition_domain() const { return definition_domain_; }
  /// Empty until the first tile is inserted.
  const std::optional<MInterval>& current_domain() const {
    return current_domain_;
  }
  CellType cell_type() const { return cell_type_; }
  size_t cell_size() const { return cell_type_.size(); }
  size_t tile_count() const { return index_->size(); }

  /// The default cell value for areas not covered by any tile
  /// (`cell_size()` bytes; zeroes unless changed).
  const std::vector<uint8_t>& default_cell() const { return default_cell_; }
  Status SetDefaultCell(std::vector<uint8_t> value);

  /// Preferred codec for newly inserted tiles (Section 8: "selective
  /// compression of blocks"). Compression is *selective*: a tile is stored
  /// uncompressed whenever the codec fails to shrink it. Already-stored
  /// tiles are unaffected.
  void SetCompression(Compression compression) { compression_ = compression; }
  Compression compression() const { return compression_; }

  /// Inserts one tile (the gradual-growth path). The tile domain must be
  /// fixed, lie inside the definition domain, and be disjoint from all
  /// existing tiles. The current domain is extended by closure with the
  /// tile domain (Section 4).
  Status InsertTile(const Tile& tile);

  /// Loads a whole array using a tiling strategy: computes the tiling
  /// specification, cuts the array into tiles (phase two of the paper's
  /// pipeline) and inserts them.
  Status Load(const Array& data, const TilingStrategy& strategy);

  /// Loads a whole array with an explicit, precomputed specification.
  Status Load(const Array& data, const TilingSpec& spec);

  /// Loads with the default tiling (Section 5.2: "default tiling is
  /// performed if no tiling strategy is specified for an MDD object; the
  /// default tiling is aligned"): regular aligned tiles of at most
  /// `kDefaultMaxTileBytes`.
  Status Load(const Array& data);

  /// Streaming load: `producer` materializes each tile on demand, so
  /// objects far larger than memory can be ingested — peak memory is one
  /// tile. The producer receives each domain of `spec` in order and must
  /// return a tile with exactly that domain and this object's cell type.
  Status LoadFrom(const TilingSpec& spec,
                  const std::function<Result<Tile>(const MInterval&)>&
                      producer);

  /// Removes the tile with exactly this domain, freeing its BLOB. The
  /// current domain shrinks to the hull of the remaining tiles.
  Status RemoveTile(const MInterval& domain);

  /// Writes `data` into the object (the update path): cells covered by
  /// existing tiles are updated in place (read-modify-write of the
  /// affected tiles); uncovered parts of `data.domain()` become new tiles,
  /// split by the default aligned tiling when they exceed
  /// `kDefaultMaxTileBytes` — the paper's gradual-growth scenario.
  Status WriteRegion(const Array& data);

  /// Atomically re-tiles one region of the object (the online re-tiling
  /// primitive, DESIGN.md §12): the old tiles inside `region` are decoded,
  /// their cells re-sliced to `new_tiles`, the new BLOBs + index entries
  /// inserted and the old ones removed — all in one transaction, so a
  /// crash at any point recovers to either the old or the new tiling,
  /// never a mix (the old BLOBs are freed only with the next catalog
  /// write, which is what makes the new tiling visible across reopen).
  ///
  /// Contract: `region` must be fixed and inside the definition domain;
  /// every existing tile intersecting `region` must be fully contained in
  /// it; `new_tiles` must be disjoint boxes inside `region` covering every
  /// cell the old tiles covered. New tiles may additionally cover
  /// previously uncovered cells — those are materialized with the default
  /// cell, which reads back byte-identically (uncovered cells already read
  /// as the default). The current domain is recomputed as the hull of the
  /// resulting tile set; when `region` lies inside the current domain the
  /// hull — and hence '*' resolution — is unchanged.
  Status RetileRegion(const MInterval& region, const TilingSpec& new_tiles);

  /// Physically relocates the tiles with exactly these domains (the
  /// compaction step primitive, DESIGN.md §14): each stored BLOB is
  /// rewritten byte-identically into one contiguous page run and the
  /// index entry swapped to the new id, all in one transaction. Old BLOBs
  /// are freed with the next catalog write, exactly like `RetileRegion`,
  /// so a crash recovers to the old or the new placement — never a mix.
  /// Contents, tiling, and current domain are unchanged. Returns the
  /// stored bytes moved.
  Result<uint64_t> RelocateTiles(const std::vector<MInterval>& domains);

  /// The tiles intersecting `region` (index probe only; no data I/O).
  std::vector<TileEntry> FindTiles(const MInterval& region) const {
    return index_->Search(region);
  }

  /// Fetches the cell data of one indexed tile from the BLOB store.
  Result<Tile> FetchTile(const TileEntry& entry) const;

  /// All tile entries, for persistence and validation.
  std::vector<TileEntry> AllTiles() const;

  /// Verifies the tiling invariants (disjoint, inside definition domain).
  Status Validate() const;

  TileIndex* index() const { return index_.get(); }
  BlobStore* blob_store() const { return blobs_; }
  IndexKind index_kind() const { return index_kind_; }

  /// Used by MDDStore when re-opening: registers an existing tile without
  /// writing a BLOB.
  Status RestoreTile(const MInterval& domain, BlobId blob,
                     Compression compression = Compression::kNone);

  /// Bulk variant of `RestoreTile` for whole tile tables; uses STR bulk
  /// loading when the index supports it.
  Status RestoreTiles(std::vector<TileEntry> entries);

  /// Attaches a read-only packed index image restored from the catalog.
  /// The object serves queries directly from it and transparently
  /// upgrades to a dynamic index on the first mutation (copy-on-write).
  Status RestorePackedIndex(std::unique_ptr<TileIndex> packed);

  /// True while the tile index is still the read-only packed image.
  bool index_is_packed() const { return index_packed_; }

  /// Decoded-tile-cache epoch assigned by the owning store. 0 (standalone
  /// objects) means "not cacheable". The store hands out a fresh id
  /// whenever an object (re)materializes — create, catalog load, rollback
  /// restore — so stale entries of a previous incarnation can never match.
  uint64_t cache_id() const { return cache_id_; }
  void set_cache_id(uint64_t id) { cache_id_ = id; }

 private:
  Status CheckInsertable(const MInterval& domain, size_t cell_size) const;

  // Returns `spec` reordered along the owning store's space-filling curve
  // when SFC placement is enabled (identity otherwise): insertion order is
  // allocation order, so sorting the batch sorts physical placement.
  TilingSpec PlacementOrdered(const TilingSpec& spec) const;

  // Replaces a packed (read-only) index with a dynamic one before any
  // mutation.
  Status EnsureMutableIndex();

  // The owning store's transaction manager; null when standalone or the
  // store is unlogged.
  TxnManager* txn_manager() const;

  // Tells the owning store its persisted catalog is now stale.
  void MarkStoreDirty() const;

  // Drops this object's decoded-tile-cache entries after a successful
  // mutation (no-op standalone or with the cache disabled).
  void InvalidateCachedTiles() const;

  // The store's per-tile summary index when this object participates in
  // predicate pushdown; null standalone, uncacheable, or with summaries
  // disabled. Mutations record summaries only *after* a successful commit;
  // every unwind path calls InvalidateTileSummaries instead, dropping any
  // summary optimistically recorded by a joined inner mutation.
  TileSummaryIndex* summary_index() const;
  void InvalidateTileSummaries() const;

  MDDStore* store_ = nullptr;
  std::string name_;
  MInterval definition_domain_;
  std::optional<MInterval> current_domain_;
  CellType cell_type_;
  std::vector<uint8_t> default_cell_;
  Compression compression_ = Compression::kNone;
  BlobStore* blobs_;
  IndexKind index_kind_;
  bool index_packed_ = false;
  uint64_t cache_id_ = 0;
  std::unique_ptr<TileIndex> index_;
};

}  // namespace tilestore

#endif  // TILESTORE_MDD_MDD_OBJECT_H_
