#ifndef TILESTORE_CLUSTER_ROUTING_CLIENT_H_
#define TILESTORE_CLUSTER_ROUTING_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "common/thread_pool.h"
#include "net/client.h"
#include "net/client_api.h"
#include "obs/metrics.h"

namespace tilestore {
namespace cluster {

struct RoutingClientOptions {
  /// Per-shard connection options. `handshake` is forced on (the routing
  /// client always negotiates v2 and verifies shard identity);
  /// `request_timeout_ms` is the per-shard deadline of every fan-out leg.
  net::TileClientOptions shard_options;
  /// Upper bound on concurrently in-flight shard requests (the fan-out
  /// worker-pool size). Shards beyond it queue.
  size_t max_fanout = 8;
  /// Verify at connect time that each endpoint reports the shard id the
  /// map assigns it, turning a miswired map into a connect error instead
  /// of silent wrong answers.
  bool verify_shard_ids = true;
};

/// \brief Cluster-side implementation of the unified client API
/// (DESIGN.md §13): fans each request out to the shards owning the data
/// and stitches the results.
///
/// Routing rules per op:
///  - `RangeQuery`/`FilterQuery`/`Aggregate`: `ShardMap::QueryTargets`
///    clips the region per owning slab; sub-results are stitched
///    (queries — every shard default-fills its own sub-region, so a
///    filtered stitch stays byte-identical) or combined
///    (aggregates; `kAvg` fans out as per-shard `kSum` over the exact
///    same operands the single-store divide uses). Split objects require
///    fixed regions; unsplit objects pass through untouched.
///  - `InsertTiles`: tiles grouped by `TileOwner` (a tile straddling a
///    cut is rejected before anything is sent); `create_if_missing`
///    broadcasts the creation to every owning shard so later slab
///    queries never see NotFound.
///  - `Ping`/`Stats`/`Retile`/`Compact`: fan out to all/owning shards.
///
/// Partial-failure contract: when some shards succeed and others fail,
/// `Call` returns `kPartialResult` whose message lists each failing shard
/// and its error; no partial payload is returned. When every shard fails
/// with the same code that code propagates (e.g. NotFound); mixed
/// all-failures collapse to `kUnavailable`. A shard that dies mid-run
/// costs its in-flight call a transport error and later calls a fast
/// reconnect attempt — never a hang beyond the per-shard deadline.
///
/// Observability: the client owns a private registry with `cluster.*`
/// series (requests, fanout width, per-shard latency, partial results,
/// reconnects); `Stats` returns `{"cluster": ..., "shards": [...]}`
/// merging it with every shard's snapshot.
///
/// Not thread-safe — one instance per thread, like `TileClient`.
class RoutingTileClient : public net::ClientInterface {
 public:
  /// Connects to every shard in `map`. Unreachable shards are tolerated
  /// (they reconnect lazily on first use); fails with Unavailable only
  /// when no shard is reachable, or with the handshake's error when an
  /// endpoint reports the wrong shard identity.
  static Result<std::unique_ptr<RoutingTileClient>> Connect(
      ShardMap map, RoutingClientOptions options = RoutingClientOptions());

  Result<net::Response> Call(const net::Request& request) override;

  const ShardMap& shard_map() const { return map_; }
  /// Shards with a currently healthy connection.
  size_t healthy_shards() const;
  /// The cluster can serve (possibly partially) while any shard is up;
  /// down shards get a fresh reconnect attempt per call anyway.
  bool healthy() const override { return true; }
  /// The routing layer's own metrics (`cluster.*`).
  obs::MetricsRegistry* metrics() { return &registry_; }

 private:
  struct SubCall {
    uint32_t shard = 0;
    net::Request request;
    Result<net::Response> result = Status::Internal("not dispatched");
  };

  RoutingTileClient(ShardMap map, RoutingClientOptions options);

  /// Connects (or reconnects) one shard. `attempts` caps retry cost —
  /// lazy mid-run reconnects use 1 so a dead shard fails fast.
  Status ConnectShard(uint32_t shard, int attempts);

  /// Runs every sub-call, grouped by shard (one task per shard keeps each
  /// connection single-threaded), bounded by the fan-out pool.
  void Scatter(std::vector<SubCall>* calls);

  /// One sub-call on one shard's connection (reconnects lazily).
  Result<net::Response> CallShard(uint32_t shard,
                                  const net::Request& request);

  /// Folds sub-call outcomes into the cluster-level status: OK,
  /// kPartialResult (some failed), the common code (all failed alike), or
  /// kUnavailable (all failed, mixed). With `treat_notfound_as_ok`, a
  /// per-shard NotFound counts as success (an empty slab is not a fault).
  Status CombineStatuses(const std::vector<SubCall>& calls,
                         bool treat_notfound_as_ok = false);

  Result<net::Response> RoutePing(const net::Request& request);
  Result<net::Response> RouteOpenMDD(const net::OpenMDDRequest& request);
  Result<net::Response> RouteRangeQuery(const net::RangeQueryRequest& req);
  Result<net::Response> RouteAggregate(const net::AggregateRequest& request);
  Result<net::Response> RouteInsertTiles(const net::InsertTilesRequest& req);
  Result<net::Response> RouteStats(const net::StatsRequest& request);
  Result<net::Response> RouteRetile(const net::RetileRequest& request);
  Result<net::Response> RouteCompact(const net::CompactRequest& request);
  Result<net::Response> RouteFilterQuery(const net::FilterQueryRequest& req);

  ShardMap map_;
  RoutingClientOptions options_;
  std::vector<std::unique_ptr<net::TileClient>> shards_;
  std::unique_ptr<ThreadPool> pool_;

  obs::MetricsRegistry registry_;
  obs::Counter* requests_;
  obs::Counter* fanout_calls_;
  obs::Counter* partial_results_;
  obs::Counter* shard_errors_;
  obs::Counter* reconnects_;
  obs::Histogram* fanout_width_;
  std::vector<obs::Histogram*> shard_latency_ms_;
};

}  // namespace cluster
}  // namespace tilestore

#endif  // TILESTORE_CLUSTER_ROUTING_CLIENT_H_
