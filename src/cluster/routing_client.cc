#include "cluster/routing_client.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <utility>

namespace tilestore {
namespace cluster {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string DescribeShard(const ShardMap& map, uint32_t shard) {
  const ShardEndpoint& ep = map.endpoint(shard);
  return "shard " + std::to_string(shard) + " (" + ep.host + ":" +
         std::to_string(ep.port) + ")";
}

}  // namespace

RoutingTileClient::RoutingTileClient(ShardMap map,
                                     RoutingClientOptions options)
    : map_(std::move(map)), options_(std::move(options)) {
  // The handshake is what makes routing safe: it pins the wire version and
  // lets every connection verify it reached the shard the map claims.
  options_.shard_options.handshake = true;
  shards_.resize(map_.shard_count());
  const size_t workers = std::min<size_t>(
      std::max<size_t>(options_.max_fanout, 1), map_.shard_count());
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  requests_ = registry_.counter("cluster.requests");
  fanout_calls_ = registry_.counter("cluster.fanout_calls");
  partial_results_ = registry_.counter("cluster.partial_results");
  shard_errors_ = registry_.counter("cluster.shard_errors");
  reconnects_ = registry_.counter("cluster.reconnects");
  fanout_width_ = registry_.size_histogram("cluster.fanout_width");
  shard_latency_ms_.resize(map_.shard_count());
  for (uint32_t i = 0; i < map_.shard_count(); ++i) {
    shard_latency_ms_[i] = registry_.latency_histogram(
        "cluster.shard." + std::to_string(i) + ".latency_ms");
  }
}

Result<std::unique_ptr<RoutingTileClient>> RoutingTileClient::Connect(
    ShardMap map, RoutingClientOptions options) {
  if (map.shard_count() == 0) {
    return Status::InvalidArgument("shard map is empty");
  }
  std::unique_ptr<RoutingTileClient> client(
      new RoutingTileClient(std::move(map), std::move(options)));
  size_t healthy = 0;
  Status last = Status::Unavailable("no shards in map");
  for (uint32_t shard = 0; shard < client->map_.shard_count(); ++shard) {
    Status st = client->ConnectShard(
        shard, client->options_.shard_options.connect_attempts);
    if (st.ok()) {
      ++healthy;
      continue;
    }
    // A clean identity rejection means the map is miswired — surfacing it
    // beats serving wrong answers from whatever store did answer.
    if (st.IsInvalidArgument()) {
      return Status::InvalidArgument(
          DescribeShard(client->map_, shard) + ": " + st.message());
    }
    last = st;
  }
  if (healthy == 0) {
    return Status::Unavailable("no shard of the cluster is reachable: " +
                               last.message());
  }
  return client;
}

Status RoutingTileClient::ConnectShard(uint32_t shard, int attempts) {
  net::TileClientOptions opts = options_.shard_options;
  opts.handshake = true;
  opts.connect_attempts = std::max(attempts, 1);
  opts.expected_shard_id =
      options_.verify_shard_ids ? shard : net::kAnyShard;
  const ShardEndpoint& ep = map_.endpoint(shard);
  Result<std::unique_ptr<net::TileClient>> conn =
      net::TileClient::Connect(ep.host, ep.port, opts);
  if (!conn.ok()) {
    shards_[shard].reset();
    return conn.status();
  }
  if (options_.verify_shard_ids &&
      (*conn)->shard_count() != map_.shard_count()) {
    shards_[shard].reset();
    return Status::InvalidArgument(
        "endpoint reports a " + std::to_string((*conn)->shard_count()) +
        "-shard cluster, map has " + std::to_string(map_.shard_count()));
  }
  shards_[shard] = std::move(conn).MoveValue();
  return Status::OK();
}

size_t RoutingTileClient::healthy_shards() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    if (shard != nullptr && shard->healthy()) ++n;
  }
  return n;
}

void RoutingTileClient::Scatter(std::vector<SubCall>* calls) {
  // One task per shard, not per sub-call: a TileClient connection is a
  // synchronous stream, so the sub-calls bound for one shard must run
  // sequentially on it — only cross-shard calls overlap.
  std::map<uint32_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < calls->size(); ++i) {
    by_shard[(*calls)[i].shard].push_back(i);
  }
  fanout_calls_->Add(calls->size());
  fanout_width_->Observe(static_cast<double>(by_shard.size()));
  TaskGroup group(pool_.get());
  for (auto& entry : by_shard) {
    const uint32_t shard = entry.first;
    const std::vector<size_t>* indices = &entry.second;
    group.Run([this, shard, indices, calls] {
      for (const size_t i : *indices) {
        (*calls)[i].result = CallShard(shard, (*calls)[i].request);
      }
    });
  }
  group.Wait();
}

Result<net::Response> RoutingTileClient::CallShard(
    uint32_t shard, const net::Request& request) {
  if (shards_[shard] == nullptr || !shards_[shard]->healthy()) {
    // Lazy reconnect, one attempt: a shard that is really down fails fast
    // instead of stretching every request by the full retry ladder.
    reconnects_->Add();
    Status st = ConnectShard(shard, /*attempts=*/1);
    if (!st.ok()) {
      shard_errors_->Add();
      return st;
    }
  }
  const double start = NowMs();
  Result<net::Response> result = shards_[shard]->Call(request);
  shard_latency_ms_[shard]->Observe(NowMs() - start);
  if (!result.ok()) shard_errors_->Add();
  return result;
}

Status RoutingTileClient::CombineStatuses(const std::vector<SubCall>& calls,
                                          bool treat_notfound_as_ok) {
  size_t failed = 0;
  bool same_code = true;
  StatusCode code = StatusCode::kOk;
  std::ostringstream msg;
  for (const SubCall& call : calls) {
    if (call.result.ok()) continue;
    const Status& st = call.result.status();
    if (treat_notfound_as_ok && st.IsNotFound()) continue;
    if (failed == 0) {
      code = st.code();
    } else {
      msg << "; ";
      if (st.code() != code) same_code = false;
    }
    ++failed;
    msg << DescribeShard(map_, call.shard) << ": " << st.ToString();
  }
  if (failed == 0) return Status::OK();
  if (failed < calls.size()) {
    partial_results_->Add();
    return Status::PartialResult(msg.str());
  }
  // Every shard failed: a shared code (NotFound everywhere, timeouts
  // everywhere) is more actionable than the generic Unavailable.
  if (same_code) return Status(code, msg.str());
  return Status::Unavailable(msg.str());
}

Result<net::Response> RoutingTileClient::Call(const net::Request& request) {
  requests_->Add();
  return std::visit(
      Overloaded{
          [&](const net::PingRequest&) { return RoutePing(request); },
          [&](const net::OpenMDDRequest& r) { return RouteOpenMDD(r); },
          [&](const net::RangeQueryRequest& r) { return RouteRangeQuery(r); },
          [&](const net::AggregateRequest& r) { return RouteAggregate(r); },
          [&](const net::InsertTilesRequest& r) {
            return RouteInsertTiles(r);
          },
          [&](const net::StatsRequest& r) { return RouteStats(r); },
          [&](const net::RetileRequest& r) { return RouteRetile(r); },
          [&](const net::CompactRequest& r) { return RouteCompact(r); },
          [&](const net::FilterQueryRequest& r) {
            return RouteFilterQuery(r);
          },
          [&](const net::HelloRequest&) -> Result<net::Response> {
            return Status::Unimplemented(
                "hello is connection-scoped; the routing client negotiates "
                "it per shard at connect time");
          },
      },
      request);
}

Result<net::Response> RoutingTileClient::RoutePing(
    const net::Request& request) {
  std::vector<SubCall> calls(map_.shard_count());
  for (uint32_t shard = 0; shard < map_.shard_count(); ++shard) {
    calls[shard].shard = shard;
    calls[shard].request = request;
  }
  Scatter(&calls);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  return net::Response{net::PingResponse{}};
}

Result<net::Response> RoutingTileClient::RouteOpenMDD(
    const net::OpenMDDRequest& request) {
  const std::vector<uint32_t> owners = map_.AllOwners(request.name);
  std::vector<SubCall> calls(owners.size());
  for (size_t i = 0; i < owners.size(); ++i) {
    calls[i].shard = owners[i];
    calls[i].request = request;
  }
  Scatter(&calls);
  // A slab owner without tiles yet legitimately answers NotFound; the
  // object exists cluster-wide as long as any owner knows it.
  Status st = CombineStatuses(calls, /*treat_notfound_as_ok=*/true);
  if (!st.ok()) return st;
  net::OpenMDDResponse combined;
  bool first = true;
  for (SubCall& call : calls) {
    if (!call.result.ok()) continue;  // tolerated NotFound
    const auto& resp = std::get<net::OpenMDDResponse>(*call.result);
    if (first) {
      combined = resp;
      first = false;
      continue;
    }
    if (resp.definition_domain.dim() != combined.definition_domain.dim() ||
        resp.cell_type_id != combined.cell_type_id) {
      return Status::Corruption("shards disagree on the shape of '" +
                                request.name + "'");
    }
    combined.tile_count += resp.tile_count;
    combined.definition_domain =
        combined.definition_domain.Hull(resp.definition_domain);
    if (resp.has_current_domain) {
      combined.current_domain =
          combined.has_current_domain
              ? combined.current_domain.Hull(resp.current_domain)
              : resp.current_domain;
      combined.has_current_domain = true;
    }
  }
  if (first) {
    return Status::NotFound("mdd '" + request.name +
                            "' not found on any owning shard");
  }
  return net::Response{std::move(combined)};
}

Result<net::Response> RoutingTileClient::RouteRangeQuery(
    const net::RangeQueryRequest& request) {
  if (map_.FindSplit(request.name) != nullptr && !request.region.IsFixed()) {
    return Status::InvalidArgument(
        "queries on a range-split object need a fixed region ('*' bounds "
        "cannot be resolved across shards)");
  }
  Result<std::vector<ShardMap::Target>> targets =
      map_.QueryTargets(request.name, request.region);
  if (!targets.ok()) return targets.status();
  std::vector<SubCall> calls(targets->size());
  for (size_t i = 0; i < targets->size(); ++i) {
    calls[i].shard = (*targets)[i].shard;
    calls[i].request = net::RangeQueryRequest{
        request.name, std::move((*targets)[i].region)};
  }
  Scatter(&calls);
  if (calls.size() == 1) return std::move(calls[0].result);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  // Stitch: sub-regions partition the query region, and each shard
  // default-fills its own sub-region, so copying every sub-array into a
  // zero-initialised frame writes each cell exactly once.
  const auto& first = std::get<net::RangeQueryResponse>(*calls[0].result);
  const CellType cell_type =
      CellType::Of(static_cast<CellTypeId>(first.cell_type_id));
  Result<Array> stitched = Array::Create(request.region, cell_type);
  if (!stitched.ok()) return stitched.status();
  for (SubCall& call : calls) {
    auto& resp = std::get<net::RangeQueryResponse>(*call.result);
    if (resp.cell_type_id != first.cell_type_id) {
      return Status::Corruption("shards disagree on the cell type of '" +
                                request.name + "'");
    }
    Result<Array> piece =
        Array::FromBuffer(resp.domain, cell_type, std::move(resp.cells));
    if (!piece.ok()) return piece.status();
    Status copy = stitched->CopyFrom(*piece, piece->domain());
    if (!copy.ok()) {
      return Status::Corruption(DescribeShard(map_, call.shard) +
                                " answered outside its sub-region: " +
                                copy.message());
    }
  }
  net::RangeQueryResponse out;
  out.domain = request.region;
  out.cell_type_id = first.cell_type_id;
  out.cells = std::move(*stitched).TakeBuffer();
  return net::Response{std::move(out)};
}

Result<net::Response> RoutingTileClient::RouteFilterQuery(
    const net::FilterQueryRequest& request) {
  if (map_.FindSplit(request.name) != nullptr && !request.region.IsFixed()) {
    return Status::InvalidArgument(
        "queries on a range-split object need a fixed region ('*' bounds "
        "cannot be resolved across shards)");
  }
  Result<std::vector<ShardMap::Target>> targets =
      map_.QueryTargets(request.name, request.region);
  if (!targets.ok()) return targets.status();
  std::vector<SubCall> calls(targets->size());
  for (size_t i = 0; i < targets->size(); ++i) {
    net::FilterQueryRequest sub = request;
    sub.region = std::move((*targets)[i].region);
    calls[i].shard = (*targets)[i].shard;
    calls[i].request = std::move(sub);
  }
  Scatter(&calls);
  if (calls.size() == 1) return std::move(calls[0].result);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  // Stitch exactly like RouteRangeQuery: sub-regions partition the query
  // region, and each shard fills its sub-region completely — matching
  // cells with their value, everything else with the object's default —
  // so copying every sub-array into a zero-initialised frame writes each
  // cell exactly once and the stitched result is byte-identical to a
  // single-store filtered query.
  const auto& first = std::get<net::FilterQueryResponse>(*calls[0].result);
  const CellType cell_type =
      CellType::Of(static_cast<CellTypeId>(first.cell_type_id));
  Result<Array> stitched = Array::Create(request.region, cell_type);
  if (!stitched.ok()) return stitched.status();
  for (SubCall& call : calls) {
    auto& resp = std::get<net::FilterQueryResponse>(*call.result);
    if (resp.cell_type_id != first.cell_type_id) {
      return Status::Corruption("shards disagree on the cell type of '" +
                                request.name + "'");
    }
    Result<Array> piece =
        Array::FromBuffer(resp.domain, cell_type, std::move(resp.cells));
    if (!piece.ok()) return piece.status();
    Status copy = stitched->CopyFrom(*piece, piece->domain());
    if (!copy.ok()) {
      return Status::Corruption(DescribeShard(map_, call.shard) +
                                " answered outside its sub-region: " +
                                copy.message());
    }
  }
  net::FilterQueryResponse out;
  out.domain = request.region;
  out.cell_type_id = first.cell_type_id;
  out.cells = std::move(*stitched).TakeBuffer();
  return net::Response{std::move(out)};
}

Result<net::Response> RoutingTileClient::RouteAggregate(
    const net::AggregateRequest& request) {
  if (map_.FindSplit(request.name) != nullptr && !request.region.IsFixed()) {
    return Status::InvalidArgument(
        "aggregates on a range-split object need a fixed region");
  }
  Result<std::vector<ShardMap::Target>> targets =
      map_.QueryTargets(request.name, request.region);
  if (!targets.ok()) return targets.status();
  const auto op = static_cast<AggregateOp>(request.op);
  // kAvg does not distribute over sub-regions; fan it out as per-shard
  // kSum and divide by the full region's cell count — the same operands
  // the single-store average uses.
  const bool rewrite_avg = targets->size() > 1 && op == AggregateOp::kAvg;
  std::vector<SubCall> calls(targets->size());
  for (size_t i = 0; i < targets->size(); ++i) {
    net::AggregateRequest sub = request;
    sub.region = std::move((*targets)[i].region);
    if (rewrite_avg) sub.op = static_cast<uint8_t>(AggregateOp::kSum);
    calls[i].shard = (*targets)[i].shard;
    calls[i].request = std::move(sub);
  }
  Scatter(&calls);
  if (calls.size() == 1) return std::move(calls[0].result);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  double value = 0;
  bool first = true;
  for (const SubCall& call : calls) {
    const double v = std::get<net::AggregateResponse>(*call.result).value;
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
      case AggregateOp::kCount:
        value += v;
        break;
      case AggregateOp::kMin:
        value = first ? v : std::min(value, v);
        break;
      case AggregateOp::kMax:
        value = first ? v : std::max(value, v);
        break;
    }
    first = false;
  }
  if (rewrite_avg) {
    Result<uint64_t> cells = request.region.CellCount();
    if (!cells.ok()) return cells.status();
    value /= static_cast<double>(*cells);
  }
  return net::Response{net::AggregateResponse{value}};
}

Result<net::Response> RoutingTileClient::RouteInsertTiles(
    const net::InsertTilesRequest& request) {
  const RegionSplit* split = map_.FindSplit(request.name);
  if (split == nullptr) {
    std::vector<SubCall> calls(1);
    calls[0].shard = map_.OwnerOf(request.name);
    calls[0].request = request;
    Scatter(&calls);
    return std::move(calls[0].result);
  }
  // Group tiles by owning slab before sending anything: a tile straddling
  // a cut rejects the whole batch with no shard mutated.
  std::map<uint32_t, net::InsertTilesRequest> per_shard;
  auto shard_request = [&](uint32_t shard) -> net::InsertTilesRequest& {
    auto [it, inserted] = per_shard.try_emplace(shard);
    if (inserted) {
      it->second.name = request.name;
      it->second.create_if_missing = request.create_if_missing;
      it->second.definition_domain = request.definition_domain;
      it->second.cell_type_id = request.cell_type_id;
    }
    return it->second;
  };
  if (request.create_if_missing) {
    // Broadcast the creation (possibly with no tiles) to every slab owner
    // so a later query on any slab finds the object, not NotFound.
    for (const uint32_t owner : map_.AllOwners(request.name)) {
      shard_request(owner);
    }
  }
  for (const net::WireTile& tile : request.tiles) {
    Result<uint32_t> owner = map_.TileOwner(request.name, tile.domain);
    if (!owner.ok()) return owner.status();
    shard_request(*owner).tiles.push_back(tile);
  }
  std::vector<SubCall> calls;
  calls.reserve(per_shard.size());
  for (auto& [shard, sub] : per_shard) {
    SubCall call;
    call.shard = shard;
    call.request = std::move(sub);
    calls.push_back(std::move(call));
  }
  Scatter(&calls);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  net::InsertTilesResponse combined;
  for (const SubCall& call : calls) {
    combined.tiles_inserted +=
        std::get<net::InsertTilesResponse>(*call.result).tiles_inserted;
  }
  return net::Response{combined};
}

Result<net::Response> RoutingTileClient::RouteStats(
    const net::StatsRequest& request) {
  std::vector<SubCall> calls(map_.shard_count());
  for (uint32_t shard = 0; shard < map_.shard_count(); ++shard) {
    calls[shard].shard = shard;
    calls[shard].request = request;
  }
  Scatter(&calls);
  // Lenient by design: observability of the live shards should not go
  // dark because one shard is down — failed shards show up as null.
  size_t ok_count = 0;
  for (const SubCall& call : calls) ok_count += call.result.ok() ? 1 : 0;
  if (ok_count == 0) return CombineStatuses(calls);
  std::ostringstream out;
  if (request.format == 1) {
    out << "# cluster routing client\n"
        << registry_.Snapshot().ToPrometheusText();
    for (const SubCall& call : calls) {
      out << "# " << DescribeShard(map_, call.shard) << "\n";
      if (call.result.ok()) {
        out << std::get<net::StatsResponse>(*call.result).text;
      } else {
        out << "# unavailable: " << call.result.status().ToString() << "\n";
      }
    }
  } else {
    // Formats 0 and 2 are JSON; shard texts embed verbatim.
    out << "{";
    if (request.format == 0) {
      out << "\"cluster\":" << registry_.Snapshot().ToJson() << ",";
    }
    out << "\"shards\":[";
    for (size_t i = 0; i < calls.size(); ++i) {
      if (i) out << ",";
      if (calls[i].result.ok()) {
        out << std::get<net::StatsResponse>(*calls[i].result).text;
      } else {
        out << "null";
      }
    }
    out << "]}";
  }
  return net::Response{net::StatsResponse{out.str()}};
}

Result<net::Response> RoutingTileClient::RouteRetile(
    const net::RetileRequest& request) {
  const std::vector<uint32_t> owners = map_.AllOwners(request.name);
  std::vector<SubCall> calls(owners.size());
  for (size_t i = 0; i < owners.size(); ++i) {
    calls[i].shard = owners[i];
    calls[i].request = request;
  }
  Scatter(&calls);
  if (calls.size() == 1) return std::move(calls[0].result);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  net::RetileResponse combined;
  for (const SubCall& call : calls) {
    const auto& resp = std::get<net::RetileResponse>(*call.result);
    if (resp.migrated && !combined.migrated) {
      combined.migrated = true;
      combined.kind = resp.kind;
      combined.rationale = resp.rationale;
    }
    combined.predicted_gain =
        std::max(combined.predicted_gain, resp.predicted_gain);
    combined.steps += resp.steps;
    combined.tiles_before += resp.tiles_before;
    combined.tiles_after += resp.tiles_after;
    combined.cells_moved += resp.cells_moved;
  }
  if (!combined.migrated && !calls.empty()) {
    const auto& firstr = std::get<net::RetileResponse>(*calls[0].result);
    combined.kind = firstr.kind;
    combined.rationale = firstr.rationale;
  }
  return net::Response{std::move(combined)};
}

Result<net::Response> RoutingTileClient::RouteCompact(
    const net::CompactRequest& request) {
  const std::vector<uint32_t> owners = map_.AllOwners(request.name);
  std::vector<SubCall> calls(owners.size());
  for (size_t i = 0; i < owners.size(); ++i) {
    calls[i].shard = owners[i];
    calls[i].request = request;
  }
  Scatter(&calls);
  if (calls.size() == 1) return std::move(calls[0].result);
  Status st = CombineStatuses(calls);
  if (!st.ok()) return st;
  // Each shard compacts its own slab; the combined report sums the work
  // and averages the fragmentation across owners.
  net::CompactResponse combined;
  double frag_before_sum = 0, frag_after_sum = 0;
  for (const SubCall& call : calls) {
    const auto& resp = std::get<net::CompactResponse>(*call.result);
    if (resp.compacted && !combined.compacted) {
      combined.compacted = true;
      combined.rationale = resp.rationale;
    }
    frag_before_sum += resp.frag_before;
    frag_after_sum += resp.frag_after;
    combined.steps += resp.steps;
    combined.tiles_moved += resp.tiles_moved;
    combined.bytes_moved += resp.bytes_moved;
  }
  if (!calls.empty()) {
    combined.frag_before = frag_before_sum / calls.size();
    combined.frag_after = frag_after_sum / calls.size();
    if (!combined.compacted) {
      combined.rationale =
          std::get<net::CompactResponse>(*calls[0].result).rationale;
    }
  }
  return net::Response{std::move(combined)};
}

}  // namespace cluster
}  // namespace tilestore
