#ifndef TILESTORE_CLUSTER_SHARD_MAP_H_
#define TILESTORE_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/minterval.h"

namespace tilestore {
namespace cluster {

/// One shard process's address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// Region-range split of one huge MDD across shards: the object is cut
/// into slabs along one axis at tile-aligned hyperplanes, and each slab
/// lives on its own shard. Objects without a split are placed whole by
/// name hash.
struct RegionSplit {
  std::string object;
  /// Split axis (0-based). Must be a valid axis of every region queried.
  size_t axis = 0;
  /// Strictly ascending interior cut coordinates. Cut `c` separates cells
  /// `< c` from cells `>= c`; with k cuts the object has k+1 slabs:
  /// (-inf, c0-1], [c0, c1-1], ..., [ck-1, +inf).
  std::vector<Coord> cuts;
  /// Owning shard of each slab, size `cuts.size() + 1`.
  std::vector<uint32_t> shards;
};

/// \brief Deterministic MDD -> shard assignment (DESIGN.md §13).
///
/// Whole objects are placed by FNV-1a hash of their name modulo the shard
/// count; huge objects may instead be region-split along one axis, each
/// slab owned by a configured shard. The map is plain data — every client
/// and launcher computing placement from the same map text agrees, so
/// there is no placement service to coordinate with.
///
/// Text format (whitespace-separated, `#` starts a comment line):
///
///   shard 0 127.0.0.1:7101
///   shard 1 127.0.0.1:7102
///   split huge axis=0 cuts=1024,2048 shards=0,1,0
class ShardMap {
 public:
  ShardMap() = default;

  /// Validating factory: shard ids contiguous from 0, split cut/shard
  /// lists consistent, split shard ids in range.
  static Result<ShardMap> Create(std::vector<ShardEndpoint> endpoints,
                                 std::vector<RegionSplit> splits = {});

  /// Hash-only map over `endpoints` (no splits); asserts non-empty.
  static ShardMap Uniform(std::vector<ShardEndpoint> endpoints);

  static Result<ShardMap> Parse(const std::string& text);
  static Result<ShardMap> LoadFile(const std::string& path);
  std::string ToText() const;

  uint32_t shard_count() const {
    return static_cast<uint32_t>(endpoints_.size());
  }
  const ShardEndpoint& endpoint(uint32_t shard) const {
    return endpoints_[shard];
  }

  /// Hash owner of an unsplit object (also the *metadata* owner of a
  /// split one — see `QueryTargets` for data placement).
  uint32_t OwnerOf(const std::string& name) const;

  const RegionSplit* FindSplit(const std::string& name) const;

  /// One shard's share of a query: the sub-region it owns. Sub-regions of
  /// one query partition the query region (slabs are disjoint and cover
  /// the axis), so stitched results cover every cell exactly once.
  struct Target {
    uint32_t shard = 0;
    MInterval region;
  };

  /// Shards owning parts of `region` of `name`, clipped per slab. Unsplit
  /// objects yield exactly one target carrying the whole region.
  /// Unbounded ('*') region bounds pass through to each slab's share.
  Result<std::vector<Target>> QueryTargets(const std::string& name,
                                           const MInterval& region) const;

  /// Owning shard of one whole tile. Fails with InvalidArgument when the
  /// tile straddles a cut hyperplane — splits must be tile-aligned, and
  /// rejecting at insert keeps every stored tile on exactly one shard.
  Result<uint32_t> TileOwner(const std::string& name,
                             const MInterval& domain) const;

  /// Every shard holding (or eligible to hold) data of `name`: the slab
  /// owners of a split object, the single hash owner otherwise.
  std::vector<uint32_t> AllOwners(const std::string& name) const;

 private:
  std::vector<ShardEndpoint> endpoints_;
  std::map<std::string, RegionSplit> splits_;
};

}  // namespace cluster
}  // namespace tilestore

#endif  // TILESTORE_CLUSTER_SHARD_MAP_H_
