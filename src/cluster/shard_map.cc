#include "cluster/shard_map.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

namespace tilestore {
namespace cluster {

namespace {

// FNV-1a over the object name: stable across platforms and sessions, so
// every participant derives the same placement from the same map.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// The slab's coordinate range along the split axis. Slab 0 reaches -inf,
// the last slab +inf, so every coordinate belongs to exactly one slab and
// placement never depends on knowing the object's domain.
void SlabBounds(const RegionSplit& split, size_t slab, Coord* lo,
                Coord* hi) {
  *lo = slab == 0 ? kLoUnbounded : split.cuts[slab - 1];
  *hi = slab == split.cuts.size() ? kHiUnbounded : split.cuts[slab] - 1;
}

Status ParseEndpoint(const std::string& token, ShardEndpoint* out) {
  const size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= token.size()) {
    return Status::InvalidArgument("bad endpoint '" + token +
                                   "' (want host:port)");
  }
  out->host = token.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(token.substr(colon + 1));
  } catch (...) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in endpoint '" + token + "'");
  }
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

template <typename T>
Status ParseCoordList(const std::string& list, const char* what,
                      std::vector<T>* out) {
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      out->push_back(static_cast<T>(std::stoll(item)));
    } catch (...) {
      return Status::InvalidArgument(std::string("bad ") + what + " '" +
                                     item + "'");
    }
  }
  if (out->empty()) {
    return Status::InvalidArgument(std::string("empty ") + what + " list");
  }
  return Status::OK();
}

}  // namespace

Result<ShardMap> ShardMap::Create(std::vector<ShardEndpoint> endpoints,
                                  std::vector<RegionSplit> splits) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("shard map needs at least one shard");
  }
  ShardMap map;
  map.endpoints_ = std::move(endpoints);
  for (RegionSplit& split : splits) {
    if (split.object.empty()) {
      return Status::InvalidArgument("split with empty object name");
    }
    if (map.splits_.count(split.object) != 0) {
      return Status::InvalidArgument("duplicate split for object '" +
                                     split.object + "'");
    }
    if (split.shards.size() != split.cuts.size() + 1) {
      return Status::InvalidArgument(
          "split '" + split.object + "' needs " +
          std::to_string(split.cuts.size() + 1) + " slab owners, got " +
          std::to_string(split.shards.size()));
    }
    for (size_t i = 1; i < split.cuts.size(); ++i) {
      if (split.cuts[i] <= split.cuts[i - 1]) {
        return Status::InvalidArgument("split '" + split.object +
                                       "' cuts must be strictly ascending");
      }
    }
    for (const uint32_t shard : split.shards) {
      if (shard >= map.endpoints_.size()) {
        return Status::InvalidArgument(
            "split '" + split.object + "' references shard " +
            std::to_string(shard) + " of " +
            std::to_string(map.endpoints_.size()));
      }
    }
    map.splits_[split.object] = std::move(split);
  }
  return map;
}

ShardMap ShardMap::Uniform(std::vector<ShardEndpoint> endpoints) {
  assert(!endpoints.empty());
  ShardMap map;
  map.endpoints_ = std::move(endpoints);
  return map;
}

Result<ShardMap> ShardMap::Parse(const std::string& text) {
  std::vector<ShardEndpoint> endpoints;
  std::vector<std::pair<uint32_t, ShardEndpoint>> numbered;
  std::vector<RegionSplit> splits;
  std::stringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::stringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (kind == "shard") {
      uint32_t id = 0;
      std::string addr;
      if (!(tokens >> id >> addr)) {
        return Status::InvalidArgument("malformed shard line" + where);
      }
      ShardEndpoint ep;
      Status st = ParseEndpoint(addr, &ep);
      if (!st.ok()) return Status::InvalidArgument(st.message() + where);
      numbered.emplace_back(id, std::move(ep));
    } else if (kind == "split") {
      RegionSplit split;
      std::string token;
      if (!(tokens >> split.object)) {
        return Status::InvalidArgument("malformed split line" + where);
      }
      bool have_axis = false, have_cuts = false, have_shards = false;
      while (tokens >> token) {
        const size_t eq = token.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument("bad split attribute '" + token +
                                         "'" + where);
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        Status st;
        if (key == "axis") {
          try {
            split.axis = static_cast<size_t>(std::stoul(value));
            have_axis = true;
          } catch (...) {
            st = Status::InvalidArgument("bad axis '" + value + "'");
          }
        } else if (key == "cuts") {
          st = ParseCoordList<Coord>(value, "cut", &split.cuts);
          have_cuts = st.ok();
        } else if (key == "shards") {
          st = ParseCoordList<uint32_t>(value, "shard id", &split.shards);
          have_shards = st.ok();
        } else {
          st = Status::InvalidArgument("unknown split attribute '" + key +
                                       "'");
        }
        if (!st.ok()) return Status::InvalidArgument(st.message() + where);
      }
      if (!have_axis || !have_cuts || !have_shards) {
        return Status::InvalidArgument(
            "split needs axis=, cuts= and shards=" + where);
      }
      splits.push_back(std::move(split));
    } else {
      return Status::InvalidArgument("unknown directive '" + kind + "' (line " +
                                     std::to_string(lineno) + ")");
    }
  }
  if (numbered.empty()) {
    return Status::InvalidArgument("shard map defines no shards");
  }
  std::sort(numbered.begin(), numbered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  endpoints.reserve(numbered.size());
  for (size_t i = 0; i < numbered.size(); ++i) {
    if (numbered[i].first != i) {
      return Status::InvalidArgument(
          "shard ids must be contiguous from 0 (missing or duplicate id " +
          std::to_string(i) + ")");
    }
    endpoints.push_back(std::move(numbered[i].second));
  }
  return Create(std::move(endpoints), std::move(splits));
}

Result<ShardMap> ShardMap::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot read cluster map file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<ShardMap> map = Parse(buffer.str());
  if (!map.ok()) {
    return Status::InvalidArgument(path + ": " + map.status().message());
  }
  return map;
}

std::string ShardMap::ToText() const {
  std::stringstream out;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    out << "shard " << i << " " << endpoints_[i].host << ":"
        << endpoints_[i].port << "\n";
  }
  for (const auto& [name, split] : splits_) {
    out << "split " << name << " axis=" << split.axis << " cuts=";
    for (size_t i = 0; i < split.cuts.size(); ++i) {
      out << (i ? "," : "") << split.cuts[i];
    }
    out << " shards=";
    for (size_t i = 0; i < split.shards.size(); ++i) {
      out << (i ? "," : "") << split.shards[i];
    }
    out << "\n";
  }
  return out.str();
}

uint32_t ShardMap::OwnerOf(const std::string& name) const {
  return static_cast<uint32_t>(Fnv1a(name) % endpoints_.size());
}

const RegionSplit* ShardMap::FindSplit(const std::string& name) const {
  auto it = splits_.find(name);
  return it == splits_.end() ? nullptr : &it->second;
}

Result<std::vector<ShardMap::Target>> ShardMap::QueryTargets(
    const std::string& name, const MInterval& region) const {
  std::vector<Target> targets;
  const RegionSplit* split = FindSplit(name);
  if (split == nullptr) {
    targets.push_back(Target{OwnerOf(name), region});
    return targets;
  }
  if (split->axis >= region.dim()) {
    return Status::InvalidArgument(
        "split axis " + std::to_string(split->axis) + " out of range for " +
        std::to_string(region.dim()) + "-d region");
  }
  // Clip the region against each slab: the slab interval is unbounded on
  // every other axis, so Intersection only narrows the split axis.
  std::vector<Coord> lo(region.dim(), kLoUnbounded);
  std::vector<Coord> hi(region.dim(), kHiUnbounded);
  for (size_t slab = 0; slab <= split->cuts.size(); ++slab) {
    SlabBounds(*split, slab, &lo[split->axis], &hi[split->axis]);
    Result<MInterval> slab_iv = MInterval::Create(lo, hi);
    if (!slab_iv.ok()) return slab_iv.status();
    std::optional<MInterval> clipped = region.Intersection(*slab_iv);
    if (!clipped.has_value()) continue;
    targets.push_back(Target{split->shards[slab], std::move(*clipped)});
  }
  return targets;
}

Result<uint32_t> ShardMap::TileOwner(const std::string& name,
                                     const MInterval& domain) const {
  const RegionSplit* split = FindSplit(name);
  if (split == nullptr) return OwnerOf(name);
  if (split->axis >= domain.dim()) {
    return Status::InvalidArgument(
        "split axis " + std::to_string(split->axis) +
        " out of range for tile " + domain.ToString());
  }
  for (size_t slab = 0; slab <= split->cuts.size(); ++slab) {
    Coord lo, hi;
    SlabBounds(*split, slab, &lo, &hi);
    if (domain.lo(split->axis) >= lo && domain.hi(split->axis) <= hi) {
      return split->shards[slab];
    }
  }
  return Status::InvalidArgument(
      "tile " + domain.ToString() + " of '" + name +
      "' straddles a shard cut; splits must be tile-aligned");
}

std::vector<uint32_t> ShardMap::AllOwners(const std::string& name) const {
  const RegionSplit* split = FindSplit(name);
  if (split == nullptr) return {OwnerOf(name)};
  std::vector<uint32_t> owners = split->shards;
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

}  // namespace cluster
}  // namespace tilestore
