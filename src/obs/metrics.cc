#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace tilestore {
namespace obs {

namespace {

// Round-robin thread-slot assignment: each thread gets a fixed stripe for
// its lifetime, spreading concurrent writers over the counter's slots.
std::atomic<size_t> g_next_thread_slot{0};

thread_local size_t t_thread_slot =
    g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

// Shortest round-trippable formatting for doubles in exports.
void AppendDouble(std::string* out, double v) { AppendF(out, "%.17g", v); }

std::string PromName(const std::string& name) {
  std::string p = name;
  for (char& c : p) {
    if (!((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == ':')) {
      c = '_';
    }
  }
  return p;
}

}  // namespace

size_t Counter::SlotIndex() { return t_thread_slot % kSlots; }

// ---------------------------------------------------------------------------
// Histogram

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double> kBounds = {
      0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250,
      500, 1000};
  return kBounds;
}

const std::vector<double>& Histogram::DefaultSizeBounds() {
  static const std::vector<double> kBounds = {1,  2,   4,   8,   16,  32,
                                              64, 128, 256, 512, 1024};
  return kBounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double old_sum;
    std::memcpy(&old_sum, &old_bits, sizeof(old_sum));
    const double new_sum = old_sum + value;
    uint64_t new_bits;
    std::memcpy(&new_bits, &new_sum, sizeof(new_bits));
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

double Histogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it != gauges.end() ? it->second : 0;
}

double MetricsSnapshot::double_gauge(const std::string& name) const {
  const auto it = double_gauges.find(name);
  return it != double_gauges.end() ? it->second : 0.0;
}

uint64_t MetricsSnapshot::CounterDelta(const MetricsSnapshot& earlier,
                                       const std::string& name) const {
  const uint64_t now = counter(name);
  const uint64_t then = earlier.counter(name);
  return now >= then ? now - then : 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    AppendF(&out, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(), value);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    AppendF(&out, "%s\"%s\":%" PRId64, first ? "" : ",", name.c_str(), value);
    first = false;
  }
  out += "},\"double_gauges\":{";
  first = true;
  for (const auto& [name, value] : double_gauges) {
    AppendF(&out, "%s\"%s\":", first ? "" : ",", name.c_str());
    AppendDouble(&out, value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    AppendF(&out, "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":",
            first ? "" : ",", name.c_str(), h.count);
    AppendDouble(&out, h.sum);
    out += ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ",";
      AppendDouble(&out, h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      AppendF(&out, "%s%" PRIu64, i > 0 ? "," : "", h.buckets[i]);
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s counter\n%s %" PRIu64 "\n", p.c_str(), p.c_str(),
            value);
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n%s %" PRId64 "\n", p.c_str(), p.c_str(),
            value);
  }
  for (const auto& [name, value] : double_gauges) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n%s ", p.c_str(), p.c_str());
    AppendDouble(&out, value);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = PromName(name);
    AppendF(&out, "# TYPE %s histogram\n", p.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      AppendF(&out, "%s_bucket{le=\"", p.c_str());
      AppendDouble(&out, h.bounds[i]);
      AppendF(&out, "\"} %" PRIu64 "\n", cumulative);
    }
    cumulative += h.buckets.empty() ? 0 : h.buckets.back();
    AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", p.c_str(),
            cumulative);
    AppendF(&out, "%s_sum ", p.c_str());
    AppendDouble(&out, h.sum);
    AppendF(&out, "\n%s_count %" PRIu64 "\n", p.c_str(), h.count);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

DoubleGauge* MetricsRegistry::double_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<DoubleGauge>& slot = double_gauges_[name];
  if (slot == nullptr) slot = std::make_unique<DoubleGauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, g] : double_gauges_) {
    snap.double_gauges[name] = g->Value();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.buckets = h->BucketCounts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, g] : double_gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace tilestore
