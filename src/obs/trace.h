#ifndef TILESTORE_OBS_TRACE_H_
#define TILESTORE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tilestore {
namespace obs {

/// One begin/end event of a span. `name` must be a string literal (events
/// store the pointer, not a copy — the ring stays allocation-free after
/// construction).
struct TraceEvent {
  uint64_t trace_id = 0;  // groups all spans of one query
  const char* name = "";  // static literal, e.g. "index_probe"
  bool begin = true;
  uint32_t thread_id = 0;  // small per-process id, stable per thread
  uint64_t t_us = 0;       // microseconds since the ring was created
};

/// \brief Bounded ring buffer of trace events.
///
/// Spans are cheap but not free (one mutex acquisition per event); they
/// mark phase boundaries — index probe, tile fetch, decode, compose —
/// not per-cell work, so a query emits tens of events, not millions.
/// When the ring is full the oldest events are overwritten; `dropped()`
/// counts the overwritten ones so a drain can tell it is looking at a
/// suffix of the history.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 8192);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Fresh id for one query's spans.
  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void Emit(uint64_t trace_id, const char* name, bool begin);

  /// Copies out every buffered event in emission order and clears the
  /// ring. `dropped()` is reset too.
  std::vector<TraceEvent> Drain();

  /// Drains as a JSON array (one object per event):
  ///   [{"trace":1,"name":"query","ph":"B","tid":0,"t_us":12}, ...]
  /// "ph" is "B"/"E" begin/end, Chrome-trace style.
  std::string DrainJson();

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return ring_.size(); }

  /// Small stable id of the calling thread (also used by tests to check
  /// per-thread span nesting).
  static uint32_t CurrentThreadId();

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;   // ring slot of the next emit
  size_t count_ = 0;  // valid events, <= ring_.size()
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> next_trace_id_{0};
};

/// RAII span: emits a begin event on construction and the matching end
/// event on destruction. A null ring disables the span entirely.
class TraceScope {
 public:
  TraceScope(TraceRing* ring, uint64_t trace_id, const char* name)
      : ring_(ring), trace_id_(trace_id), name_(name) {
    if (ring_ != nullptr) ring_->Emit(trace_id_, name_, /*begin=*/true);
  }
  ~TraceScope() {
    if (ring_ != nullptr) ring_->Emit(trace_id_, name_, /*begin=*/false);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRing* ring_;
  uint64_t trace_id_;
  const char* name_;
};

}  // namespace obs
}  // namespace tilestore

#endif  // TILESTORE_OBS_TRACE_H_
