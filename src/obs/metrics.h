#ifndef TILESTORE_OBS_METRICS_H_
#define TILESTORE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tilestore {
namespace obs {

/// \brief Lock-cheap instrumentation registry — the one surface behind
/// every stats API of the store (see DESIGN.md §8).
///
/// Contract:
///  - *Registration* (`counter()`/`gauge()`/...) takes a mutex and is
///    idempotent: the same name always yields the same object, whose
///    address is stable for the registry's lifetime. Components resolve
///    their metric pointers once, at construction/attach time.
///  - *Updates* are wait-free atomic operations on those pointers; the
///    hot path never touches the registry itself. Counters stripe their
///    adds over cache-line-padded slots keyed by thread, so concurrent
///    writers do not ping-pong one cache line.
///  - *Snapshot* (`Snapshot()`) is a point-in-time read: each metric is
///    read atomically, but the set is not globally atomic — concurrent
///    updates may land between two metrics of one snapshot. Interval
///    measurements are the difference of two snapshots
///    (`MetricsSnapshot::CounterDelta`).
///  - *Reset* zeroes values but never unregisters: `ResetAll()` zeroes
///    the whole registry; individual metrics expose `Reset()` so a
///    component can zero its own slice (e.g. `DiskModel::Reset()`
///    between benchmark queries) without touching its neighbours'.

/// Monotonic counter, sharded over padded atomic slots.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    slots_[SlotIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  static constexpr size_t kSlots = 8;
  static size_t SlotIndex();

  std::array<Slot, kSlots> slots_;
};

/// Point-in-time signed value (queue depths, cached pages).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time double (the disk model's bit-exact accumulated ms).
/// Set-only: the owner accumulates under its own synchronization and
/// publishes the exact double here, so snapshots carry the same bits the
/// legacy accessors return.
class DoubleGauge {
 public:
  void Set(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`;
/// one implicit overflow bucket counts the rest. Buckets are cumulative
/// only in the Prometheus export; internally they are disjoint.
class Histogram {
 public:
  /// Default bounds suit latencies in milliseconds (10 µs .. 1 s).
  static const std::vector<double>& DefaultLatencyBoundsMs();
  /// Bounds for small integer sizes (batch sizes, run lengths).
  static const std::vector<double>& DefaultSizeBounds();

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Disjoint per-bucket counts; size is bounds().size() + 1 (overflow).
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  // Sum of observed values, accumulated with a CAS loop on the bit
  // pattern (atomic<double>::fetch_add is not universally lock-free).
  std::atomic<uint64_t> sum_bits_{0};
};

/// One histogram's decoded state inside a snapshot.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // disjoint; bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0;
};

/// Point-in-time copy of a registry. Maps are ordered so exports are
/// deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, double> double_gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value, 0 when absent.
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  double double_gauge(const std::string& name) const;

  /// this[name] - earlier[name], saturating at 0 (a Reset between the two
  /// snapshots yields 0, not a wrapped difference).
  uint64_t CounterDelta(const MetricsSnapshot& earlier,
                        const std::string& name) const;

  /// Single-line JSON object: {"counters":{...},"gauges":{...},
  /// "double_gauges":{...},"histograms":{...}}. One line so bench JSON
  /// reports can embed it as a record field.
  std::string ToJson() const;

  /// Prometheus text exposition format. Metric names have '.' mapped to
  /// '_'; histograms export cumulative `_bucket{le=...}`, `_sum`,
  /// `_count` series.
  std::string ToPrometheusText() const;
};

/// The registry. Thread-safe; see the contract above.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent registration; names are dotted paths ("disk.pages_read").
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  DoubleGauge* double_gauge(const std::string& name);
  /// Registers with `bounds` on first call; later calls ignore `bounds`.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);
  Histogram* latency_histogram(const std::string& name) {
    return histogram(name, Histogram::DefaultLatencyBoundsMs());
  }
  Histogram* size_histogram(const std::string& name) {
    return histogram(name, Histogram::DefaultSizeBounds());
  }

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric (values, not registrations).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<DoubleGauge>> double_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace tilestore

#endif  // TILESTORE_OBS_METRICS_H_
