#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace tilestore {
namespace obs {

namespace {

std::atomic<uint32_t> g_next_thread_id{0};

thread_local uint32_t t_thread_id =
    g_next_thread_id.fetch_add(1, std::memory_order_relaxed);

}  // namespace

uint32_t TraceRing::CurrentThreadId() { return t_thread_id; }

TraceRing::TraceRing(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_(capacity > 0 ? capacity : 1) {}

void TraceRing::Emit(uint64_t trace_id, const char* name, bool begin) {
  TraceEvent event;
  event.trace_id = trace_id;
  event.name = name;
  event.begin = begin;
  event.thread_id = CurrentThreadId();
  event.t_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());

  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == ring_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++count_;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % ring_.size();
}

std::vector<TraceEvent> TraceRing::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event first: with a full ring the oldest sits at next_.
  const size_t start = (next_ + ring_.size() - count_) % ring_.size();
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  count_ = 0;
  next_ = 0;
  dropped_.store(0, std::memory_order_relaxed);
  return out;
}

std::string TraceRing::DrainJson() {
  const std::vector<TraceEvent> events = Drain();
  std::string out = "[";
  char buf[192];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"trace\":%" PRIu64
                  ",\"name\":\"%s\",\"ph\":\"%s\",\"tid\":%u,\"t_us\":%" PRIu64
                  "}",
                  i > 0 ? "," : "", e.trace_id, e.name, e.begin ? "B" : "E",
                  e.thread_id, e.t_us);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace tilestore
