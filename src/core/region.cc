#include "core/region.h"

#include <cassert>

namespace tilestore {

std::vector<MInterval> SubtractBox(const MInterval& piece,
                                   const MInterval& box) {
  assert(piece.dim() == box.dim());
  if (!piece.Intersects(box)) return {piece};
  const MInterval overlap = *piece.Intersection(box);
  if (overlap == piece) return {};

  std::vector<MInterval> out;
  // Slab decomposition: walk the axes, peeling off the parts of `piece`
  // hanging over `overlap` on each side; `lo`/`hi` tracks the shrinking
  // remainder, which equals `overlap` at the end (and is dropped).
  std::vector<Coord> lo(piece.lo()), hi(piece.hi());
  for (size_t i = 0; i < piece.dim(); ++i) {
    if (lo[i] < overlap.lo(i)) {
      std::vector<Coord> slab_lo(lo), slab_hi(hi);
      slab_hi[i] = overlap.lo(i) - 1;
      out.push_back(MInterval::Create(std::move(slab_lo),
                                      std::move(slab_hi)).value());
      lo[i] = overlap.lo(i);
    }
    if (hi[i] > overlap.hi(i)) {
      std::vector<Coord> slab_lo(lo), slab_hi(hi);
      slab_lo[i] = overlap.hi(i) + 1;
      out.push_back(MInterval::Create(std::move(slab_lo),
                                      std::move(slab_hi)).value());
      hi[i] = overlap.hi(i);
    }
  }
  return out;
}

std::vector<MInterval> Subtract(const MInterval& region,
                                const std::vector<MInterval>& boxes) {
  std::vector<MInterval> pieces = {region};
  for (const MInterval& box : boxes) {
    std::vector<MInterval> next;
    next.reserve(pieces.size());
    for (const MInterval& piece : pieces) {
      std::vector<MInterval> remains = SubtractBox(piece, box);
      next.insert(next.end(), remains.begin(), remains.end());
    }
    pieces = std::move(next);
    if (pieces.empty()) break;
  }
  return pieces;
}

}  // namespace tilestore
