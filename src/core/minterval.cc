#include "core/minterval.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <sstream>

namespace tilestore {

namespace {

// Parses a single bound token: "*" or a decimal integer.
// `is_lo` selects which unbounded sentinel '*' maps to.
bool ParseBound(std::string_view token, bool is_lo, Coord* out) {
  if (token == "*") {
    *out = is_lo ? kLoUnbounded : kHiUnbounded;
    return true;
  }
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

Result<MInterval> MInterval::Create(std::vector<Coord> lo,
                                    std::vector<Coord> hi) {
  if (lo.size() != hi.size()) {
    return Status::InvalidArgument("lo/hi dimension mismatch");
  }
  for (size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) {
      return Status::InvalidArgument("interval has lo > hi on axis " +
                                     std::to_string(i));
    }
  }
  return MInterval(std::move(lo), std::move(hi));
}

MInterval::MInterval(std::initializer_list<std::pair<Coord, Coord>> bounds) {
  lo_.reserve(bounds.size());
  hi_.reserve(bounds.size());
  for (const auto& [l, u] : bounds) {
    assert(l <= u);
    lo_.push_back(l);
    hi_.push_back(u);
  }
}

Result<MInterval> MInterval::Parse(std::string_view text) {
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    return Status::InvalidArgument("interval must be bracketed: " +
                                   std::string(text));
  }
  std::string_view body = text.substr(1, text.size() - 2);
  std::vector<Coord> lo, hi;
  while (!body.empty()) {
    size_t comma = body.find(',');
    std::string_view axis =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    if (comma != std::string_view::npos && comma + 1 == body.size()) {
      return Status::InvalidArgument("trailing comma in " + std::string(text));
    }
    body = comma == std::string_view::npos ? std::string_view()
                                           : body.substr(comma + 1);
    size_t colon = axis.find(':');
    Coord l = 0, u = 0;
    if (colon == std::string_view::npos) {
      // Single coordinate, e.g. "[5,0:9]": a section of thickness one
      // along this axis (the paper's access type (d)).
      if (axis == "*" || !ParseBound(axis, /*is_lo=*/true, &l)) {
        return Status::InvalidArgument("malformed bound in " +
                                       std::string(text));
      }
      u = l;
    } else if (!ParseBound(axis.substr(0, colon), /*is_lo=*/true, &l) ||
               !ParseBound(axis.substr(colon + 1), /*is_lo=*/false, &u)) {
      return Status::InvalidArgument("malformed bound in " + std::string(text));
    }
    lo.push_back(l);
    hi.push_back(u);
  }
  if (lo.empty()) {
    return Status::InvalidArgument("empty interval: " + std::string(text));
  }
  return Create(std::move(lo), std::move(hi));
}

MInterval MInterval::OfExtents(const std::vector<Coord>& extents) {
  std::vector<Coord> lo(extents.size(), 0);
  std::vector<Coord> hi(extents.size());
  for (size_t i = 0; i < extents.size(); ++i) {
    assert(extents[i] >= 1);
    hi[i] = extents[i] - 1;
  }
  return MInterval(std::move(lo), std::move(hi));
}

bool MInterval::IsFixed() const {
  for (size_t i = 0; i < dim(); ++i) {
    if (lo_unbounded(i) || hi_unbounded(i)) return false;
  }
  return true;
}

Coord MInterval::Extent(size_t i) const {
  assert(!lo_unbounded(i) && !hi_unbounded(i));
  return hi_[i] - lo_[i] + 1;
}

std::vector<Coord> MInterval::Extents() const {
  std::vector<Coord> out(dim());
  for (size_t i = 0; i < dim(); ++i) out[i] = Extent(i);
  return out;
}

Result<uint64_t> MInterval::CellCount() const {
  if (!IsFixed()) {
    return Status::InvalidArgument("cell count of unbounded interval " +
                                   ToString());
  }
  unsigned __int128 count = 1;
  for (size_t i = 0; i < dim(); ++i) {
    count *= static_cast<unsigned __int128>(Extent(i));
    if (count > UINT64_MAX) {
      return Status::OutOfRange("cell count overflows uint64: " + ToString());
    }
  }
  return static_cast<uint64_t>(count);
}

uint64_t MInterval::CellCountOrDie() const {
  Result<uint64_t> count = CellCount();
  assert(count.ok());
  return count.value();
}

Point MInterval::LowCorner() const {
  assert(IsFixed());
  return Point(lo_);
}

Point MInterval::HighCorner() const {
  assert(IsFixed());
  return Point(hi_);
}

bool MInterval::Contains(const Point& p) const {
  if (p.dim() != dim()) return false;
  for (size_t i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool MInterval::Contains(const MInterval& other) const {
  if (other.dim() != dim()) return false;
  for (size_t i = 0; i < dim(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool MInterval::Intersects(const MInterval& other) const {
  if (other.dim() != dim()) return false;
  for (size_t i = 0; i < dim(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

std::optional<MInterval> MInterval::Intersection(const MInterval& other) const {
  assert(other.dim() == dim());
  if (!Intersects(other)) return std::nullopt;
  std::vector<Coord> lo(dim()), hi(dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo[i] = std::max(lo_[i], other.lo_[i]);
    hi[i] = std::min(hi_[i], other.hi_[i]);
  }
  return MInterval(std::move(lo), std::move(hi));
}

MInterval MInterval::Hull(const MInterval& other) const {
  assert(other.dim() == dim());
  std::vector<Coord> lo(dim()), hi(dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo[i] = std::min(lo_[i], other.lo_[i]);
    hi[i] = std::max(hi_[i], other.hi_[i]);
  }
  return MInterval(std::move(lo), std::move(hi));
}

MInterval MInterval::Translate(const Point& offset) const {
  assert(offset.dim() == dim());
  std::vector<Coord> lo(dim()), hi(dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo[i] = lo_unbounded(i) ? kLoUnbounded : lo_[i] + offset[i];
    hi[i] = hi_unbounded(i) ? kHiUnbounded : hi_[i] + offset[i];
  }
  return MInterval(std::move(lo), std::move(hi));
}

std::string MInterval::ToString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dim(); ++i) {
    if (i > 0) os << ',';
    if (lo_unbounded(i)) {
      os << '*';
    } else {
      os << lo_[i];
    }
    os << ':';
    if (hi_unbounded(i)) {
      os << '*';
    } else {
      os << hi_[i];
    }
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const MInterval& iv) {
  return os << iv.ToString();
}

bool MIntervalLess::operator()(const MInterval& a, const MInterval& b) const {
  if (a.lo() != b.lo()) {
    return std::lexicographical_compare(a.lo().begin(), a.lo().end(),
                                        b.lo().begin(), b.lo().end());
  }
  return std::lexicographical_compare(a.hi().begin(), a.hi().end(),
                                      b.hi().begin(), b.hi().end());
}

}  // namespace tilestore
