#ifndef TILESTORE_CORE_PREDICATE_H_
#define TILESTORE_CORE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace tilestore {

/// \brief A value predicate over array cells — the filter of a
/// "cells where v < c inside this box" query (DESIGN.md §15).
///
/// Four comparison shapes cover the served surface:
///   kLess     v <  a
///   kGreater  v >  a
///   kBetween  a <= v <= b   (closed on both ends)
///   kEqual    v == a
///
/// Cells are compared after widening to double, exactly like the
/// aggregation kernels — so the predicate means the same thing for every
/// numeric cell type, and a tile summary's min/max (also doubles) can
/// answer "could any cell match?" without decoding the tile. Non-numeric
/// cell types (rgb8, opaque) cannot be filtered.
struct ValuePredicate {
  enum class Kind : uint8_t { kLess = 0, kGreater = 1, kBetween = 2,
                              kEqual = 3 };

  Kind kind = Kind::kLess;
  double a = 0;  // the constant; the lower bound for kBetween
  double b = 0;  // the upper bound (kBetween only)

  /// True when the (widened) cell value satisfies the predicate. NaN
  /// never matches any comparison.
  bool Matches(double v) const {
    switch (kind) {
      case Kind::kLess:    return v < a;
      case Kind::kGreater: return v > a;
      case Kind::kBetween: return v >= a && v <= b;
      case Kind::kEqual:   return v == a;
    }
    return false;
  }

  /// Structural validity: kBetween needs a <= b; constants must not be
  /// NaN (a NaN bound matches nothing and is always a caller bug).
  Status Validate() const;

  /// Round-trips through `Parse`: "v<10", "v>2.5", "v in [2,5]", "v==3".
  std::string ToString() const;

  /// Parses the textual forms the CLI and loadgen accept (whitespace
  /// tolerated): "v<C", "v>C", "v==C", "v in [A,B]".
  static Result<ValuePredicate> Parse(std::string_view text);

  bool operator==(const ValuePredicate&) const = default;
};

}  // namespace tilestore

#endif  // TILESTORE_CORE_PREDICATE_H_
