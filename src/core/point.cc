#include "core/point.h"

#include <cassert>
#include <sstream>

namespace tilestore {

Point Point::operator+(const Point& other) const {
  assert(dim() == other.dim());
  Point out(dim());
  for (size_t i = 0; i < dim(); ++i) out[i] = coords_[i] + other[i];
  return out;
}

Point Point::operator-(const Point& other) const {
  assert(dim() == other.dim());
  Point out(dim());
  for (size_t i = 0; i < dim(); ++i) out[i] = coords_[i] - other[i];
  return out;
}

std::string Point::ToString() const {
  std::ostringstream os;
  os << '(';
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) os << ',';
    os << coords_[i];
  }
  os << ')';
  return os.str();
}

bool RowMajorLess::operator()(const Point& a, const Point& b) const {
  assert(a.dim() == b.dim());
  for (size_t i = 0; i < a.dim(); ++i) {
    if (a[i] < b[i]) return true;
    if (a[i] > b[i]) return false;
  }
  return false;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << p.ToString();
}

}  // namespace tilestore
