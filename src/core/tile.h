#ifndef TILESTORE_CORE_TILE_H_
#define TILESTORE_CORE_TILE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/array.h"
#include "core/minterval.h"

namespace tilestore {

/// \brief A tile: a multidimensional sub-array of an MDD object with the
/// same dimensionality (Section 4 of the paper). Tiles always have fixed
/// bounds; their cells are stored together in one BLOB.
///
/// In memory, a tile is simply an `Array` whose domain is the tile domain —
/// the distinction is conceptual: tiles are the unit of disk access.
using Tile = Array;

/// \brief A tiling: a set of disjoint tile *domains* of an MDD object
/// (Section 4). Produced by tiling strategies; consumed by `CutTiles` and
/// by MDD loading. Coverage of the object's domain may be partial.
using TilingSpec = std::vector<MInterval>;

/// Materializes tiles from a source array according to `spec`.
///
/// Every interval in `spec` must be contained in `source.domain()`. Tiles
/// are returned in the order of `spec`. This is the "second phase" of the
/// paper's tiling pipeline: "Only at that point are the cells that
/// constitute each tile copied together".
Result<std::vector<Tile>> CutTiles(const Array& source, const TilingSpec& spec);

/// Total number of cells covered by a spec (no overlap assumed).
uint64_t SpecCellCount(const TilingSpec& spec);

/// Largest tile size in bytes for the given cell size.
uint64_t SpecMaxTileBytes(const TilingSpec& spec, size_t cell_size);

}  // namespace tilestore

#endif  // TILESTORE_CORE_TILE_H_
