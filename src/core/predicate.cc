#include "core/predicate.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace tilestore {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Result<double> ParseNumber(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty number in predicate");
  const std::string owned(s);
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument("bad number in predicate: '" + owned +
                                   "'");
  }
  if (std::isnan(v)) {
    return Status::InvalidArgument("NaN is not a valid predicate constant");
  }
  return v;
}

std::string FormatNumber(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

Status ValuePredicate::Validate() const {
  if (std::isnan(a) || (kind == Kind::kBetween && std::isnan(b))) {
    return Status::InvalidArgument("predicate constant is NaN");
  }
  if (kind == Kind::kBetween && a > b) {
    return Status::InvalidArgument("predicate range is empty (a > b)");
  }
  switch (kind) {
    case Kind::kLess:
    case Kind::kGreater:
    case Kind::kBetween:
    case Kind::kEqual:
      return Status::OK();
  }
  return Status::InvalidArgument("unknown predicate kind");
}

std::string ValuePredicate::ToString() const {
  switch (kind) {
    case Kind::kLess:
      return "v<" + FormatNumber(a);
    case Kind::kGreater:
      return "v>" + FormatNumber(a);
    case Kind::kBetween:
      return "v in [" + FormatNumber(a) + "," + FormatNumber(b) + "]";
    case Kind::kEqual:
      return "v==" + FormatNumber(a);
  }
  return "v<?";
}

Result<ValuePredicate> ValuePredicate::Parse(std::string_view text) {
  std::string_view s = Trim(text);
  if (s.size() < 3 || s[0] != 'v') {
    return Status::InvalidArgument(
        "bad predicate '" + std::string(text) +
        "' (expected v<C, v>C, v==C, or v in [A,B])");
  }
  std::string_view rest = Trim(s.substr(1));
  ValuePredicate pred;
  if (rest.rfind("in", 0) == 0) {
    rest = Trim(rest.substr(2));
    if (rest.size() < 2 || rest.front() != '[' || rest.back() != ']') {
      return Status::InvalidArgument("bad range predicate '" +
                                     std::string(text) + "'");
    }
    rest = rest.substr(1, rest.size() - 2);
    const size_t comma = rest.find(',');
    if (comma == std::string_view::npos) {
      return Status::InvalidArgument("bad range predicate '" +
                                     std::string(text) + "'");
    }
    Result<double> lo = ParseNumber(rest.substr(0, comma));
    if (!lo.ok()) return lo.status();
    Result<double> hi = ParseNumber(rest.substr(comma + 1));
    if (!hi.ok()) return hi.status();
    pred.kind = Kind::kBetween;
    pred.a = *lo;
    pred.b = *hi;
  } else if (rest.rfind("==", 0) == 0) {
    Result<double> c = ParseNumber(rest.substr(2));
    if (!c.ok()) return c.status();
    pred.kind = Kind::kEqual;
    pred.a = *c;
  } else if (rest.front() == '<') {
    Result<double> c = ParseNumber(rest.substr(1));
    if (!c.ok()) return c.status();
    pred.kind = Kind::kLess;
    pred.a = *c;
  } else if (rest.front() == '>') {
    Result<double> c = ParseNumber(rest.substr(1));
    if (!c.ok()) return c.status();
    pred.kind = Kind::kGreater;
    pred.a = *c;
  } else {
    return Status::InvalidArgument(
        "bad predicate '" + std::string(text) +
        "' (expected v<C, v>C, v==C, or v in [A,B])");
  }
  Status st = pred.Validate();
  if (!st.ok()) return st;
  return pred;
}

}  // namespace tilestore
