#include "core/aggregate.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "core/linearizer.h"

namespace tilestore {

namespace {

template <typename T>
double Reduce(const Array& array, AggregateOp op) {
  const T* cells = reinterpret_cast<const T*>(array.data());
  const uint64_t n = array.cell_count();
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kAvg: {
      double sum = 0;
      for (uint64_t i = 0; i < n; ++i) sum += static_cast<double>(cells[i]);
      return op == AggregateOp::kSum ? sum
                                     : sum / static_cast<double>(n);
    }
    case AggregateOp::kMin: {
      double best = std::numeric_limits<double>::infinity();
      for (uint64_t i = 0; i < n; ++i) {
        best = std::min(best, static_cast<double>(cells[i]));
      }
      return best;
    }
    case AggregateOp::kMax: {
      double best = -std::numeric_limits<double>::infinity();
      for (uint64_t i = 0; i < n; ++i) {
        best = std::max(best, static_cast<double>(cells[i]));
      }
      return best;
    }
    case AggregateOp::kCount: {
      uint64_t count = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if (cells[i] != static_cast<T>(0)) ++count;
      }
      return static_cast<double>(count);
    }
  }
  return 0;
}

// Run-based reduction over `region` inside `array` without a slice copy.
// The accumulators and visit order are exactly those of `Reduce<T>` over
// `array.Slice(region)` (row-major region order, doubles for sum/min/max,
// uint64 for count), so the result is bit-identical to the slice kernel.
template <typename T>
double ReduceRegionRuns(const Array& array, const MInterval& region,
                        AggregateOp op) {
  const T* cells = reinterpret_cast<const T*>(array.data());
  const uint64_t run =
      static_cast<uint64_t>(region.Extent(region.dim() - 1));
  const MInterval& domain = array.domain();
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kAvg: {
      double sum = 0;
      ForEachRun(domain, domain, region, [&](uint64_t off, uint64_t) {
        for (uint64_t c = 0; c < run; ++c) {
          sum += static_cast<double>(cells[off + c]);
        }
      });
      return op == AggregateOp::kSum
                 ? sum
                 : sum / static_cast<double>(region.CellCountOrDie());
    }
    case AggregateOp::kMin: {
      double best = std::numeric_limits<double>::infinity();
      ForEachRun(domain, domain, region, [&](uint64_t off, uint64_t) {
        for (uint64_t c = 0; c < run; ++c) {
          best = std::min(best, static_cast<double>(cells[off + c]));
        }
      });
      return best;
    }
    case AggregateOp::kMax: {
      double best = -std::numeric_limits<double>::infinity();
      ForEachRun(domain, domain, region, [&](uint64_t off, uint64_t) {
        for (uint64_t c = 0; c < run; ++c) {
          best = std::max(best, static_cast<double>(cells[off + c]));
        }
      });
      return best;
    }
    case AggregateOp::kCount: {
      uint64_t count = 0;
      ForEachRun(domain, domain, region, [&](uint64_t off, uint64_t) {
        for (uint64_t c = 0; c < run; ++c) {
          if (cells[off + c] != static_cast<T>(0)) ++count;
        }
      });
      return static_cast<double>(count);
    }
  }
  return 0;
}

// Streaming reduction over a PackBits RLE stream. Cells are folded in
// decode order with `Reduce<T>`'s accumulators; repeat runs spanning whole
// cells fold without touching memory (sum still adds per cell — the adds
// must happen in the legacy order for bit-identity — but min/max/count
// collapse to one operation per run, which is exact: folding one value n
// times equals folding it once for those ops).
template <typename T>
Result<double> ReduceRleStream(const std::vector<uint8_t>& stream,
                               uint64_t cell_count, AggregateOp op) {
  constexpr size_t kCell = sizeof(T);
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t nonzero = 0;
  uint8_t buf[kCell];
  size_t fill = 0;
  auto fold = [&](T v) {
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        sum += static_cast<double>(v);
        break;
      case AggregateOp::kMin:
        min = std::min(min, static_cast<double>(v));
        break;
      case AggregateOp::kMax:
        max = std::max(max, static_cast<double>(v));
        break;
      case AggregateOp::kCount:
        if (v != static_cast<T>(0)) ++nonzero;
        break;
    }
  };
  auto push_byte = [&](uint8_t b) {
    // fill < kCell is invariant; the modulo makes it provable for the
    // compiler's bounds checking (kCell is a power of two, so it's an AND).
    buf[fill % kCell] = b;
    if (++fill == kCell) {
      T v;
      std::memcpy(&v, buf, kCell);
      fold(v);
      fill = 0;
    }
  };

  const uint64_t declared_bytes = cell_count * kCell;
  uint64_t bytes_seen = 0;
  size_t i = 0;
  const size_t n = stream.size();
  while (i < n) {
    const uint8_t control = stream[i++];
    if (control == 0x80) {
      return Status::Corruption("reserved RLE control byte");
    }
    if (control < 0x80) {
      const size_t lit = static_cast<size_t>(control) + 1;
      if (i + lit > n) return Status::Corruption("truncated RLE literal run");
      bytes_seen += lit;
      if (bytes_seen > declared_bytes) {
        return Status::Corruption("RLE stream longer than declared size");
      }
      for (size_t k = 0; k < lit; ++k) push_byte(stream[i + k]);
      i += lit;
    } else {
      if (i >= n) return Status::Corruption("truncated RLE repeat run");
      size_t run = 257 - static_cast<size_t>(control);
      const uint8_t b = stream[i++];
      bytes_seen += run;
      if (bytes_seen > declared_bytes) {
        return Status::Corruption("RLE stream longer than declared size");
      }
      // Finish the partially assembled cell, then take whole cells of the
      // repeated byte at once, then start the next partial cell.
      while (run > 0 && fill != 0) {
        push_byte(b);
        --run;
      }
      if (run >= kCell) {
        uint8_t pattern[kCell];
        std::memset(pattern, b, kCell);
        T v;
        std::memcpy(&v, pattern, kCell);
        const uint64_t whole = run / kCell;
        run -= static_cast<size_t>(whole) * kCell;
        switch (op) {
          case AggregateOp::kSum:
          case AggregateOp::kAvg:
            for (uint64_t w = 0; w < whole; ++w) {
              sum += static_cast<double>(v);
            }
            break;
          case AggregateOp::kMin:
            min = std::min(min, static_cast<double>(v));
            break;
          case AggregateOp::kMax:
            max = std::max(max, static_cast<double>(v));
            break;
          case AggregateOp::kCount:
            if (v != static_cast<T>(0)) nonzero += whole;
            break;
        }
      }
      while (run > 0) {
        push_byte(b);
        --run;
      }
    }
  }
  if (fill != 0 || bytes_seen != declared_bytes) {
    return Status::Corruption("RLE stream shorter than declared size");
  }
  switch (op) {
    case AggregateOp::kSum:
      return sum;
    case AggregateOp::kAvg:
      return sum / static_cast<double>(cell_count);
    case AggregateOp::kMin:
      return min;
    case AggregateOp::kMax:
      return max;
    case AggregateOp::kCount:
      return static_cast<double>(nonzero);
  }
  return Status::Internal("unhandled aggregate op");
}

struct OpName {
  AggregateOp op;
  std::string_view name;
};

constexpr OpName kOpNames[] = {
    {AggregateOp::kSum, "add_cells"},   {AggregateOp::kMin, "min_cells"},
    {AggregateOp::kMax, "max_cells"},   {AggregateOp::kAvg, "avg_cells"},
    {AggregateOp::kCount, "count_cells"},
};

}  // namespace

Result<AggregateOp> AggregateOpFromName(std::string_view name) {
  for (const OpName& entry : kOpNames) {
    if (entry.name == name) return entry.op;
  }
  return Status::NotFound("unknown condenser '" + std::string(name) + "'");
}

std::string_view AggregateOpToName(AggregateOp op) {
  for (const OpName& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "unknown";
}

Result<double> CellValueAsDouble(CellType cell_type, const uint8_t* cell) {
  switch (cell_type.id()) {
    case CellTypeId::kUInt8:
      return static_cast<double>(*cell);
    case CellTypeId::kInt8:
      return static_cast<double>(*reinterpret_cast<const int8_t*>(cell));
    case CellTypeId::kUInt16: {
      uint16_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kInt16: {
      int16_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kUInt32: {
      uint32_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kInt32: {
      int32_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kUInt64: {
      uint64_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kFloat32: {
      float v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kFloat64: {
      double v;
      std::memcpy(&v, cell, sizeof(v));
      return v;
    }
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return Status::InvalidArgument(
          "cell type does not support numeric interpretation: " +
          std::string(cell_type.name()));
  }
  return Status::Internal("unhandled cell type");
}

Result<double> AggregateCells(const Array& array, AggregateOp op) {
  if (array.cell_count() == 0) {
    return Status::InvalidArgument("aggregate of empty array");
  }
  switch (array.cell_type().id()) {
    case CellTypeId::kUInt8:
      return Reduce<uint8_t>(array, op);
    case CellTypeId::kInt8:
      return Reduce<int8_t>(array, op);
    case CellTypeId::kUInt16:
      return Reduce<uint16_t>(array, op);
    case CellTypeId::kInt16:
      return Reduce<int16_t>(array, op);
    case CellTypeId::kUInt32:
      return Reduce<uint32_t>(array, op);
    case CellTypeId::kInt32:
      return Reduce<int32_t>(array, op);
    case CellTypeId::kUInt64:
      return Reduce<uint64_t>(array, op);
    case CellTypeId::kInt64:
      return Reduce<int64_t>(array, op);
    case CellTypeId::kFloat32:
      return Reduce<float>(array, op);
    case CellTypeId::kFloat64:
      return Reduce<double>(array, op);
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return Status::InvalidArgument(
          "cell type does not support numeric aggregation: " +
          std::string(array.cell_type().name()));
  }
  return Status::Internal("unhandled cell type");
}

Result<double> AggregateRegion(const Array& array, const MInterval& region,
                               AggregateOp op) {
  if (region.dim() != array.domain().dim() || !region.IsFixed() ||
      !array.domain().Contains(region)) {
    return Status::InvalidArgument("aggregate region " + region.ToString() +
                                   " not inside array domain " +
                                   array.domain().ToString());
  }
  switch (array.cell_type().id()) {
    case CellTypeId::kUInt8:
      return ReduceRegionRuns<uint8_t>(array, region, op);
    case CellTypeId::kInt8:
      return ReduceRegionRuns<int8_t>(array, region, op);
    case CellTypeId::kUInt16:
      return ReduceRegionRuns<uint16_t>(array, region, op);
    case CellTypeId::kInt16:
      return ReduceRegionRuns<int16_t>(array, region, op);
    case CellTypeId::kUInt32:
      return ReduceRegionRuns<uint32_t>(array, region, op);
    case CellTypeId::kInt32:
      return ReduceRegionRuns<int32_t>(array, region, op);
    case CellTypeId::kUInt64:
      return ReduceRegionRuns<uint64_t>(array, region, op);
    case CellTypeId::kInt64:
      return ReduceRegionRuns<int64_t>(array, region, op);
    case CellTypeId::kFloat32:
      return ReduceRegionRuns<float>(array, region, op);
    case CellTypeId::kFloat64:
      return ReduceRegionRuns<double>(array, region, op);
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return Status::InvalidArgument(
          "cell type does not support numeric aggregation: " +
          std::string(array.cell_type().name()));
  }
  return Status::Internal("unhandled cell type");
}

Result<double> AggregateRleStream(const std::vector<uint8_t>& stream,
                                  CellType cell_type, uint64_t cell_count,
                                  AggregateOp op) {
  if (cell_count == 0) {
    return Status::InvalidArgument("aggregate of empty array");
  }
  switch (cell_type.id()) {
    case CellTypeId::kUInt8:
      return ReduceRleStream<uint8_t>(stream, cell_count, op);
    case CellTypeId::kInt8:
      return ReduceRleStream<int8_t>(stream, cell_count, op);
    case CellTypeId::kUInt16:
      return ReduceRleStream<uint16_t>(stream, cell_count, op);
    case CellTypeId::kInt16:
      return ReduceRleStream<int16_t>(stream, cell_count, op);
    case CellTypeId::kUInt32:
      return ReduceRleStream<uint32_t>(stream, cell_count, op);
    case CellTypeId::kInt32:
      return ReduceRleStream<int32_t>(stream, cell_count, op);
    case CellTypeId::kUInt64:
      return ReduceRleStream<uint64_t>(stream, cell_count, op);
    case CellTypeId::kInt64:
      return ReduceRleStream<int64_t>(stream, cell_count, op);
    case CellTypeId::kFloat32:
      return ReduceRleStream<float>(stream, cell_count, op);
    case CellTypeId::kFloat64:
      return ReduceRleStream<double>(stream, cell_count, op);
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return Status::InvalidArgument(
          "cell type does not support numeric aggregation: " +
          std::string(cell_type.name()));
  }
  return Status::Internal("unhandled cell type");
}

}  // namespace tilestore
