#include "core/aggregate.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace tilestore {

namespace {

template <typename T>
double Reduce(const Array& array, AggregateOp op) {
  const T* cells = reinterpret_cast<const T*>(array.data());
  const uint64_t n = array.cell_count();
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kAvg: {
      double sum = 0;
      for (uint64_t i = 0; i < n; ++i) sum += static_cast<double>(cells[i]);
      return op == AggregateOp::kSum ? sum
                                     : sum / static_cast<double>(n);
    }
    case AggregateOp::kMin: {
      double best = std::numeric_limits<double>::infinity();
      for (uint64_t i = 0; i < n; ++i) {
        best = std::min(best, static_cast<double>(cells[i]));
      }
      return best;
    }
    case AggregateOp::kMax: {
      double best = -std::numeric_limits<double>::infinity();
      for (uint64_t i = 0; i < n; ++i) {
        best = std::max(best, static_cast<double>(cells[i]));
      }
      return best;
    }
    case AggregateOp::kCount: {
      uint64_t count = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if (cells[i] != static_cast<T>(0)) ++count;
      }
      return static_cast<double>(count);
    }
  }
  return 0;
}

struct OpName {
  AggregateOp op;
  std::string_view name;
};

constexpr OpName kOpNames[] = {
    {AggregateOp::kSum, "add_cells"},   {AggregateOp::kMin, "min_cells"},
    {AggregateOp::kMax, "max_cells"},   {AggregateOp::kAvg, "avg_cells"},
    {AggregateOp::kCount, "count_cells"},
};

}  // namespace

Result<AggregateOp> AggregateOpFromName(std::string_view name) {
  for (const OpName& entry : kOpNames) {
    if (entry.name == name) return entry.op;
  }
  return Status::NotFound("unknown condenser '" + std::string(name) + "'");
}

std::string_view AggregateOpToName(AggregateOp op) {
  for (const OpName& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "unknown";
}

Result<double> CellValueAsDouble(CellType cell_type, const uint8_t* cell) {
  switch (cell_type.id()) {
    case CellTypeId::kUInt8:
      return static_cast<double>(*cell);
    case CellTypeId::kInt8:
      return static_cast<double>(*reinterpret_cast<const int8_t*>(cell));
    case CellTypeId::kUInt16: {
      uint16_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kInt16: {
      int16_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kUInt32: {
      uint32_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kInt32: {
      int32_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kUInt64: {
      uint64_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kFloat32: {
      float v;
      std::memcpy(&v, cell, sizeof(v));
      return static_cast<double>(v);
    }
    case CellTypeId::kFloat64: {
      double v;
      std::memcpy(&v, cell, sizeof(v));
      return v;
    }
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return Status::InvalidArgument(
          "cell type does not support numeric interpretation: " +
          std::string(cell_type.name()));
  }
  return Status::Internal("unhandled cell type");
}

Result<double> AggregateCells(const Array& array, AggregateOp op) {
  if (array.cell_count() == 0) {
    return Status::InvalidArgument("aggregate of empty array");
  }
  switch (array.cell_type().id()) {
    case CellTypeId::kUInt8:
      return Reduce<uint8_t>(array, op);
    case CellTypeId::kInt8:
      return Reduce<int8_t>(array, op);
    case CellTypeId::kUInt16:
      return Reduce<uint16_t>(array, op);
    case CellTypeId::kInt16:
      return Reduce<int16_t>(array, op);
    case CellTypeId::kUInt32:
      return Reduce<uint32_t>(array, op);
    case CellTypeId::kInt32:
      return Reduce<int32_t>(array, op);
    case CellTypeId::kUInt64:
      return Reduce<uint64_t>(array, op);
    case CellTypeId::kInt64:
      return Reduce<int64_t>(array, op);
    case CellTypeId::kFloat32:
      return Reduce<float>(array, op);
    case CellTypeId::kFloat64:
      return Reduce<double>(array, op);
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return Status::InvalidArgument(
          "cell type does not support numeric aggregation: " +
          std::string(array.cell_type().name()));
  }
  return Status::Internal("unhandled cell type");
}

}  // namespace tilestore
