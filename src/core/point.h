#ifndef TILESTORE_CORE_POINT_H_
#define TILESTORE_CORE_POINT_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace tilestore {

/// Cell coordinate along one axis. The paper maps every discrete coordinate
/// set (days, product models, ...) to a subinterval of Z^d before storage;
/// we therefore use a signed 64-bit integer everywhere.
using Coord = int64_t;

/// \brief A point in d-dimensional discrete space.
///
/// Points are small value types (a handful of coordinates); they are copied
/// freely. The paper's total ordering "lower than" (row-major order, the
/// order used for arrays in C) is provided by `RowMajorLess`.
class Point {
 public:
  Point() = default;
  explicit Point(size_t dim) : coords_(dim, 0) {}
  Point(std::initializer_list<Coord> coords) : coords_(coords) {}
  explicit Point(std::vector<Coord> coords) : coords_(std::move(coords)) {}

  size_t dim() const { return coords_.size(); }
  Coord operator[](size_t i) const { return coords_[i]; }
  Coord& operator[](size_t i) { return coords_[i]; }
  const std::vector<Coord>& coords() const { return coords_; }

  /// Componentwise addition/subtraction. Dimensions must match.
  Point operator+(const Point& other) const;
  Point operator-(const Point& other) const;

  bool operator==(const Point& other) const { return coords_ == other.coords_; }
  bool operator!=(const Point& other) const { return !(*this == other); }

  /// Renders as "(x1,x2,...,xd)".
  std::string ToString() const;

 private:
  std::vector<Coord> coords_;
};

/// \brief The paper's total ordering of points (Section 3): x < y iff there
/// is an axis k with x_k < y_k and x_i == y_i for all i < k. This is exactly
/// lexicographic order, i.e. row-major order of cells.
struct RowMajorLess {
  bool operator()(const Point& a, const Point& b) const;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace tilestore

#endif  // TILESTORE_CORE_POINT_H_
