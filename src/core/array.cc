#include "core/array.h"

namespace tilestore {

namespace {
// Refuse allocations beyond 4 GiB: tilestore arrays are staging buffers,
// not a replacement for out-of-core storage.
constexpr uint64_t kMaxArrayBytes = 4ull << 30;
}  // namespace

Result<Array> Array::Create(const MInterval& domain, CellType cell_type) {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("array domain must be fixed: " +
                                   domain.ToString());
  }
  Result<uint64_t> cells = domain.CellCount();
  if (!cells.ok()) return cells.status();
  const uint64_t bytes = *cells * cell_type.size();
  if (bytes > kMaxArrayBytes) {
    return Status::OutOfRange("array of " + std::to_string(bytes) +
                              " bytes exceeds in-memory limit");
  }
  return Array(domain, cell_type, std::vector<uint8_t>(bytes, 0));
}

Result<Array> Array::FromBuffer(const MInterval& domain, CellType cell_type,
                                std::vector<uint8_t> data) {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("array domain must be fixed: " +
                                   domain.ToString());
  }
  Result<uint64_t> cells = domain.CellCount();
  if (!cells.ok()) return cells.status();
  if (data.size() != *cells * cell_type.size()) {
    return Status::InvalidArgument(
        "buffer size " + std::to_string(data.size()) +
        " does not match domain " + domain.ToString() + " with cell size " +
        std::to_string(cell_type.size()));
  }
  return Array(domain, cell_type, std::move(data));
}

Status Array::CopyFrom(const Array& src, const MInterval& region) {
  if (src.cell_size() != cell_size()) {
    return Status::InvalidArgument("CopyFrom: cell size mismatch");
  }
  return CopyRegion(src.domain(), src.data(), domain_, data_.data(), region,
                    cell_size());
}

Status Array::Fill(const MInterval& region, const void* cell_value) {
  return FillRegion(domain_, data_.data(), region, cell_value, cell_size());
}

Result<Array> Array::Slice(const MInterval& region) const {
  if (!domain_.Contains(region)) {
    return Status::InvalidArgument("Slice: region " + region.ToString() +
                                   " outside domain " + domain_.ToString());
  }
  Result<Array> out = Create(region, cell_type_);
  if (!out.ok()) return out.status();
  Status st = out->CopyFrom(*this, region);
  if (!st.ok()) return st;
  return out;
}

Result<Array> Array::DropAxis(size_t axis) && {
  if (domain_.dim() < 2) {
    return Status::InvalidArgument(
        "cannot drop an axis of a 1-dimensional array");
  }
  if (axis >= domain_.dim()) {
    return Status::InvalidArgument("axis " + std::to_string(axis) +
                                   " out of range");
  }
  if (domain_.Extent(axis) != 1) {
    return Status::InvalidArgument(
        "axis " + std::to_string(axis) + " of " + domain_.ToString() +
        " has extent " + std::to_string(domain_.Extent(axis)) +
        "; only thickness-one axes can be dropped");
  }
  std::vector<Coord> lo, hi;
  lo.reserve(domain_.dim() - 1);
  hi.reserve(domain_.dim() - 1);
  for (size_t i = 0; i < domain_.dim(); ++i) {
    if (i == axis) continue;
    lo.push_back(domain_.lo(i));
    hi.push_back(domain_.hi(i));
  }
  Result<MInterval> section = MInterval::Create(std::move(lo), std::move(hi));
  if (!section.ok()) return section.status();
  return FromBuffer(section.value(), cell_type_, std::move(data_));
}

bool Array::Equals(const Array& other) const {
  return domain_ == other.domain_ && cell_type_ == other.cell_type_ &&
         data_ == other.data_;
}

}  // namespace tilestore
