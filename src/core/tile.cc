#include "core/tile.h"

#include <algorithm>

namespace tilestore {

Result<std::vector<Tile>> CutTiles(const Array& source,
                                   const TilingSpec& spec) {
  std::vector<Tile> tiles;
  tiles.reserve(spec.size());
  for (const MInterval& domain : spec) {
    if (!source.domain().Contains(domain)) {
      return Status::InvalidArgument("tile domain " + domain.ToString() +
                                     " outside source array domain " +
                                     source.domain().ToString());
    }
    Result<Tile> tile = source.Slice(domain);
    if (!tile.ok()) return tile.status();
    tiles.push_back(std::move(tile).MoveValue());
  }
  return tiles;
}

uint64_t SpecCellCount(const TilingSpec& spec) {
  uint64_t total = 0;
  for (const MInterval& iv : spec) total += iv.CellCountOrDie();
  return total;
}

uint64_t SpecMaxTileBytes(const TilingSpec& spec, size_t cell_size) {
  uint64_t max_bytes = 0;
  for (const MInterval& iv : spec) {
    max_bytes = std::max(max_bytes, iv.CellCountOrDie() * cell_size);
  }
  return max_bytes;
}

}  // namespace tilestore
