#ifndef TILESTORE_CORE_AGGREGATE_H_
#define TILESTORE_CORE_AGGREGATE_H_

#include <string_view>

#include "common/result.h"
#include "core/array.h"

namespace tilestore {

/// Cell-condensing operations over arrays — the reductions behind OLAP
/// sub-aggregation queries (Section 5.1 access type (c): "to perform a
/// subaggregation"). Mirrors RasQL's condenser functions.
enum class AggregateOp {
  kSum,    // add_cells
  kMin,    // min_cells
  kMax,    // max_cells
  kAvg,    // avg_cells
  kCount,  // count_cells (cells different from zero)
};

/// Parses a condenser name ("add_cells", "avg_cells", ...).
Result<AggregateOp> AggregateOpFromName(std::string_view name);
std::string_view AggregateOpToName(AggregateOp op);

/// Reduces all cells of `array` with `op`, widening to double. Supported
/// for the numeric built-in cell types (not rgb8/opaque). `kAvg` of an
/// array is sum/count; `kCount` counts non-zero cells.
Result<double> AggregateCells(const Array& array, AggregateOp op);

/// Interprets one cell (`cell_type.size()` bytes at `cell`) as a double.
/// Used to fold an object's default cell value into aggregations over
/// partially covered regions. Numeric built-in types only.
Result<double> CellValueAsDouble(CellType cell_type, const uint8_t* cell);

}  // namespace tilestore

#endif  // TILESTORE_CORE_AGGREGATE_H_
