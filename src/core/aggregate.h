#ifndef TILESTORE_CORE_AGGREGATE_H_
#define TILESTORE_CORE_AGGREGATE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/array.h"
#include "core/minterval.h"

namespace tilestore {

/// Cell-condensing operations over arrays — the reductions behind OLAP
/// sub-aggregation queries (Section 5.1 access type (c): "to perform a
/// subaggregation"). Mirrors RasQL's condenser functions.
enum class AggregateOp {
  kSum,    // add_cells
  kMin,    // min_cells
  kMax,    // max_cells
  kAvg,    // avg_cells
  kCount,  // count_cells (cells different from zero)
};

/// Parses a condenser name ("add_cells", "avg_cells", ...).
Result<AggregateOp> AggregateOpFromName(std::string_view name);
std::string_view AggregateOpToName(AggregateOp op);

/// Reduces all cells of `array` with `op`, widening to double. Supported
/// for the numeric built-in cell types (not rgb8/opaque). `kAvg` of an
/// array is sum/count; `kCount` counts non-zero cells.
Result<double> AggregateCells(const Array& array, AggregateOp op);

/// Reduces the cells of `region` inside `array` with `op`, without
/// materializing a slice: the reduction walks the innermost-axis runs the
/// copy kernels enumerate (`ForEachRun`) and accumulates in registers.
/// Cells are visited in row-major `region` order — exactly the order
/// `array.Slice(region)` would linearize them in — so the result is
/// bit-identical to `AggregateCells(*array.Slice(region), op)` while
/// skipping the slice allocation and copy. `region` must be fixed and
/// contained in `array.domain()`; numeric cell types only. `kAvg` divides
/// by the region cell count.
Result<double> AggregateRegion(const Array& array, const MInterval& region,
                               AggregateOp op);

/// Reduces a whole RLE-compressed tile directly over the runs of the
/// compressed stream (`Compression::kRle`, the PackBits byte codec of
/// storage/compression.h), without materializing the decoded buffer:
/// literal bytes and short repeats are assembled into cells in a small
/// register buffer; a repeat run spanning whole cells reduces them without
/// any memory traffic. Cells are folded in linear (decode) order with the
/// same accumulator types as `AggregateCells`, so the result is
/// bit-identical to decoding and reducing. `cell_count` is the tile's
/// cell count (known from its domain); the stream must decode to exactly
/// `cell_count * cell_type.size()` bytes (Corruption otherwise). Numeric
/// cell types only; `kAvg` divides by `cell_count`.
Result<double> AggregateRleStream(const std::vector<uint8_t>& stream,
                                  CellType cell_type, uint64_t cell_count,
                                  AggregateOp op);

/// Interprets one cell (`cell_type.size()` bytes at `cell`) as a double.
/// Used to fold an object's default cell value into aggregations over
/// partially covered regions. Numeric built-in types only.
Result<double> CellValueAsDouble(CellType cell_type, const uint8_t* cell);

}  // namespace tilestore

#endif  // TILESTORE_CORE_AGGREGATE_H_
