#ifndef TILESTORE_CORE_ARRAY_H_
#define TILESTORE_CORE_ARRAY_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/cell_type.h"
#include "core/linearizer.h"
#include "core/minterval.h"
#include "core/point.h"

namespace tilestore {

/// \brief An in-memory multidimensional array: a fixed spatial domain, a
/// cell type, and a row-major linearized cell buffer.
///
/// `Array` is the materialized form of MDD data on both ends of the storage
/// manager: data generators produce an `Array` which is cut into tiles on
/// load, and range queries compose intersected tile parts back into an
/// `Array` result.
class Array {
 public:
  /// An empty 0-d array; useful only as a placeholder.
  Array() = default;

  /// Allocates a zero-initialized array over `domain` (must be fixed and
  /// small enough for memory; fails with OutOfRange otherwise).
  static Result<Array> Create(const MInterval& domain, CellType cell_type);

  /// Wraps an existing buffer (moved in). `data.size()` must equal
  /// `domain.CellCount() * cell_type.size()`.
  static Result<Array> FromBuffer(const MInterval& domain, CellType cell_type,
                                  std::vector<uint8_t> data);

  const MInterval& domain() const { return domain_; }
  CellType cell_type() const { return cell_type_; }
  size_t cell_size() const { return cell_type_.size(); }
  uint64_t cell_count() const { return domain_.CellCountOrDie(); }
  size_t size_bytes() const { return data_.size(); }

  const uint8_t* data() const { return data_.data(); }
  uint8_t* mutable_data() { return data_.data(); }
  std::vector<uint8_t> TakeBuffer() && { return std::move(data_); }

  /// Typed cell access. T must match the declared cell type (checked by
  /// assert; opaque arrays only allow raw access).
  template <typename T>
  const T& At(const Point& p) const {
    assert(cell_type_.id() == CellTypeTraits<T>::kId);
    assert(sizeof(T) == cell_size());
    return *reinterpret_cast<const T*>(
        data_.data() + RowMajorOffset(domain_, p) * cell_size());
  }

  template <typename T>
  void Set(const Point& p, const T& value) {
    assert(cell_type_.id() == CellTypeTraits<T>::kId);
    assert(sizeof(T) == cell_size());
    *reinterpret_cast<T*>(data_.data() +
                          RowMajorOffset(domain_, p) * cell_size()) = value;
  }

  /// Raw pointer to the cell at `p`.
  const uint8_t* CellAt(const Point& p) const {
    return data_.data() + RowMajorOffset(domain_, p) * cell_size();
  }
  uint8_t* MutableCellAt(const Point& p) {
    return data_.data() + RowMajorOffset(domain_, p) * cell_size();
  }

  /// Copies `region` (must be inside both domains) from `src` into this
  /// array.
  Status CopyFrom(const Array& src, const MInterval& region);

  /// Fills `region` with the given cell value (cell_size bytes).
  Status Fill(const MInterval& region, const void* cell_value);

  /// Extracts `region` into a new array with domain `region`.
  Result<Array> Slice(const MInterval& region) const;

  /// Removes a thickness-one axis, producing the section of lower
  /// dimensionality (the paper's access type (d): "to obtain a section,
  /// an MDD of lower dimensionality"). `axis` must have extent 1 and the
  /// array must have dim >= 2. Cell data is reused unchanged (row-major
  /// order is preserved when dropping a unit axis).
  Result<Array> DropAxis(size_t axis) &&;

  /// Deep equality: same domain, cell type and bytes.
  bool Equals(const Array& other) const;

 private:
  Array(MInterval domain, CellType cell_type, std::vector<uint8_t> data)
      : domain_(std::move(domain)),
        cell_type_(cell_type),
        data_(std::move(data)) {}

  MInterval domain_;
  CellType cell_type_;
  std::vector<uint8_t> data_;
};

}  // namespace tilestore

#endif  // TILESTORE_CORE_ARRAY_H_
