#ifndef TILESTORE_CORE_MINTERVAL_H_
#define TILESTORE_CORE_MINTERVAL_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/point.h"

namespace tilestore {

/// Sentinel bounds expressing the paper's '*' (unlimited) domain bounds.
/// An axis whose lower bound is `kLoUnbounded` (or upper bound is
/// `kHiUnbounded`) has no limit in that direction; such intervals are valid
/// as *definition domains* of MDD types but not as tile domains.
inline constexpr Coord kLoUnbounded = INT64_MIN;
inline constexpr Coord kHiUnbounded = INT64_MAX;

/// \brief A d-dimensional interval [l1:u1, ..., ld:ud] over Z^d
/// (Section 3 of the paper).
///
/// Both bounds are inclusive, matching the paper's notation: the sales cube
/// of Table 1 is `[1:730,1:60,1:100]`. Bounds may be unbounded ('*') on
/// either side of any axis; all geometric operations treat an unbounded
/// bound as -inf/+inf. Intervals with at least one cell per axis only —
/// empty intervals are represented by `std::optional<MInterval>` absence at
/// the call sites that can produce them (e.g. `Intersection`).
class MInterval {
 public:
  /// Constructs a 0-dimensional interval (rarely useful; mostly for
  /// default-constructibility in containers).
  MInterval() = default;

  /// Validating factory. Fails with InvalidArgument if sizes differ or
  /// lo[i] > hi[i] for some axis.
  static Result<MInterval> Create(std::vector<Coord> lo, std::vector<Coord> hi);

  /// Convenience constructor from (lo, hi) pairs; asserts validity.
  /// Intended for literals in tests/examples:
  ///   MInterval d({{1, 730}, {1, 60}, {1, 100}});
  MInterval(std::initializer_list<std::pair<Coord, Coord>> bounds);

  /// Parses the paper's notation "[l1:u1,l2:u2,...]"; '*' denotes an
  /// unbounded bound, e.g. "[0:120,*:*,0:119]".
  static Result<MInterval> Parse(std::string_view text);

  /// The interval spanning lo..hi of an extent vector starting at origin 0,
  /// i.e. [0:e1-1, ..., 0:ed-1].
  static MInterval OfExtents(const std::vector<Coord>& extents);

  size_t dim() const { return lo_.size(); }
  Coord lo(size_t i) const { return lo_[i]; }
  Coord hi(size_t i) const { return hi_[i]; }
  const std::vector<Coord>& lo() const { return lo_; }
  const std::vector<Coord>& hi() const { return hi_; }

  bool lo_unbounded(size_t i) const { return lo_[i] == kLoUnbounded; }
  bool hi_unbounded(size_t i) const { return hi_[i] == kHiUnbounded; }

  /// True if no axis has an unbounded bound; only fixed intervals have a
  /// cell count and can serve as tile domains or query regions.
  bool IsFixed() const;

  /// Number of cells along axis i. Requires that axis to be bounded.
  Coord Extent(size_t i) const;

  /// Extent vector (e1, ..., ed). Requires `IsFixed()`.
  std::vector<Coord> Extents() const;

  /// Total number of cells. Requires `IsFixed()`; fails with OutOfRange on
  /// 64-bit overflow.
  Result<uint64_t> CellCount() const;

  /// Total number of cells, asserting no overflow. For internal callers
  /// that already validated the domain.
  uint64_t CellCountOrDie() const;

  /// Lowest / highest corner of the interval. Requires `IsFixed()`.
  Point LowCorner() const;
  Point HighCorner() const;

  bool Contains(const Point& p) const;
  bool Contains(const MInterval& other) const;
  bool Intersects(const MInterval& other) const;

  /// Intersection; nullopt when disjoint. Dimensions must match.
  std::optional<MInterval> Intersection(const MInterval& other) const;

  /// Closure / hull: the minimal interval containing both (the paper's
  /// closure operation used to maintain the current domain on tile insert).
  MInterval Hull(const MInterval& other) const;

  /// Translated copy (per-axis shift). Unbounded bounds stay unbounded.
  MInterval Translate(const Point& offset) const;

  bool operator==(const MInterval& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }
  bool operator!=(const MInterval& other) const { return !(*this == other); }

  /// Renders the paper notation, e.g. "[1:730,1:60,1:100]" or
  /// "[0:*,*:5]" for unbounded axes.
  std::string ToString() const;

 private:
  MInterval(std::vector<Coord> lo, std::vector<Coord> hi)
      : lo_(std::move(lo)), hi_(std::move(hi)) {}

  std::vector<Coord> lo_;
  std::vector<Coord> hi_;
};

std::ostream& operator<<(std::ostream& os, const MInterval& iv);

/// Deterministic total order on intervals (lexicographic on lo, then hi).
/// Used to canonicalize tiling specs for comparison in tests.
struct MIntervalLess {
  bool operator()(const MInterval& a, const MInterval& b) const;
};

}  // namespace tilestore

#endif  // TILESTORE_CORE_MINTERVAL_H_
