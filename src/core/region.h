#ifndef TILESTORE_CORE_REGION_H_
#define TILESTORE_CORE_REGION_H_

#include <vector>

#include "core/minterval.h"

namespace tilestore {

/// \file
/// Small region algebra over multidimensional intervals, used by the MDD
/// update path: writing a region must split the part not covered by any
/// existing tile into disjoint boxes that become new tiles.

/// Subtracts `box` from `piece`, returning disjoint intervals that cover
/// exactly `piece \ box`. Returns `{piece}` when they do not intersect and
/// an empty vector when `box` covers `piece`. The pieces are produced by
/// axis-ordered slab decomposition (at most 2d pieces).
std::vector<MInterval> SubtractBox(const MInterval& piece,
                                   const MInterval& box);

/// Subtracts every box in `boxes` from `region`; the result is a set of
/// disjoint intervals covering exactly the cells of `region` inside none
/// of the boxes.
std::vector<MInterval> Subtract(const MInterval& region,
                                const std::vector<MInterval>& boxes);

}  // namespace tilestore

#endif  // TILESTORE_CORE_REGION_H_
