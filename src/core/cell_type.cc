#include "core/cell_type.h"

#include <cassert>

namespace tilestore {

namespace {

struct BuiltinInfo {
  CellTypeId id;
  size_t size;
  std::string_view name;
};

constexpr BuiltinInfo kBuiltins[] = {
    {CellTypeId::kUInt8, 1, "uint8"},     {CellTypeId::kInt8, 1, "int8"},
    {CellTypeId::kUInt16, 2, "uint16"},   {CellTypeId::kInt16, 2, "int16"},
    {CellTypeId::kUInt32, 4, "uint32"},   {CellTypeId::kInt32, 4, "int32"},
    {CellTypeId::kUInt64, 8, "uint64"},   {CellTypeId::kInt64, 8, "int64"},
    {CellTypeId::kFloat32, 4, "float32"}, {CellTypeId::kFloat64, 8, "float64"},
    {CellTypeId::kRGB8, 3, "rgb8"},
};

}  // namespace

CellType CellType::Of(CellTypeId id) {
  for (const BuiltinInfo& info : kBuiltins) {
    if (info.id == id) return CellType(info.id, info.size);
  }
  assert(false && "CellType::Of called with non-builtin id");
  return CellType();
}

CellType CellType::Opaque(size_t size) {
  assert(size >= 1);
  return CellType(CellTypeId::kOpaque, size);
}

Result<CellType> CellType::FromName(std::string_view name) {
  for (const BuiltinInfo& info : kBuiltins) {
    if (info.name == name) return CellType(info.id, info.size);
  }
  return Status::NotFound("unknown cell type name: " + std::string(name));
}

std::string_view CellType::name() const {
  for (const BuiltinInfo& info : kBuiltins) {
    if (info.id == id_) return info.name;
  }
  return "opaque";
}

}  // namespace tilestore
