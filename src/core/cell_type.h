#ifndef TILESTORE_CORE_CELL_TYPE_H_
#define TILESTORE_CORE_CELL_TYPE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace tilestore {

/// Identifiers of the built-in base types. `kOpaque` covers user-defined
/// fixed-size structs (the storage manager only ever needs the cell size;
/// per Section 2 of the paper, treatment is uniform across cell types).
enum class CellTypeId : uint8_t {
  kUInt8 = 0,
  kInt8 = 1,
  kUInt16 = 2,
  kInt16 = 3,
  kUInt32 = 4,
  kInt32 = 5,
  kUInt64 = 6,
  kInt64 = 7,
  kFloat32 = 8,
  kFloat64 = 9,
  kRGB8 = 10,   // 3 x uint8, the animation benchmark's cell type
  kOpaque = 11,
};

/// \brief Describes the base type T of MDD cells: an id, a byte size, and a
/// display name. Value type; compare by id+size.
class CellType {
 public:
  /// Default: 1-byte opaque cells.
  CellType() : id_(CellTypeId::kOpaque), size_(1) {}

  /// Built-in type of the given id (not kOpaque).
  static CellType Of(CellTypeId id);

  /// An application-defined fixed-size cell (e.g. a 4-field OLAP measure).
  static CellType Opaque(size_t size);

  /// Looks a built-in type up by name ("uint8", "float64", "rgb8", ...).
  static Result<CellType> FromName(std::string_view name);

  CellTypeId id() const { return id_; }
  size_t size() const { return size_; }
  std::string_view name() const;

  bool operator==(const CellType& other) const {
    return id_ == other.id_ && size_ == other.size_;
  }
  bool operator!=(const CellType& other) const { return !(*this == other); }

 private:
  CellType(CellTypeId id, size_t size) : id_(id), size_(size) {}

  CellTypeId id_;
  size_t size_;
};

/// Maps C++ scalar types to their CellTypeId at compile time, so typed
/// accessors can verify the element type they are reinterpreting.
template <typename T>
struct CellTypeTraits;

template <> struct CellTypeTraits<uint8_t> {
  static constexpr CellTypeId kId = CellTypeId::kUInt8;
};
template <> struct CellTypeTraits<int8_t> {
  static constexpr CellTypeId kId = CellTypeId::kInt8;
};
template <> struct CellTypeTraits<uint16_t> {
  static constexpr CellTypeId kId = CellTypeId::kUInt16;
};
template <> struct CellTypeTraits<int16_t> {
  static constexpr CellTypeId kId = CellTypeId::kInt16;
};
template <> struct CellTypeTraits<uint32_t> {
  static constexpr CellTypeId kId = CellTypeId::kUInt32;
};
template <> struct CellTypeTraits<int32_t> {
  static constexpr CellTypeId kId = CellTypeId::kInt32;
};
template <> struct CellTypeTraits<uint64_t> {
  static constexpr CellTypeId kId = CellTypeId::kUInt64;
};
template <> struct CellTypeTraits<int64_t> {
  static constexpr CellTypeId kId = CellTypeId::kInt64;
};
template <> struct CellTypeTraits<float> {
  static constexpr CellTypeId kId = CellTypeId::kFloat32;
};
template <> struct CellTypeTraits<double> {
  static constexpr CellTypeId kId = CellTypeId::kFloat64;
};

/// An RGB pixel, the cell type of the animation benchmark (Table 5).
struct RGB8 {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
  bool operator==(const RGB8&) const = default;
};
static_assert(sizeof(RGB8) == 3, "RGB8 must be exactly 3 bytes");

template <> struct CellTypeTraits<RGB8> {
  static constexpr CellTypeId kId = CellTypeId::kRGB8;
};

}  // namespace tilestore

#endif  // TILESTORE_CORE_CELL_TYPE_H_
