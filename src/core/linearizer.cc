#include "core/linearizer.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace tilestore {

namespace {

// Per-axis row-major strides (in cells) of a fixed domain: stride[d-1] == 1,
// stride[i] == stride[i+1] * extent(i+1).
std::vector<uint64_t> Strides(const MInterval& domain) {
  const size_t d = domain.dim();
  std::vector<uint64_t> stride(d);
  uint64_t acc = 1;
  for (size_t i = d; i > 0; --i) {
    stride[i - 1] = acc;
    acc *= static_cast<uint64_t>(domain.Extent(i - 1));
  }
  return stride;
}

Status ValidateRegion(const MInterval& src_domain, const MInterval& dst_domain,
                      const MInterval& region) {
  if (src_domain.dim() != region.dim() || dst_domain.dim() != region.dim()) {
    return Status::InvalidArgument("CopyRegion: dimensionality mismatch");
  }
  if (!src_domain.IsFixed() || !dst_domain.IsFixed() || !region.IsFixed()) {
    return Status::InvalidArgument("CopyRegion: unbounded interval");
  }
  if (!src_domain.Contains(region)) {
    return Status::InvalidArgument("CopyRegion: region " + region.ToString() +
                                   " not inside source domain " +
                                   src_domain.ToString());
  }
  if (!dst_domain.Contains(region)) {
    return Status::InvalidArgument("CopyRegion: region " + region.ToString() +
                                   " not inside destination domain " +
                                   dst_domain.ToString());
  }
  return Status::OK();
}

// Shared walker: calls `emit(src_off_cells, dst_off_cells)` once per
// innermost-axis run of `region`, with offsets in cells relative to the
// respective domain origins.
template <typename Emit>
void ForEachRun(const MInterval& src_domain, const MInterval& dst_domain,
                const MInterval& region, Emit&& emit) {
  const size_t d = region.dim();
  const std::vector<uint64_t> src_stride = Strides(src_domain);
  const std::vector<uint64_t> dst_stride = Strides(dst_domain);

  // Offset of the region's low corner within each domain.
  uint64_t src_off = 0, dst_off = 0;
  for (size_t i = 0; i < d; ++i) {
    src_off += static_cast<uint64_t>(region.lo(i) - src_domain.lo(i)) *
               src_stride[i];
    dst_off += static_cast<uint64_t>(region.lo(i) - dst_domain.lo(i)) *
               dst_stride[i];
  }

  if (d == 1) {
    emit(src_off, dst_off);
    return;
  }

  // Odometer over axes 0..d-2; axis d-1 is the contiguous run.
  std::vector<Coord> pos(region.lo().begin(), region.lo().end() - 1);
  while (true) {
    emit(src_off, dst_off);
    size_t axis = d - 1;
    while (axis > 0) {
      --axis;
      if (pos[axis] < region.hi(axis)) {
        ++pos[axis];
        src_off += src_stride[axis];
        dst_off += dst_stride[axis];
        break;
      }
      // Wrap this axis back to the region's low bound.
      src_off -= static_cast<uint64_t>(region.Extent(axis) - 1) *
                 src_stride[axis];
      dst_off -= static_cast<uint64_t>(region.Extent(axis) - 1) *
                 dst_stride[axis];
      pos[axis] = region.lo(axis);
      if (axis == 0) return;
    }
  }
}

}  // namespace

uint64_t RowMajorOffset(const MInterval& domain, const Point& p) {
  assert(domain.Contains(p));
  const std::vector<uint64_t> stride = Strides(domain);
  uint64_t off = 0;
  for (size_t i = 0; i < domain.dim(); ++i) {
    off += static_cast<uint64_t>(p[i] - domain.lo(i)) * stride[i];
  }
  return off;
}

Point RowMajorPoint(const MInterval& domain, uint64_t offset) {
  assert(offset < domain.CellCountOrDie());
  const std::vector<uint64_t> stride = Strides(domain);
  Point p(domain.dim());
  for (size_t i = 0; i < domain.dim(); ++i) {
    p[i] = domain.lo(i) + static_cast<Coord>(offset / stride[i]);
    offset %= stride[i];
  }
  return p;
}

Status CopyRegion(const MInterval& src_domain, const uint8_t* src,
                  const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, size_t cell_size) {
  Status st = ValidateRegion(src_domain, dst_domain, region);
  if (!st.ok()) return st;

  const size_t run_bytes =
      static_cast<size_t>(region.Extent(region.dim() - 1)) * cell_size;
  ForEachRun(src_domain, dst_domain, region,
             [&](uint64_t src_off, uint64_t dst_off) {
               std::memcpy(dst + dst_off * cell_size,
                           src + src_off * cell_size, run_bytes);
             });
  return Status::OK();
}

Status FillRegion(const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, const void* cell_value,
                  size_t cell_size) {
  Status st = ValidateRegion(dst_domain, dst_domain, region);
  if (!st.ok()) return st;

  const uint64_t run_cells =
      static_cast<uint64_t>(region.Extent(region.dim() - 1));
  const auto* pattern = static_cast<const uint8_t*>(cell_value);
  ForEachRun(dst_domain, dst_domain, region,
             [&](uint64_t /*src_off*/, uint64_t dst_off) {
               uint8_t* out = dst + dst_off * cell_size;
               for (uint64_t c = 0; c < run_cells; ++c) {
                 std::memcpy(out + c * cell_size, pattern, cell_size);
               }
             });
  return Status::OK();
}

}  // namespace tilestore
