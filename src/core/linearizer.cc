#include "core/linearizer.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace tilestore {

std::vector<uint64_t> RowMajorStrides(const MInterval& domain) {
  const size_t d = domain.dim();
  std::vector<uint64_t> stride(d);
  uint64_t acc = 1;
  for (size_t i = d; i > 0; --i) {
    stride[i - 1] = acc;
    acc *= static_cast<uint64_t>(domain.Extent(i - 1));
  }
  return stride;
}

namespace {

Status ValidateRegion(const MInterval& src_domain, const MInterval& dst_domain,
                      const MInterval& region) {
  if (src_domain.dim() != region.dim() || dst_domain.dim() != region.dim()) {
    return Status::InvalidArgument("CopyRegion: dimensionality mismatch");
  }
  if (!src_domain.IsFixed() || !dst_domain.IsFixed() || !region.IsFixed()) {
    return Status::InvalidArgument("CopyRegion: unbounded interval");
  }
  if (!src_domain.Contains(region)) {
    return Status::InvalidArgument("CopyRegion: region " + region.ToString() +
                                   " not inside source domain " +
                                   src_domain.ToString());
  }
  if (!dst_domain.Contains(region)) {
    return Status::InvalidArgument("CopyRegion: region " + region.ToString() +
                                   " not inside destination domain " +
                                   dst_domain.ToString());
  }
  return Status::OK();
}

}  // namespace

uint64_t RowMajorOffset(const MInterval& domain, const Point& p) {
  assert(domain.Contains(p));
  const std::vector<uint64_t> stride = RowMajorStrides(domain);
  uint64_t off = 0;
  for (size_t i = 0; i < domain.dim(); ++i) {
    off += static_cast<uint64_t>(p[i] - domain.lo(i)) * stride[i];
  }
  return off;
}

Point RowMajorPoint(const MInterval& domain, uint64_t offset) {
  assert(offset < domain.CellCountOrDie());
  const std::vector<uint64_t> stride = RowMajorStrides(domain);
  Point p(domain.dim());
  for (size_t i = 0; i < domain.dim(); ++i) {
    p[i] = domain.lo(i) + static_cast<Coord>(offset / stride[i]);
    offset %= stride[i];
  }
  return p;
}

Status CopyRegion(const MInterval& src_domain, const uint8_t* src,
                  const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, size_t cell_size) {
  Status st = ValidateRegion(src_domain, dst_domain, region);
  if (!st.ok()) return st;

  const size_t run_bytes =
      static_cast<size_t>(region.Extent(region.dim() - 1)) * cell_size;
  ForEachRun(src_domain, dst_domain, region,
             [&](uint64_t src_off, uint64_t dst_off) {
               std::memcpy(dst + dst_off * cell_size,
                           src + src_off * cell_size, run_bytes);
             });
  return Status::OK();
}

Status FillRegion(const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, const void* cell_value,
                  size_t cell_size) {
  Status st = ValidateRegion(dst_domain, dst_domain, region);
  if (!st.ok()) return st;

  const uint64_t run_cells =
      static_cast<uint64_t>(region.Extent(region.dim() - 1));
  const auto* pattern = static_cast<const uint8_t*>(cell_value);
  ForEachRun(dst_domain, dst_domain, region,
             [&](uint64_t /*src_off*/, uint64_t dst_off) {
               uint8_t* out = dst + dst_off * cell_size;
               for (uint64_t c = 0; c < run_cells; ++c) {
                 std::memcpy(out + c * cell_size, pattern, cell_size);
               }
             });
  return Status::OK();
}

}  // namespace tilestore
