#ifndef TILESTORE_CORE_LINEARIZER_H_
#define TILESTORE_CORE_LINEARIZER_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/minterval.h"
#include "core/point.h"

namespace tilestore {

/// \file
/// Row-major linearization of cells (the paper's "implicit ordering of the
/// cells according to the ordering of the coordinates", Section 3) and the
/// clip/copy kernels that move rectangular regions between linearized
/// buffers. These kernels are the hot path of query post-processing
/// (the paper's t_cpu: "the time taken to compose tiles parts into the
/// result array").

/// Index of point `p` within `domain` under row-major order (last axis
/// varies fastest). `domain` must be fixed and contain `p`.
uint64_t RowMajorOffset(const MInterval& domain, const Point& p);

/// Inverse of `RowMajorOffset`: the point at linear index `offset` within
/// `domain`. `offset` must be < domain.CellCount().
Point RowMajorPoint(const MInterval& domain, uint64_t offset);

/// Copies `region` from a source buffer linearized over `src_domain` into a
/// destination buffer linearized over `dst_domain`.
///
/// Requirements (validated; InvalidArgument on violation):
///  - all three intervals are fixed and have the same dimensionality;
///  - `region` is contained in both `src_domain` and `dst_domain`.
///
/// The copy proceeds run-by-run: the innermost axis of `region` is
/// contiguous in both buffers, so each run is one `memcpy` of
/// `region.Extent(d-1) * cell_size` bytes.
Status CopyRegion(const MInterval& src_domain, const uint8_t* src,
                  const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, size_t cell_size);

/// Fills `region` of a buffer linearized over `dst_domain` with copies of
/// the `cell_size`-byte pattern at `cell_value` (the paper's default value
/// for uncovered areas). Same containment requirements as `CopyRegion`.
Status FillRegion(const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, const void* cell_value,
                  size_t cell_size);

/// Calls `fn(const Point&)` for every point of `domain` in row-major order.
/// `domain` must be fixed. Intended for tests and data generators, not hot
/// paths.
template <typename Fn>
void ForEachPoint(const MInterval& domain, Fn&& fn) {
  const size_t d = domain.dim();
  Point p = domain.LowCorner();
  while (true) {
    fn(static_cast<const Point&>(p));
    // Odometer increment, last axis fastest.
    size_t axis = d;
    while (axis > 0) {
      --axis;
      if (p[axis] < domain.hi(axis)) {
        ++p[axis];
        break;
      }
      p[axis] = domain.lo(axis);
      if (axis == 0) return;
    }
  }
}

}  // namespace tilestore

#endif  // TILESTORE_CORE_LINEARIZER_H_
