#ifndef TILESTORE_CORE_LINEARIZER_H_
#define TILESTORE_CORE_LINEARIZER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/minterval.h"
#include "core/point.h"

namespace tilestore {

/// \file
/// Row-major linearization of cells (the paper's "implicit ordering of the
/// cells according to the ordering of the coordinates", Section 3) and the
/// clip/copy kernels that move rectangular regions between linearized
/// buffers. These kernels are the hot path of query post-processing
/// (the paper's t_cpu: "the time taken to compose tiles parts into the
/// result array").

/// Index of point `p` within `domain` under row-major order (last axis
/// varies fastest). `domain` must be fixed and contain `p`.
uint64_t RowMajorOffset(const MInterval& domain, const Point& p);

/// Inverse of `RowMajorOffset`: the point at linear index `offset` within
/// `domain`. `offset` must be < domain.CellCount().
Point RowMajorPoint(const MInterval& domain, uint64_t offset);

/// Copies `region` from a source buffer linearized over `src_domain` into a
/// destination buffer linearized over `dst_domain`.
///
/// Requirements (validated; InvalidArgument on violation):
///  - all three intervals are fixed and have the same dimensionality;
///  - `region` is contained in both `src_domain` and `dst_domain`.
///
/// The copy proceeds run-by-run: the innermost axis of `region` is
/// contiguous in both buffers, so each run is one `memcpy` of
/// `region.Extent(d-1) * cell_size` bytes.
Status CopyRegion(const MInterval& src_domain, const uint8_t* src,
                  const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, size_t cell_size);

/// Fills `region` of a buffer linearized over `dst_domain` with copies of
/// the `cell_size`-byte pattern at `cell_value` (the paper's default value
/// for uncovered areas). Same containment requirements as `CopyRegion`.
Status FillRegion(const MInterval& dst_domain, uint8_t* dst,
                  const MInterval& region, const void* cell_value,
                  size_t cell_size);

/// Per-axis row-major strides (in cells) of a fixed domain:
/// `stride[d-1] == 1`, `stride[i] == stride[i+1] * extent(i+1)`.
std::vector<uint64_t> RowMajorStrides(const MInterval& domain);

/// Calls `emit(src_off_cells, dst_off_cells)` once per innermost-axis run
/// of `region`, in row-major region order, with offsets in cells relative
/// to the respective domain origins. Each run is `region.Extent(d-1)`
/// contiguous cells in both linearizations — the machinery behind
/// `CopyRegion`/`FillRegion` and the run-based aggregation kernels (the
/// t_cpu hot path: tile parts are composed or reduced run by run, never
/// cell by cell). All three intervals must be fixed, share one
/// dimensionality, and `region` must be contained in both domains (not
/// validated here; use `CopyRegion`'s checks or validate upstream).
template <typename Emit>
void ForEachRun(const MInterval& src_domain, const MInterval& dst_domain,
                const MInterval& region, Emit&& emit) {
  const size_t d = region.dim();
  const std::vector<uint64_t> src_stride = RowMajorStrides(src_domain);
  const std::vector<uint64_t> dst_stride = RowMajorStrides(dst_domain);

  // Offset of the region's low corner within each domain.
  uint64_t src_off = 0, dst_off = 0;
  for (size_t i = 0; i < d; ++i) {
    src_off += static_cast<uint64_t>(region.lo(i) - src_domain.lo(i)) *
               src_stride[i];
    dst_off += static_cast<uint64_t>(region.lo(i) - dst_domain.lo(i)) *
               dst_stride[i];
  }

  if (d == 1) {
    emit(src_off, dst_off);
    return;
  }

  // Odometer over axes 0..d-2; axis d-1 is the contiguous run.
  std::vector<Coord> pos(region.lo().begin(), region.lo().end() - 1);
  while (true) {
    emit(src_off, dst_off);
    size_t axis = d - 1;
    while (axis > 0) {
      --axis;
      if (pos[axis] < region.hi(axis)) {
        ++pos[axis];
        src_off += src_stride[axis];
        dst_off += dst_stride[axis];
        break;
      }
      // Wrap this axis back to the region's low bound.
      src_off -= static_cast<uint64_t>(region.Extent(axis) - 1) *
                 src_stride[axis];
      dst_off -= static_cast<uint64_t>(region.Extent(axis) - 1) *
                 dst_stride[axis];
      pos[axis] = region.lo(axis);
      if (axis == 0) return;
    }
  }
}

/// Calls `fn(const Point&)` for every point of `domain` in row-major order.
/// `domain` must be fixed. Intended for tests and data generators, not hot
/// paths.
template <typename Fn>
void ForEachPoint(const MInterval& domain, Fn&& fn) {
  const size_t d = domain.dim();
  Point p = domain.LowCorner();
  while (true) {
    fn(static_cast<const Point&>(p));
    // Odometer increment, last axis fastest.
    size_t axis = d;
    while (axis > 0) {
      --axis;
      if (p[axis] < domain.hi(axis)) {
        ++p[axis];
        break;
      }
      p[axis] = domain.lo(axis);
      if (axis == 0) return;
    }
  }
}

}  // namespace tilestore

#endif  // TILESTORE_CORE_LINEARIZER_H_
