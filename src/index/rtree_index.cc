#include "index/rtree_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "index/str_pack.h"

namespace tilestore {

namespace {

// Volume measure for box comparisons. Double precision is ample: boxes are
// only compared against each other and ties are broken deterministically.
double Volume(const MInterval& box) {
  double v = 1.0;
  for (size_t i = 0; i < box.dim(); ++i) {
    v *= static_cast<double>(box.Extent(i));
  }
  return v;
}

double Enlargement(const MInterval& box, const MInterval& add) {
  return Volume(box.Hull(add)) - Volume(box);
}

}  // namespace

struct RTreeIndex::Node {
  bool leaf = true;
  MInterval box;  // meaningful only when the node is non-empty
  std::vector<TileEntry> entries;                 // leaf payload
  std::vector<std::unique_ptr<Node>> children;    // internal payload

  size_t fanout() const { return leaf ? entries.size() : children.size(); }

  void RecomputeBox() {
    if (leaf) {
      assert(!entries.empty());
      box = entries[0].domain;
      for (size_t i = 1; i < entries.size(); ++i) {
        box = box.Hull(entries[i].domain);
      }
    } else {
      assert(!children.empty());
      box = children[0]->box;
      for (size_t i = 1; i < children.size(); ++i) {
        box = box.Hull(children[i]->box);
      }
    }
  }
};

namespace {

using Node = RTreeIndex::Node;

// ---------------------------------------------------------------------------
// Quadratic split (Guttman). Splits the boxes at `boxes` into two groups,
// returning group membership. Generic over the item kind: callers pass the
// box of every item.
std::vector<int> QuadraticSplit(const std::vector<MInterval>& boxes,
                                size_t min_entries) {
  const size_t n = boxes.size();
  assert(n >= 2);

  // PickSeeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double waste =
          Volume(boxes[i].Hull(boxes[j])) - Volume(boxes[i]) - Volume(boxes[j]);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<int> group(n, -1);
  group[seed_a] = 0;
  group[seed_b] = 1;
  MInterval box_a = boxes[seed_a];
  MInterval box_b = boxes[seed_b];
  size_t count_a = 1, count_b = 1;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group must take everything left to reach the minimum, do so.
    if (count_a + remaining == min_entries) {
      for (size_t i = 0; i < n; ++i) {
        if (group[i] < 0) group[i] = 0;
      }
      break;
    }
    if (count_b + remaining == min_entries) {
      for (size_t i = 0; i < n; ++i) {
        if (group[i] < 0) group[i] = 1;
      }
      break;
    }
    // PickNext: the item with the greatest preference for one group.
    size_t best = SIZE_MAX;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] >= 0) continue;
      const double diff = std::abs(Enlargement(box_a, boxes[i]) -
                                   Enlargement(box_b, boxes[i]));
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double enl_a = Enlargement(box_a, boxes[best]);
    const double enl_b = Enlargement(box_b, boxes[best]);
    bool to_a;
    if (enl_a != enl_b) {
      to_a = enl_a < enl_b;
    } else if (Volume(box_a) != Volume(box_b)) {
      to_a = Volume(box_a) < Volume(box_b);
    } else {
      to_a = count_a <= count_b;
    }
    if (to_a) {
      group[best] = 0;
      box_a = box_a.Hull(boxes[best]);
      ++count_a;
    } else {
      group[best] = 1;
      box_b = box_b.Hull(boxes[best]);
      ++count_b;
    }
    --remaining;
  }
  return group;
}

// Splits an overflowing node in place; returns the new sibling.
std::unique_ptr<Node> SplitNode(Node* node, size_t min_entries) {
  std::vector<MInterval> boxes;
  if (node->leaf) {
    boxes.reserve(node->entries.size());
    for (const TileEntry& e : node->entries) boxes.push_back(e.domain);
  } else {
    boxes.reserve(node->children.size());
    for (const auto& c : node->children) boxes.push_back(c->box);
  }
  const std::vector<int> group = QuadraticSplit(boxes, min_entries);

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  if (node->leaf) {
    std::vector<TileEntry> keep;
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (group[i] == 0) {
        keep.push_back(std::move(node->entries[i]));
      } else {
        sibling->entries.push_back(std::move(node->entries[i]));
      }
    }
    node->entries = std::move(keep);
  } else {
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (group[i] == 0) {
        keep.push_back(std::move(node->children[i]));
      } else {
        sibling->children.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
  }
  node->RecomputeBox();
  sibling->RecomputeBox();
  return sibling;
}

// Recursive insert; returns a sibling when `node` was split.
std::unique_ptr<Node> InsertRec(Node* node, const TileEntry& entry,
                                size_t max_entries, size_t min_entries) {
  if (node->leaf) {
    node->entries.push_back(entry);
    node->RecomputeBox();
    if (node->entries.size() > max_entries) {
      return SplitNode(node, min_entries);
    }
    return nullptr;
  }

  // ChooseSubtree: least enlargement, ties by smaller volume.
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_vol = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    const double enl = Enlargement(node->children[i]->box, entry.domain);
    const double vol = Volume(node->children[i]->box);
    if (enl < best_enl || (enl == best_enl && vol < best_vol)) {
      best_enl = enl;
      best_vol = vol;
      best = i;
    }
  }

  std::unique_ptr<Node> split =
      InsertRec(node->children[best].get(), entry, max_entries, min_entries);
  if (split != nullptr) {
    node->children.push_back(std::move(split));
  }
  node->RecomputeBox();
  if (node->children.size() > max_entries) {
    return SplitNode(node, min_entries);
  }
  return nullptr;
}

void SearchRec(const Node* node, const MInterval& region,
               std::vector<TileEntry>* out, uint64_t* visited) {
  ++*visited;
  if (node->fanout() == 0) return;
  if (node->leaf) {
    for (const TileEntry& e : node->entries) {
      if (e.domain.Intersects(region)) out->push_back(e);
    }
    return;
  }
  for (const auto& child : node->children) {
    if (child->box.Intersects(region)) {
      SearchRec(child.get(), region, out, visited);
    }
  }
}

void CollectEntries(const Node* node, std::vector<TileEntry>* out) {
  if (node->leaf) {
    out->insert(out->end(), node->entries.begin(), node->entries.end());
    return;
  }
  for (const auto& child : node->children) CollectEntries(child.get(), out);
}

// Recursive remove-by-exact-domain. Underflowing nodes are dissolved: their
// remaining entries are pushed to `orphans` for reinsertion.
bool RemoveRec(Node* node, const MInterval& domain, size_t min_entries,
               bool is_root, std::vector<TileEntry>* orphans) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].domain == domain) {
        node->entries.erase(node->entries.begin() +
                            static_cast<ptrdiff_t>(i));
        if (!node->entries.empty()) node->RecomputeBox();
        return true;
      }
    }
    return false;
  }

  for (size_t i = 0; i < node->children.size(); ++i) {
    Node* child = node->children[i].get();
    if (child->fanout() > 0 && !child->box.Contains(domain)) continue;
    if (!RemoveRec(child, domain, min_entries, /*is_root=*/false, orphans)) {
      continue;
    }
    // Dissolve the child if it underflowed.
    if (child->fanout() < min_entries) {
      CollectEntries(child, orphans);
      node->children.erase(node->children.begin() +
                           static_cast<ptrdiff_t>(i));
    }
    if (node->fanout() > 0) node->RecomputeBox();
    (void)is_root;
    return true;
  }
  return false;
}

size_t CountNodes(const Node* node) {
  size_t count = 1;
  if (!node->leaf) {
    for (const auto& child : node->children) count += CountNodes(child.get());
  }
  return count;
}

size_t Height(const Node* node) {
  if (node->leaf) return 1;
  return 1 + Height(node->children.front().get());
}

}  // namespace

RTreeIndex::RTreeIndex(size_t max_entries)
    : max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries_ / 2)),
      root_(std::make_unique<Node>()) {}

RTreeIndex::~RTreeIndex() = default;

Status RTreeIndex::Insert(const TileEntry& entry) {
  if (!entry.domain.IsFixed()) {
    return Status::InvalidArgument("tile domain must be fixed: " +
                                   entry.domain.ToString());
  }
  std::unique_ptr<Node> split =
      InsertRec(root_.get(), entry, max_entries_, min_entries_);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeBox();
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::OK();
}

Status RTreeIndex::Remove(const MInterval& domain) {
  std::vector<TileEntry> orphans;
  if (!RemoveRec(root_.get(), domain, min_entries_, /*is_root=*/true,
                 &orphans)) {
    return Status::NotFound("no tile with domain " + domain.ToString());
  }
  --size_;
  // Collapse a root with a single internal child.
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (!root_->leaf && root_->children.empty()) {
    root_ = std::make_unique<Node>();
  }
  // Reinsert entries of dissolved nodes.
  size_ -= orphans.size();
  for (const TileEntry& e : orphans) {
    Status st = Insert(e);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

std::vector<TileEntry> RTreeIndex::Search(const MInterval& region) const {
  std::vector<TileEntry> out;
  uint64_t visited = 0;
  SearchRec(root_.get(), region, &out, &visited);
  last_nodes_visited_ = visited;
  return out;
}

void RTreeIndex::GetAll(std::vector<TileEntry>* out) const {
  CollectEntries(root_.get(), out);
}

size_t RTreeIndex::node_count() const { return CountNodes(root_.get()); }

size_t RTreeIndex::height() const { return Height(root_.get()); }

Status RTreeIndex::BulkLoad(std::vector<TileEntry> entries) {
  for (const TileEntry& e : entries) {
    if (!e.domain.IsFixed()) {
      return Status::InvalidArgument("tile domain must be fixed: " +
                                     e.domain.ToString());
    }
  }
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return Status::OK();
  }
  const size_t dim = entries.front().domain.dim();

  // Pack leaves.
  std::vector<std::pair<size_t, size_t>> runs;
  StrPackRuns(&entries, 0, entries.size(), dim, 0, max_entries_,
              [](const TileEntry& e) -> const MInterval& { return e.domain; },
              &runs);
  std::vector<std::unique_ptr<Node>> level;
  level.reserve(runs.size());
  for (const auto& [begin, end] : runs) {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->entries.assign(entries.begin() + static_cast<ptrdiff_t>(begin),
                         entries.begin() + static_cast<ptrdiff_t>(end));
    leaf->RecomputeBox();
    level.push_back(std::move(leaf));
  }

  // Pack upper levels until a single root remains.
  while (level.size() > 1) {
    runs.clear();
    StrPackRuns(&level, 0, level.size(), dim, 0, max_entries_,
                [](const std::unique_ptr<Node>& n) -> const MInterval& {
                  return n->box;
                },
                &runs);
    std::vector<std::unique_ptr<Node>> parents;
    parents.reserve(runs.size());
    for (const auto& [begin, end] : runs) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      for (size_t i = begin; i < end; ++i) {
        parent->children.push_back(std::move(level[i]));
      }
      parent->RecomputeBox();
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
  return Status::OK();
}

}  // namespace tilestore
