#ifndef TILESTORE_INDEX_RTREE_INDEX_H_
#define TILESTORE_INDEX_RTREE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "index/tile_index.h"

namespace tilestore {

/// \brief R-tree index over tile domains — the "R+-tree-like" index the
/// paper attaches to every MDD object.
///
/// Because the tiles of one object are pairwise disjoint, the classic
/// R-tree (Guttman, quadratic split) already yields near-R+-tree behaviour:
/// directory rectangles overlap only marginally and an intersection search
/// descends a handful of paths. STR bulk loading (`BulkLoad`) packs an
/// entire tiling at load time into a tree with minimal overlap; incremental
/// `Insert` supports the paper's gradual-growth scenario.
class RTreeIndex : public TileIndex {
 public:
  /// `max_entries` is the node fan-out M; the minimum fill is M/2.
  explicit RTreeIndex(size_t max_entries = 16);
  ~RTreeIndex() override;

  RTreeIndex(const RTreeIndex&) = delete;
  RTreeIndex& operator=(const RTreeIndex&) = delete;

  /// Rebuilds the tree from `entries` with sort-tile-recursive packing.
  /// Replaces the current contents.
  Status BulkLoad(std::vector<TileEntry> entries);

  using TileIndex::Insert;
  Status Insert(const TileEntry& entry) override;
  Status Remove(const MInterval& domain) override;
  std::vector<TileEntry> Search(const MInterval& region) const override;
  uint64_t last_nodes_visited() const override {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }
  size_t size() const override { return size_; }
  void GetAll(std::vector<TileEntry>* out) const override;

  /// Total directory + leaf nodes (index footprint, drives t_ix modelling).
  size_t node_count() const;
  /// Tree height (1 for a single leaf).
  size_t height() const;

  /// Opaque node type; defined in the .cc file. Public only so that
  /// file-local helpers there can name it.
  struct Node;

 private:
  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  // Relaxed atomic: concurrent Search calls may interleave, in which
  // case the "last" count is whichever search finished last.
  mutable std::atomic<uint64_t> last_nodes_visited_{0};
};

}  // namespace tilestore

#endif  // TILESTORE_INDEX_RTREE_INDEX_H_
