#include "index/packed_rtree.h"

#include <algorithm>

#include "common/serde.h"
#include "index/str_pack.h"

namespace tilestore {

namespace {

constexpr uint32_t kMagic = 0x54534958;  // "TSIX"
constexpr uint32_t kVersion = 1;

void WriteBox(ByteWriter* w, const MInterval& box) {
  for (size_t i = 0; i < box.dim(); ++i) {
    w->I64(box.lo(i));
    w->I64(box.hi(i));
  }
}

Status ReadBox(ByteReader* r, size_t dim, MInterval* out) {
  std::vector<Coord> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    Status st = r->I64(&lo[i]);
    if (!st.ok()) return st;
    st = r->I64(&hi[i]);
    if (!st.ok()) return st;
  }
  Result<MInterval> box = MInterval::Create(std::move(lo), std::move(hi));
  if (!box.ok()) {
    return Status::Corruption("invalid box in packed index: " +
                              box.status().message());
  }
  *out = std::move(box).MoveValue();
  return Status::OK();
}

MInterval HullOf(const std::vector<TileEntry>& entries, size_t begin,
                 size_t end) {
  MInterval box = entries[begin].domain;
  for (size_t i = begin + 1; i < end; ++i) box = box.Hull(entries[i].domain);
  return box;
}

struct BuildNode {
  bool leaf;
  size_t first;
  size_t count;
  MInterval box;
};

}  // namespace

Result<std::vector<uint8_t>> PackedRTree::Serialize(
    const std::vector<TileEntry>& entries, size_t dim, size_t max_entries) {
  if (dim == 0 || dim > 255) {
    return Status::InvalidArgument("packed index dimensionality must be in "
                                   "[1,255]");
  }
  max_entries = std::max<size_t>(2, max_entries);
  std::vector<TileEntry> sorted = entries;
  for (const TileEntry& entry : sorted) {
    if (entry.domain.dim() != dim || !entry.domain.IsFixed()) {
      return Status::InvalidArgument("bad tile domain in packed index: " +
                                     entry.domain.ToString());
    }
  }

  // Build levels bottom-up. Level 0 holds the leaves.
  std::vector<std::vector<BuildNode>> levels;
  if (!sorted.empty()) {
    std::vector<std::pair<size_t, size_t>> runs;
    StrPackRuns(&sorted, 0, sorted.size(), dim, 0, max_entries,
                [](const TileEntry& e) -> const MInterval& {
                  return e.domain;
                },
                &runs);
    std::vector<BuildNode> leaves;
    leaves.reserve(runs.size());
    for (const auto& [begin, end] : runs) {
      leaves.push_back(BuildNode{true, begin, end - begin,
                                 HullOf(sorted, begin, end)});
    }
    levels.push_back(std::move(leaves));
    while (levels.back().size() > 1) {
      std::vector<BuildNode>& lower = levels.back();
      runs.clear();
      StrPackRuns(&lower, 0, lower.size(), dim, 0, max_entries,
                  [](const BuildNode& n) -> const MInterval& {
                    return n.box;
                  },
                  &runs);
      std::vector<BuildNode> parents;
      parents.reserve(runs.size());
      for (const auto& [begin, end] : runs) {
        MInterval box = lower[begin].box;
        for (size_t i = begin + 1; i < end; ++i) box = box.Hull(lower[i].box);
        parents.push_back(BuildNode{false, begin, end - begin, box});
      }
      levels.push_back(std::move(parents));
    }
  }

  // Lay the levels out top-down; `first` of an internal node at level L
  // references the global offset of level L-1.
  std::vector<size_t> level_offset(levels.size(), 0);
  size_t node_count = 0;
  for (size_t level = levels.size(); level > 0; --level) {
    level_offset[level - 1] = node_count;
    node_count += levels[level - 1].size();
  }

  ByteWriter w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(dim));
  w.U32(static_cast<uint32_t>(node_count));
  w.U64(sorted.size());
  for (size_t level = levels.size(); level > 0; --level) {
    for (const BuildNode& node : levels[level - 1]) {
      w.U8(node.leaf ? 1 : 0);
      const size_t first =
          node.leaf ? node.first : level_offset[level - 2] + node.first;
      w.U32(static_cast<uint32_t>(first));
      w.U32(static_cast<uint32_t>(node.count));
      WriteBox(&w, node.box);
    }
  }
  for (const TileEntry& entry : sorted) {
    WriteBox(&w, entry.domain);
    w.U64(entry.blob);
    w.U8(static_cast<uint8_t>(entry.compression));
  }
  return w.Take();
}

Result<std::unique_ptr<PackedRTree>> PackedRTree::Parse(
    std::vector<uint8_t> bytes) {
  ByteReader r(bytes);
  uint32_t magic = 0, version = 0, dim32 = 0, node_count = 0;
  uint64_t entry_count = 0;
  Status st = r.U32(&magic);
  if (!st.ok()) return st;
  if (magic != kMagic) {
    return Status::Corruption("bad packed index magic");
  }
  st = r.U32(&version);
  if (!st.ok()) return st;
  if (version != kVersion) {
    return Status::Corruption("unsupported packed index version " +
                              std::to_string(version));
  }
  st = r.U32(&dim32);
  if (!st.ok()) return st;
  if (dim32 == 0 || dim32 > 255) {
    return Status::Corruption("bad packed index dimensionality");
  }
  st = r.U32(&node_count);
  if (!st.ok()) return st;
  st = r.U64(&entry_count);
  if (!st.ok()) return st;
  const size_t dim = dim32;

  auto tree = std::unique_ptr<PackedRTree>(new PackedRTree());
  tree->nodes_.reserve(node_count);
  for (uint32_t n = 0; n < node_count; ++n) {
    PackedNode node;
    uint8_t leaf = 0;
    uint32_t first = 0, count = 0;
    st = r.U8(&leaf);
    if (!st.ok()) return st;
    st = r.U32(&first);
    if (!st.ok()) return st;
    st = r.U32(&count);
    if (!st.ok()) return st;
    st = ReadBox(&r, dim, &node.box);
    if (!st.ok()) return st;
    node.leaf = leaf != 0;
    node.first = first;
    node.count = count;
    if (node.leaf) {
      if (static_cast<uint64_t>(first) + count > entry_count) {
        return Status::Corruption("leaf entry range out of bounds");
      }
    } else {
      if (count == 0 || static_cast<uint64_t>(first) + count > node_count ||
          first <= n) {
        // Children always come after their parent in the top-down layout;
        // anything else would allow cycles.
        return Status::Corruption("internal child range out of bounds");
      }
    }
    tree->nodes_.push_back(std::move(node));
  }

  tree->entries_.reserve(entry_count);
  for (uint64_t e = 0; e < entry_count; ++e) {
    TileEntry entry;
    st = ReadBox(&r, dim, &entry.domain);
    if (!st.ok()) return st;
    st = r.U64(&entry.blob);
    if (!st.ok()) return st;
    uint8_t codec = 0;
    st = r.U8(&codec);
    if (!st.ok()) return st;
    if (codec > static_cast<uint8_t>(Compression::kRle)) {
      return Status::Corruption("unknown compression codec in packed index");
    }
    entry.compression = static_cast<Compression>(codec);
    tree->entries_.push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after packed index");
  }
  if (node_count == 0 && entry_count != 0) {
    return Status::Corruption("entries without nodes in packed index");
  }
  return tree;
}

Status PackedRTree::Insert(const TileEntry& entry) {
  (void)entry;
  return Status::Unimplemented(
      "PackedRTree is read-only; upgrade to a dynamic index first");
}

Status PackedRTree::Remove(const MInterval& domain) {
  (void)domain;
  return Status::Unimplemented(
      "PackedRTree is read-only; upgrade to a dynamic index first");
}

std::vector<TileEntry> PackedRTree::Search(const MInterval& region) const {
  std::vector<TileEntry> out;
  uint64_t visited = 0;
  last_nodes_visited_.store(0, std::memory_order_relaxed);
  if (nodes_.empty()) return out;

  if (!nodes_[0].box.Intersects(region) && nodes_[0].count > 0) {
    last_nodes_visited_.store(1, std::memory_order_relaxed);
    return out;
  }
  // Like the dynamic tree, a node counts as visited when its contents are
  // examined; children are box-tested before descending.
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    const PackedNode& node = nodes_[stack.back()];
    stack.pop_back();
    ++visited;
    if (node.leaf) {
      for (uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (entries_[i].domain.Intersects(region)) {
          out.push_back(entries_[i]);
        }
      }
    } else {
      for (uint32_t i = node.first; i < node.first + node.count; ++i) {
        if (nodes_[i].box.Intersects(region)) stack.push_back(i);
      }
    }
  }
  last_nodes_visited_.store(visited, std::memory_order_relaxed);
  return out;
}

void PackedRTree::GetAll(std::vector<TileEntry>* out) const {
  out->insert(out->end(), entries_.begin(), entries_.end());
}

}  // namespace tilestore
