#ifndef TILESTORE_INDEX_PACKED_RTREE_H_
#define TILESTORE_INDEX_PACKED_RTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "index/tile_index.h"

namespace tilestore {

/// \brief A read-only, serialized R-tree over tile entries — the on-disk
/// image of an MDD object's tile index.
///
/// `Serialize` STR-packs the entries into a flat, pointer-free byte image
/// (nodes breadth-first, each referencing a contiguous run of children or
/// entries); `Parse` validates the image and serves `Search` directly from
/// it without rebuilding a dynamic tree. The MDD layer stores one image
/// per object in the catalog and upgrades to a dynamic `RTreeIndex` on the
/// first mutation (copy-on-write).
///
/// `Insert`/`Remove` intentionally return Unimplemented: mutations go
/// through the upgrade path.
class PackedRTree : public TileIndex {
 public:
  /// Builds the byte image for `entries` (may be empty). All entries must
  /// share dimensionality `dim` and have fixed domains. `max_entries` is
  /// the node fan-out.
  static Result<std::vector<uint8_t>> Serialize(
      const std::vector<TileEntry>& entries, size_t dim,
      size_t max_entries = 16);

  /// Parses and validates an image produced by `Serialize`. The returned
  /// index keeps the bytes alive internally.
  static Result<std::unique_ptr<PackedRTree>> Parse(
      std::vector<uint8_t> bytes);

  using TileIndex::Insert;
  Status Insert(const TileEntry& entry) override;
  Status Remove(const MInterval& domain) override;
  std::vector<TileEntry> Search(const MInterval& region) const override;
  uint64_t last_nodes_visited() const override {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }
  size_t size() const override { return entries_.size(); }
  void GetAll(std::vector<TileEntry>* out) const override;

  size_t node_count() const { return nodes_.size(); }

 private:
  struct PackedNode {
    bool leaf = true;
    uint32_t first = 0;  // index of first child node / first entry
    uint32_t count = 0;  // number of children / entries
    MInterval box;
  };

  PackedRTree() = default;

  std::vector<PackedNode> nodes_;   // nodes_[0] is the root (if any)
  std::vector<TileEntry> entries_;  // leaf payloads, in packed order
  // Relaxed atomic: concurrent Search calls may interleave, in which
  // case the "last" count is whichever search finished last.
  mutable std::atomic<uint64_t> last_nodes_visited_{0};
};

}  // namespace tilestore

#endif  // TILESTORE_INDEX_PACKED_RTREE_H_
