#ifndef TILESTORE_INDEX_DIRECTORY_INDEX_H_
#define TILESTORE_INDEX_DIRECTORY_INDEX_H_

#include <atomic>
#include <vector>

#include "index/tile_index.h"

namespace tilestore {

/// \brief Baseline tile index: a flat directory scanned linearly.
///
/// Simple and adequate for objects with few tiles; its search cost grows
/// linearly with the tile count, which the index ablation benchmark (E9 in
/// DESIGN.md) contrasts with the R-tree. For t_ix accounting, the
/// directory counts one "node" per `kEntriesPerNode` entries scanned,
/// mimicking a paged sequential directory.
class DirectoryIndex : public TileIndex {
 public:
  static constexpr size_t kEntriesPerNode = 64;

  DirectoryIndex() = default;

  using TileIndex::Insert;
  Status Insert(const TileEntry& entry) override;
  Status Remove(const MInterval& domain) override;
  std::vector<TileEntry> Search(const MInterval& region) const override;
  uint64_t last_nodes_visited() const override {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }
  size_t size() const override { return entries_.size(); }
  void GetAll(std::vector<TileEntry>* out) const override;

 private:
  std::vector<TileEntry> entries_;
  // Relaxed atomic: concurrent Search calls may interleave, in which
  // case the "last" count is whichever search finished last.
  mutable std::atomic<uint64_t> last_nodes_visited_{0};
};

}  // namespace tilestore

#endif  // TILESTORE_INDEX_DIRECTORY_INDEX_H_
