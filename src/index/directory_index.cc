#include "index/directory_index.h"

namespace tilestore {

Status DirectoryIndex::Insert(const TileEntry& entry) {
  if (!entry.domain.IsFixed()) {
    return Status::InvalidArgument("tile domain must be fixed: " +
                                   entry.domain.ToString());
  }
  entries_.push_back(entry);
  return Status::OK();
}

Status DirectoryIndex::Remove(const MInterval& domain) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].domain == domain) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("no tile with domain " + domain.ToString());
}

std::vector<TileEntry> DirectoryIndex::Search(const MInterval& region) const {
  std::vector<TileEntry> out;
  for (const TileEntry& entry : entries_) {
    if (entry.domain.Intersects(region)) out.push_back(entry);
  }
  last_nodes_visited_ =
      (entries_.size() + kEntriesPerNode - 1) / kEntriesPerNode;
  return out;
}

void DirectoryIndex::GetAll(std::vector<TileEntry>* out) const {
  out->insert(out->end(), entries_.begin(), entries_.end());
}

}  // namespace tilestore
