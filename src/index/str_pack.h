#ifndef TILESTORE_INDEX_STR_PACK_H_
#define TILESTORE_INDEX_STR_PACK_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/minterval.h"

namespace tilestore {

/// Center of a box along one axis, for STR sorting.
inline double BoxCenter(const MInterval& box, size_t axis) {
  return (static_cast<double>(box.lo(axis)) +
          static_cast<double>(box.hi(axis))) /
         2.0;
}

/// Sort-tile-recursive grouping (Leutenegger et al.): recursively slices
/// `items[begin,end)` into slabs along successive axes, sorting in place,
/// so that each final run holds at most `per_group` items and runs are
/// spatially compact. Appends the `[begin, end)` ranges of the runs to
/// `runs`. `box_of(item)` must return the item's bounding box.
///
/// Shared by the dynamic R-tree's bulk load and the packed (on-disk)
/// R-tree builder.
template <typename T, typename BoxFn>
void StrPackRuns(std::vector<T>* items, size_t begin, size_t end, size_t dim,
                 size_t axis, size_t per_group, const BoxFn& box_of,
                 std::vector<std::pair<size_t, size_t>>* runs) {
  const size_t n = end - begin;
  auto by_center = [&](const T& a, const T& b) {
    return BoxCenter(box_of(a), axis) < BoxCenter(box_of(b), axis);
  };
  if (n <= per_group || axis + 1 >= dim) {
    std::sort(items->begin() + static_cast<ptrdiff_t>(begin),
              items->begin() + static_cast<ptrdiff_t>(end), by_center);
    for (size_t i = begin; i < end; i += per_group) {
      runs->emplace_back(i, std::min(end, i + per_group));
    }
    return;
  }
  std::sort(items->begin() + static_cast<ptrdiff_t>(begin),
            items->begin() + static_cast<ptrdiff_t>(end), by_center);
  const size_t total_groups = (n + per_group - 1) / per_group;
  const double frac = 1.0 / static_cast<double>(dim - axis);
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::pow(static_cast<double>(total_groups), frac))));
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t s = begin; s < end; s += slab_size) {
    StrPackRuns(items, s, std::min(end, s + slab_size), dim, axis + 1,
                per_group, box_of, runs);
  }
}

}  // namespace tilestore

#endif  // TILESTORE_INDEX_STR_PACK_H_
