#ifndef TILESTORE_INDEX_TILE_INDEX_H_
#define TILESTORE_INDEX_TILE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/minterval.h"
#include "storage/blob_store.h"
#include "storage/compression.h"

namespace tilestore {

/// One indexed tile: its spatial domain, the BLOB holding its cells, and
/// the codec the cells were stored with (selective compression may choose
/// a different codec per tile).
struct TileEntry {
  MInterval domain;
  BlobId blob = kInvalidBlobId;
  Compression compression = Compression::kNone;
};

/// \brief Spatial index over the tiles of one MDD object (Section 5: "the
/// MDD object index stores the spatial information of the object tiles; for
/// each access ... the index returns the tiles intersected by the query
/// region").
///
/// Tile domains of one object are pairwise disjoint by the tiling
/// invariant, which is why an R-tree over them behaves like the paper's
/// R+-tree. Implementations must support intersection search and report
/// how many index nodes a search visited — the quantity behind the paper's
/// t_ix cost component.
class TileIndex {
 public:
  virtual ~TileIndex() = default;

  /// Adds a tile. The entry's domain must be fixed; no disjointness check
  /// is done here (the MDD layer enforces the tiling invariant).
  virtual Status Insert(const TileEntry& entry) = 0;

  /// Convenience for uncompressed tiles.
  Status Insert(const MInterval& domain, BlobId blob) {
    return Insert(TileEntry{domain, blob, Compression::kNone});
  }

  /// Removes the tile with exactly this domain. NotFound if absent.
  virtual Status Remove(const MInterval& domain) = 0;

  /// All tiles intersecting `region`, in unspecified order.
  virtual std::vector<TileEntry> Search(const MInterval& region) const = 0;

  /// Index nodes visited by the most recent `Search` (for t_ix modelling).
  virtual uint64_t last_nodes_visited() const = 0;

  /// Number of indexed tiles.
  virtual size_t size() const = 0;

  /// Appends every entry to `out` (for persistence and validation).
  virtual void GetAll(std::vector<TileEntry>* out) const = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_INDEX_TILE_INDEX_H_
