#ifndef TILESTORE_LAYOUT_COMPACTOR_H_
#define TILESTORE_LAYOUT_COMPACTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/minterval.h"

namespace tilestore {

class MDDStore;

namespace layout {

/// Policy knobs of the online compactor (DESIGN.md §14).
struct CompactorOptions {
  /// Background poll period between fragmentation measurements.
  std::chrono::milliseconds poll_interval{1000};
  /// Run-length fragmentation (physical extents per tile over the
  /// SFC-ordered tile walk, 0 = one sequential run, →1 = every tile its
  /// own seek) an object must exceed before the background loop compacts
  /// it. `CompactNow` bypasses this.
  double min_fragmentation = 0.25;
  /// Objects with fewer tiles are never worth a relocation pass.
  uint64_t min_tiles = 2;
  /// Stored bytes one relocation step may rewrite: planned steps are
  /// sized to it, and a background tick applies roughly one budget's
  /// worth before parking the rest — readers run between ticks. One step
  /// is always applied (a step is the atomicity unit).
  uint64_t step_byte_budget = 4ull << 20;
  /// Persist the catalog after a completed compaction so the new blob
  /// ids are visible across reopen without an explicit Save.
  bool save_after_compaction = true;
  /// Reader-coexistence lock (the server passes its catalog guard):
  /// relocation steps and the final Save run under an exclusive lock,
  /// measurement under a shared lock. Null means the caller serializes
  /// externally.
  std::shared_mutex* catalog_mu = nullptr;
  /// When non-empty, parked (budget-capped or drain-abandoned)
  /// relocation plans are persisted here (CRC'd, tmp+rename; the server
  /// derives `<db>.compact` from the store path) and loaded back on
  /// construction, so a restart resumes a mid-compaction object. A
  /// corrupt or torn file is discarded silently — losing a plan is
  /// always safe, the partially compacted placement left behind is
  /// valid.
  std::string pending_path;
};

/// Run-length statistics of one object's tile→page mapping.
struct FragmentationStats {
  uint64_t tiles = 0;
  /// Stored blob bytes across all tiles.
  uint64_t bytes = 0;
  /// Maximal physically consecutive runs the SFC-ordered tile walk
  /// decays into (1 = perfectly laid out).
  uint64_t extents = 0;
  /// `(extents - 1) / (tiles - 1)` — the fraction of tile transitions
  /// that seek. 0 for objects with fewer than two tiles.
  double fragmentation = 0;
};

/// Outcome of one measure/compact pass over one object.
struct CompactReport {
  bool compacted = false;
  std::string rationale;
  double frag_before = 0;
  /// Measured again after a *completed* compaction; equals `frag_before`
  /// when the plan parked mid-way or nothing ran.
  double frag_after = 0;
  uint64_t steps = 0;
  uint64_t tiles_moved = 0;
  uint64_t bytes_moved = 0;
};

/// \brief Online background compaction: measures per-object run-length
/// fragmentation of the tile→page mapping and rewrites tile blobs into
/// SFC-contiguous page runs, one bounded relocation step at a time, under
/// store transactions (DESIGN.md §14).
///
/// Each step is one atomic `MDDObject::RelocateTiles` — byte-identical
/// blob rewrites into contiguous runs allocated in SFC order — so between
/// steps (and after a crash or drain) every tile is served from exactly
/// its old or its new placement, never a mix. Runs as a background thread
/// (`Start`/`Stop`, wired to `serve --auto-compact`) or synchronously
/// (`CompactNow`, the `tilestore_cli compact` / wire `kCompact` surface).
/// Parked plans persist to `pending_path` and resume across restarts,
/// reusing the re-tiler's step/park/resume discipline.
///
/// Observability: `layout.*` metrics in the store registry (evaluations,
/// compactions, steps, tiles_moved, bytes_moved, skipped_low_frag,
/// errors, and a per-store `layout.frag_milli` gauge of the last
/// measurement) plus "compact"/"compact_step" trace spans.
class Compactor {
 public:
  explicit Compactor(MDDStore* store,
                     CompactorOptions options = CompactorOptions());
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Starts the background policy thread (idempotent).
  void Start();

  /// Drains and joins the background thread: the in-flight relocation
  /// step (if any) completes, remaining steps are parked.
  void Stop();

  /// Pauses/resumes the background loop between steps.
  void Pause() { paused_.store(true, std::memory_order_relaxed); }
  void Resume() {
    paused_.store(false, std::memory_order_relaxed);
    wake_.notify_all();
  }
  bool running() const { return thread_.joinable(); }

  /// Measures `name`'s fragmentation without relocating anything.
  Result<FragmentationStats> Measure(const std::string& name);

  /// Synchronous measure-and-compact of one object, bypassing the
  /// `min_fragmentation` trigger (the `compact` admin op) — objects
  /// below `min_tiles` still return `compacted = false` with the
  /// reasoning. A nonzero `budget` caps relocated bytes as in the
  /// background loop; surplus steps are parked (and persisted with
  /// `pending_path`). 0 runs the whole plan.
  Result<CompactReport> CompactNow(const std::string& name,
                                   uint64_t budget = 0);

  /// Applies up to one `step_byte_budget` worth of a parked plan — from
  /// an earlier budget-capped tick or a previous session via
  /// `pending_path` — then parks the remainder again, so resumed plans
  /// spread across poll ticks exactly like fresh ones. NotFound when
  /// none is parked.
  Result<CompactReport> Continue(const std::string& name);

  /// Objects with parked relocation steps.
  std::vector<std::string> PendingObjects() const;

 private:
  struct Metrics;
  // One relocation step: the domains of the tiles it rewrites.
  using Step = std::vector<MInterval>;

  // Measures + plans + relocates one object (`budget` caps bytes when
  // nonzero; with `resume_only`, fails with NotFound instead of
  // measuring afresh when no plan is parked; with `force`, skips the
  // min_fragmentation gate).
  Result<CompactReport> EvaluateAndCompact(const std::string& name,
                                           uint64_t budget, bool resume_only,
                                           bool force);

  // Measurement body; caller holds (at least) a shared catalog lock.
  Result<FragmentationStats> MeasureLocked(const std::string& name,
                                           std::vector<MInterval>* sfc_order,
                                           std::vector<uint64_t>* sizes);

  // Writes the pending map to `options_.pending_path` (removes the file
  // when the map is empty). Caller holds `compact_mu_`. Best-effort.
  void PersistPendingLocked();
  // Loads `options_.pending_path` into the pending map (construction).
  void LoadPending();

  void Loop();

  MDDStore* store_;
  CompactorOptions options_;
  std::unique_ptr<Metrics> metrics_;
  // Serializes compactions (background loop vs CompactNow).
  mutable std::mutex compact_mu_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::thread thread_;
};

}  // namespace layout
}  // namespace tilestore

#endif  // TILESTORE_LAYOUT_COMPACTOR_H_
