#include "layout/compactor.h"

#include <algorithm>
#include <cstdio>

#include "common/checksum.h"
#include "common/serde.h"
#include "layout/sfc.h"
#include "mdd/mdd_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/env.h"

namespace tilestore {
namespace layout {

namespace {

// Persisted-plan sidecar: magic, version, the pending map, CRC-32C tail —
// the same discipline (and near-identical encoding) as the re-tiler's
// `.retile` sidecar, holding step domain lists instead of retile targets.
constexpr uint32_t kPendingMagic = 0x54534350;  // "TSCP"
constexpr uint16_t kPendingVersion = 1;

void WritePendingInterval(ByteWriter* w, const MInterval& iv) {
  w->U8(static_cast<uint8_t>(iv.dim()));
  for (size_t i = 0; i < iv.dim(); ++i) {
    w->I64(iv.lo(i));
    w->I64(iv.hi(i));
  }
}

Status ReadPendingInterval(ByteReader* r, MInterval* out) {
  uint8_t dim = 0;
  Status st = r->U8(&dim);
  if (!st.ok()) return st;
  if (dim == 0) return Status::Corruption("zero-dimensional interval");
  std::vector<Coord> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    st = r->I64(&lo[i]);
    if (!st.ok()) return st;
    st = r->I64(&hi[i]);
    if (!st.ok()) return st;
  }
  Result<MInterval> iv = MInterval::Create(std::move(lo), std::move(hi));
  if (!iv.ok()) return Status::Corruption("invalid interval bounds");
  *out = std::move(iv).MoveValue();
  return Status::OK();
}

std::shared_lock<std::shared_mutex> MaybeShared(std::shared_mutex* mu) {
  return mu != nullptr ? std::shared_lock<std::shared_mutex>(*mu)
                       : std::shared_lock<std::shared_mutex>();
}

std::unique_lock<std::shared_mutex> MaybeUnique(std::shared_mutex* mu) {
  return mu != nullptr ? std::unique_lock<std::shared_mutex>(*mu)
                       : std::unique_lock<std::shared_mutex>();
}

}  // namespace

struct Compactor::Metrics {
  obs::Counter* evaluations;
  obs::Counter* compactions;
  obs::Counter* steps;
  obs::Counter* tiles_moved;
  obs::Counter* bytes_moved;
  obs::Counter* skipped_low_frag;
  obs::Counter* errors;
  // Fragmentation of the most recently measured object, in thousandths.
  obs::Gauge* frag_milli;
  // Relocation work a compaction still owes (pending steps), per object.
  std::map<std::string, std::vector<Step>> pending;
};

Compactor::Compactor(MDDStore* store, CompactorOptions options)
    : store_(store), options_(options) {
  metrics_ = std::make_unique<Metrics>();
  obs::MetricsRegistry* registry = store_->metrics();
  metrics_->evaluations = registry->counter("layout.evaluations");
  metrics_->compactions = registry->counter("layout.compactions");
  metrics_->steps = registry->counter("layout.steps");
  metrics_->tiles_moved = registry->counter("layout.tiles_moved");
  metrics_->bytes_moved = registry->counter("layout.bytes_moved");
  metrics_->skipped_low_frag = registry->counter("layout.skipped_low_frag");
  metrics_->errors = registry->counter("layout.errors");
  metrics_->frag_milli = registry->gauge("layout.frag_milli");
  LoadPending();
}

Compactor::~Compactor() { Stop(); }

void Compactor::PersistPendingLocked() {
  if (options_.pending_path.empty()) return;
  if (metrics_->pending.empty()) {
    if (FileExists(options_.pending_path)) {
      (void)RemoveFile(options_.pending_path);  // best-effort
    }
    return;
  }
  ByteWriter w;
  w.U32(kPendingMagic);
  w.U16(kPendingVersion);
  w.U32(static_cast<uint32_t>(metrics_->pending.size()));
  for (const auto& [name, steps] : metrics_->pending) {
    w.Str(name);
    w.U32(static_cast<uint32_t>(steps.size()));
    for (const Step& step : steps) {
      w.U32(static_cast<uint32_t>(step.size()));
      for (const MInterval& domain : step) {
        WritePendingInterval(&w, domain);
      }
    }
  }
  std::vector<uint8_t> payload = w.Take();
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  const std::string tmp = options_.pending_path + ".tmp";
  Result<std::unique_ptr<File>> file = File::Open(tmp, /*create=*/true);
  if (!file.ok()) return;
  Status st = (*file)->Truncate(0);
  if (st.ok()) st = (*file)->WriteAt(0, payload.data(), payload.size());
  if (st.ok()) st = (*file)->Sync();
  file->reset();
  if (!st.ok() ||
      std::rename(tmp.c_str(), options_.pending_path.c_str()) != 0) {
    (void)RemoveFile(tmp);
  }
}

void Compactor::LoadPending() {
  if (options_.pending_path.empty() || !FileExists(options_.pending_path)) {
    return;
  }
  Result<std::unique_ptr<File>> file =
      File::Open(options_.pending_path, /*create=*/false);
  if (!file.ok()) return;
  Result<uint64_t> size = (*file)->Size();
  if (!size.ok() || *size < 4 || *size > (64u << 20)) return;
  std::vector<uint8_t> bytes(static_cast<size_t>(*size));
  if (!(*file)->ReadAt(0, bytes.size(), bytes.data()).ok()) return;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
  }
  bytes.resize(bytes.size() - 4);
  if (Crc32c(bytes.data(), bytes.size()) != stored_crc) return;

  std::map<std::string, std::vector<Step>> loaded;
  ByteReader r(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint32_t objects = 0;
  if (!r.U32(&magic).ok() || magic != kPendingMagic) return;
  if (!r.U16(&version).ok() || version != kPendingVersion) return;
  if (!r.U32(&objects).ok()) return;
  for (uint32_t i = 0; i < objects; ++i) {
    std::string name;
    uint32_t step_count = 0;
    if (!r.Str(&name).ok() || !r.U32(&step_count).ok()) return;
    std::vector<Step> steps;
    steps.reserve(std::min<uint32_t>(step_count, 1024));
    for (uint32_t s = 0; s < step_count; ++s) {
      uint32_t domains = 0;
      if (!r.U32(&domains).ok()) return;
      Step step;
      for (uint32_t d = 0; d < domains; ++d) {
        MInterval domain;
        if (!ReadPendingInterval(&r, &domain).ok()) return;
        step.push_back(std::move(domain));
      }
      if (step.empty()) return;
      steps.push_back(std::move(step));
    }
    if (!steps.empty()) loaded[std::move(name)] = std::move(steps);
  }
  if (!r.AtEnd()) return;
  metrics_->pending = std::move(loaded);
}

void Compactor::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  wake_.notify_all();
  thread_.join();
  stop_.store(false, std::memory_order_relaxed);
}

void Compactor::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_.wait_for(lock, options_.poll_interval, [this] {
        return stop_.load(std::memory_order_relaxed);
      });
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    if (paused_.load(std::memory_order_relaxed)) continue;

    // Every object is a candidate each tick: objects with parked plans
    // resume (one budget's worth), the rest are measured and compacted
    // only past the fragmentation trigger.
    for (const std::string& name : store_->ListMDD()) {
      if (stop_.load(std::memory_order_relaxed) ||
          paused_.load(std::memory_order_relaxed)) {
        break;
      }
      Result<CompactReport> report = EvaluateAndCompact(
          name, options_.step_byte_budget, /*resume_only=*/false,
          /*force=*/false);
      if (!report.ok()) metrics_->errors->Add(1);
    }
  }
}

Result<FragmentationStats> Compactor::Measure(const std::string& name) {
  auto lock = MaybeShared(options_.catalog_mu);
  return MeasureLocked(name, nullptr, nullptr);
}

Result<FragmentationStats> Compactor::MeasureLocked(
    const std::string& name, std::vector<MInterval>* sfc_order,
    std::vector<uint64_t>* sizes) {
  Result<MDDObject*> object_or = store_->GetMDD(name);
  if (!object_or.ok()) return object_or.status();
  const std::vector<TileEntry> entries = object_or.value()->AllTiles();

  FragmentationStats stats;
  stats.tiles = entries.size();
  if (entries.empty()) return stats;

  std::vector<MInterval> domains;
  domains.reserve(entries.size());
  for (const TileEntry& entry : entries) domains.push_back(entry.domain);
  const std::vector<size_t> order =
      SfcOrder(domains, store_->options().sfc_curve);

  // Run-length walk: visit tiles in curve order (the order a compacted
  // layout would serve a curve-aligned scan in) and count how many
  // physically consecutive extents the blob chain sequence decays into.
  BlobStore* blobs = store_->blob_store();
  BlobId expected_next = kInvalidBlobId;
  for (size_t idx : order) {
    const TileEntry& entry = entries[idx];
    Result<BlobStore::BlobExtent> extent = blobs->Stat(entry.blob);
    if (!extent.ok()) return extent.status();
    if (extent->id != expected_next) ++stats.extents;
    // A chain that starts fragmented has an unknowable end: force the
    // next transition to count as a seek.
    expected_next =
        extent->starts_adjacent ? extent->id + extent->pages : kInvalidBlobId;
    stats.bytes += extent->size;
    if (sfc_order != nullptr) sfc_order->push_back(entry.domain);
    if (sizes != nullptr) sizes->push_back(extent->size);
  }
  stats.fragmentation =
      stats.tiles < 2 ? 0.0
                      : static_cast<double>(stats.extents - 1) /
                            static_cast<double>(stats.tiles - 1);
  return stats;
}

Result<CompactReport> Compactor::CompactNow(const std::string& name,
                                            uint64_t budget) {
  // Fresh measurement beats a stale plan: an admin-triggered run replans
  // even when a background compaction still owes steps.
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    if (metrics_->pending.erase(name) > 0) PersistPendingLocked();
  }
  return EvaluateAndCompact(name, budget, /*resume_only=*/false,
                            /*force=*/true);
}

Result<CompactReport> Compactor::Continue(const std::string& name) {
  return EvaluateAndCompact(name, options_.step_byte_budget,
                            /*resume_only=*/true, /*force=*/false);
}

std::vector<std::string> Compactor::PendingObjects() const {
  std::lock_guard<std::mutex> lock(compact_mu_);
  std::vector<std::string> names;
  names.reserve(metrics_->pending.size());
  for (const auto& [name, steps] : metrics_->pending) names.push_back(name);
  return names;
}

Result<CompactReport> Compactor::EvaluateAndCompact(const std::string& name,
                                                    uint64_t budget,
                                                    bool resume_only,
                                                    bool force) {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  CompactReport report;

  std::vector<Step> steps;
  auto pending_it = metrics_->pending.find(name);
  const bool resuming = pending_it != metrics_->pending.end();
  if (resume_only && !resuming) {
    return Status::NotFound("no parked compaction plan for " + name);
  }
  if (resuming) {
    steps = std::move(pending_it->second);
    metrics_->pending.erase(pending_it);
    auto lock = MaybeShared(options_.catalog_mu);
    Result<FragmentationStats> stats = MeasureLocked(name, nullptr, nullptr);
    if (!stats.ok()) {
      PersistPendingLocked();  // dropped; forget the plan durably too
      return stats.status();
    }
    report.frag_before = stats->fragmentation;
    report.rationale = "resumed";
  } else {
    metrics_->evaluations->Add(1);

    std::vector<MInterval> sfc_domains;
    std::vector<uint64_t> sizes;
    FragmentationStats stats;
    {
      auto lock = MaybeShared(options_.catalog_mu);
      Result<FragmentationStats> stats_or =
          MeasureLocked(name, &sfc_domains, &sizes);
      if (!stats_or.ok()) return stats_or.status();
      stats = *stats_or;
    }
    report.frag_before = stats.fragmentation;
    report.frag_after = stats.fragmentation;
    metrics_->frag_milli->Set(
        static_cast<int64_t>(stats.fragmentation * 1000.0));
    if (stats.tiles < options_.min_tiles) {
      report.rationale = "too few tiles to compact";
      return report;
    }
    if (stats.extents <= 1) {
      report.rationale = "already laid out contiguously";
      return report;
    }
    if (!force && stats.fragmentation < options_.min_fragmentation) {
      metrics_->skipped_low_frag->Add(1);
      report.rationale = "fragmentation below threshold";
      return report;
    }

    // Plan: SFC-consecutive domains grouped into steps of at most
    // step_byte_budget stored bytes (a step always takes at least one
    // tile). Relocating in curve order is what makes the rewritten runs
    // land curve-adjacent.
    Step current;
    uint64_t current_bytes = 0;
    for (size_t i = 0; i < sfc_domains.size(); ++i) {
      if (!current.empty() &&
          current_bytes + sizes[i] > options_.step_byte_budget) {
        steps.push_back(std::move(current));
        current.clear();
        current_bytes = 0;
      }
      current.push_back(sfc_domains[i]);
      current_bytes += sizes[i];
    }
    if (!current.empty()) steps.push_back(std::move(current));
    report.rationale = "fragmented tile→page mapping";
  }

  // Relocate step by step. Each step is one atomic RelocateTiles under
  // the exclusive lock; between steps readers run against a valid (old
  // or new, never mixed) placement. Stop() parks remaining steps; a
  // nonzero budget defers them to the next background tick.
  const uint64_t trace_id = store_->trace()->NextTraceId();
  obs::TraceScope compact_span(store_->trace(), trace_id, "compact");
  size_t applied = 0;
  uint64_t moved_bytes = 0;
  uint64_t moved_tiles = 0;
  for (const Step& step : steps) {
    if (applied > 0 && stop_.load(std::memory_order_relaxed)) break;
    if (applied > 0 && budget != 0 && moved_bytes >= budget) break;
    {
      auto lock = MaybeUnique(options_.catalog_mu);
      Result<MDDObject*> object_or = store_->GetMDD(name);
      if (!object_or.ok()) return object_or.status();
      obs::TraceScope step_span(store_->trace(), trace_id, "compact_step");
      Result<uint64_t> bytes = object_or.value()->RelocateTiles(step);
      if (!bytes.ok()) return bytes.status();  // plan discarded; unchanged
      moved_bytes += *bytes;
    }
    ++applied;
    moved_tiles += step.size();
    metrics_->steps->Add(1);
    metrics_->tiles_moved->Add(step.size());
  }
  metrics_->bytes_moved->Add(moved_bytes);
  report.steps = applied;
  report.tiles_moved = moved_tiles;
  report.bytes_moved = moved_bytes;
  report.compacted = applied > 0;
  report.frag_after = report.frag_before;

  if (applied < steps.size()) {
    // Budget-capped or draining: park the remainder; the next tick (or a
    // later session, via the persisted plan) resumes it. The partially
    // relocated placement left behind is valid, so nothing breaks if it
    // never resumes.
    metrics_->pending[name] =
        std::vector<Step>(steps.begin() + applied, steps.end());
    PersistPendingLocked();
    return report;
  }
  // Completed a resumed plan: retire its persisted copy.
  if (resuming) PersistPendingLocked();

  metrics_->compactions->Add(1);
  {
    auto lock = MaybeUnique(options_.catalog_mu);
    if (options_.save_after_compaction) {
      Status st = store_->Save();
      if (!st.ok()) return st;
    }
    Result<FragmentationStats> after = MeasureLocked(name, nullptr, nullptr);
    if (after.ok()) {
      report.frag_after = after->fragmentation;
      metrics_->frag_milli->Set(
          static_cast<int64_t>(after->fragmentation * 1000.0));
    }
  }
  return report;
}

}  // namespace layout
}  // namespace tilestore
