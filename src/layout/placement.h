#ifndef TILESTORE_LAYOUT_PLACEMENT_H_
#define TILESTORE_LAYOUT_PLACEMENT_H_

#include <cstdint>

namespace tilestore {
namespace layout {

/// \brief How `BlobStore::Put` acquires pages for a fresh chain — the
/// placement seam of the layout subsystem (DESIGN.md §14).
///
/// `kFirstFit` is the historical behaviour: one page at a time off the
/// LIFO free list, which degrades into scatter as the list churns.
/// `kContiguous` allocates the whole chain as one consecutive page run
/// (`PageFile::AllocateRun`), so a blob written under it always reads
/// back with the coalesced fast path. Combined with SFC-ordered write
/// batches (see `layout/sfc.h`) this places curve-adjacent tiles into
/// adjacent runs.
enum class PlacementMode : uint8_t {
  kFirstFit = 0,
  kContiguous = 1,
};

inline const char* PlacementModeName(PlacementMode mode) {
  return mode == PlacementMode::kContiguous ? "contiguous" : "first-fit";
}

}  // namespace layout
}  // namespace tilestore

#endif  // TILESTORE_LAYOUT_PLACEMENT_H_
