#ifndef TILESTORE_LAYOUT_SFC_H_
#define TILESTORE_LAYOUT_SFC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "core/tile.h"

namespace tilestore {
namespace layout {

/// \brief Space-filling-curve key computation over tile-region centers —
/// the ordering half of the layout subsystem (DESIGN.md §14).
///
/// Arbitrary (non-aligned) tilings have no grid to index, so keys are
/// computed from each region's *center*, normalized into a bounding frame
/// and quantized to `63 / d` bits per axis. Haverkort's recursive-tilings
/// result bounds how many curve sections a query box intersects, which is
/// exactly the number of sequential runs a range query's fetch set decays
/// into once blobs are placed in key order.

/// Curve choice. Hilbert keeps all neighbors close at every scale (the
/// default); Z-order (Morton) is cheaper to compute and good enough for
/// mostly-square tiles.
enum class SfcCurve : uint8_t {
  kHilbert = 0,
  kZOrder = 1,
};

const char* SfcCurveName(SfcCurve curve);

/// Parses "hilbert" / "zorder" (also accepts "z-order", "morton").
Result<SfcCurve> ParseSfcCurve(const std::string& name);

/// Key of `region`'s center within `frame` (a bounding box of the whole
/// batch being placed, typically the hull of a tiling spec). Centers are
/// kept exact as `lo + hi` (twice the center) so half-cell positions never
/// round. Regions outside the frame clamp to its faces; a degenerate frame
/// axis contributes zero bits. Keys are comparable only against keys
/// computed within the same frame and curve.
uint64_t SfcKey(const MInterval& region, const MInterval& frame,
                SfcCurve curve);

/// Bounding hull of `regions` (per-axis min lo / max hi). Empty input
/// yields a 1-d zero interval.
MInterval BoundingFrame(const std::vector<MInterval>& regions);

/// Index permutation that visits `regions` in curve order within their
/// own bounding frame. Ties (identical keys) break by lexicographic
/// region bounds, so the order is deterministic.
std::vector<size_t> SfcOrder(const std::vector<MInterval>& regions,
                             SfcCurve curve);

/// Sorts a tiling spec in place into curve order — the write-batch hook:
/// loading or re-tiling through a sorted spec makes blob allocation order
/// (and therefore physical placement) follow the curve.
void SortBySfc(TilingSpec* spec, SfcCurve curve);

}  // namespace layout
}  // namespace tilestore

#endif  // TILESTORE_LAYOUT_SFC_H_
