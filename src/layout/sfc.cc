#include "layout/sfc.h"

#include <algorithm>
#include <numeric>

namespace tilestore {
namespace layout {

namespace {

/// Bits per axis: the interleaved key must fit 64 bits with headroom for
/// the sign-free scaling below.
int BitsPerAxis(size_t dim) {
  if (dim == 0) return 0;
  const size_t b = 63 / dim;
  return static_cast<int>(std::min<size_t>(b, 32));
}

/// Scales twice-the-center `v2` (in [lo2, hi2]) to [0, 2^bits - 1].
/// 128-bit arithmetic keeps the full Coord range exact.
uint64_t ScaleAxis(__int128 v2, __int128 lo2, __int128 hi2, int bits) {
  if (bits <= 0 || hi2 <= lo2) return 0;
  if (v2 < lo2) v2 = lo2;
  if (v2 > hi2) v2 = hi2;
  const __int128 span = hi2 - lo2;
  const __int128 top = (static_cast<__int128>(1) << bits) - 1;
  return static_cast<uint64_t>((v2 - lo2) * top / span);
}

/// Skilling's transpose-form Hilbert encoding ("Programming the Hilbert
/// curve", AIP Conf. Proc. 707, 2004): maps axis coordinates in place to
/// the transposed Hilbert index, which the caller interleaves.
void AxesToTranspose(std::vector<uint64_t>* x, int bits, size_t dim) {
  if (dim < 2 || bits < 1) return;
  std::vector<uint64_t>& X = *x;
  const uint64_t M = 1ull << (bits - 1);
  // Inverse undo.
  for (uint64_t Q = M; Q > 1; Q >>= 1) {
    const uint64_t P = Q - 1;
    for (size_t i = 0; i < dim; ++i) {
      if (X[i] & Q) {
        X[0] ^= P;
      } else {
        const uint64_t t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (size_t i = 1; i < dim; ++i) X[i] ^= X[i - 1];
  uint64_t t = 0;
  for (uint64_t Q = M; Q > 1; Q >>= 1) {
    if (X[dim - 1] & Q) t ^= Q - 1;
  }
  for (size_t i = 0; i < dim; ++i) X[i] ^= t;
}

/// MSB-first interleave of `dim` coordinates of `bits` bits each. For the
/// transposed Hilbert form this yields the curve index; for raw scaled
/// coordinates it yields the Morton (Z-order) key.
uint64_t Interleave(const std::vector<uint64_t>& x, int bits, size_t dim) {
  uint64_t key = 0;
  for (int bit = bits - 1; bit >= 0; --bit) {
    for (size_t i = 0; i < dim; ++i) {
      key = (key << 1) | ((x[i] >> bit) & 1);
    }
  }
  return key;
}

/// Lexicographic region comparison, the deterministic tie-break.
bool RegionLess(const MInterval& a, const MInterval& b) {
  if (a.dim() != b.dim()) return a.dim() < b.dim();
  for (size_t i = 0; i < a.dim(); ++i) {
    if (a.lo(i) != b.lo(i)) return a.lo(i) < b.lo(i);
    if (a.hi(i) != b.hi(i)) return a.hi(i) < b.hi(i);
  }
  return false;
}

}  // namespace

const char* SfcCurveName(SfcCurve curve) {
  return curve == SfcCurve::kZOrder ? "zorder" : "hilbert";
}

Result<SfcCurve> ParseSfcCurve(const std::string& name) {
  if (name == "hilbert") return SfcCurve::kHilbert;
  if (name == "zorder" || name == "z-order" || name == "morton") {
    return SfcCurve::kZOrder;
  }
  return Status::InvalidArgument("unknown space-filling curve '" + name +
                                 "' (expected hilbert or zorder)");
}

uint64_t SfcKey(const MInterval& region, const MInterval& frame,
                SfcCurve curve) {
  const size_t dim = region.dim();
  if (dim == 0 || frame.dim() != dim) return 0;
  const int bits = BitsPerAxis(dim);
  if (bits <= 0) return 0;
  std::vector<uint64_t> x(dim, 0);
  for (size_t i = 0; i < dim; ++i) {
    const __int128 v2 =
        static_cast<__int128>(region.lo(i)) + static_cast<__int128>(region.hi(i));
    const __int128 lo2 = static_cast<__int128>(frame.lo(i)) * 2;
    const __int128 hi2 = static_cast<__int128>(frame.hi(i)) * 2;
    x[i] = ScaleAxis(v2, lo2, hi2, bits);
  }
  if (dim == 1) return x[0];
  if (curve == SfcCurve::kHilbert) AxesToTranspose(&x, bits, dim);
  return Interleave(x, bits, dim);
}

MInterval BoundingFrame(const std::vector<MInterval>& regions) {
  if (regions.empty()) return MInterval({{0, 0}});
  const size_t dim = regions.front().dim();
  std::vector<Coord> lo(dim, kHiUnbounded), hi(dim, kLoUnbounded);
  for (const MInterval& r : regions) {
    if (r.dim() != dim) continue;
    for (size_t i = 0; i < dim; ++i) {
      lo[i] = std::min(lo[i], r.lo(i));
      hi[i] = std::max(hi[i], r.hi(i));
    }
  }
  Result<MInterval> frame = MInterval::Create(std::move(lo), std::move(hi));
  return frame.ok() ? frame.value() : regions.front();
}

std::vector<size_t> SfcOrder(const std::vector<MInterval>& regions,
                             SfcCurve curve) {
  std::vector<size_t> order(regions.size());
  std::iota(order.begin(), order.end(), 0);
  if (regions.size() < 2) return order;
  const MInterval frame = BoundingFrame(regions);
  std::vector<uint64_t> keys(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    keys[i] = SfcKey(regions[i], frame, curve);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return RegionLess(regions[a], regions[b]);
  });
  return order;
}

void SortBySfc(TilingSpec* spec, SfcCurve curve) {
  if (spec == nullptr || spec->size() < 2) return;
  const std::vector<size_t> order = SfcOrder(*spec, curve);
  TilingSpec sorted;
  sorted.reserve(spec->size());
  for (size_t i : order) sorted.push_back((*spec)[i]);
  *spec = std::move(sorted);
}

}  // namespace layout
}  // namespace tilestore
