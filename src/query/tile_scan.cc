#include "query/tile_scan.h"

#include <algorithm>

#include "query/range_query.h"

namespace tilestore {

Status TileScan::Begin(const MInterval& region) {
  Result<MInterval> resolved =
      RangeQueryExecutor::ResolveRegion(*object_, region);
  if (!resolved.ok()) return resolved.status();
  region_ = std::move(resolved).MoveValue();

  hits_ = object_->FindTiles(region_);
  // Physical order, as in the executor: ascending BLOB id.
  std::sort(hits_.begin(), hits_.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });
  next_ = 0;
  begun_ = true;
  return Status::OK();
}

Result<bool> TileScan::Next() {
  if (!begun_) {
    return Status::InvalidArgument("TileScan::Next called before Begin");
  }
  if (next_ >= hits_.size()) return false;
  const TileEntry& entry = hits_[next_++];
  Result<Tile> tile = object_->FetchTile(entry);
  if (!tile.ok()) return tile.status();
  tile_ = std::move(tile).MoveValue();
  // Index hits always intersect the region.
  part_ = *tile_.domain().Intersection(region_);
  return true;
}

}  // namespace tilestore
