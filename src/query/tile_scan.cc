#include "query/tile_scan.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "query/range_query.h"
#include "storage/io_scheduler.h"

namespace tilestore {

Status TileScan::Begin(const MInterval& region) {
  Result<MInterval> resolved =
      RangeQueryExecutor::ResolveRegion(*object_, region);
  if (!resolved.ok()) return resolved.status();
  region_ = std::move(resolved).MoveValue();

  hits_ = object_->FindTiles(region_);
  // Physical order, as in the executor: ascending BLOB id.
  std::sort(hits_.begin(), hits_.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });
  next_ = 0;
  issued_ = 0;
  prefetch_hits_ = 0;
  // Abandoned futures are safe: each worker owns its promise and simply
  // completes a result nobody reads.
  window_.clear();
  begun_ = true;
  FillWindow();
  return Status::OK();
}

void TileScan::FillWindow() {
  if (options_.prefetch == 0) return;
  while (window_.size() < options_.prefetch && issued_ < hits_.size()) {
    window_.push_back(store_->io_scheduler()->FetchAsync(
        hits_[issued_], object_->cell_type(), store_->thread_pool()));
    ++issued_;
  }
}

Result<bool> TileScan::Next() {
  if (!begun_) {
    return Status::InvalidArgument("TileScan::Next called before Begin");
  }
  if (next_ >= hits_.size()) return false;

  if (options_.prefetch == 0) {
    // Serial paper-exact path: on-demand fetch by the calling thread.
    const TileEntry& entry = hits_[next_++];
    Result<Tile> tile = object_->FetchTile(entry);
    if (!tile.ok()) return tile.status();
    tile_ = std::move(tile).MoveValue();
    // Index hits always intersect the region.
    part_ = *tile_.domain().Intersection(region_);
    return true;
  }

  std::future<Result<Tile>> front = std::move(window_.front());
  window_.pop_front();
  if (front.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    ++prefetch_hits_;
  }
  Result<Tile> tile = front.get();
  if (!tile.ok()) return tile.status();
  ++next_;
  FillWindow();
  tile_ = std::move(tile).MoveValue();
  part_ = *tile_.domain().Intersection(region_);
  return true;
}

}  // namespace tilestore
