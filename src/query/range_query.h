#ifndef TILESTORE_QUERY_RANGE_QUERY_H_
#define TILESTORE_QUERY_RANGE_QUERY_H_

#include <optional>

#include "common/result.h"
#include "core/aggregate.h"
#include "core/array.h"
#include "core/minterval.h"
#include "core/predicate.h"
#include "mdd/mdd_object.h"
#include "mdd/mdd_store.h"
#include "query/access_log.h"
#include "query/query_stats.h"
#include "storage/tile_summary.h"

namespace tilestore {

/// Execution options for range queries.
struct RangeQueryOptions {
  /// Cold run: clear the buffer pool and reset the disk model before
  /// executing, so t_o reflects physical retrieval — the regime the paper
  /// measures. Warm runs (default) use whatever is cached.
  bool cold = false;
  /// Tile retrieval parallelism. 1 (default) is the serial tile-at-a-time
  /// path whose results, counters, and model costs are bit-identical to
  /// the pre-scheduler implementation. Higher values fetch through the
  /// `TileIOScheduler`: page runs are coalesced and decode/composition
  /// spread over the store's worker pool. Results are byte-identical at
  /// any parallelism; only wall-clock (and, for cold runs, the seek
  /// interleaving recorded by the shared disk model) varies.
  int parallelism = 1;
  /// Cost model parameters for t_ix / t_cpu (see CostParams).
  CostParams cost;
  /// Optional access log: every executed query region is recorded, to be
  /// fed into statistic tiling later.
  AccessLog* log = nullptr;
  /// Consult (and populate) the store's decoded-tile cache. Only effective
  /// when the store was opened with `tile_cache_bytes > 0`; cold runs
  /// always bypass the cache so their cost-model numbers stay those of
  /// physical retrieval. Results are byte-identical either way — hits just
  /// skip the page fetch and the decode.
  bool use_tile_cache = true;
  /// Which aggregation kernel `ExecuteAggregate` uses per tile part.
  /// `kRun` (default) reduces in place over the tile's innermost-axis runs
  /// — no slice allocation, no copy — and folds whole RLE tiles directly
  /// over the compressed stream; `kSlice` is the legacy materialize-then-
  /// reduce path, kept for differential testing. Bit-identical results.
  enum class AggregateKernel { kRun, kSlice };
  AggregateKernel aggregate_kernel = AggregateKernel::kRun;
  /// Value predicate (DESIGN.md §15). When set, `Execute` returns the
  /// resolved region with non-matching cells replaced by the object's
  /// default value, and `ExecuteAggregate` folds matching cells only. The
  /// planner consults the store's per-tile summaries to classify each
  /// candidate tile as skip (no fetch, no decode), accept-all (plain
  /// copy/fold), or inspect (fetch + filtered decode); results are
  /// byte-identical whether summaries are present, absent, or stale —
  /// summaries only change *which* tiles are touched, never the bytes.
  /// Numeric cell types only.
  std::optional<ValuePredicate> predicate;
};

/// \brief Executes range queries (access types (a)-(c) of Section 5.1)
/// against MDD objects, instrumented with the paper's t_ix / t_o / t_cpu
/// breakdown.
///
/// Execution pipeline, exactly as in Section 5: (1) probe the tile index
/// for the tiles intersecting the query region (t_ix); (2) retrieve those
/// tiles' BLOBs from the storage system (t_o); (3) compose the intersected
/// tile parts into the result array (t_cpu). Cells of the region covered
/// by no tile are filled with the object's default value.
///
/// Observability: each query gets a fresh trace id and emits nested
/// "query" / "index_probe" / "fetch" / "compose" spans into the store's
/// trace ring (the scheduler adds per-tile "tile_fetch"/"tile_decode"
/// spans on worker threads). Query and index-probe counts go to the
/// store registry under `query.*` / `index.*`, and the `QueryStats`
/// storage counters (`pages_read`, `seeks`, `index_nodes_visited`) are
/// deltas of the same registry counters the store exports — a snapshot
/// taken around a cold query reconciles exactly with its `QueryStats`.
class RangeQueryExecutor {
 public:
  explicit RangeQueryExecutor(MDDStore* store,
                              RangeQueryOptions options = RangeQueryOptions());

  /// Runs the query. `region` may use unbounded bounds ('*'), which
  /// resolve against the object's current domain — e.g. the paper's query
  /// "[32:59,*:*,28:35]" selects the full product axis. The resolved
  /// region must lie inside the definition domain. `stats` may be null.
  Result<Array> Execute(MDDObject* object, const MInterval& region,
                        QueryStats* stats = nullptr);

  /// Aggregation push-down: condenses `region` with `op` without ever
  /// materializing the result array — tiles are fetched in physical order
  /// and condensed into per-tile partials immediately, so peak memory is
  /// `parallelism` tiles regardless of the region size. Partials are
  /// folded serially in fetch order, so the result is bit-identical at
  /// every parallelism. Uncovered cells contribute the object's default
  /// value. Numeric cell types only.
  Result<double> ExecuteAggregate(MDDObject* object, const MInterval& region,
                                  AggregateOp op,
                                  QueryStats* stats = nullptr);

  /// Resolves '*' bounds of `region` against the object's current domain
  /// without executing. Exposed for tests and benchmark tooling.
  static Result<MInterval> ResolveRegion(const MDDObject& object,
                                         const MInterval& region);

  RangeQueryOptions* mutable_options() { return &options_; }

 private:
  /// Filtered variants taken when `options_.predicate` is set: classify
  /// every index hit against its tile summary, fetch only accept/inspect
  /// tiles, and compose/fold with the predicate applied.
  Result<Array> ExecuteFiltered(MDDObject* object, const MInterval& region,
                                QueryStats* stats);
  Result<double> ExecuteAggregateFiltered(MDDObject* object,
                                          const MInterval& region,
                                          AggregateOp op, QueryStats* stats);

  MDDStore* store_;
  RangeQueryOptions options_;
  // Store-registry counters, resolved once at construction.
  obs::Counter* queries_;
  obs::Counter* index_probes_;
  obs::Counter* index_nodes_visited_;
  obs::Counter* summary_probes_;
  obs::Counter* summary_skips_;
  obs::Counter* summary_inspects_;
};

/// Convenience wrapper: executes one warm query with default options.
Result<Array> ReadRegion(MDDStore* store, MDDObject* object,
                         const MInterval& region);

}  // namespace tilestore

#endif  // TILESTORE_QUERY_RANGE_QUERY_H_
