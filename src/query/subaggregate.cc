#include "query/subaggregate.h"

#include "query/range_query.h"

namespace tilestore {

Result<std::vector<SubAggregate>> ComputeSubAggregates(
    MDDStore* store, MDDObject* object,
    const std::vector<AxisPartition>& partitions, AggregateOp op,
    QueryStats* total_stats) {
  if (!object->current_domain().has_value()) {
    return Status::InvalidArgument("object '" + object->name() +
                                   "' holds no cells");
  }
  const MInterval domain = *object->current_domain();

  // Reuse directional tiling's validated block computation; a huge
  // MaxTileSize keeps blocks unsplit.
  DirectionalTiling blocks_only(partitions, UINT64_MAX);
  Result<TilingSpec> blocks = blocks_only.ComputeBlocks(domain);
  if (!blocks.ok()) return blocks.status();

  RangeQueryOptions options;
  options.cold = true;  // each sub-aggregation is an independent access
  RangeQueryExecutor executor(store, options);

  std::vector<SubAggregate> out;
  out.reserve(blocks->size());
  for (const MInterval& block : blocks.value()) {
    QueryStats stats;
    Result<Array> data = executor.Execute(object, block, &stats);
    if (!data.ok()) return data.status();
    Result<double> value = AggregateCells(*data, op);
    if (!value.ok()) return value.status();
    out.push_back(SubAggregate{block, *value});
    if (total_stats != nullptr) total_stats->Add(stats);
  }
  return out;
}

}  // namespace tilestore
