#ifndef TILESTORE_QUERY_ACCESS_LOG_H_
#define TILESTORE_QUERY_ACCESS_LOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/minterval.h"
#include "tiling/statistic.h"

namespace tilestore {

/// \brief A log of query regions executed against one MDD object — the
/// input to statistic tiling (Section 5.2: "this list is obtained from an
/// application or database log file of access operations").
///
/// The log can be persisted to a plain text file (one interval in paper
/// notation per line), so it can be inspected and replayed.
class AccessLog {
 public:
  void Record(const MInterval& region) { accesses_.push_back(region); }
  void Clear() { accesses_.clear(); }

  size_t size() const { return accesses_.size(); }
  const std::vector<MInterval>& accesses() const { return accesses_; }

  /// Converts to the statistic-tiling input form (one record per access,
  /// count 1; StatisticTiling does its own merging/counting).
  std::vector<AccessRecord> ToRecords() const;

  /// Writes the log as text, one interval per line.
  Status SaveToFile(const std::string& path) const;

  /// Parses a log written by `SaveToFile`.
  static Result<AccessLog> LoadFromFile(const std::string& path);

 private:
  std::vector<MInterval> accesses_;
};

}  // namespace tilestore

#endif  // TILESTORE_QUERY_ACCESS_LOG_H_
