#ifndef TILESTORE_QUERY_RASQL_H_
#define TILESTORE_QUERY_RASQL_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/aggregate.h"
#include "core/array.h"
#include "mdd/mdd_store.h"
#include "query/query_stats.h"
#include "query/range_query.h"

namespace tilestore {

/// \brief The parsed form of a (mini-)RasQL query.
///
/// The paper's evaluation runs "a set of region queries to MDD objects in
/// RasQL, the RasDaMan query language". This module implements the slice
/// of RasQL those experiments need:
///
///   SELECT obj[32:59,*:*,28:35] FROM obj          -- trim (range query)
///   SELECT obj FROM obj                           -- whole object
///   SELECT add_cells(obj[1:31,28:42,28:35]) FROM obj   -- sub-aggregation
///
/// Condensers: add_cells, min_cells, max_cells, avg_cells, count_cells.
/// '*' bounds resolve against the object's current domain, exactly as in
/// the paper's query set (Table 3).
struct RasqlQuery {
  std::string object;                    // FROM clause
  std::optional<MInterval> trim;         // nullopt = whole object
  std::optional<AggregateOp> condenser;  // nullopt = return the array
};

/// Parses the query text. Keywords are case-insensitive; whitespace is
/// free-form.
Result<RasqlQuery> ParseRasql(std::string_view text);

/// The value of a query: either a sub-array or a condensed scalar.
struct RasqlValue {
  std::optional<Array> array;  // set for trim queries
  double scalar = 0;           // set for condenser queries
  bool is_scalar() const { return !array.has_value(); }
};

/// \brief Executes mini-RasQL queries against a store.
class RasqlEngine {
 public:
  explicit RasqlEngine(MDDStore* store,
                       RangeQueryOptions options = RangeQueryOptions())
      : store_(store), executor_(store, options) {}

  /// Parses and runs `text`. Per-phase stats of the underlying range query
  /// land in `stats` when non-null.
  Result<RasqlValue> Execute(std::string_view text,
                             QueryStats* stats = nullptr);

 private:
  MDDStore* store_;
  RangeQueryExecutor executor_;
};

}  // namespace tilestore

#endif  // TILESTORE_QUERY_RASQL_H_
