#ifndef TILESTORE_QUERY_SUBAGGREGATE_H_
#define TILESTORE_QUERY_SUBAGGREGATE_H_

#include <vector>

#include "common/result.h"
#include "core/aggregate.h"
#include "core/minterval.h"
#include "mdd/mdd_object.h"
#include "mdd/mdd_store.h"
#include "query/query_stats.h"
#include "tiling/directional.h"

namespace tilestore {

/// One cell of a sub-aggregation result: a category block and its
/// condensed value.
struct SubAggregate {
  MInterval block;
  double value = 0;
};

/// \brief Computes the Figure 3 workload: one condensed value per category
/// block of the given axis partitions ("for calculating the total number
/// of units sold in different regions, of products of each type, during
/// some time frame", Section 5.1 access type (c)).
///
/// The blocks are the cross product of the partitions (unpartitioned axes
/// span the whole domain). One range query per block is executed; when the
/// object was loaded with `DirectionalTiling` over the *same* partitions,
/// every query reads exactly its block's bytes. Aggregate I/O statistics
/// accumulate into `total_stats` when non-null.
Result<std::vector<SubAggregate>> ComputeSubAggregates(
    MDDStore* store, MDDObject* object,
    const std::vector<AxisPartition>& partitions, AggregateOp op,
    QueryStats* total_stats = nullptr);

}  // namespace tilestore

#endif  // TILESTORE_QUERY_SUBAGGREGATE_H_
