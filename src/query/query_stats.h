#ifndef TILESTORE_QUERY_QUERY_STATS_H_
#define TILESTORE_QUERY_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace tilestore {

/// Cost-model parameters for the non-disk components of query execution,
/// calibrated to the paper's 1997 testbed so the *composition* of query
/// time (t_ix vs t_o vs t_cpu) resembles Figures 7/8:
///  - t_ix: the index resided in the O2 store, so every visited index node
///    costs roughly a (mostly cached) page access;
///  - t_cpu: composing the result passed every retrieved tile byte through
///    the ODMG layer, so post-processing scales with bytes *read* (not
///    just bytes needed) — which is exactly why misaligned regular tiling
///    loses on t_totalcpu in the paper.
struct CostParams {
  double index_node_ms = 1.0;
  double cpu_process_mib_per_s = 25.0;
  double per_tile_cpu_ms = 0.2;
};

/// \brief Per-query measurements, mirroring the time components of
/// Section 6:
///   t_ix  — index lookup time,
///   t_o   — tile retrieval from disk,
///   t_cpu — post-processing (composing tile parts into the result array),
///   t_totalaccess = t_o + t_ix,
///   t_totalcpu    = t_o + t_ix + t_cpu.
///
/// Every component is reported twice: `*_model_ms` from the deterministic
/// 1997-calibrated cost model (the headline numbers of the benchmark
/// tables) and `*_measured_ms` as wall-clock time on the actual hardware.
struct QueryStats {
  // Work counters.
  uint64_t tiles_accessed = 0;
  uint64_t tile_bytes_read = 0;   // payload bytes of all fetched tiles
  uint64_t pages_read = 0;        // physical pages from the page file
  uint64_t seeks = 0;             // non-contiguous page accesses
  uint64_t index_nodes_visited = 0;
  uint64_t result_cells = 0;
  uint64_t result_bytes = 0;
  /// Bytes of fetched tiles that actually fall inside the query region;
  /// tile_bytes_read - useful_bytes is the waste the paper's arbitrary
  /// tiling minimizes.
  uint64_t useful_bytes = 0;

  // Concurrent read-path breakdown.
  /// Worker parallelism used for tile retrieval (1 = the serial
  /// paper-exact path).
  uint64_t parallelism = 1;
  /// Coalesced physical read runs issued by the `TileIOScheduler`; 0 on
  /// the serial path, which reads page by page.
  uint64_t io_runs = 0;
  /// TileScan only: `Next()` calls whose tile had already been fetched by
  /// the prefetch window when the cursor arrived.
  uint64_t prefetch_hits = 0;
  /// Tiles served from the decoded-tile cache (counted inside
  /// `tiles_accessed`/`tile_bytes_read`; hits skip the page fetch and the
  /// decode but not the traffic accounting).
  uint64_t tilecache_hits = 0;

  // Predicate pushdown (filtered queries only; DESIGN.md §15).
  /// Candidate tiles whose summary was consulted.
  uint64_t summary_probes = 0;
  /// Tiles proven irrelevant by their summary: no fetch, no decode, and no
  /// model charge beyond the (free) summary probe — the pruning the
  /// `bench_filter` A/B measures.
  uint64_t summary_skips = 0;
  /// Tiles that had to be fetched and filtered cell by cell (no summary,
  /// or the summary could not decide).
  uint64_t summary_inspects = 0;

  // Model times (ms).
  double t_ix_model_ms = 0;
  double t_o_model_ms = 0;
  double t_cpu_model_ms = 0;
  double total_access_model_ms() const { return t_ix_model_ms + t_o_model_ms; }
  double total_cpu_model_ms() const {
    return t_ix_model_ms + t_o_model_ms + t_cpu_model_ms;
  }

  // Measured wall-clock times (ms).
  double t_ix_measured_ms = 0;
  double t_o_measured_ms = 0;
  double t_cpu_measured_ms = 0;
  /// Wall clock of the whole retrieval phase. Equals `t_o_measured_ms` on
  /// the serial path; under parallelism the summed per-tile time
  /// (`t_o_measured_ms`) exceeds this — their ratio is the effective
  /// retrieval overlap.
  double t_o_wall_ms = 0;
  double total_access_measured_ms() const {
    return t_ix_measured_ms + t_o_measured_ms;
  }
  double total_cpu_measured_ms() const {
    return t_ix_measured_ms + t_o_measured_ms + t_cpu_measured_ms;
  }

  /// Accumulates another query's stats (for averaging repeated runs).
  void Add(const QueryStats& other);
  /// Divides all counters/times by `n` (n >= 1).
  void DivideBy(uint64_t n);

  std::string ToString() const;
};

}  // namespace tilestore

#endif  // TILESTORE_QUERY_QUERY_STATS_H_
