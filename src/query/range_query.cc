#include "query/range_query.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <optional>

#include "core/region.h"
#include "storage/compression.h"
#include "storage/io_scheduler.h"
#include "storage/tile_cache.h"

namespace tilestore {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

RangeQueryExecutor::RangeQueryExecutor(MDDStore* store,
                                       RangeQueryOptions options)
    : store_(store), options_(options) {
  obs::MetricsRegistry* metrics = store_->metrics();
  queries_ = metrics->counter("query.executed");
  index_probes_ = metrics->counter("index.probes");
  index_nodes_visited_ = metrics->counter("index.nodes_visited");
}

Result<MInterval> RangeQueryExecutor::ResolveRegion(const MDDObject& object,
                                                    const MInterval& region) {
  const MInterval& definition = object.definition_domain();
  if (region.dim() != definition.dim()) {
    return Status::InvalidArgument(
        "query region " + region.ToString() + " has dimensionality " +
        std::to_string(region.dim()) + ", object has " +
        std::to_string(definition.dim()));
  }
  std::vector<Coord> lo(region.dim()), hi(region.dim());
  for (size_t i = 0; i < region.dim(); ++i) {
    lo[i] = region.lo(i);
    hi[i] = region.hi(i);
    if (region.lo_unbounded(i) || region.hi_unbounded(i)) {
      if (!object.current_domain().has_value()) {
        return Status::InvalidArgument(
            "query " + region.ToString() +
            " uses '*' but object '" + object.name() +
            "' is empty (no current domain)");
      }
      if (region.lo_unbounded(i)) lo[i] = object.current_domain()->lo(i);
      if (region.hi_unbounded(i)) hi[i] = object.current_domain()->hi(i);
    }
  }
  Result<MInterval> resolved = MInterval::Create(std::move(lo), std::move(hi));
  if (!resolved.ok()) return resolved.status();
  if (!definition.Contains(resolved.value())) {
    return Status::OutOfRange("query region " + resolved->ToString() +
                              " outside definition domain " +
                              definition.ToString());
  }
  return resolved;
}

Result<Array> RangeQueryExecutor::Execute(MDDObject* object,
                                          const MInterval& region,
                                          QueryStats* stats) {
  Result<MInterval> resolved_or = ResolveRegion(*object, region);
  if (!resolved_or.ok()) return resolved_or.status();
  const MInterval resolved = std::move(resolved_or).MoveValue();

  if (options_.log != nullptr) options_.log->Record(resolved);
  // Feed the store's workload recorder — the observe side of the
  // re-tiling loop (the retiler mines these boxes for migrations).
  store_->workload()->Record(object->name(), resolved);

  DiskModel* disk = store_->disk_model();
  if (options_.cold) {
    store_->buffer_pool()->Clear();
    disk->Reset();
  }
  const double disk_ms_before = disk->read_ms();
  const uint64_t pages_before = disk->pages_read();
  const uint64_t seeks_before = disk->read_seeks();

  obs::TraceRing* trace = store_->trace();
  const uint64_t trace_id = trace->NextTraceId();
  obs::TraceScope query_span(trace, trace_id, "query");
  queries_->Add(1);

  QueryStats local;
  const int parallelism = std::max(options_.parallelism, 1);
  local.parallelism = static_cast<uint64_t>(parallelism);

  // Warm runs may serve decoded tiles straight from the cache; cold runs
  // always bypass it so the cost model keeps measuring physical retrieval.
  const bool use_cache = options_.use_tile_cache && !options_.cold &&
                         store_->tile_cache()->enabled() &&
                         object->cache_id() != 0;
  // Negative cache: a warm region remembered as intersecting no tiles
  // skips the index walk; the query falls through with zero hits and
  // default-fills as usual.
  const bool known_empty =
      use_cache && store_->tile_cache()->LookupNegativeRegion(
                       object->cache_id(), resolved.ToString());

  // Phase 1 (t_ix): probe the tile index.
  const Clock::time_point ix_start = Clock::now();
  std::vector<TileEntry> hits;
  if (!known_empty) {
    obs::TraceScope span(trace, trace_id, "index_probe");
    hits = object->FindTiles(resolved);
    local.index_nodes_visited = object->index()->last_nodes_visited();
    index_probes_->Add(1);
    index_nodes_visited_->Add(local.index_nodes_visited);
    if (use_cache && hits.empty()) {
      store_->tile_cache()->InsertNegativeRegion(object->cache_id(),
                                                 resolved.ToString());
    }
  }
  local.t_ix_measured_ms = ElapsedMs(ix_start);
  local.t_ix_model_ms = static_cast<double>(local.index_nodes_visited) *
                        options_.cost.index_node_ms;

  // Phase 2 (t_o): retrieve the intersected tiles from the storage system,
  // in physical order (ascending BLOB id = ascending page position) so
  // that large scans read sequentially instead of seeking per tile.
  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });

  TileIOStats io;
  if (parallelism <= 1 && use_cache) {
    // Serial cached path: tile-at-a-time like the legacy pipeline, but
    // composing straight from the shared decoded copy — a hit pays neither
    // the BLOB read, nor the decode, nor a private tile copy. Like the
    // parallel path, only the pieces no tile covers are default-filled;
    // tiles are disjoint, so the bytes equal the legacy fill-then-
    // overwrite result.
    const Clock::time_point o_start = Clock::now();
    Result<Array> result_or = Array::Create(resolved, object->cell_type());
    if (!result_or.ok()) return result_or.status();
    Array result = std::move(result_or).MoveValue();
    Status st = Status::OK();
    {
      std::vector<MInterval> covered;
      covered.reserve(hits.size());
      for (const TileEntry& entry : hits) {
        const std::optional<MInterval> part =
            entry.domain.Intersection(resolved);
        if (part.has_value()) covered.push_back(*part);
      }
      for (const MInterval& piece : Subtract(resolved, covered)) {
        st = result.Fill(piece, object->default_cell().data());
        if (!st.ok()) return st;
      }
    }

    TileIOOptions io_options;
    io_options.parallelism = 1;
    io_options.trace = trace;
    io_options.trace_id = trace_id;
    io_options.cache = store_->tile_cache();
    io_options.cache_object_id = object->cache_id();
    double compose_ms = 0;
    {
      obs::TraceScope fetch_span(trace, trace_id, "fetch");
      st = store_->io_scheduler()->FetchBatchShared(
          hits, object->cell_type(), io_options,
          [&](size_t, const Tile& tile) -> Status {
            const std::optional<MInterval> part =
                tile.domain().Intersection(resolved);
            if (!part.has_value()) return Status::OK();
            const Clock::time_point compose_start = Clock::now();
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            local.useful_bytes +=
                part->CellCountOrDie() * object->cell_size();
            compose_ms += ElapsedMs(compose_start);
            return Status::OK();
          },
          &io);
    }
    if (!st.ok()) return st;
    local.t_o_measured_ms = ElapsedMs(o_start) - compose_ms;
    local.t_o_wall_ms = local.t_o_measured_ms;
    local.t_cpu_measured_ms = compose_ms;
    local.t_o_model_ms = disk->read_ms() - disk_ms_before;
    local.pages_read = disk->pages_read() - pages_before;
    local.seeks = disk->read_seeks() - seeks_before;
    local.io_runs = io.coalesced_runs;
    local.tilecache_hits = io.cache_hits;
    local.tiles_accessed = io.tiles;
    local.tile_bytes_read = io.tile_bytes;
    local.result_cells = resolved.CellCountOrDie();
    local.result_bytes = local.result_cells * object->cell_size();
    local.t_cpu_model_ms =
        static_cast<double>(local.tile_bytes_read) /
            (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
        static_cast<double>(local.tiles_accessed) *
            options_.cost.per_tile_cpu_ms;

    if (stats != nullptr) *stats = local;
    return result;
  }
  if (parallelism <= 1) {
    // Serial path: fetch everything, then compose — the paper's pipeline,
    // bit-identical in storage behavior and model cost to the original
    // tile-at-a-time loop.
    const Clock::time_point o_start = Clock::now();
    Result<std::vector<Tile>> tiles_or = [&] {
      obs::TraceScope span(trace, trace_id, "fetch");
      return store_->FetchTiles(*object, hits, /*parallelism=*/1, &io,
                                trace_id, use_cache);
    }();
    if (!tiles_or.ok()) return tiles_or.status();
    const std::vector<Tile>& tiles = tiles_or.value();
    local.t_o_measured_ms = ElapsedMs(o_start);
    local.t_o_wall_ms = local.t_o_measured_ms;
    local.t_o_model_ms = disk->read_ms() - disk_ms_before;
    local.pages_read = disk->pages_read() - pages_before;
    local.seeks = disk->read_seeks() - seeks_before;
    local.io_runs = io.coalesced_runs;
    local.tilecache_hits = io.cache_hits;
    local.tiles_accessed = tiles.size();
    for (const Tile& tile : tiles) {
      local.tile_bytes_read += tile.size_bytes();
    }

    // Phase 3 (t_cpu): compose the tile parts into the result array.
    const Clock::time_point cpu_start = Clock::now();
    obs::TraceScope compose_span(trace, trace_id, "compose");
    Result<Array> result_or = Array::Create(resolved, object->cell_type());
    if (!result_or.ok()) return result_or.status();
    Array result = std::move(result_or).MoveValue();
    // Start from the default value; covered parts are overwritten below.
    // (Cheap relative to the copies; covered-only fill would complicate
    // the kernel for no measurable gain at tile granularity.)
    Status st = result.Fill(resolved, object->default_cell().data());
    if (!st.ok()) return st;
    for (const Tile& tile : tiles) {
      const std::optional<MInterval> part =
          tile.domain().Intersection(resolved);
      if (!part.has_value()) continue;  // cannot happen for index hits
      st = result.CopyFrom(tile, *part);
      if (!st.ok()) return st;
      local.useful_bytes += part->CellCountOrDie() * object->cell_size();
    }
    local.t_cpu_measured_ms = ElapsedMs(cpu_start);

    local.result_cells = resolved.CellCountOrDie();
    local.result_bytes = local.result_cells * object->cell_size();
    // t_cpu model: every retrieved byte passes through the composition
    // layer once, plus a fixed dispatch overhead per tile.
    local.t_cpu_model_ms =
        static_cast<double>(local.tile_bytes_read) /
            (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
        static_cast<double>(local.tiles_accessed) *
            options_.cost.per_tile_cpu_ms;

    if (stats != nullptr) *stats = local;
    return result;
  }

  // Parallel path: allocate the result up front and default-fill only the
  // pieces no tile covers (the serial path fills everything and then
  // overwrites the covered parts — same bytes, more traffic), then fuse
  // fetch + decode + composition in the scheduler's consume callback.
  // Tiles are disjoint, so workers compose into disjoint cell ranges of
  // the result buffer; the result is byte-identical to the serial path.
  const Clock::time_point prep_start = Clock::now();
  Result<Array> result_or = Array::Create(resolved, object->cell_type());
  if (!result_or.ok()) return result_or.status();
  Array result = std::move(result_or).MoveValue();
  {
    obs::TraceScope compose_span(trace, trace_id, "compose");
    std::vector<MInterval> covered;
    covered.reserve(hits.size());
    for (const TileEntry& entry : hits) {
      const std::optional<MInterval> part =
          entry.domain.Intersection(resolved);
      if (part.has_value()) covered.push_back(*part);
    }
    for (const MInterval& piece : Subtract(resolved, covered)) {
      Status st = result.Fill(piece, object->default_cell().data());
      if (!st.ok()) return st;
    }
  }
  const double prep_ms = ElapsedMs(prep_start);

  std::atomic<uint64_t> useful_bytes{0};
  const size_t cell_size = object->cell_size();
  TileIOOptions io_options;
  io_options.parallelism = parallelism;
  io_options.pool = store_->thread_pool();
  io_options.trace = trace;
  io_options.trace_id = trace_id;
  Status st = Status::OK();
  {
    obs::TraceScope fetch_span(trace, trace_id, "fetch");
    if (use_cache) {
      // Cache-aware batch: hits compose straight from the shared decoded
      // copy; misses decode once and populate the cache for the next
      // query. Same compose kernel either way, so bytes are identical.
      io_options.cache = store_->tile_cache();
      io_options.cache_object_id = object->cache_id();
      st = store_->io_scheduler()->FetchBatchShared(
          hits, object->cell_type(), io_options,
          [&](size_t, const Tile& tile) -> Status {
            const std::optional<MInterval> part =
                tile.domain().Intersection(resolved);
            if (!part.has_value()) return Status::OK();
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            useful_bytes.fetch_add(part->CellCountOrDie() * cell_size,
                                   std::memory_order_relaxed);
            return Status::OK();
          },
          &io);
    } else {
      st = store_->io_scheduler()->FetchBatch(
          hits, object->cell_type(), io_options,
          [&](size_t, Tile&& tile) -> Status {
            const std::optional<MInterval> part =
                tile.domain().Intersection(resolved);
            if (!part.has_value()) return Status::OK();
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            useful_bytes.fetch_add(part->CellCountOrDie() * cell_size,
                                   std::memory_order_relaxed);
            return Status::OK();
          },
          &io);
    }
  }
  if (!st.ok()) return st;

  local.t_o_measured_ms = io.io_summed_ms;
  local.t_o_wall_ms = io.wall_ms;
  local.t_cpu_measured_ms = prep_ms + io.decode_summed_ms;
  local.t_o_model_ms = disk->read_ms() - disk_ms_before;
  local.pages_read = disk->pages_read() - pages_before;
  local.seeks = disk->read_seeks() - seeks_before;
  local.io_runs = io.coalesced_runs;
  local.tilecache_hits = io.cache_hits;
  local.tiles_accessed = io.tiles;
  local.tile_bytes_read = io.tile_bytes;
  local.useful_bytes = useful_bytes.load(std::memory_order_relaxed);

  local.result_cells = resolved.CellCountOrDie();
  local.result_bytes = local.result_cells * object->cell_size();
  local.t_cpu_model_ms =
      static_cast<double>(local.tile_bytes_read) /
          (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
      static_cast<double>(local.tiles_accessed) *
          options_.cost.per_tile_cpu_ms;

  if (stats != nullptr) *stats = local;
  return result;
}

Result<double> RangeQueryExecutor::ExecuteAggregate(MDDObject* object,
                                                    const MInterval& region,
                                                    AggregateOp op,
                                                    QueryStats* stats) {
  Result<MInterval> resolved_or = ResolveRegion(*object, region);
  if (!resolved_or.ok()) return resolved_or.status();
  const MInterval resolved = std::move(resolved_or).MoveValue();

  if (options_.log != nullptr) options_.log->Record(resolved);
  store_->workload()->Record(object->name(), resolved);

  DiskModel* disk = store_->disk_model();
  if (options_.cold) {
    store_->buffer_pool()->Clear();
    disk->Reset();
  }
  const double disk_ms_before = disk->read_ms();
  const uint64_t pages_before = disk->pages_read();
  const uint64_t seeks_before = disk->read_seeks();

  obs::TraceRing* trace = store_->trace();
  const uint64_t trace_id = trace->NextTraceId();
  obs::TraceScope query_span(trace, trace_id, "query");
  queries_->Add(1);

  QueryStats local;
  const int parallelism = std::max(options_.parallelism, 1);
  local.parallelism = static_cast<uint64_t>(parallelism);

  const bool use_cache = options_.use_tile_cache && !options_.cold &&
                         store_->tile_cache()->enabled() &&
                         object->cache_id() != 0;
  // Negative cache, as in Execute: a region known empty skips the index
  // walk and folds straight over default cells below.
  const bool known_empty =
      use_cache && store_->tile_cache()->LookupNegativeRegion(
                       object->cache_id(), resolved.ToString());

  // Phase 1 (t_ix): probe the tile index.
  const Clock::time_point ix_start = Clock::now();
  std::vector<TileEntry> hits;
  if (!known_empty) {
    obs::TraceScope span(trace, trace_id, "index_probe");
    hits = object->FindTiles(resolved);
    local.index_nodes_visited = object->index()->last_nodes_visited();
    index_probes_->Add(1);
    index_nodes_visited_->Add(local.index_nodes_visited);
    if (use_cache && hits.empty()) {
      store_->tile_cache()->InsertNegativeRegion(object->cache_id(),
                                                 resolved.ToString());
    }
  }
  local.t_ix_measured_ms = ElapsedMs(ix_start);
  local.t_ix_model_ms = static_cast<double>(local.index_nodes_visited) *
                        options_.cost.index_node_ms;

  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });

  // Phases 2+3 fused in the scheduler's consume callback: each tile is
  // fetched (t_o), its intersecting part condensed into a per-tile partial
  // (t_cpu), then discarded — peak memory stays at `parallelism` tiles.
  // Partials are folded serially afterwards in ascending BLOB-id order, so
  // the floating-point accumulation order — and hence the result — is
  // identical at every parallelism.
  struct TilePartial {
    double value = 0;
    uint64_t cells = 0;
  };
  std::vector<TilePartial> partials(hits.size());
  const AggregateOp tile_op =
      op == AggregateOp::kAvg ? AggregateOp::kSum : op;
  const bool run_kernel =
      options_.aggregate_kernel == RangeQueryOptions::AggregateKernel::kRun;

  TileIOStats io;
  TileIOOptions io_options;
  io_options.parallelism = parallelism;
  io_options.pool = parallelism > 1 ? store_->thread_pool() : nullptr;
  io_options.trace = trace;
  io_options.trace_id = trace_id;
  if (use_cache) {
    io_options.cache = store_->tile_cache();
    io_options.cache_object_id = object->cache_id();
  }
  if (run_kernel) {
    // RLE fast path: a tile wholly inside the region whose stream is
    // already run-encoded folds directly over the compressed bytes — no
    // decoded buffer at all. (A cached decoded copy still wins when one
    // exists; the scheduler checks the cache first and never populates it
    // from this path.)
    io_options.encoded_filter = [&hits, &resolved](size_t i) {
      return hits[i].compression == Compression::kRle &&
             resolved.Contains(hits[i].domain);
    };
    io_options.consume_encoded =
        [&](size_t i, const std::vector<uint8_t>& stream) -> Status {
      const uint64_t cells = hits[i].domain.CellCountOrDie();
      Result<double> value =
          AggregateRleStream(stream, object->cell_type(), cells, tile_op);
      if (!value.ok()) return value.status();
      partials[i] = TilePartial{*value, cells};
      return Status::OK();
    };
  }
  Status st = Status::OK();
  {
    obs::TraceScope fetch_span(trace, trace_id, "fetch");
    st = store_->io_scheduler()->FetchBatchShared(
        hits, object->cell_type(), io_options,
        [&](size_t i, const Tile& tile) -> Status {
          const std::optional<MInterval> part =
              tile.domain().Intersection(resolved);
          // Condense via the primitive reductions; kAvg folds as a running
          // sum. The run kernel reduces the part in place; the legacy
          // slice kernel materializes it first. Same cell order, same
          // accumulators — bit-identical values.
          Result<double> value = [&]() -> Result<double> {
            if (run_kernel) return AggregateRegion(tile, *part, tile_op);
            Result<Array> slice = tile.Slice(*part);
            if (!slice.ok()) return slice.status();
            return AggregateCells(*slice, tile_op);
          }();
          if (!value.ok()) return value.status();
          partials[i] = TilePartial{*value, part->CellCountOrDie()};
          return Status::OK();
        },
        &io);
  }
  if (!st.ok()) return st;

  local.t_o_measured_ms = io.io_summed_ms;
  local.t_o_wall_ms = io.wall_ms;
  local.t_o_model_ms = disk->read_ms() - disk_ms_before;
  local.pages_read = disk->pages_read() - pages_before;
  local.seeks = disk->read_seeks() - seeks_before;
  local.io_runs = io.coalesced_runs;
  local.tilecache_hits = io.cache_hits;
  local.tiles_accessed = io.tiles;
  local.tile_bytes_read = io.tile_bytes;

  const Clock::time_point fold_start = Clock::now();
  obs::TraceScope compose_span(trace, trace_id, "compose");
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double nonzero = 0;
  uint64_t covered_cells = 0;
  for (const TilePartial& partial : partials) {
    covered_cells += partial.cells;
    local.useful_bytes += partial.cells * object->cell_size();
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        sum += partial.value;
        break;
      case AggregateOp::kMin:
        min = std::min(min, partial.value);
        break;
      case AggregateOp::kMax:
        max = std::max(max, partial.value);
        break;
      case AggregateOp::kCount:
        nonzero += partial.value;
        break;
    }
  }

  // Fold uncovered cells (the default value).
  const uint64_t total_cells = resolved.CellCountOrDie();
  const uint64_t uncovered = total_cells - covered_cells;
  if (uncovered > 0 || total_cells == 0) {
    Result<double> default_value = CellValueAsDouble(
        object->cell_type(), object->default_cell().data());
    if (!default_value.ok()) return default_value.status();
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        sum += *default_value * static_cast<double>(uncovered);
        break;
      case AggregateOp::kMin:
        min = std::min(min, *default_value);
        break;
      case AggregateOp::kMax:
        max = std::max(max, *default_value);
        break;
      case AggregateOp::kCount:
        if (*default_value != 0.0) {
          nonzero += static_cast<double>(uncovered);
        }
        break;
    }
  }
  local.t_cpu_measured_ms = io.decode_summed_ms + ElapsedMs(fold_start);

  local.result_cells = total_cells;
  local.result_bytes = sizeof(double);  // a scalar comes back
  local.t_cpu_model_ms =
      static_cast<double>(local.tile_bytes_read) /
          (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
      static_cast<double>(local.tiles_accessed) *
          options_.cost.per_tile_cpu_ms;
  if (stats != nullptr) *stats = local;

  switch (op) {
    case AggregateOp::kSum:
      return sum;
    case AggregateOp::kAvg:
      return sum / static_cast<double>(total_cells);
    case AggregateOp::kMin:
      return min;
    case AggregateOp::kMax:
      return max;
    case AggregateOp::kCount:
      return nonzero;
  }
  return Status::Internal("unhandled aggregate op");
}

Result<Array> ReadRegion(MDDStore* store, MDDObject* object,
                         const MInterval& region) {
  RangeQueryExecutor executor(store);
  return executor.Execute(object, region);
}

}  // namespace tilestore
