#include "query/range_query.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>

#include "core/linearizer.h"
#include "core/region.h"
#include "storage/compression.h"
#include "storage/io_scheduler.h"
#include "storage/tile_cache.h"

namespace tilestore {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Filtered-query kernels (DESIGN.md §15). Cells are widened to double for
// the comparison, exactly like the aggregation kernels, so a predicate
// means the same thing for every numeric cell type — and matches the
// min/max reasoning `ClassifyTile` does on summaries.

bool IsNumericCellType(CellType cell_type) {
  switch (cell_type.id()) {
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return false;
    default:
      return true;
  }
}

using WidenFn = double (*)(const uint8_t*);

template <typename T>
double WidenAs(const uint8_t* cell) {
  T v;
  std::memcpy(&v, cell, sizeof(T));
  return static_cast<double>(v);
}

WidenFn WidenFor(CellTypeId id) {
  switch (id) {
    case CellTypeId::kUInt8:   return &WidenAs<uint8_t>;
    case CellTypeId::kInt8:    return &WidenAs<int8_t>;
    case CellTypeId::kUInt16:  return &WidenAs<uint16_t>;
    case CellTypeId::kInt16:   return &WidenAs<int16_t>;
    case CellTypeId::kUInt32:  return &WidenAs<uint32_t>;
    case CellTypeId::kInt32:   return &WidenAs<int32_t>;
    case CellTypeId::kUInt64:  return &WidenAs<uint64_t>;
    case CellTypeId::kInt64:   return &WidenAs<int64_t>;
    case CellTypeId::kFloat32: return &WidenAs<float>;
    case CellTypeId::kFloat64: return &WidenAs<double>;
    default:                   return nullptr;
  }
}

// Copies the matching cells of one contiguous run; non-matching cells keep
// whatever `dst` holds (the default fill).
using FilterRunFn = void (*)(const uint8_t*, uint8_t*, uint64_t,
                             const ValuePredicate&);

template <typename T>
void FilterRunTyped(const uint8_t* src, uint8_t* dst, uint64_t cells,
                    const ValuePredicate& pred) {
  const T* s = reinterpret_cast<const T*>(src);
  T* d = reinterpret_cast<T*>(dst);
  for (uint64_t i = 0; i < cells; ++i) {
    if (pred.Matches(static_cast<double>(s[i]))) d[i] = s[i];
  }
}

FilterRunFn FilterRunFor(CellTypeId id) {
  switch (id) {
    case CellTypeId::kUInt8:   return &FilterRunTyped<uint8_t>;
    case CellTypeId::kInt8:    return &FilterRunTyped<int8_t>;
    case CellTypeId::kUInt16:  return &FilterRunTyped<uint16_t>;
    case CellTypeId::kInt16:   return &FilterRunTyped<int16_t>;
    case CellTypeId::kUInt32:  return &FilterRunTyped<uint32_t>;
    case CellTypeId::kInt32:   return &FilterRunTyped<int32_t>;
    case CellTypeId::kUInt64:  return &FilterRunTyped<uint64_t>;
    case CellTypeId::kInt64:   return &FilterRunTyped<int64_t>;
    case CellTypeId::kFloat32: return &FilterRunTyped<float>;
    case CellTypeId::kFloat64: return &FilterRunTyped<double>;
    default:                   return nullptr;
  }
}

// Filters an RLE tile straight off its compressed stream into the result
// buffer: runs are tested against the predicate *before* any cell is
// materialized, so a repeat run of non-matching cells costs one comparison.
// The tile must lie wholly inside `result_domain`. Returns matched cells.
Result<uint64_t> FilterRleStreamInto(const std::vector<uint8_t>& stream,
                                     const MInterval& tile_domain,
                                     CellTypeId type_id, size_t cell_size,
                                     const ValuePredicate& pred,
                                     const MInterval& result_domain,
                                     uint8_t* result_data) {
  const WidenFn widen = WidenFor(type_id);
  if (widen == nullptr || cell_size == 0 || cell_size > 8) {
    return Status::InvalidArgument("filtered RLE needs a numeric cell type");
  }
  // Linear tile cell k lives in innermost-axis run k / L at offset k % L;
  // the runs' destination offsets are precomputed once.
  const uint64_t run_len =
      static_cast<uint64_t>(tile_domain.Extent(tile_domain.dim() - 1));
  std::vector<uint64_t> dst_runs;
  dst_runs.reserve(tile_domain.CellCountOrDie() / run_len);
  ForEachRun(tile_domain, result_domain, tile_domain,
             [&](uint64_t, uint64_t dst) { dst_runs.push_back(dst); });
  auto dst_for = [&](uint64_t k) {
    return result_data + (dst_runs[k / run_len] + (k % run_len)) * cell_size;
  };

  const uint64_t cells = tile_domain.CellCountOrDie();
  const uint64_t declared_bytes = cells * cell_size;
  uint8_t buf[8];
  size_t fill = 0;
  uint64_t cell_index = 0;
  uint64_t matched = 0;
  auto emit_cell = [&](const uint8_t* cell) {
    if (pred.Matches(widen(cell))) {
      std::memcpy(dst_for(cell_index), cell, cell_size);
      ++matched;
    }
    ++cell_index;
  };
  auto push_byte = [&](uint8_t b) {
    buf[fill % sizeof(buf)] = b;
    if (++fill == cell_size) {
      emit_cell(buf);
      fill = 0;
    }
  };

  uint64_t bytes_seen = 0;
  size_t i = 0;
  const size_t n = stream.size();
  while (i < n) {
    const uint8_t control = stream[i++];
    if (control == 0x80) {
      return Status::Corruption("reserved RLE control byte");
    }
    if (control < 0x80) {
      const size_t lit = static_cast<size_t>(control) + 1;
      if (i + lit > n) return Status::Corruption("truncated RLE literal run");
      bytes_seen += lit;
      if (bytes_seen > declared_bytes) {
        return Status::Corruption("RLE stream longer than declared size");
      }
      for (size_t k = 0; k < lit; ++k) push_byte(stream[i + k]);
      i += lit;
    } else {
      if (i >= n) return Status::Corruption("truncated RLE repeat run");
      size_t run = 257 - static_cast<size_t>(control);
      const uint8_t b = stream[i++];
      bytes_seen += run;
      if (bytes_seen > declared_bytes) {
        return Status::Corruption("RLE stream longer than declared size");
      }
      // Finish the partial cell, test whole repeated cells once, then
      // start the next partial cell.
      while (run > 0 && fill != 0) {
        push_byte(b);
        --run;
      }
      if (run >= cell_size) {
        uint8_t cell[8];
        std::memset(cell, b, cell_size);
        uint64_t whole = run / cell_size;
        run -= static_cast<size_t>(whole * cell_size);
        if (pred.Matches(widen(cell))) {
          matched += whole;
          while (whole > 0) {
            const uint64_t in_run =
                std::min<uint64_t>(whole, run_len - (cell_index % run_len));
            uint8_t* d = dst_for(cell_index);
            for (uint64_t c = 0; c < in_run; ++c) {
              std::memcpy(d + c * cell_size, cell, cell_size);
            }
            cell_index += in_run;
            whole -= in_run;
          }
        } else {
          cell_index += whole;
        }
      }
      while (run > 0) {
        push_byte(b);
        --run;
      }
    }
  }
  if (fill != 0 || bytes_seen != declared_bytes) {
    return Status::Corruption("RLE stream shorter than declared size");
  }
  return matched;
}

// Per-tile filtered fold: matching cells of `part`, visited in the exact
// row-major run order of `ReduceRegionRuns`, with the same accumulator
// types — so when every cell matches (the summaries-off degenerate case of
// an accept-all tile) the partial is bit-identical to `AggregateRegion`.
struct FilterPartial {
  double value = 0;
  uint64_t matched = 0;
};

FilterPartial FilterFoldRegion(const Array& tile, const MInterval& part,
                               const ValuePredicate& pred, AggregateOp op,
                               WidenFn widen, size_t cell_size) {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t nonzero = 0;
  uint64_t matched = 0;
  const uint64_t run = static_cast<uint64_t>(part.Extent(part.dim() - 1));
  const uint8_t* data = tile.data();
  ForEachRun(tile.domain(), tile.domain(), part,
             [&](uint64_t off, uint64_t) {
               const uint8_t* p = data + off * cell_size;
               for (uint64_t c = 0; c < run; ++c, p += cell_size) {
                 const double v = widen(p);
                 if (!pred.Matches(v)) continue;
                 ++matched;
                 switch (op) {
                   case AggregateOp::kSum:
                   case AggregateOp::kAvg:
                     sum += v;
                     break;
                   case AggregateOp::kMin:
                     min = std::min(min, v);
                     break;
                   case AggregateOp::kMax:
                     max = std::max(max, v);
                     break;
                   case AggregateOp::kCount:
                     if (v != 0.0) ++nonzero;
                     break;
                 }
               }
             });
  FilterPartial out;
  out.matched = matched;
  switch (op) {
    case AggregateOp::kSum:
    case AggregateOp::kAvg:
      out.value = sum;
      break;
    case AggregateOp::kMin:
      out.value = min;
      break;
    case AggregateOp::kMax:
      out.value = max;
      break;
    case AggregateOp::kCount:
      out.value = static_cast<double>(nonzero);
      break;
  }
  return out;
}

}  // namespace

RangeQueryExecutor::RangeQueryExecutor(MDDStore* store,
                                       RangeQueryOptions options)
    : store_(store), options_(options) {
  obs::MetricsRegistry* metrics = store_->metrics();
  queries_ = metrics->counter("query.executed");
  index_probes_ = metrics->counter("index.probes");
  index_nodes_visited_ = metrics->counter("index.nodes_visited");
  summary_probes_ = metrics->counter("query.summary_probes");
  summary_skips_ = metrics->counter("query.summary_skips");
  summary_inspects_ = metrics->counter("query.summary_inspects");
}

Result<MInterval> RangeQueryExecutor::ResolveRegion(const MDDObject& object,
                                                    const MInterval& region) {
  const MInterval& definition = object.definition_domain();
  if (region.dim() != definition.dim()) {
    return Status::InvalidArgument(
        "query region " + region.ToString() + " has dimensionality " +
        std::to_string(region.dim()) + ", object has " +
        std::to_string(definition.dim()));
  }
  std::vector<Coord> lo(region.dim()), hi(region.dim());
  for (size_t i = 0; i < region.dim(); ++i) {
    lo[i] = region.lo(i);
    hi[i] = region.hi(i);
    if (region.lo_unbounded(i) || region.hi_unbounded(i)) {
      if (!object.current_domain().has_value()) {
        return Status::InvalidArgument(
            "query " + region.ToString() +
            " uses '*' but object '" + object.name() +
            "' is empty (no current domain)");
      }
      if (region.lo_unbounded(i)) lo[i] = object.current_domain()->lo(i);
      if (region.hi_unbounded(i)) hi[i] = object.current_domain()->hi(i);
    }
  }
  Result<MInterval> resolved = MInterval::Create(std::move(lo), std::move(hi));
  if (!resolved.ok()) return resolved.status();
  if (!definition.Contains(resolved.value())) {
    return Status::OutOfRange("query region " + resolved->ToString() +
                              " outside definition domain " +
                              definition.ToString());
  }
  return resolved;
}

Result<Array> RangeQueryExecutor::Execute(MDDObject* object,
                                          const MInterval& region,
                                          QueryStats* stats) {
  if (options_.predicate.has_value()) {
    return ExecuteFiltered(object, region, stats);
  }
  Result<MInterval> resolved_or = ResolveRegion(*object, region);
  if (!resolved_or.ok()) return resolved_or.status();
  const MInterval resolved = std::move(resolved_or).MoveValue();

  if (options_.log != nullptr) options_.log->Record(resolved);
  // Feed the store's workload recorder — the observe side of the
  // re-tiling loop (the retiler mines these boxes for migrations).
  store_->workload()->Record(object->name(), resolved);

  DiskModel* disk = store_->disk_model();
  if (options_.cold) {
    store_->buffer_pool()->Clear();
    disk->Reset();
  }
  const double disk_ms_before = disk->read_ms();
  const uint64_t pages_before = disk->pages_read();
  const uint64_t seeks_before = disk->read_seeks();

  obs::TraceRing* trace = store_->trace();
  const uint64_t trace_id = trace->NextTraceId();
  obs::TraceScope query_span(trace, trace_id, "query");
  queries_->Add(1);

  QueryStats local;
  const int parallelism = std::max(options_.parallelism, 1);
  local.parallelism = static_cast<uint64_t>(parallelism);

  // Warm runs may serve decoded tiles straight from the cache; cold runs
  // always bypass it so the cost model keeps measuring physical retrieval.
  const bool use_cache = options_.use_tile_cache && !options_.cold &&
                         store_->tile_cache()->enabled() &&
                         object->cache_id() != 0;
  // Negative cache: a warm region remembered as intersecting no tiles
  // skips the index walk; the query falls through with zero hits and
  // default-fills as usual.
  const bool known_empty =
      use_cache && store_->tile_cache()->LookupNegativeRegion(
                       object->cache_id(), resolved.ToString());

  // Phase 1 (t_ix): probe the tile index.
  const Clock::time_point ix_start = Clock::now();
  std::vector<TileEntry> hits;
  if (!known_empty) {
    obs::TraceScope span(trace, trace_id, "index_probe");
    hits = object->FindTiles(resolved);
    local.index_nodes_visited = object->index()->last_nodes_visited();
    index_probes_->Add(1);
    index_nodes_visited_->Add(local.index_nodes_visited);
    if (use_cache && hits.empty()) {
      store_->tile_cache()->InsertNegativeRegion(object->cache_id(),
                                                 resolved.ToString());
    }
  }
  local.t_ix_measured_ms = ElapsedMs(ix_start);
  local.t_ix_model_ms = static_cast<double>(local.index_nodes_visited) *
                        options_.cost.index_node_ms;

  // Phase 2 (t_o): retrieve the intersected tiles from the storage system,
  // in physical order (ascending BLOB id = ascending page position) so
  // that large scans read sequentially instead of seeking per tile.
  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });

  TileIOStats io;
  if (parallelism <= 1 && use_cache) {
    // Serial cached path: tile-at-a-time like the legacy pipeline, but
    // composing straight from the shared decoded copy — a hit pays neither
    // the BLOB read, nor the decode, nor a private tile copy. Like the
    // parallel path, only the pieces no tile covers are default-filled;
    // tiles are disjoint, so the bytes equal the legacy fill-then-
    // overwrite result.
    const Clock::time_point o_start = Clock::now();
    Result<Array> result_or = Array::Create(resolved, object->cell_type());
    if (!result_or.ok()) return result_or.status();
    Array result = std::move(result_or).MoveValue();
    Status st = Status::OK();
    {
      std::vector<MInterval> covered;
      covered.reserve(hits.size());
      for (const TileEntry& entry : hits) {
        const std::optional<MInterval> part =
            entry.domain.Intersection(resolved);
        if (part.has_value()) covered.push_back(*part);
      }
      for (const MInterval& piece : Subtract(resolved, covered)) {
        st = result.Fill(piece, object->default_cell().data());
        if (!st.ok()) return st;
      }
    }

    TileIOOptions io_options;
    io_options.parallelism = 1;
    io_options.trace = trace;
    io_options.trace_id = trace_id;
    io_options.cache = store_->tile_cache();
    io_options.cache_object_id = object->cache_id();
    double compose_ms = 0;
    {
      obs::TraceScope fetch_span(trace, trace_id, "fetch");
      st = store_->io_scheduler()->FetchBatchShared(
          hits, object->cell_type(), io_options,
          [&](size_t, const Tile& tile) -> Status {
            const std::optional<MInterval> part =
                tile.domain().Intersection(resolved);
            if (!part.has_value()) return Status::OK();
            const Clock::time_point compose_start = Clock::now();
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            local.useful_bytes +=
                part->CellCountOrDie() * object->cell_size();
            compose_ms += ElapsedMs(compose_start);
            return Status::OK();
          },
          &io);
    }
    if (!st.ok()) return st;
    local.t_o_measured_ms = ElapsedMs(o_start) - compose_ms;
    local.t_o_wall_ms = local.t_o_measured_ms;
    local.t_cpu_measured_ms = compose_ms;
    local.t_o_model_ms = disk->read_ms() - disk_ms_before;
    local.pages_read = disk->pages_read() - pages_before;
    local.seeks = disk->read_seeks() - seeks_before;
    local.io_runs = io.coalesced_runs;
    local.tilecache_hits = io.cache_hits;
    local.tiles_accessed = io.tiles;
    local.tile_bytes_read = io.tile_bytes;
    local.result_cells = resolved.CellCountOrDie();
    local.result_bytes = local.result_cells * object->cell_size();
    local.t_cpu_model_ms =
        static_cast<double>(local.tile_bytes_read) /
            (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
        static_cast<double>(local.tiles_accessed) *
            options_.cost.per_tile_cpu_ms;

    if (stats != nullptr) *stats = local;
    return result;
  }
  if (parallelism <= 1) {
    // Serial path: fetch everything, then compose — the paper's pipeline,
    // bit-identical in storage behavior and model cost to the original
    // tile-at-a-time loop.
    const Clock::time_point o_start = Clock::now();
    Result<std::vector<Tile>> tiles_or = [&] {
      obs::TraceScope span(trace, trace_id, "fetch");
      return store_->FetchTiles(*object, hits, /*parallelism=*/1, &io,
                                trace_id, use_cache);
    }();
    if (!tiles_or.ok()) return tiles_or.status();
    const std::vector<Tile>& tiles = tiles_or.value();
    local.t_o_measured_ms = ElapsedMs(o_start);
    local.t_o_wall_ms = local.t_o_measured_ms;
    local.t_o_model_ms = disk->read_ms() - disk_ms_before;
    local.pages_read = disk->pages_read() - pages_before;
    local.seeks = disk->read_seeks() - seeks_before;
    local.io_runs = io.coalesced_runs;
    local.tilecache_hits = io.cache_hits;
    local.tiles_accessed = tiles.size();
    for (const Tile& tile : tiles) {
      local.tile_bytes_read += tile.size_bytes();
    }

    // Phase 3 (t_cpu): compose the tile parts into the result array.
    const Clock::time_point cpu_start = Clock::now();
    obs::TraceScope compose_span(trace, trace_id, "compose");
    Result<Array> result_or = Array::Create(resolved, object->cell_type());
    if (!result_or.ok()) return result_or.status();
    Array result = std::move(result_or).MoveValue();
    // Start from the default value; covered parts are overwritten below.
    // (Cheap relative to the copies; covered-only fill would complicate
    // the kernel for no measurable gain at tile granularity.)
    Status st = result.Fill(resolved, object->default_cell().data());
    if (!st.ok()) return st;
    for (const Tile& tile : tiles) {
      const std::optional<MInterval> part =
          tile.domain().Intersection(resolved);
      if (!part.has_value()) continue;  // cannot happen for index hits
      st = result.CopyFrom(tile, *part);
      if (!st.ok()) return st;
      local.useful_bytes += part->CellCountOrDie() * object->cell_size();
    }
    local.t_cpu_measured_ms = ElapsedMs(cpu_start);

    local.result_cells = resolved.CellCountOrDie();
    local.result_bytes = local.result_cells * object->cell_size();
    // t_cpu model: every retrieved byte passes through the composition
    // layer once, plus a fixed dispatch overhead per tile.
    local.t_cpu_model_ms =
        static_cast<double>(local.tile_bytes_read) /
            (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
        static_cast<double>(local.tiles_accessed) *
            options_.cost.per_tile_cpu_ms;

    if (stats != nullptr) *stats = local;
    return result;
  }

  // Parallel path: allocate the result up front and default-fill only the
  // pieces no tile covers (the serial path fills everything and then
  // overwrites the covered parts — same bytes, more traffic), then fuse
  // fetch + decode + composition in the scheduler's consume callback.
  // Tiles are disjoint, so workers compose into disjoint cell ranges of
  // the result buffer; the result is byte-identical to the serial path.
  const Clock::time_point prep_start = Clock::now();
  Result<Array> result_or = Array::Create(resolved, object->cell_type());
  if (!result_or.ok()) return result_or.status();
  Array result = std::move(result_or).MoveValue();
  {
    obs::TraceScope compose_span(trace, trace_id, "compose");
    std::vector<MInterval> covered;
    covered.reserve(hits.size());
    for (const TileEntry& entry : hits) {
      const std::optional<MInterval> part =
          entry.domain.Intersection(resolved);
      if (part.has_value()) covered.push_back(*part);
    }
    for (const MInterval& piece : Subtract(resolved, covered)) {
      Status st = result.Fill(piece, object->default_cell().data());
      if (!st.ok()) return st;
    }
  }
  const double prep_ms = ElapsedMs(prep_start);

  std::atomic<uint64_t> useful_bytes{0};
  const size_t cell_size = object->cell_size();
  TileIOOptions io_options;
  io_options.parallelism = parallelism;
  io_options.pool = store_->thread_pool();
  io_options.trace = trace;
  io_options.trace_id = trace_id;
  Status st = Status::OK();
  {
    obs::TraceScope fetch_span(trace, trace_id, "fetch");
    if (use_cache) {
      // Cache-aware batch: hits compose straight from the shared decoded
      // copy; misses decode once and populate the cache for the next
      // query. Same compose kernel either way, so bytes are identical.
      io_options.cache = store_->tile_cache();
      io_options.cache_object_id = object->cache_id();
      st = store_->io_scheduler()->FetchBatchShared(
          hits, object->cell_type(), io_options,
          [&](size_t, const Tile& tile) -> Status {
            const std::optional<MInterval> part =
                tile.domain().Intersection(resolved);
            if (!part.has_value()) return Status::OK();
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            useful_bytes.fetch_add(part->CellCountOrDie() * cell_size,
                                   std::memory_order_relaxed);
            return Status::OK();
          },
          &io);
    } else {
      st = store_->io_scheduler()->FetchBatch(
          hits, object->cell_type(), io_options,
          [&](size_t, Tile&& tile) -> Status {
            const std::optional<MInterval> part =
                tile.domain().Intersection(resolved);
            if (!part.has_value()) return Status::OK();
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            useful_bytes.fetch_add(part->CellCountOrDie() * cell_size,
                                   std::memory_order_relaxed);
            return Status::OK();
          },
          &io);
    }
  }
  if (!st.ok()) return st;

  local.t_o_measured_ms = io.io_summed_ms;
  local.t_o_wall_ms = io.wall_ms;
  local.t_cpu_measured_ms = prep_ms + io.decode_summed_ms;
  local.t_o_model_ms = disk->read_ms() - disk_ms_before;
  local.pages_read = disk->pages_read() - pages_before;
  local.seeks = disk->read_seeks() - seeks_before;
  local.io_runs = io.coalesced_runs;
  local.tilecache_hits = io.cache_hits;
  local.tiles_accessed = io.tiles;
  local.tile_bytes_read = io.tile_bytes;
  local.useful_bytes = useful_bytes.load(std::memory_order_relaxed);

  local.result_cells = resolved.CellCountOrDie();
  local.result_bytes = local.result_cells * object->cell_size();
  local.t_cpu_model_ms =
      static_cast<double>(local.tile_bytes_read) /
          (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
      static_cast<double>(local.tiles_accessed) *
          options_.cost.per_tile_cpu_ms;

  if (stats != nullptr) *stats = local;
  return result;
}

Result<double> RangeQueryExecutor::ExecuteAggregate(MDDObject* object,
                                                    const MInterval& region,
                                                    AggregateOp op,
                                                    QueryStats* stats) {
  if (options_.predicate.has_value()) {
    return ExecuteAggregateFiltered(object, region, op, stats);
  }
  Result<MInterval> resolved_or = ResolveRegion(*object, region);
  if (!resolved_or.ok()) return resolved_or.status();
  const MInterval resolved = std::move(resolved_or).MoveValue();

  if (options_.log != nullptr) options_.log->Record(resolved);
  store_->workload()->Record(object->name(), resolved);

  DiskModel* disk = store_->disk_model();
  if (options_.cold) {
    store_->buffer_pool()->Clear();
    disk->Reset();
  }
  const double disk_ms_before = disk->read_ms();
  const uint64_t pages_before = disk->pages_read();
  const uint64_t seeks_before = disk->read_seeks();

  obs::TraceRing* trace = store_->trace();
  const uint64_t trace_id = trace->NextTraceId();
  obs::TraceScope query_span(trace, trace_id, "query");
  queries_->Add(1);

  QueryStats local;
  const int parallelism = std::max(options_.parallelism, 1);
  local.parallelism = static_cast<uint64_t>(parallelism);

  const bool use_cache = options_.use_tile_cache && !options_.cold &&
                         store_->tile_cache()->enabled() &&
                         object->cache_id() != 0;
  // Negative cache, as in Execute: a region known empty skips the index
  // walk and folds straight over default cells below.
  const bool known_empty =
      use_cache && store_->tile_cache()->LookupNegativeRegion(
                       object->cache_id(), resolved.ToString());

  // Phase 1 (t_ix): probe the tile index.
  const Clock::time_point ix_start = Clock::now();
  std::vector<TileEntry> hits;
  if (!known_empty) {
    obs::TraceScope span(trace, trace_id, "index_probe");
    hits = object->FindTiles(resolved);
    local.index_nodes_visited = object->index()->last_nodes_visited();
    index_probes_->Add(1);
    index_nodes_visited_->Add(local.index_nodes_visited);
    if (use_cache && hits.empty()) {
      store_->tile_cache()->InsertNegativeRegion(object->cache_id(),
                                                 resolved.ToString());
    }
  }
  local.t_ix_measured_ms = ElapsedMs(ix_start);
  local.t_ix_model_ms = static_cast<double>(local.index_nodes_visited) *
                        options_.cost.index_node_ms;

  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });

  // Phases 2+3 fused in the scheduler's consume callback: each tile is
  // fetched (t_o), its intersecting part condensed into a per-tile partial
  // (t_cpu), then discarded — peak memory stays at `parallelism` tiles.
  // Partials are folded serially afterwards in ascending BLOB-id order, so
  // the floating-point accumulation order — and hence the result — is
  // identical at every parallelism.
  struct TilePartial {
    double value = 0;
    uint64_t cells = 0;
  };
  std::vector<TilePartial> partials(hits.size());
  const AggregateOp tile_op =
      op == AggregateOp::kAvg ? AggregateOp::kSum : op;
  const bool run_kernel =
      options_.aggregate_kernel == RangeQueryOptions::AggregateKernel::kRun;

  TileIOStats io;
  TileIOOptions io_options;
  io_options.parallelism = parallelism;
  io_options.pool = parallelism > 1 ? store_->thread_pool() : nullptr;
  io_options.trace = trace;
  io_options.trace_id = trace_id;
  if (use_cache) {
    io_options.cache = store_->tile_cache();
    io_options.cache_object_id = object->cache_id();
  }
  if (run_kernel) {
    // RLE fast path: a tile wholly inside the region whose stream is
    // already run-encoded folds directly over the compressed bytes — no
    // decoded buffer at all. (A cached decoded copy still wins when one
    // exists; the scheduler checks the cache first and never populates it
    // from this path.)
    io_options.encoded_filter = [&hits, &resolved](size_t i) {
      return hits[i].compression == Compression::kRle &&
             resolved.Contains(hits[i].domain);
    };
    io_options.consume_encoded =
        [&](size_t i, const std::vector<uint8_t>& stream) -> Status {
      const uint64_t cells = hits[i].domain.CellCountOrDie();
      Result<double> value =
          AggregateRleStream(stream, object->cell_type(), cells, tile_op);
      if (!value.ok()) return value.status();
      partials[i] = TilePartial{*value, cells};
      return Status::OK();
    };
  }
  Status st = Status::OK();
  {
    obs::TraceScope fetch_span(trace, trace_id, "fetch");
    st = store_->io_scheduler()->FetchBatchShared(
        hits, object->cell_type(), io_options,
        [&](size_t i, const Tile& tile) -> Status {
          const std::optional<MInterval> part =
              tile.domain().Intersection(resolved);
          // Condense via the primitive reductions; kAvg folds as a running
          // sum. The run kernel reduces the part in place; the legacy
          // slice kernel materializes it first. Same cell order, same
          // accumulators — bit-identical values.
          Result<double> value = [&]() -> Result<double> {
            if (run_kernel) return AggregateRegion(tile, *part, tile_op);
            Result<Array> slice = tile.Slice(*part);
            if (!slice.ok()) return slice.status();
            return AggregateCells(*slice, tile_op);
          }();
          if (!value.ok()) return value.status();
          partials[i] = TilePartial{*value, part->CellCountOrDie()};
          return Status::OK();
        },
        &io);
  }
  if (!st.ok()) return st;

  local.t_o_measured_ms = io.io_summed_ms;
  local.t_o_wall_ms = io.wall_ms;
  local.t_o_model_ms = disk->read_ms() - disk_ms_before;
  local.pages_read = disk->pages_read() - pages_before;
  local.seeks = disk->read_seeks() - seeks_before;
  local.io_runs = io.coalesced_runs;
  local.tilecache_hits = io.cache_hits;
  local.tiles_accessed = io.tiles;
  local.tile_bytes_read = io.tile_bytes;

  const Clock::time_point fold_start = Clock::now();
  obs::TraceScope compose_span(trace, trace_id, "compose");
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double nonzero = 0;
  uint64_t covered_cells = 0;
  for (const TilePartial& partial : partials) {
    covered_cells += partial.cells;
    local.useful_bytes += partial.cells * object->cell_size();
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        sum += partial.value;
        break;
      case AggregateOp::kMin:
        min = std::min(min, partial.value);
        break;
      case AggregateOp::kMax:
        max = std::max(max, partial.value);
        break;
      case AggregateOp::kCount:
        nonzero += partial.value;
        break;
    }
  }

  // Fold uncovered cells (the default value).
  const uint64_t total_cells = resolved.CellCountOrDie();
  const uint64_t uncovered = total_cells - covered_cells;
  if (uncovered > 0 || total_cells == 0) {
    Result<double> default_value = CellValueAsDouble(
        object->cell_type(), object->default_cell().data());
    if (!default_value.ok()) return default_value.status();
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        sum += *default_value * static_cast<double>(uncovered);
        break;
      case AggregateOp::kMin:
        min = std::min(min, *default_value);
        break;
      case AggregateOp::kMax:
        max = std::max(max, *default_value);
        break;
      case AggregateOp::kCount:
        if (*default_value != 0.0) {
          nonzero += static_cast<double>(uncovered);
        }
        break;
    }
  }
  local.t_cpu_measured_ms = io.decode_summed_ms + ElapsedMs(fold_start);

  local.result_cells = total_cells;
  local.result_bytes = sizeof(double);  // a scalar comes back
  local.t_cpu_model_ms =
      static_cast<double>(local.tile_bytes_read) /
          (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
      static_cast<double>(local.tiles_accessed) *
          options_.cost.per_tile_cpu_ms;
  if (stats != nullptr) *stats = local;

  switch (op) {
    case AggregateOp::kSum:
      return sum;
    case AggregateOp::kAvg:
      return sum / static_cast<double>(total_cells);
    case AggregateOp::kMin:
      return min;
    case AggregateOp::kMax:
      return max;
    case AggregateOp::kCount:
      return nonzero;
  }
  return Status::Internal("unhandled aggregate op");
}

Result<Array> RangeQueryExecutor::ExecuteFiltered(MDDObject* object,
                                                  const MInterval& region,
                                                  QueryStats* stats) {
  const ValuePredicate pred = *options_.predicate;
  Status vst = pred.Validate();
  if (!vst.ok()) return vst;
  if (!IsNumericCellType(object->cell_type())) {
    return Status::InvalidArgument(
        "filtered query needs a numeric cell type; object '" +
        object->name() + "' is " + std::string(object->cell_type().name()));
  }
  Result<MInterval> resolved_or = ResolveRegion(*object, region);
  if (!resolved_or.ok()) return resolved_or.status();
  const MInterval resolved = std::move(resolved_or).MoveValue();

  if (options_.log != nullptr) options_.log->Record(resolved);
  store_->workload()->Record(object->name(), resolved);

  DiskModel* disk = store_->disk_model();
  if (options_.cold) {
    store_->buffer_pool()->Clear();
    disk->Reset();
  }
  const double disk_ms_before = disk->read_ms();
  const uint64_t pages_before = disk->pages_read();
  const uint64_t seeks_before = disk->read_seeks();

  obs::TraceRing* trace = store_->trace();
  const uint64_t trace_id = trace->NextTraceId();
  obs::TraceScope query_span(trace, trace_id, "filter_query");
  queries_->Add(1);

  QueryStats local;
  const int parallelism = std::max(options_.parallelism, 1);
  local.parallelism = static_cast<uint64_t>(parallelism);

  const bool use_cache = options_.use_tile_cache && !options_.cold &&
                         store_->tile_cache()->enabled() &&
                         object->cache_id() != 0;

  // Phase 1 (t_ix): index probe + summary classification. Skipped tiles
  // end here — no fetch, no decode, no model charge beyond this probe.
  const Clock::time_point ix_start = Clock::now();
  std::vector<TileEntry> hits;
  {
    obs::TraceScope span(trace, trace_id, "index_probe");
    hits = object->FindTiles(resolved);
    local.index_nodes_visited = object->index()->last_nodes_visited();
    index_probes_->Add(1);
    index_nodes_visited_->Add(local.index_nodes_visited);
  }
  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });

  TileSummaryIndex* summaries = store_->tile_summaries();
  const bool probe = summaries->enabled() && object->cache_id() != 0;
  // Per fetched tile: 0 = accept-all (plain copy), 1 = inspect with a
  // summary present, 2 = inspect with none (lazy-backfill candidate).
  std::vector<TileEntry> fetch;
  std::vector<uint8_t> mode;
  fetch.reserve(hits.size());
  mode.reserve(hits.size());
  {
    obs::TraceScope span(trace, trace_id, "summary_probe");
    for (const TileEntry& entry : hits) {
      TilePrune prune = TilePrune::kInspect;
      bool had_summary = false;
      if (probe) {
        ++local.summary_probes;
        std::optional<TileSummary> summary =
            summaries->Lookup(object->cache_id(), entry.blob);
        if (summary.has_value()) {
          had_summary = true;
          prune = ClassifyTile(*summary, pred);
        }
      }
      if (prune == TilePrune::kSkip) {
        ++local.summary_skips;
        continue;
      }
      if (prune == TilePrune::kInspect) ++local.summary_inspects;
      fetch.push_back(entry);
      mode.push_back(prune == TilePrune::kAcceptAll ? 0
                                                    : (had_summary ? 1 : 2));
    }
  }
  summary_probes_->Add(local.summary_probes);
  summary_skips_->Add(local.summary_skips);
  summary_inspects_->Add(local.summary_inspects);
  local.t_ix_measured_ms = ElapsedMs(ix_start);
  local.t_ix_model_ms = static_cast<double>(local.index_nodes_visited) *
                        options_.cost.index_node_ms;

  // The result starts as the default value everywhere; accept-all parts
  // are overwritten wholesale, inspect parts cell by matching cell, and
  // skipped tiles touch nothing. A cell's final bytes therefore depend
  // only on (stored value, predicate) — never on the classification — so
  // results are byte-identical with summaries on, off, or discarded.
  const Clock::time_point prep_start = Clock::now();
  Result<Array> result_or = Array::Create(resolved, object->cell_type());
  if (!result_or.ok()) return result_or.status();
  Array result = std::move(result_or).MoveValue();
  Status st = result.Fill(resolved, object->default_cell().data());
  if (!st.ok()) return st;
  const double prep_ms = ElapsedMs(prep_start);

  const CellTypeId type_id = object->cell_type().id();
  const FilterRunFn filter_run = FilterRunFor(type_id);
  const size_t cell_size = object->cell_size();
  std::atomic<uint64_t> useful_bytes{0};

  TileIOOptions io_options;
  io_options.parallelism = parallelism;
  io_options.pool = parallelism > 1 ? store_->thread_pool() : nullptr;
  io_options.trace = trace;
  io_options.trace_id = trace_id;
  if (use_cache) {
    io_options.cache = store_->tile_cache();
    io_options.cache_object_id = object->cache_id();
  }
  // Inspect tiles stored RLE and wholly inside the region filter straight
  // off the compressed stream (runs tested before materializing).
  io_options.encoded_filter = [&](size_t i) {
    return mode[i] != 0 && fetch[i].compression == Compression::kRle &&
           resolved.Contains(fetch[i].domain);
  };
  io_options.consume_encoded =
      [&](size_t i, const std::vector<uint8_t>& stream) -> Status {
    Result<uint64_t> matched =
        FilterRleStreamInto(stream, fetch[i].domain, type_id, cell_size,
                            pred, resolved, result.mutable_data());
    if (!matched.ok()) return matched.status();
    useful_bytes.fetch_add(*matched * cell_size, std::memory_order_relaxed);
    return Status::OK();
  };

  TileIOStats io;
  {
    obs::TraceScope fetch_span(trace, trace_id, "fetch");
    st = store_->io_scheduler()->FetchBatchShared(
        fetch, object->cell_type(), io_options,
        [&](size_t i, const Tile& tile) -> Status {
          const std::optional<MInterval> part =
              tile.domain().Intersection(resolved);
          if (!part.has_value()) return Status::OK();
          if (mode[i] == 0) {
            Status copy = result.CopyFrom(tile, *part);
            if (!copy.ok()) return copy;
            useful_bytes.fetch_add(part->CellCountOrDie() * cell_size,
                                   std::memory_order_relaxed);
            return Status::OK();
          }
          if (mode[i] == 2 && probe) {
            // Lazy backfill: the tile is decoded anyway, so summarizing it
            // now lets the next filtered query classify it outright.
            std::optional<TileSummary> summary = BuildTileSummary(
                object->cell_type(), tile.data(),
                tile.domain().CellCountOrDie(),
                object->default_cell().data());
            if (summary.has_value()) {
              summaries->Put(object->cache_id(), fetch[i].blob, *summary);
            }
          }
          const uint64_t run =
              static_cast<uint64_t>(part->Extent(part->dim() - 1));
          ForEachRun(tile.domain(), resolved, *part,
                     [&](uint64_t src_off, uint64_t dst_off) {
                       filter_run(tile.data() + src_off * cell_size,
                                  result.mutable_data() + dst_off * cell_size,
                                  run, pred);
                     });
          useful_bytes.fetch_add(part->CellCountOrDie() * cell_size,
                                 std::memory_order_relaxed);
          return Status::OK();
        },
        &io);
  }
  if (!st.ok()) return st;

  local.t_o_measured_ms = io.io_summed_ms;
  local.t_o_wall_ms = io.wall_ms;
  local.t_cpu_measured_ms = prep_ms + io.decode_summed_ms;
  local.t_o_model_ms = disk->read_ms() - disk_ms_before;
  local.pages_read = disk->pages_read() - pages_before;
  local.seeks = disk->read_seeks() - seeks_before;
  local.io_runs = io.coalesced_runs;
  local.tilecache_hits = io.cache_hits;
  local.tiles_accessed = io.tiles;
  local.tile_bytes_read = io.tile_bytes;
  local.useful_bytes = useful_bytes.load(std::memory_order_relaxed);
  local.result_cells = resolved.CellCountOrDie();
  local.result_bytes = local.result_cells * cell_size;
  // Only fetched tiles charge t_cpu; skipped tiles cost nothing — the
  // model-side face of predicate pushdown.
  local.t_cpu_model_ms =
      static_cast<double>(local.tile_bytes_read) /
          (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
      static_cast<double>(local.tiles_accessed) *
          options_.cost.per_tile_cpu_ms;

  if (stats != nullptr) *stats = local;
  return result;
}

Result<double> RangeQueryExecutor::ExecuteAggregateFiltered(
    MDDObject* object, const MInterval& region, AggregateOp op,
    QueryStats* stats) {
  const ValuePredicate pred = *options_.predicate;
  Status vst = pred.Validate();
  if (!vst.ok()) return vst;
  if (!IsNumericCellType(object->cell_type())) {
    return Status::InvalidArgument(
        "filtered aggregate needs a numeric cell type; object '" +
        object->name() + "' is " + std::string(object->cell_type().name()));
  }
  Result<MInterval> resolved_or = ResolveRegion(*object, region);
  if (!resolved_or.ok()) return resolved_or.status();
  const MInterval resolved = std::move(resolved_or).MoveValue();

  if (options_.log != nullptr) options_.log->Record(resolved);
  store_->workload()->Record(object->name(), resolved);

  DiskModel* disk = store_->disk_model();
  if (options_.cold) {
    store_->buffer_pool()->Clear();
    disk->Reset();
  }
  const double disk_ms_before = disk->read_ms();
  const uint64_t pages_before = disk->pages_read();
  const uint64_t seeks_before = disk->read_seeks();

  obs::TraceRing* trace = store_->trace();
  const uint64_t trace_id = trace->NextTraceId();
  obs::TraceScope query_span(trace, trace_id, "filter_aggregate");
  queries_->Add(1);

  QueryStats local;
  const int parallelism = std::max(options_.parallelism, 1);
  local.parallelism = static_cast<uint64_t>(parallelism);

  const bool use_cache = options_.use_tile_cache && !options_.cold &&
                         store_->tile_cache()->enabled() &&
                         object->cache_id() != 0;

  const Clock::time_point ix_start = Clock::now();
  std::vector<TileEntry> hits;
  {
    obs::TraceScope span(trace, trace_id, "index_probe");
    hits = object->FindTiles(resolved);
    local.index_nodes_visited = object->index()->last_nodes_visited();
    index_probes_->Add(1);
    index_nodes_visited_->Add(local.index_nodes_visited);
  }
  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });

  // Every hit covers its cells whether fetched or skipped; the uncovered
  // remainder folds the default value below (iff the default matches).
  uint64_t covered_cells = 0;
  for (const TileEntry& entry : hits) {
    const std::optional<MInterval> part = entry.domain.Intersection(resolved);
    if (part.has_value()) covered_cells += part->CellCountOrDie();
  }

  TileSummaryIndex* summaries = store_->tile_summaries();
  const bool probe = summaries->enabled() && object->cache_id() != 0;
  std::vector<TileEntry> fetch;
  std::vector<uint8_t> mode;  // 0 accept-all, 1 inspect, 2 inspect+backfill
  fetch.reserve(hits.size());
  mode.reserve(hits.size());
  {
    obs::TraceScope span(trace, trace_id, "summary_probe");
    for (const TileEntry& entry : hits) {
      TilePrune prune = TilePrune::kInspect;
      bool had_summary = false;
      if (probe) {
        ++local.summary_probes;
        std::optional<TileSummary> summary =
            summaries->Lookup(object->cache_id(), entry.blob);
        if (summary.has_value()) {
          had_summary = true;
          prune = ClassifyTile(*summary, pred);
        }
      }
      if (prune == TilePrune::kSkip) {
        ++local.summary_skips;
        continue;
      }
      if (prune == TilePrune::kInspect) ++local.summary_inspects;
      fetch.push_back(entry);
      mode.push_back(prune == TilePrune::kAcceptAll ? 0
                                                    : (had_summary ? 1 : 2));
    }
  }
  summary_probes_->Add(local.summary_probes);
  summary_skips_->Add(local.summary_skips);
  summary_inspects_->Add(local.summary_inspects);
  local.t_ix_measured_ms = ElapsedMs(ix_start);
  local.t_ix_model_ms = static_cast<double>(local.index_nodes_visited) *
                        options_.cost.index_node_ms;

  const AggregateOp tile_op =
      op == AggregateOp::kAvg ? AggregateOp::kSum : op;
  const bool run_kernel =
      options_.aggregate_kernel == RangeQueryOptions::AggregateKernel::kRun;
  const WidenFn widen = WidenFor(object->cell_type().id());
  const size_t cell_size = object->cell_size();
  std::vector<FilterPartial> partials(fetch.size());

  TileIOOptions io_options;
  io_options.parallelism = parallelism;
  io_options.pool = parallelism > 1 ? store_->thread_pool() : nullptr;
  io_options.trace = trace;
  io_options.trace_id = trace_id;
  if (use_cache) {
    io_options.cache = store_->tile_cache();
    io_options.cache_object_id = object->cache_id();
  }
  if (run_kernel) {
    // Accept-all RLE tiles wholly inside the region fold straight over the
    // compressed stream with the *unfiltered* kernel — every cell matches,
    // so the existing bit-identical fast path applies untouched.
    io_options.encoded_filter = [&](size_t i) {
      return mode[i] == 0 && fetch[i].compression == Compression::kRle &&
             resolved.Contains(fetch[i].domain);
    };
    io_options.consume_encoded =
        [&](size_t i, const std::vector<uint8_t>& stream) -> Status {
      const uint64_t cells = fetch[i].domain.CellCountOrDie();
      Result<double> value =
          AggregateRleStream(stream, object->cell_type(), cells, tile_op);
      if (!value.ok()) return value.status();
      partials[i] = FilterPartial{*value, cells};
      return Status::OK();
    };
  }
  TileIOStats io;
  Status st = Status::OK();
  {
    obs::TraceScope fetch_span(trace, trace_id, "fetch");
    st = store_->io_scheduler()->FetchBatchShared(
        fetch, object->cell_type(), io_options,
        [&](size_t i, const Tile& tile) -> Status {
          const std::optional<MInterval> part =
              tile.domain().Intersection(resolved);
          if (!part.has_value()) return Status::OK();
          if (mode[i] == 0) {
            Result<double> value = [&]() -> Result<double> {
              if (run_kernel) return AggregateRegion(tile, *part, tile_op);
              Result<Array> slice = tile.Slice(*part);
              if (!slice.ok()) return slice.status();
              return AggregateCells(*slice, tile_op);
            }();
            if (!value.ok()) return value.status();
            partials[i] = FilterPartial{*value, part->CellCountOrDie()};
            return Status::OK();
          }
          if (mode[i] == 2 && probe) {
            std::optional<TileSummary> summary = BuildTileSummary(
                object->cell_type(), tile.data(),
                tile.domain().CellCountOrDie(),
                object->default_cell().data());
            if (summary.has_value()) {
              summaries->Put(object->cache_id(), fetch[i].blob, *summary);
            }
          }
          partials[i] =
              FilterFoldRegion(tile, *part, pred, tile_op, widen, cell_size);
          return Status::OK();
        },
        &io);
  }
  if (!st.ok()) return st;

  local.t_o_measured_ms = io.io_summed_ms;
  local.t_o_wall_ms = io.wall_ms;
  local.t_o_model_ms = disk->read_ms() - disk_ms_before;
  local.pages_read = disk->pages_read() - pages_before;
  local.seeks = disk->read_seeks() - seeks_before;
  local.io_runs = io.coalesced_runs;
  local.tilecache_hits = io.cache_hits;
  local.tiles_accessed = io.tiles;
  local.tile_bytes_read = io.tile_bytes;

  // Fold the partials serially in ascending BLOB-id order, then the
  // uncovered default cells — deterministic at every parallelism.
  const Clock::time_point fold_start = Clock::now();
  obs::TraceScope compose_span(trace, trace_id, "compose");
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double nonzero = 0;
  uint64_t matched_total = 0;
  for (const FilterPartial& partial : partials) {
    matched_total += partial.matched;
    local.useful_bytes += partial.matched * cell_size;
    if (partial.matched == 0) continue;
    switch (op) {
      case AggregateOp::kSum:
      case AggregateOp::kAvg:
        sum += partial.value;
        break;
      case AggregateOp::kMin:
        min = std::min(min, partial.value);
        break;
      case AggregateOp::kMax:
        max = std::max(max, partial.value);
        break;
      case AggregateOp::kCount:
        nonzero += partial.value;
        break;
    }
  }

  const uint64_t total_cells = resolved.CellCountOrDie();
  const uint64_t uncovered = total_cells - covered_cells;
  if (uncovered > 0) {
    Result<double> default_value = CellValueAsDouble(
        object->cell_type(), object->default_cell().data());
    if (!default_value.ok()) return default_value.status();
    if (pred.Matches(*default_value)) {
      matched_total += uncovered;
      switch (op) {
        case AggregateOp::kSum:
        case AggregateOp::kAvg:
          sum += *default_value * static_cast<double>(uncovered);
          break;
        case AggregateOp::kMin:
          min = std::min(min, *default_value);
          break;
        case AggregateOp::kMax:
          max = std::max(max, *default_value);
          break;
        case AggregateOp::kCount:
          if (*default_value != 0.0) {
            nonzero += static_cast<double>(uncovered);
          }
          break;
      }
    }
  }
  local.t_cpu_measured_ms = io.decode_summed_ms + ElapsedMs(fold_start);

  local.result_cells = total_cells;
  local.result_bytes = sizeof(double);
  local.t_cpu_model_ms =
      static_cast<double>(local.tile_bytes_read) /
          (options_.cost.cpu_process_mib_per_s * 1024.0 * 1024.0) * 1000.0 +
      static_cast<double>(local.tiles_accessed) *
          options_.cost.per_tile_cpu_ms;
  if (stats != nullptr) *stats = local;

  // No matching cell: 0 by definition for every op (documented — a
  // filtered aggregate over the empty set has no natural min/max/avg).
  if (matched_total == 0) return 0.0;
  switch (op) {
    case AggregateOp::kSum:
      return sum;
    case AggregateOp::kAvg:
      return sum / static_cast<double>(matched_total);
    case AggregateOp::kMin:
      return min;
    case AggregateOp::kMax:
      return max;
    case AggregateOp::kCount:
      return nonzero;
  }
  return Status::Internal("unhandled aggregate op");
}

Result<Array> ReadRegion(MDDStore* store, MDDObject* object,
                         const MInterval& region) {
  RangeQueryExecutor executor(store);
  return executor.Execute(object, region);
}

}  // namespace tilestore
