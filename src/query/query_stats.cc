#include "query/query_stats.h"

#include <sstream>

namespace tilestore {

void QueryStats::Add(const QueryStats& other) {
  tiles_accessed += other.tiles_accessed;
  tile_bytes_read += other.tile_bytes_read;
  pages_read += other.pages_read;
  seeks += other.seeks;
  index_nodes_visited += other.index_nodes_visited;
  result_cells += other.result_cells;
  result_bytes += other.result_bytes;
  useful_bytes += other.useful_bytes;
  parallelism = parallelism > other.parallelism ? parallelism
                                                : other.parallelism;
  io_runs += other.io_runs;
  prefetch_hits += other.prefetch_hits;
  tilecache_hits += other.tilecache_hits;
  summary_probes += other.summary_probes;
  summary_skips += other.summary_skips;
  summary_inspects += other.summary_inspects;
  t_ix_model_ms += other.t_ix_model_ms;
  t_o_model_ms += other.t_o_model_ms;
  t_cpu_model_ms += other.t_cpu_model_ms;
  t_ix_measured_ms += other.t_ix_measured_ms;
  t_o_measured_ms += other.t_o_measured_ms;
  t_cpu_measured_ms += other.t_cpu_measured_ms;
  t_o_wall_ms += other.t_o_wall_ms;
}

void QueryStats::DivideBy(uint64_t n) {
  if (n == 0) return;
  tiles_accessed /= n;
  tile_bytes_read /= n;
  pages_read /= n;
  seeks /= n;
  index_nodes_visited /= n;
  result_cells /= n;
  result_bytes /= n;
  useful_bytes /= n;
  io_runs /= n;
  prefetch_hits /= n;
  tilecache_hits /= n;
  summary_probes /= n;
  summary_skips /= n;
  summary_inspects /= n;
  const double dn = static_cast<double>(n);
  t_ix_model_ms /= dn;
  t_o_model_ms /= dn;
  t_cpu_model_ms /= dn;
  t_ix_measured_ms /= dn;
  t_o_measured_ms /= dn;
  t_cpu_measured_ms /= dn;
  t_o_wall_ms /= dn;
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "tiles=" << tiles_accessed << " read=" << tile_bytes_read
     << "B (useful " << useful_bytes << "B) cache_hits=" << tilecache_hits
     << " pages=" << pages_read;
  if (summary_probes > 0 || summary_skips > 0 || summary_inspects > 0) {
    os << " summ_probes=" << summary_probes << " summ_skips=" << summary_skips
       << " summ_inspects=" << summary_inspects;
  }
  os << " seeks=" << seeks << " ix_nodes=" << index_nodes_visited
     << " | model ms: ix=" << t_ix_model_ms << " o=" << t_o_model_ms
     << " cpu=" << t_cpu_model_ms << " | measured ms: ix="
     << t_ix_measured_ms << " o=" << t_o_measured_ms << " cpu="
     << t_cpu_measured_ms;
  return os.str();
}

}  // namespace tilestore
