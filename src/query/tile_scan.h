#ifndef TILESTORE_QUERY_TILE_SCAN_H_
#define TILESTORE_QUERY_TILE_SCAN_H_

#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "common/result.h"
#include "core/tile.h"
#include "mdd/mdd_object.h"
#include "mdd/mdd_store.h"

namespace tilestore {

/// Execution options for a tile scan.
struct TileScanOptions {
  /// Tiles fetched ahead of the cursor on the store's worker pool. 0
  /// (default) is the serial paper-exact path: each tile is read on demand
  /// by the calling thread, with storage behavior and model cost identical
  /// to the pre-scheduler implementation. With K > 0, up to K decoded
  /// tiles are kept in flight behind the cursor, so consumer processing
  /// overlaps retrieval.
  size_t prefetch = 0;
};

/// \brief Streaming cursor over the tiles a range query touches.
///
/// For workloads that process tiles one at a time (user-defined
/// aggregation, export, format conversion, rendering), materializing the
/// whole query region wastes memory. `TileScan` performs the same pipeline
/// as `RangeQueryExecutor` — resolve the region, probe the index, fetch
/// BLOBs in physical order — but hands each tile (and its intersection
/// with the region) to the caller as soon as it is read, keeping peak
/// memory at one tile (1 + `prefetch` tiles when prefetching):
///
///   TileScan scan(store, object);
///   TILESTORE_RETURN_IF_ERROR(scan.Begin(region));
///   while (true) {
///     TILESTORE_ASSIGN_OR_RETURN(bool more, scan.Next());
///     if (!more) break;
///     Process(scan.tile(), scan.part());
///   }
///
/// Cells of the region covered by no tile are NOT reported; callers
/// needing them can subtract the visited parts from the region
/// (`Subtract` in core/region.h) and use the object's default cell value.
class TileScan {
 public:
  TileScan(MDDStore* store, MDDObject* object,
           TileScanOptions options = TileScanOptions())
      : store_(store), object_(object), options_(options) {}

  /// Resolves `region` ('*' bounds allowed) and probes the index. May be
  /// called again to restart with a new region (any in-flight prefetches
  /// of the previous scan are abandoned).
  Status Begin(const MInterval& region);

  /// Fetches the next intersecting tile. Returns false when the scan is
  /// exhausted.
  Result<bool> Next();

  /// The current tile's cells (valid after Next() returned true).
  const Tile& tile() const { return tile_; }
  /// The intersection of the current tile's domain with the region.
  const MInterval& part() const { return part_; }
  /// The resolved query region (valid after Begin()).
  const MInterval& region() const { return region_; }
  /// Tiles remaining to fetch (including the current position).
  size_t remaining() const { return hits_.size() - next_; }
  /// Next() calls whose tile the prefetch window had already decoded when
  /// the cursor arrived (0 on the serial path).
  uint64_t prefetch_hits() const { return prefetch_hits_; }

 private:
  /// Tops the window up to `options_.prefetch` in-flight fetches.
  void FillWindow();

  MDDStore* store_;
  MDDObject* object_;
  TileScanOptions options_;
  MInterval region_;
  std::vector<TileEntry> hits_;
  size_t next_ = 0;
  Tile tile_;
  MInterval part_;
  bool begun_ = false;
  /// Prefetch window: futures for hits_[next_ .. next_ + window_.size()).
  std::deque<std::future<Result<Tile>>> window_;
  /// Index of the first hit not yet handed to the window.
  size_t issued_ = 0;
  uint64_t prefetch_hits_ = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_QUERY_TILE_SCAN_H_
