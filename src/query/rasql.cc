#include "query/rasql.h"

#include <algorithm>
#include <cctype>

namespace tilestore {

namespace {

std::string_view TrimSpace(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  return std::all_of(text.begin(), text.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

// Finds the top-level, case-insensitive keyword ` FROM ` (not inside
// brackets/parens). Returns npos if absent.
size_t FindFromKeyword(std::string_view text) {
  int depth = 0;
  for (size_t i = 0; i + 4 <= text.size(); ++i) {
    const char c = text[i];
    if (c == '[' || c == '(') ++depth;
    if (c == ']' || c == ')') --depth;
    if (depth != 0) continue;
    if (EqualsIgnoreCase(text.substr(i, 4), "from")) {
      const bool boundary_before =
          i == 0 || std::isspace(static_cast<unsigned char>(text[i - 1]));
      const bool boundary_after =
          i + 4 == text.size() ||
          std::isspace(static_cast<unsigned char>(text[i + 4]));
      if (boundary_before && boundary_after) return i;
    }
  }
  return std::string_view::npos;
}

// Parses "ident" or "ident[...]"; fills object/trim.
Status ParseTarget(std::string_view text, RasqlQuery* query) {
  text = TrimSpace(text);
  const size_t bracket = text.find('[');
  std::string_view name =
      bracket == std::string_view::npos ? text : text.substr(0, bracket);
  name = TrimSpace(name);
  if (!IsIdentifier(name)) {
    return Status::InvalidArgument("bad object name '" + std::string(name) +
                                   "'");
  }
  query->object = std::string(name);
  if (bracket == std::string_view::npos) return Status::OK();

  std::string_view rest = TrimSpace(text.substr(bracket));
  if (rest.empty() || rest.back() != ']') {
    return Status::InvalidArgument("unterminated trim expression in '" +
                                   std::string(text) + "'");
  }
  Result<MInterval> trim = MInterval::Parse(rest);
  if (!trim.ok()) return trim.status();
  query->trim = std::move(trim).MoveValue();
  return Status::OK();
}

}  // namespace

Result<RasqlQuery> ParseRasql(std::string_view text) {
  std::string_view rest = TrimSpace(text);
  if (rest.size() < 6 || !EqualsIgnoreCase(rest.substr(0, 6), "select") ||
      !std::isspace(static_cast<unsigned char>(rest[6]))) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  rest.remove_prefix(6);

  const size_t from = FindFromKeyword(rest);
  if (from == std::string_view::npos) {
    return Status::InvalidArgument("missing FROM clause");
  }
  std::string_view item = TrimSpace(rest.substr(0, from));
  std::string_view from_name = TrimSpace(rest.substr(from + 4));
  if (!IsIdentifier(from_name)) {
    return Status::InvalidArgument("bad FROM object '" +
                                   std::string(from_name) + "'");
  }
  if (item.empty()) {
    return Status::InvalidArgument("empty SELECT item");
  }

  RasqlQuery query;

  // Condenser form: ident '(' target ')'.
  const size_t paren = item.find('(');
  if (paren != std::string_view::npos) {
    if (item.back() != ')') {
      return Status::InvalidArgument("unterminated condenser call");
    }
    std::string_view condenser = TrimSpace(item.substr(0, paren));
    Result<AggregateOp> op = AggregateOpFromName(condenser);
    if (!op.ok()) return op.status();
    query.condenser = op.value();
    item = item.substr(paren + 1, item.size() - paren - 2);
  }

  Status st = ParseTarget(item, &query);
  if (!st.ok()) return st;

  if (query.object != from_name) {
    return Status::InvalidArgument(
        "SELECT references '" + query.object + "' but FROM names '" +
        std::string(from_name) +
        "' (joins over MDD collections are not supported)");
  }
  return query;
}

Result<RasqlValue> RasqlEngine::Execute(std::string_view text,
                                        QueryStats* stats) {
  Result<RasqlQuery> parsed = ParseRasql(text);
  if (!parsed.ok()) return parsed.status();

  Result<MDDObject*> object = store_->GetMDD(parsed->object);
  if (!object.ok()) return object.status();

  MInterval region;
  if (parsed->trim.has_value()) {
    region = *parsed->trim;
  } else {
    // Whole object: every axis unbounded, resolved by the executor.
    std::vector<Coord> lo((*object)->definition_domain().dim(), kLoUnbounded);
    std::vector<Coord> hi((*object)->definition_domain().dim(), kHiUnbounded);
    Result<MInterval> all = MInterval::Create(std::move(lo), std::move(hi));
    if (!all.ok()) return all.status();
    region = std::move(all).MoveValue();
  }

  RasqlValue value;
  if (parsed->condenser.has_value()) {
    // Push-down: condense tile by tile without materializing the region.
    Result<double> scalar =
        executor_.ExecuteAggregate(*object, region, *parsed->condenser,
                                   stats);
    if (!scalar.ok()) return scalar.status();
    value.scalar = *scalar;
  } else {
    Result<Array> array = executor_.Execute(*object, region, stats);
    if (!array.ok()) return array.status();
    value.array = std::move(array).MoveValue();
  }
  return value;
}

}  // namespace tilestore
