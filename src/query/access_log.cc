#include "query/access_log.h"

#include <fstream>

namespace tilestore {

std::vector<AccessRecord> AccessLog::ToRecords() const {
  std::vector<AccessRecord> records;
  records.reserve(accesses_.size());
  for (const MInterval& region : accesses_) {
    records.push_back(AccessRecord{region, 1});
  }
  return records;
}

Status AccessLog::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const MInterval& region : accesses_) {
    out << region.ToString() << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<AccessLog> AccessLog::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  AccessLog log;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Result<MInterval> region = MInterval::Parse(line);
    if (!region.ok()) {
      return Status::Corruption("bad access log line '" + line +
                                "': " + region.status().message());
    }
    log.Record(region.value());
  }
  return log;
}

}  // namespace tilestore
