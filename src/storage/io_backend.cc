#include "storage/io_backend.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define TILESTORE_HAS_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#endif

namespace tilestore {

namespace {

std::string ErrnoText(const std::string& context, int err) {
  return context + ": " + std::strerror(err);
}

/// Fault injection for ops that bypass `File::ReadAt` (io_uring). The
/// portable backend gets this for free inside `ReadAt`; calling it here
/// keeps the decision point identical across backends.
bool InjectReadFault(const ReadOp& op) {
  FaultInjector* injector = ActiveFaultInjector();
  return injector != nullptr &&
         injector->OnReadAt(op.file->path(), op.offset,
                            static_cast<size_t>(op.size));
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadedPreadBackend

ThreadedPreadBackend::ThreadedPreadBackend(size_t threads)
    : threads_(threads) {}

ThreadedPreadBackend::~ThreadedPreadBackend() = default;

Status ThreadedPreadBackend::SubmitBatch(std::span<ReadOp> ops) {
  const size_t fanout =
      (threads_ > 1 && ops.size() > 1) ? std::min(threads_, ops.size()) : 1;
  if (fanout <= 1) {
    for (ReadOp& op : ops) {
      op.status = op.file->ReadAt(op.offset, static_cast<size_t>(op.size),
                                  op.out);
    }
  } else {
    std::call_once(pool_once_,
                   [this] { pool_ = std::make_unique<ThreadPool>(threads_); });
    TaskGroup group(pool_.get());
    for (size_t t = 0; t < fanout; ++t) {
      group.Run([ops, t, fanout] {
        for (size_t i = t; i < ops.size(); i += fanout) {
          ReadOp& op = ops[i];
          op.status = op.file->ReadAt(op.offset,
                                      static_cast<size_t>(op.size), op.out);
        }
      });
    }
    group.Wait();
  }
  for (const ReadOp& op : ops) {
    if (!op.status.ok()) return op.status;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IoUringBackend

#ifdef TILESTORE_HAS_IO_URING

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

inline unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

inline void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

/// mmap'd ring state; offsets follow the io_uring_setup man page. Newer
/// kernels expose SQ and CQ through one mapping (IORING_FEAT_SINGLE_MMAP).
struct IoUringBackend::Ring {
  int fd = -1;
  unsigned entries = 0;

  void* sq_mmap = nullptr;
  size_t sq_mmap_len = 0;
  void* cq_mmap = nullptr;  // aliases sq_mmap under SINGLE_MMAP
  size_t cq_mmap_len = 0;
  void* sqe_mmap = nullptr;
  size_t sqe_mmap_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;

  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  // Registered-resource fast path (DESIGN.md §10): pre-registered fds
  // (IOSQE_FIXED_FILE skips the per-op fdget/fdput) and a small pool of
  // pre-registered buffer slots (IORING_OP_READ_FIXED skips the per-op
  // page pinning; completions copy out). Both are probe-gated at setup
  // and fall back silently — a run that cannot use them submits as a
  // plain IORING_OP_READ on the raw fd, byte-identically. The
  // TILESTORE_IO_URING_FIXED env var (0/off/false) disables the whole
  // fast path for A/B measurement.
  static constexpr unsigned kBufferSlots = 8;
  static constexpr size_t kSlotBytes = 256 * 1024;
  bool want_fixed = false;         // env override resolved at setup
  bool buffers_registered = false;
  bool files_registered = false;
  bool fixed_broken = false;       // kernel rejected a fixed op: stop trying
  uint32_t free_slots = 0;         // bitmask over kBufferSlots
  std::vector<uint8_t> pool;       // slot storage, pinned while registered
  std::vector<int> registered_files;  // fd table as last registered

  /// (Re)registers the batch's fd set when it changed since the last
  /// batch. A store reads from a handful of long-lived files (page file,
  /// WAL), so this settles after the first batch and subsequent calls are
  /// a sorted compare. Caller holds `mu_` with the ring idle, which makes
  /// the whole-table swap safe.
  void EnsureFilesRegistered(std::span<ReadOp> ops) {
    if (!want_fixed || fixed_broken) return;
    std::vector<int> fds;
    for (const ReadOp& op : ops) {
      const int op_fd = op.file->fd();
      if (std::find(fds.begin(), fds.end(), op_fd) == fds.end()) {
        fds.push_back(op_fd);
      }
    }
    std::sort(fds.begin(), fds.end());
    if (files_registered && fds == registered_files) return;
    // A table this large would churn; fixed files stop paying off anyway.
    if (fds.size() > 64) return;
    if (files_registered) {
      (void)SysIoUringRegister(fd, IORING_UNREGISTER_FILES, nullptr, 0);
      files_registered = false;
      registered_files.clear();
    }
    if (SysIoUringRegister(fd, IORING_REGISTER_FILES, fds.data(),
                           static_cast<unsigned>(fds.size())) == 0) {
      files_registered = true;
      registered_files = std::move(fds);
    } else {
      // Kernel or policy refused; don't retry every batch.
      want_fixed = buffers_registered;
    }
  }

  ~Ring() {
    if (sqe_mmap != nullptr) ::munmap(sqe_mmap, sqe_mmap_len);
    if (cq_mmap != nullptr && cq_mmap != sq_mmap) {
      ::munmap(cq_mmap, cq_mmap_len);
    }
    if (sq_mmap != nullptr) ::munmap(sq_mmap, sq_mmap_len);
    if (fd >= 0) ::close(fd);
  }
};

Result<std::unique_ptr<IoUringBackend>> IoUringBackend::Create(
    unsigned queue_depth) {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int fd = SysIoUringSetup(queue_depth, &params);
  if (fd < 0) {
    return Status::Unavailable(
        ErrnoText("io_uring_setup unavailable", errno));
  }
  auto ring = std::make_unique<Ring>();
  ring->fd = fd;
  ring->entries = params.sq_entries;

  size_t sq_len =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_len =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) sq_len = cq_len = std::max(sq_len, cq_len);

  ring->sq_mmap = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring->sq_mmap == MAP_FAILED) {
    ring->sq_mmap = nullptr;
    return Status::Unavailable(ErrnoText("io_uring sq mmap", errno));
  }
  ring->sq_mmap_len = sq_len;
  if (single_mmap) {
    ring->cq_mmap = ring->sq_mmap;
  } else {
    ring->cq_mmap = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (ring->cq_mmap == MAP_FAILED) {
      ring->cq_mmap = nullptr;
      return Status::Unavailable(ErrnoText("io_uring cq mmap", errno));
    }
  }
  ring->cq_mmap_len = cq_len;

  ring->sqe_mmap_len = params.sq_entries * sizeof(io_uring_sqe);
  ring->sqe_mmap = ::mmap(nullptr, ring->sqe_mmap_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (ring->sqe_mmap == MAP_FAILED) {
    ring->sqe_mmap = nullptr;
    return Status::Unavailable(ErrnoText("io_uring sqe mmap", errno));
  }

  uint8_t* sq_base = static_cast<uint8_t*>(ring->sq_mmap);
  ring->sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  ring->sq_mask =
      *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  ring->sqes = static_cast<io_uring_sqe*>(ring->sqe_mmap);

  uint8_t* cq_base = static_cast<uint8_t*>(ring->cq_mmap);
  ring->cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  ring->cq_mask =
      *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  ring->cqes = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);

  // Registered-buffer pool. Registration can fail for benign reasons
  // (RLIMIT_MEMLOCK on older kernels, seccomp denying io_uring_register);
  // every failure just leaves the plain READ path in place.
  const char* fixed_env = std::getenv("TILESTORE_IO_URING_FIXED");
  ring->want_fixed =
      fixed_env == nullptr ||
      (std::strcmp(fixed_env, "0") != 0 && std::strcmp(fixed_env, "off") != 0 &&
       std::strcmp(fixed_env, "false") != 0);
  if (ring->want_fixed) {
    ring->pool.resize(Ring::kBufferSlots * Ring::kSlotBytes);
    iovec iov[Ring::kBufferSlots];
    for (unsigned i = 0; i < Ring::kBufferSlots; ++i) {
      iov[i].iov_base = ring->pool.data() + i * Ring::kSlotBytes;
      iov[i].iov_len = Ring::kSlotBytes;
    }
    if (SysIoUringRegister(fd, IORING_REGISTER_BUFFERS, iov,
                           Ring::kBufferSlots) == 0) {
      ring->buffers_registered = true;
      ring->free_slots = (1u << Ring::kBufferSlots) - 1;
    } else {
      ring->pool.clear();
      ring->pool.shrink_to_fit();
    }
  }

  return std::unique_ptr<IoUringBackend>(new IoUringBackend(std::move(ring)));
}

bool IoUringBackend::Available() {
  static const bool available = [] {
    auto probe = Create(8);
    return probe.ok();
  }();
  return available;
}

IoUringBackend::IoUringBackend(std::unique_ptr<Ring> ring)
    : ring_(std::move(ring)) {}

IoUringBackend::~IoUringBackend() = default;

bool IoUringBackend::fixed_buffers_active() const {
  return ring_->want_fixed && ring_->buffers_registered &&
         !ring_->fixed_broken;
}

Status IoUringBackend::SubmitBatch(std::span<ReadOp> ops) {
  // Resolve injected faults and oversized ops before touching the ring so
  // `user_data` can stay a plain index into `ops`.
  std::vector<uint8_t> skip(ops.size(), 0);
  size_t completed = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    ReadOp& op = ops[i];
    if (InjectReadFault(op)) {
      op.status =
          Status::IOError("injected read failure on " + op.file->path());
      skip[i] = 1;
      ++completed;
    } else if (op.size > (1u << 30)) {
      // SQE lengths are u32; anything this large is not a tile run anyway.
      op.status =
          op.file->ReadAt(op.offset, static_cast<size_t>(op.size), op.out);
      skip[i] = 1;
      ++completed;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  Ring& ring = *ring_;
  ring.EnsureFilesRegistered(ops);
  // Which registered-buffer slot each op read into (-1 = direct into
  // op.out), and whether the op went through any fixed-resource path (so
  // a kernel rejection can fall back to ReadAt instead of failing).
  std::vector<int8_t> slot_of(ops.size(), -1);
  std::vector<uint8_t> fastpath(ops.size(), 0);
  size_t next = 0;  // next op to place into the ring
  while (completed < ops.size()) {
    // Fill available SQ slots.
    unsigned head = LoadAcquire(ring.sq_head);
    unsigned tail = *ring.sq_tail;  // single submitter under mu_
    unsigned filled = 0;
    while (next < ops.size() && (tail - head) < ring.entries) {
      if (skip[next] != 0) {
        ++next;
        continue;
      }
      const ReadOp& op = ops[next];
      const unsigned idx = tail & ring.sq_mask;
      io_uring_sqe* sqe = &ring.sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      const bool fixed_ok = ring.want_fixed && !ring.fixed_broken;
      // READ_FIXED from a free pre-registered slot when the run fits;
      // larger runs (or slot exhaustion mid-batch) take the plain path.
      int slot = -1;
      if (fixed_ok && ring.buffers_registered &&
          op.size <= Ring::kSlotBytes && ring.free_slots != 0) {
        slot = __builtin_ctz(ring.free_slots);
        ring.free_slots &= ~(1u << slot);
      }
      if (slot >= 0) {
        sqe->opcode = IORING_OP_READ_FIXED;
        sqe->addr = reinterpret_cast<uint64_t>(
            ring.pool.data() + static_cast<size_t>(slot) * Ring::kSlotBytes);
        sqe->buf_index = static_cast<uint16_t>(slot);
        fastpath[next] = 1;
      } else {
        sqe->opcode = IORING_OP_READ;
        sqe->addr = reinterpret_cast<uint64_t>(op.out);
      }
      slot_of[next] = static_cast<int8_t>(slot);
      // Pre-registered fd index when this file is in the fixed table.
      int fd_index = -1;
      if (fixed_ok && ring.files_registered) {
        const auto it = std::find(ring.registered_files.begin(),
                                  ring.registered_files.end(),
                                  op.file->fd());
        if (it != ring.registered_files.end()) {
          fd_index =
              static_cast<int>(it - ring.registered_files.begin());
        }
      }
      if (fd_index >= 0) {
        sqe->fd = fd_index;
        sqe->flags |= IOSQE_FIXED_FILE;
        fastpath[next] = 1;
      } else {
        sqe->fd = op.file->fd();
      }
      sqe->len = static_cast<uint32_t>(op.size);
      sqe->off = op.offset;
      sqe->user_data = next;
      ring.sq_array[idx] = idx;
      ++tail;
      ++filled;
      ++next;
    }
    StoreRelease(ring.sq_tail, tail);

    const unsigned outstanding =
        static_cast<unsigned>(ops.size() - completed);
    const int ret = SysIoUringEnter(ring.fd, filled, outstanding,
                                    IORING_ENTER_GETEVENTS);
    if (ret < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      // The ring is wedged; fail every op still outstanding.
      const Status err = Status::IOError(ErrnoText("io_uring_enter", errno));
      for (size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].status.ok() && skip[i] == 0) ops[i].status = err;
      }
      return err;
    }

    // Drain completions.
    unsigned chead = LoadAcquire(ring.cq_head);
    const unsigned ctail = LoadAcquire(ring.cq_tail);
    while (chead != ctail) {
      const io_uring_cqe& cqe = ring.cqes[chead & ring.cq_mask];
      ReadOp& op = ops[cqe.user_data];
      const int32_t res = cqe.res;
      const int slot = slot_of[cqe.user_data];
      // A slot read lands in the registered pool; copy what arrived out
      // to the caller's buffer before the slot is recycled.
      if (slot >= 0 && res > 0) {
        std::memcpy(op.out,
                    ring.pool.data() +
                        static_cast<size_t>(slot) * Ring::kSlotBytes,
                    std::min<size_t>(static_cast<size_t>(res),
                                     static_cast<size_t>(op.size)));
      }
      if (slot >= 0) ring.free_slots |= 1u << slot;
      if (res < 0 && fastpath[cqe.user_data] != 0 &&
          (res == -EINVAL || res == -EOPNOTSUPP || res == -EBADF)) {
        // The kernel rejected the fixed-resource form of this read (old
        // kernel, racing table swap): silent fallback, and stop offering
        // the fast path so the batch doesn't pay a rejection per op.
        ring.fixed_broken = true;
        op.status =
            op.file->ReadAt(op.offset, static_cast<size_t>(op.size), op.out);
      } else if (res < 0) {
        op.status = Status::IOError(
            ErrnoText("io_uring read " + op.file->path(), -res));
      } else if (res == 0) {
        op.status = Status::IOError("short read at offset " +
                                    std::to_string(op.offset) + " of " +
                                    op.file->path());
      } else if (static_cast<uint64_t>(res) < op.size) {
        // Partial completion (EOF mid-run reads 0 next and errors the same
        // way the pread loop does).
        op.status = op.file->ReadAt(op.offset + static_cast<uint64_t>(res),
                                    static_cast<size_t>(op.size - res),
                                    op.out + res);
      } else {
        op.status = Status::OK();
      }
      ++chead;
      ++completed;
    }
    StoreRelease(ring.cq_head, chead);
  }

  for (const ReadOp& op : ops) {
    if (!op.status.ok()) return op.status;
  }
  return Status::OK();
}

#else  // !TILESTORE_HAS_IO_URING

struct IoUringBackend::Ring {};

Result<std::unique_ptr<IoUringBackend>> IoUringBackend::Create(unsigned) {
  return Status::Unimplemented("io_uring is Linux-only");
}

bool IoUringBackend::Available() { return false; }

IoUringBackend::IoUringBackend(std::unique_ptr<Ring> ring)
    : ring_(std::move(ring)) {}

IoUringBackend::~IoUringBackend() = default;

bool IoUringBackend::fixed_buffers_active() const { return false; }

Status IoUringBackend::SubmitBatch(std::span<ReadOp>) {
  return Status::Unimplemented("io_uring is Linux-only");
}

#endif  // TILESTORE_HAS_IO_URING

// ---------------------------------------------------------------------------
// Selection

Result<std::unique_ptr<IoBackend>> MakeIoBackend(const std::string& name) {
  const size_t default_threads = std::min<size_t>(
      4, std::max<size_t>(1, std::thread::hardware_concurrency()));
  if (name == "pread" || name == "threaded" || name == "threaded_pread") {
    return std::unique_ptr<IoBackend>(
        new ThreadedPreadBackend(default_threads));
  }
  if (name == "uring" || name == "io_uring") {
    auto made = IoUringBackend::Create();
    if (!made.ok()) return made.status();
    return std::unique_ptr<IoBackend>(std::move(made).MoveValue());
  }
  if (name.empty() || name == "auto") {
    if (auto made = IoUringBackend::Create(); made.ok()) {
      return std::unique_ptr<IoBackend>(std::move(made).MoveValue());
    }
    return std::unique_ptr<IoBackend>(
        new ThreadedPreadBackend(default_threads));
  }
  return Status::InvalidArgument(
      "unknown io backend \"" + name +
      "\" (expected pread, io_uring, or auto)");
}

IoBackend* DefaultIoBackend() {
  // Leaked singleton: backends are stateless apart from kernel resources
  // that the OS reclaims, and stores opened at any point may hold the
  // pointer until process exit.
  static IoBackend* backend = [] {
    const char* env = std::getenv("TILESTORE_IO_BACKEND");
    const std::string choice = env != nullptr ? env : "auto";
    auto made = MakeIoBackend(choice);
    if (!made.ok()) {
      std::fprintf(stderr,
                   "tilestore: io backend \"%s\" unavailable (%s); using "
                   "threaded pread\n",
                   choice.c_str(), made.status().ToString().c_str());
      made = MakeIoBackend("pread");
    }
    return made->release();
  }();
  return backend;
}

}  // namespace tilestore
