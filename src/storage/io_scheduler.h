#ifndef TILESTORE_STORAGE_IO_SCHEDULER_H_
#define TILESTORE_STORAGE_IO_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/cell_type.h"
#include "core/tile.h"
#include "index/tile_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/blob_store.h"

namespace tilestore {

class TileCache;

/// Execution options for one batched fetch.
struct TileIOOptions {
  /// Tiles decoded concurrently. 1 reproduces the serial paper-exact read
  /// path bit for bit (same storage calls in the same order, same
  /// disk-model charges). Values > 1 require `pool`.
  int parallelism = 1;
  /// Worker pool for parallel decode/composition; ignored at
  /// `parallelism = 1`.
  ThreadPool* pool = nullptr;
  /// Trace sink for per-tile "tile_fetch"/"tile_decode" spans (emitted on
  /// whichever thread processes the tile). Null disables tracing.
  obs::TraceRing* trace = nullptr;
  /// Trace id grouping this batch's spans with the enclosing query.
  uint64_t trace_id = 0;

  // --- FetchBatchShared only (ignored by FetchBatch) ---

  /// Decoded-tile cache consulted before any BLOB read. Inactive when
  /// null, disabled (capacity 0), or `cache_object_id` is 0.
  TileCache* cache = nullptr;
  /// The owning object's cache epoch (`MDDObject::cache_id`); 0 means the
  /// object is not cacheable.
  uint64_t cache_object_id = 0;
  /// Whether misses populate the cache (lookups happen regardless). Off
  /// for scans that should not wipe a working set.
  bool cache_populate = true;
  /// When set and `encoded_filter(i)` is true, entry `i` skips decode
  /// entirely: the raw (compressed) BLOB bytes go to `consume_encoded`
  /// instead of `consume`, and the cache is neither consulted for a
  /// populate nor populated. Cache hits still win over the encoded path —
  /// a decoded tile in memory beats re-walking the stream.
  std::function<bool(size_t)> encoded_filter;
  std::function<Status(size_t, const std::vector<uint8_t>&)> consume_encoded;
};

/// Accounting for one batched fetch, feeding the `QueryStats` breakdown of
/// coalesced runs and wall-clock vs summed retrieval time.
struct TileIOStats {
  uint64_t tiles = 0;
  /// Decoded payload bytes over all tiles.
  uint64_t tile_bytes = 0;
  /// Coalesced physical read runs issued (0 on the serial path, which
  /// reads page by page exactly like the original implementation).
  uint64_t coalesced_runs = 0;
  /// BLOB chains that were not consecutive on disk and fell back to
  /// pointer walking.
  uint64_t chain_fallbacks = 0;
  /// Header reads merged into a neighbouring BLOB's physical run inside
  /// one `GetBatch` wave (see `BlobReadStats::cross_object_coalesced`).
  uint64_t cross_object_coalesced = 0;
  /// Tiles served from the decoded-tile cache (no BLOB read, no decode).
  /// Hits are still counted in `tiles`/`tile_bytes` — a query's traffic
  /// totals must not depend on cache state — but contribute nothing to the
  /// measured io/decode times.
  uint64_t cache_hits = 0;
  /// Per-tile retrieval time summed across tiles (exceeds the wall clock
  /// when tiles are fetched concurrently).
  double io_summed_ms = 0;
  /// Per-tile decode + consume time summed across tiles.
  double decode_summed_ms = 0;
  /// End-to-end wall clock of the batch.
  double wall_ms = 0;

  void Add(const TileIOStats& other);
};

/// \brief Batched tile retrieval: the storage-side engine behind range
/// queries and tile scans.
///
/// A batch of tile BLOB requests is sorted into physical page order
/// (ascending BLOB id — BLOBs are allocated front to back, so this is disk
/// order) and, with `parallelism > 1`, submitted as *one*
/// `BlobStore::GetBatch` so every miss span of the whole query is handed
/// to the page file's `IoBackend` in a single batch (io_uring keeps them
/// in flight concurrently; the portable backend fans them over a small
/// pool). Decode + composition then overlap across tiles on a fixed
/// worker pool. Disk-model charges are replayed inside `GetBatch` in
/// sorted-id order, so `model_ms`/seek accounting is identical to a
/// sequential coalesced loop — and independent of the backend. At
/// `parallelism = 1` the scheduler degrades to the exact tile-at-a-time
/// loop of the original implementation, which keeps the paper's
/// t_o/t_cpu cost tables reproducible.
/// Observability: with an attached registry (`set_metrics`), batches and
/// tiles are counted under `scheduler.*`, the `scheduler.queue_depth`
/// gauge tracks tiles admitted but not yet consumed, and histograms record
/// tiles per batch (`scheduler.batch_tiles`) and measured per-tile fetch
/// latency (`scheduler.fetch_ms`). Tracing is per batch via
/// `TileIOOptions::trace`.
class TileIOScheduler {
 public:
  explicit TileIOScheduler(BlobStore* blobs) : blobs_(blobs) {}

  /// Attaches a metrics registry (`scheduler.*`); nullptr detaches.
  /// Attach before sharing the scheduler across threads.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Fetches and decodes every entry of the batch, handing each tile to
  /// `consume(i, tile)` where `i` indexes into `entries`. Tiles are
  /// processed in ascending BLOB-id order; with `parallelism > 1`,
  /// `consume` runs on worker threads and must be safe for concurrent
  /// invocations with distinct `i` (invocations with the same `i` never
  /// happen). The first error aborts the batch and is returned.
  Status FetchBatch(std::span<const TileEntry> entries, CellType cell_type,
                    const TileIOOptions& options,
                    const std::function<Status(size_t, Tile&&)>& consume,
                    TileIOStats* stats = nullptr);

  /// Cache-aware sibling of `FetchBatch`: tiles are handed out as
  /// `const Tile&` so one decoded copy can be shared between the consumer
  /// and the decoded-tile cache (`options.cache`). Per entry, in order of
  /// preference: cache hit (no BLOB read, no decode, not re-inserted),
  /// encoded fast path (`options.encoded_filter`/`consume_encoded`: raw
  /// BLOB bytes, no decode, never cached), or fetch + decode with an
  /// optional cache populate. Ordering, parallelism, error, and metrics
  /// semantics match `FetchBatch`; cache hits skip the measured
  /// `scheduler.fetch_ms` histogram. The referenced tile is only valid for
  /// the duration of the `consume` call — copy or reduce, don't keep the
  /// pointer.
  Status FetchBatchShared(std::span<const TileEntry> entries,
                          CellType cell_type, const TileIOOptions& options,
                          const std::function<Status(size_t, const Tile&)>&
                              consume,
                          TileIOStats* stats = nullptr);

  /// Asynchronous single-tile fetch, the building block of the
  /// `TileScan` prefetch window. With a pool the work runs on a worker and
  /// the returned future completes when the tile is decoded; without one
  /// the fetch happens inline and the future is already ready.
  std::future<Result<Tile>> FetchAsync(const TileEntry& entry,
                                       CellType cell_type, ThreadPool* pool);

  /// The serial decode pipeline (BLOB read, selective decompression, tile
  /// construction) — shared by both paths and by `MDDObject::FetchTile`.
  /// `coalesce` selects the speculative run-coalesced BLOB read.
  Result<Tile> FetchOne(const TileEntry& entry, CellType cell_type,
                        bool coalesce, TileIOStats* stats);

 private:
  /// Decode half of `FetchOne`: selective decompression + tile
  /// construction from an already-read BLOB payload. Used by the batched
  /// parallel path, where the I/O happened in one `GetBatch` up front.
  Result<Tile> DecodePayload(const TileEntry& entry, CellType cell_type,
                             std::vector<uint8_t>&& data, TileIOStats* stats);

  BlobStore* blobs_;

  // Registry metrics (null when no registry is attached).
  struct {
    obs::Counter* batches = nullptr;
    obs::Counter* tiles = nullptr;
    obs::Counter* coalesced_runs = nullptr;
    obs::Counter* chain_fallbacks = nullptr;
    obs::Counter* cross_object_coalesced = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* batch_tiles = nullptr;
    obs::Histogram* fetch_ms = nullptr;
  } metrics_;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_IO_SCHEDULER_H_
