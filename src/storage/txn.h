#ifndef TILESTORE_STORAGE_TXN_H_
#define TILESTORE_STORAGE_TXN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace tilestore {

class BufferPool;

/// \brief The staged effects of one in-flight transaction.
///
/// A no-steal design: nothing reaches the data file while the transaction
/// runs. Page writes and free-list link updates accumulate here in
/// operation order; the buffer pool overlays staged pages on reads
/// (read-your-writes) and the page file answers free-list probes from the
/// staged links. At commit the operations are WAL-logged, fsynced, and
/// only then applied to the file — in the same order, so "last write
/// wins" semantics survive replay.
class TransactionContext {
 public:
  struct Op {
    WalRecordType kind;            // kPageImage or kFreeLink
    PageId page = kInvalidPageId;
    PageId next = kInvalidPageId;  // kFreeLink
    std::vector<uint8_t> image;    // kPageImage
  };

  TransactionContext(uint64_t id, PageFileMeta meta_at_begin)
      : id_(id), meta_at_begin_(meta_at_begin) {}

  uint64_t id() const { return id_; }
  const PageFileMeta& meta_at_begin() const { return meta_at_begin_; }
  const std::vector<Op>& ops() const { return ops_; }
  size_t staged_pages() const { return latest_image_.size(); }

  /// Stages the full post-write image of `page`.
  void StagePageImage(PageId page, const uint8_t* data, size_t n);

  /// Copies the latest staged image of `page` into `out`; false if the
  /// page has no staged image.
  bool ReadStagedPage(PageId page, uint8_t* out) const;

  bool HasStagedPage(PageId page) const {
    return latest_image_.count(page) > 0;
  }

  /// True if any page in [first, first+count) has a staged image.
  bool HasStagedInRange(PageId first, uint64_t count) const;

  /// Stages a free-list link update for `page`.
  void StageFreeLink(PageId page, PageId next);

  /// Reads back a staged link (the page file consults this when the
  /// allocator pops a page freed inside this same transaction).
  bool StagedFreeLink(PageId page, PageId* next) const;

 private:
  uint64_t id_;
  PageFileMeta meta_at_begin_;
  std::vector<Op> ops_;
  // page -> index into ops_ of its newest staged image.
  std::unordered_map<PageId, size_t> latest_image_;
  std::unordered_map<PageId, PageId> free_links_;
};

/// \brief Owns the transaction lifecycle: Begin / Commit / Abort plus the
/// checkpoint that truncates the log.
///
/// Single-writer, like the rest of the mutation path: one transaction is
/// active at a time. `Commit` is the group-commit boundary — all staged
/// operations of the transaction are appended to the WAL, one fsync makes
/// them durable, and only then are they applied to the page file (through
/// the buffer pool, so the cache warms exactly as the unlogged
/// write-through path would). `Abort` discards the staging and restores
/// the Begin-time allocation metadata.
///
/// If applying a durably committed transaction fails half-way the manager
/// poisons itself: further Begins are refused and the store must be
/// reopened, which replays the WAL and completes the commit.
///
/// Observability: commit/abort/checkpoint counts live in the attached
/// `obs::MetricsRegistry` under `txn.*` (the `commits()`/`checkpoints()`
/// accessors are shims reading those counters), plus a `txn.commit_ops`
/// histogram of staged operations per commit (the group-commit batch
/// size) and a `txn.checkpoint_ms` histogram of measured checkpoint
/// durations. Without an attached registry the manager owns a private
/// one, so standalone managers behave identically.
class TxnManager {
 public:
  /// `checkpoint_threshold_bytes`: WAL size after which Commit triggers an
  /// automatic checkpoint (0 disables automatic checkpoints).
  TxnManager(PageFile* file, BufferPool* pool, WriteAheadLog* wal,
             uint64_t checkpoint_threshold_bytes,
             obs::MetricsRegistry* metrics = nullptr);

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// The in-flight transaction, or nullptr. Safe to call from reader
  /// threads (the pointer is published atomically).
  TransactionContext* active() const {
    return active_raw_.load(std::memory_order_acquire);
  }
  bool in_txn() const { return active() != nullptr; }
  bool poisoned() const { return poisoned_; }

  Status Begin();
  Status Commit();
  Status Abort();

  /// Syncs data, persists the superblock at the current durable LSN, and
  /// truncates the WAL. Refused while a transaction is active.
  Status CheckpointNow();

  WriteAheadLog* wal() const { return wal_; }
  uint64_t commits() const { return commits_->Value(); }
  uint64_t checkpoints() const { return checkpoints_->Value(); }
  uint64_t aborts() const { return aborts_->Value(); }

 private:
  Status ApplyOps(const std::vector<TransactionContext::Op>& ops);

  PageFile* file_;
  BufferPool* pool_;
  WriteAheadLog* wal_;
  uint64_t checkpoint_threshold_;
  // Private fallback when no registry is attached at construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* commits_;
  obs::Counter* aborts_;
  obs::Counter* checkpoints_;
  obs::Histogram* commit_ops_;
  obs::Histogram* checkpoint_ms_;
  std::unique_ptr<TransactionContext> active_;
  std::atomic<TransactionContext*> active_raw_{nullptr};
  uint64_t next_txn_id_ = 1;
  uint64_t last_durable_lsn_ = 0;
  bool poisoned_ = false;
};

/// \brief RAII autocommit helper: begins a transaction unless one is
/// already active (in which case the work joins it), commits on `Commit`,
/// aborts on destruction if neither happened. With a null manager every
/// operation is a no-op — the unlogged write-through path.
class ScopedTxn {
 public:
  explicit ScopedTxn(TxnManager* txns);
  ~ScopedTxn();
  ScopedTxn(const ScopedTxn&) = delete;
  ScopedTxn& operator=(const ScopedTxn&) = delete;

  /// Status of the implicit Begin; check before doing staged work.
  const Status& begin_status() const { return begin_status_; }

  /// Commits iff this guard opened the transaction (joined transactions
  /// commit at their owner's boundary).
  Status Commit();

 private:
  TxnManager* txns_;
  Status begin_status_;
  bool owner_ = false;
  bool done_ = false;
};

/// Replays every committed transaction in the WAL whose LSN is past the
/// page file's checkpoint LSN. Idempotent: page images and free links are
/// raw physical writes and the commit metadata snapshot is authoritative.
/// Returns the number of transactions applied and leaves `*max_lsn` at
/// the highest LSN seen (0 when the log is empty).
Result<uint64_t> RecoverFromWal(PageFile* file, const std::string& wal_path,
                                uint64_t* max_lsn);

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_TXN_H_
