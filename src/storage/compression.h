#ifndef TILESTORE_STORAGE_COMPRESSION_H_
#define TILESTORE_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tilestore {

/// Compression codecs for tile BLOBs. Section 8 of the paper: "The
/// RasDaMan storage manager also supports selective compression of blocks
/// ..., two important features when supporting sparse data."
///
/// `kRle` is a byte-wise run-length codec — simple, deterministic and very
/// effective on sparse arrays where long runs of the default cell value
/// dominate. `kNone` stores bytes verbatim.
enum class Compression : uint8_t {
  kNone = 0,
  kRle = 1,
};

std::string_view CompressionToString(Compression compression);

/// Compresses `data` with the given codec. The output of `kNone` is the
/// input itself. RLE output may be larger than the input on random data —
/// callers wanting *selective* compression should use
/// `CompressIfSmaller`.
std::vector<uint8_t> Compress(Compression compression,
                              const std::vector<uint8_t>& data);

/// Decompresses `data` produced by `Compress(compression, ...)`.
/// `expected_size` is the known uncompressed size (tiles always know it
/// from their domain); a mismatch yields Corruption.
Result<std::vector<uint8_t>> Decompress(Compression compression,
                                        const std::vector<uint8_t>& data,
                                        size_t expected_size);

/// Selective compression (the paper's "selective compression of blocks"):
/// compresses with `preferred` but falls back to `kNone` when the codec
/// does not actually shrink the data. Returns the codec actually used and
/// stores the bytes in `*out`.
Compression CompressIfSmaller(Compression preferred,
                              const std::vector<uint8_t>& data,
                              std::vector<uint8_t>* out);

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_COMPRESSION_H_
