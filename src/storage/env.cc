#include "storage/env.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace tilestore {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

std::atomic<FaultInjector*> g_fault_injector{nullptr};

Status PwriteFully(int fd, const std::string& path, uint64_t offset,
                   const uint8_t* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::pwrite(fd, data + done, n - done,
                                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pwrite " + path));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

}  // namespace

void SetFaultInjector(FaultInjector* injector) {
  g_fault_injector.store(injector, std::memory_order_release);
}

FaultInjector* ActiveFaultInjector() {
  return g_fault_injector.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// ScriptedFaultInjector

void ScriptedFaultInjector::set_path_filter(std::string substr) {
  std::lock_guard<std::mutex> lock(mu_);
  filter_ = std::move(substr);
}

void ScriptedFaultInjector::FailWritesAfter(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  write_budget_ = budget;
}

void ScriptedFaultInjector::FailSyncAt(uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_sync_at_ = nth;
}

void ScriptedFaultInjector::FailAllSyncs() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_all_syncs_ = true;
}

std::vector<ScriptedFaultInjector::WriteEvent> ScriptedFaultInjector::writes()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t ScriptedFaultInjector::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t ScriptedFaultInjector::syncs_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_;
}

bool ScriptedFaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

bool ScriptedFaultInjector::Matches(const std::string& path) const {
  return filter_.empty() || path.find(filter_) != std::string::npos;
}

FaultInjector::WriteDecision ScriptedFaultInjector::OnWriteAt(
    const std::string& path, uint64_t offset, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Matches(path)) return {n, false};
  if (crashed_) return {0, true};
  if (bytes_ + n > write_budget_) {
    const size_t allowed = static_cast<size_t>(write_budget_ - bytes_);
    bytes_ = write_budget_;
    crashed_ = true;
    return {allowed, true};
  }
  bytes_ += n;
  events_.push_back(WriteEvent{path, offset, n});
  return {n, false};
}

bool ScriptedFaultInjector::OnSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Matches(path)) return false;
  if (crashed_) return true;
  ++syncs_;
  if (fail_all_syncs_) return true;
  if (fail_sync_at_ != 0 && syncs_ >= fail_sync_at_) {
    crashed_ = true;
    return true;
  }
  return false;
}

bool ScriptedFaultInjector::OnTruncate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return Matches(path) && crashed_;
}

// ---------------------------------------------------------------------------
// File

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_EXCL;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (create && errno == EEXIST) {
      return Status::AlreadyExists("file already exists: " + path);
    }
    if (!create && errno == ENOENT) {
      return Status::NotFound("file not found: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<File>(new File(path, fd));
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Status File::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  if (FaultInjector* injector = ActiveFaultInjector()) {
    if (injector->OnReadAt(path_, offset, n)) {
      return Status::IOError("injected read failure on " + path_);
    }
  }
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, out + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pread " + path_));
    }
    if (got == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " of " + path_);
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status File::WriteAt(uint64_t offset, const uint8_t* data, size_t n) {
  if (FaultInjector* injector = ActiveFaultInjector()) {
    const FaultInjector::WriteDecision d = injector->OnWriteAt(path_, offset, n);
    if (d.fail) {
      // Torn write: persist the allowed prefix, then fail as a crash would.
      if (d.allowed > 0) (void)PwriteFully(fd_, path_, offset, data, d.allowed);
      return Status::IOError("injected write failure on " + path_);
    }
  }
  return PwriteFully(fd_, path_, offset, data, n);
}

Status File::Sync() {
  if (FaultInjector* injector = ActiveFaultInjector()) {
    if (injector->OnSync(path_)) {
      return Status::IOError("injected fsync failure on " + path_);
    }
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync " + path_));
  }
  return Status::OK();
}

Status File::Truncate(uint64_t size) {
  if (FaultInjector* injector = ActiveFaultInjector()) {
    if (injector->OnTruncate(path_)) {
      return Status::IOError("injected truncate failure on " + path_);
    }
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate " + path_));
  }
  return Status::OK();
}

Result<uint64_t> File::Size() const {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Status::IOError(ErrnoMessage("lseek " + path_));
  return static_cast<uint64_t>(end);
}

Result<std::unique_ptr<FileLock>> FileLock::Acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open lock file " + path));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK) {
      return Status::Unavailable("database is locked by another process (" +
                                 path + ")");
    }
    errno = err;
    return Status::IOError(ErrnoMessage("flock " + path));
  }
  return std::unique_ptr<FileLock>(new FileLock(path, fd));
}

FileLock::~FileLock() {
  // Closing the descriptor releases the flock; the sidecar file stays.
  if (fd_ >= 0) {
    (void)::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

}  // namespace tilestore
