#include "storage/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tilestore {

namespace {
std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}
}  // namespace

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_EXCL;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (create && errno == EEXIST) {
      return Status::AlreadyExists("file already exists: " + path);
    }
    if (!create && errno == ENOENT) {
      return Status::NotFound("file not found: " + path);
    }
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<File>(new File(path, fd));
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Status File::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, out + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pread " + path_));
    }
    if (got == 0) {
      return Status::IOError("short read at offset " + std::to_string(offset) +
                             " of " + path_);
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status File::WriteAt(uint64_t offset, const uint8_t* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::pwrite(fd_, data + done, n - done,
                                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pwrite " + path_));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

Status File::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync " + path_));
  }
  return Status::OK();
}

Result<uint64_t> File::Size() const {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Status::IOError(ErrnoMessage("lseek " + path_));
  return static_cast<uint64_t>(end);
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

}  // namespace tilestore
