#include "storage/page_file.h"

#include <cstring>
#include <vector>

namespace tilestore {

namespace {

constexpr uint32_t kMagic = 0x54535046;  // "TSPF"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kMinPageSize = 512;

// Superblock layout (all little-endian, at file offset 0):
//   u32 magic, u32 version, u32 page_size, u32 reserved,
//   u64 page_count, u64 free_head, u64 free_count, u64 user_root
constexpr size_t kSuperblockBytes = 4 * 4 + 4 * 8;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   uint32_t page_size) {
  if (page_size < kMinPageSize || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "page size must be a power of two >= " + std::to_string(kMinPageSize));
  }
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/true);
  if (!file.ok()) return file.status();
  std::unique_ptr<PageFile> pf(
      new PageFile(std::move(file).MoveValue(), page_size));
  Status st = pf->WriteSuperblock();
  if (!st.ok()) return st;
  return pf;
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/false);
  if (!file.ok()) return file.status();
  std::unique_ptr<PageFile> pf(
      new PageFile(std::move(file).MoveValue(), kDefaultPageSize));
  Status st = pf->ReadSuperblock();
  if (!st.ok()) return st;
  return pf;
}

PageFile::~PageFile() {
  // Best-effort superblock persistence; callers needing durability must
  // Flush() and check the status.
  (void)WriteSuperblock();
}

Status PageFile::WriteSuperblock() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  uint8_t buf[kSuperblockBytes];
  PutU32(buf + 0, kMagic);
  PutU32(buf + 4, kVersion);
  PutU32(buf + 8, page_size_);
  PutU32(buf + 12, 0);
  PutU64(buf + 16, page_count_.load(std::memory_order_relaxed));
  PutU64(buf + 24, free_head_);
  PutU64(buf + 32, free_count_.load(std::memory_order_relaxed));
  PutU64(buf + 40, user_root_);
  return file_->WriteAt(0, buf, sizeof(buf));
}

Status PageFile::ReadSuperblock() {
  uint8_t buf[kSuperblockBytes];
  Status st = file_->ReadAt(0, sizeof(buf), buf);
  if (!st.ok()) return st;
  if (GetU32(buf + 0) != kMagic) {
    return Status::Corruption("bad page file magic in " + file_->path());
  }
  if (GetU32(buf + 4) != kVersion) {
    return Status::Corruption("unsupported page file version in " +
                              file_->path());
  }
  page_size_ = GetU32(buf + 8);
  if (page_size_ < kMinPageSize || (page_size_ & (page_size_ - 1)) != 0) {
    return Status::Corruption("corrupt page size in " + file_->path());
  }
  page_count_.store(GetU64(buf + 16), std::memory_order_release);
  free_head_ = GetU64(buf + 24);
  free_count_.store(GetU64(buf + 32), std::memory_order_release);
  user_root_ = GetU64(buf + 40);
  if (page_count_.load(std::memory_order_relaxed) == 0) {
    return Status::Corruption("corrupt page count in " + file_->path());
  }
  return Status::OK();
}

Status PageFile::ValidatePageId(PageId id) const {
  if (id == kInvalidPageId || id >= page_count()) {
    return Status::InvalidArgument("page id " + std::to_string(id) +
                                   " out of range (page count " +
                                   std::to_string(page_count()) + ")");
  }
  return Status::OK();
}

Status PageFile::ValidatePageRun(PageId first, uint64_t count) const {
  if (count == 0) return Status::InvalidArgument("empty page run");
  if (first == kInvalidPageId || first + count > page_count()) {
    return Status::InvalidArgument(
        "page run [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") out of range (page count " +
        std::to_string(page_count()) + ")");
  }
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (free_head_ != kInvalidPageId) {
    const PageId id = free_head_;
    uint8_t next[8];
    Status st = file_->ReadAt(id * page_size_, sizeof(next), next);
    if (!st.ok()) return st;
    free_head_ = GetU64(next);
    free_count_.fetch_sub(1, std::memory_order_acq_rel);
    return id;
  }
  return page_count_.fetch_add(1, std::memory_order_acq_rel);
}

Status PageFile::FreePage(PageId id) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  std::lock_guard<std::mutex> lock(meta_mu_);
  uint8_t next[8];
  PutU64(next, free_head_);
  st = file_->WriteAt(id * page_size_, next, sizeof(next));
  if (!st.ok()) return st;
  free_head_ = id;
  free_count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status PageFile::ReadPage(PageId id, uint8_t* out) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  st = file_->ReadAt(id * page_size_, page_size_, out);
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) disk_model_->OnRead(id, page_size_);
  return Status::OK();
}

Status PageFile::ReadRun(PageId first, uint64_t count, uint8_t* out) {
  Status st = ValidatePageRun(first, count);
  if (!st.ok()) return st;
  st = file_->ReadAt(first * page_size_,
                     static_cast<size_t>(count) * page_size_, out);
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) {
    disk_model_->OnReadRun(first, count,
                           static_cast<size_t>(count) * page_size_);
  }
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const uint8_t* data) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  st = file_->WriteAt(id * page_size_, data, page_size_);
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) disk_model_->OnWrite(id, page_size_);
  return Status::OK();
}

Status PageFile::Flush() {
  Status st = WriteSuperblock();
  if (!st.ok()) return st;
  return file_->Sync();
}

}  // namespace tilestore
