#include "storage/page_file.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/checksum.h"
#include "storage/txn.h"

namespace tilestore {

namespace {

constexpr uint32_t kMagic = 0x54535046;       // "TSPF"
constexpr uint32_t kVersion = 2;
constexpr uint32_t kTableMagic = 0x5453434b;  // "TSCK"
constexpr uint32_t kMinPageSize = 512;

// Superblock copy layout (little-endian):
//   u32 magic, u32 version, u32 page_size, u32 reserved,
//   u64 page_count, u64 free_head, u64 free_count, u64 user_root,
//   u64 epoch, u64 checkpoint_lsn, u64 crc_table_offset_pages,
//   u32 crc32c (over everything before it)
constexpr size_t kSuperblockBytes = 4 * 4 + 7 * 8 + 4;
static_assert(PageFile::kBackupSuperblockOffset + kSuperblockBytes <=
                  kMinPageSize,
              "both superblock copies must fit in the smallest page");

// Checksum table header: u32 magic, u32 reserved, u64 count, then
// u32 crc-per-page entries and a trailing u32 crc of the whole image.
constexpr size_t kTableHeaderBytes = 4 + 4 + 8;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   uint32_t page_size) {
  if (page_size < kMinPageSize || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument(
        "page size must be a power of two >= " + std::to_string(kMinPageSize));
  }
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/true);
  if (!file.ok()) return file.status();
  std::unique_ptr<PageFile> pf(
      new PageFile(std::move(file).MoveValue(), page_size));
  pf->crcs_.resize(1, 0);
  std::lock_guard<std::mutex> lock(pf->meta_mu_);
  Status st = pf->WriteSuperblockAtLocked(kBackupSuperblockOffset);
  if (!st.ok()) return st;
  st = pf->WriteSuperblockAtLocked(0);
  if (!st.ok()) return st;
  return pf;
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/false);
  if (!file.ok()) return file.status();
  std::unique_ptr<PageFile> pf(
      new PageFile(std::move(file).MoveValue(), kDefaultPageSize));
  Status st = pf->ReadSuperblock();
  if (!st.ok()) return st;
  return pf;
}

PageFile::~PageFile() {
  // Best-effort superblock persistence; callers needing durability must
  // Flush()/Checkpoint() and check the status. Only the primary copy is
  // touched so a crash mid-write still leaves the backup intact.
  std::lock_guard<std::mutex> lock(meta_mu_);
  (void)WriteSuperblockAtLocked(0);
}

Status PageFile::WriteSuperblockAtLocked(uint64_t offset) {
  uint8_t buf[kSuperblockBytes];
  PutU32(buf + 0, kMagic);
  PutU32(buf + 4, kVersion);
  PutU32(buf + 8, page_size_);
  PutU32(buf + 12, 0);
  PutU64(buf + 16, page_count_.load(std::memory_order_relaxed));
  PutU64(buf + 24, free_head_);
  PutU64(buf + 32, free_count_.load(std::memory_order_relaxed));
  PutU64(buf + 40, user_root_);
  PutU64(buf + 48, epoch_);
  PutU64(buf + 56, checkpoint_lsn_);
  PutU64(buf + 64, crc_table_offset_pages_);
  PutU32(buf + 72, Crc32c(buf, kSuperblockBytes - 4));
  return file_->WriteAt(offset, buf, sizeof(buf));
}

Result<SuperblockImage> PageFile::ParseSuperblockAt(const File& file,
                                                    uint64_t offset) {
  uint8_t buf[kSuperblockBytes];
  Status st = file.ReadAt(offset, sizeof(buf), buf);
  if (!st.ok()) return st;
  if (GetU32(buf + 0) != kMagic) {
    return Status::Corruption("bad page file magic in " + file.path());
  }
  if (GetU32(buf + 4) != kVersion) {
    return Status::Corruption("unsupported page file version in " +
                              file.path());
  }
  if (GetU32(buf + 72) != Crc32c(buf, kSuperblockBytes - 4)) {
    return Status::Corruption("superblock checksum mismatch in " +
                              file.path());
  }
  SuperblockImage sb;
  sb.page_size = GetU32(buf + 8);
  sb.meta.page_count = GetU64(buf + 16);
  sb.meta.free_head = GetU64(buf + 24);
  sb.meta.free_count = GetU64(buf + 32);
  sb.meta.user_root = GetU64(buf + 40);
  sb.epoch = GetU64(buf + 48);
  sb.checkpoint_lsn = GetU64(buf + 56);
  sb.crc_table_offset_pages = GetU64(buf + 64);
  if (sb.page_size < kMinPageSize ||
      (sb.page_size & (sb.page_size - 1)) != 0) {
    return Status::Corruption("corrupt page size in " + file.path());
  }
  if (sb.meta.page_count == 0) {
    return Status::Corruption("corrupt page count in " + file.path());
  }
  return sb;
}

Status PageFile::ReadSuperblock() {
  // Recovery rule: take the valid copy with the highest epoch, preferring
  // the primary on a tie (a clean shutdown rewrites only the primary).
  Result<SuperblockImage> primary = ParseSuperblockAt(*file_, 0);
  Result<SuperblockImage> backup =
      ParseSuperblockAt(*file_, kBackupSuperblockOffset);
  const SuperblockImage* chosen = nullptr;
  if (primary.ok()) chosen = &primary.value();
  if (backup.ok() &&
      (chosen == nullptr || backup.value().epoch > chosen->epoch)) {
    chosen = &backup.value();
  }
  if (chosen == nullptr) return primary.status();

  page_size_ = chosen->page_size;
  page_count_.store(chosen->meta.page_count, std::memory_order_release);
  free_head_ = chosen->meta.free_head;
  free_count_.store(chosen->meta.free_count, std::memory_order_release);
  user_root_ = chosen->meta.user_root;
  epoch_ = chosen->epoch;
  checkpoint_lsn_ = chosen->checkpoint_lsn;
  crc_table_offset_pages_ = chosen->crc_table_offset_pages;

  // Load the persisted checksum table; it is only trustworthy when it
  // still sits past the last page (later allocations overwrite it).
  const uint64_t count = chosen->meta.page_count;
  bool loaded = false;
  if (crc_table_offset_pages_ != 0 && crc_table_offset_pages_ >= count) {
    const uint64_t base = crc_table_offset_pages_ * page_size_;
    const size_t image_bytes =
        kTableHeaderBytes + static_cast<size_t>(count) * 4 + 4;
    std::vector<uint8_t> image(image_bytes);
    if (file_->ReadAt(base, image_bytes, image.data()).ok() &&
        GetU32(image.data()) == kTableMagic &&
        GetU64(image.data() + 8) == count &&
        GetU32(image.data() + image_bytes - 4) ==
            Crc32c(image.data(), image_bytes - 4)) {
      crcs_.resize(count);
      for (uint64_t i = 0; i < count; ++i) {
        crcs_[i] = GetU32(image.data() + kTableHeaderBytes + i * 4);
      }
      crcs_[0] = 0;
      loaded = true;
    }
  }
  if (!loaded) RebuildChecksumTable();
  return Status::OK();
}

void PageFile::RebuildChecksumTable() {
  // Full-scan fallback for stores closed without a checkpoint: checksum
  // every readable page, then zero the entries of free-list members (their
  // content is undefined). Unreadable pages (allocated but never written)
  // stay at the 0 "unknown" sentinel.
  const uint64_t count = page_count_.load(std::memory_order_relaxed);
  crcs_.assign(count, 0);
  std::vector<uint8_t> page(page_size_);
  for (uint64_t id = 1; id < count; ++id) {
    if (file_->ReadAt(id * page_size_, page_size_, page.data()).ok()) {
      crcs_[id] = Crc32c(page.data(), page_size_);
    }
  }
  PageId cursor = free_head_;
  uint64_t walked = 0;
  while (cursor != kInvalidPageId && cursor < count && walked++ < count) {
    crcs_[cursor] = 0;
    uint8_t link[8];
    if (!file_->ReadAt((cursor + 1) * page_size_ - 8, 8, link).ok()) break;
    cursor = GetU64(link);
  }
}

Status PageFile::PersistChecksumTableLocked() {
  const uint64_t count = page_count_.load(std::memory_order_relaxed);
  if (crcs_.size() < count) crcs_.resize(count, 0);
  const size_t image_bytes =
      kTableHeaderBytes + static_cast<size_t>(count) * 4 + 4;
  std::vector<uint8_t> image(image_bytes, 0);
  PutU32(image.data(), kTableMagic);
  PutU64(image.data() + 8, count);
  for (uint64_t i = 0; i < count; ++i) {
    PutU32(image.data() + kTableHeaderBytes + i * 4, crcs_[i]);
  }
  PutU32(image.data() + image_bytes - 4,
         Crc32c(image.data(), image_bytes - 4));
  Status st = file_->WriteAt(count * page_size_, image.data(), image_bytes);
  if (!st.ok()) return st;
  crc_table_offset_pages_ = count;
  return Status::OK();
}

Status PageFile::SyncLocked() {
  Status st = file_->Sync();
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) disk_model_->OnFsync();
  if (metrics_.fsyncs != nullptr) metrics_.fsyncs->Add(1);
  return Status::OK();
}

void PageFile::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.reads = registry->counter("pagefile.reads");
  metrics_.read_runs = registry->counter("pagefile.read_runs");
  metrics_.writes = registry->counter("pagefile.writes");
  metrics_.fsyncs = registry->counter("pagefile.fsyncs");
  metrics_.bytes_read = registry->counter("pagefile.bytes_read");
  metrics_.bytes_written = registry->counter("pagefile.bytes_written");
  metrics_.seeks = registry->counter("pagefile.seeks");
  metrics_.io_batches = registry->counter("io.batches_submitted");
  metrics_.io_inflight_peak = registry->gauge("io.inflight_peak");
  metrics_.io_backend_code = registry->gauge("io.backend");
  metrics_.io_backend_code->Set(
      io_backend_ != nullptr ? io_backend_->code() : DefaultIoBackend()->code());
}

void PageFile::set_io_backend(IoBackend* backend) {
  io_backend_ = backend;
  if (metrics_.io_backend_code != nullptr) {
    metrics_.io_backend_code->Set(
        io_backend_ != nullptr ? io_backend_->code()
                               : DefaultIoBackend()->code());
  }
}

void PageFile::NoteAccess(PageId first, uint64_t count) {
  if (metrics_.seeks == nullptr) return;
  const uint64_t prev = metrics_expected_next_.exchange(
      first + count, std::memory_order_relaxed);
  if (prev != first) metrics_.seeks->Add(1);
}

Status PageFile::ValidatePageId(PageId id) const {
  if (id == kInvalidPageId || id >= page_count()) {
    return Status::InvalidArgument("page id " + std::to_string(id) +
                                   " out of range (page count " +
                                   std::to_string(page_count()) + ")");
  }
  return Status::OK();
}

Status PageFile::ValidatePageRun(PageId first, uint64_t count) const {
  if (count == 0) return Status::InvalidArgument("empty page run");
  if (first == kInvalidPageId || first + count > page_count()) {
    return Status::InvalidArgument(
        "page run [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") out of range (page count " +
        std::to_string(page_count()) + ")");
  }
  return Status::OK();
}

TransactionContext* PageFile::ActiveTxn() const {
  return txns_ != nullptr ? txns_->active() : nullptr;
}

Result<PageId> PageFile::AllocatePage() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (free_head_ != kInvalidPageId) {
    const PageId id = free_head_;
    PageId next = kInvalidPageId;
    TransactionContext* txn = ActiveTxn();
    if (txn == nullptr || !txn->StagedFreeLink(id, &next)) {
      uint8_t buf[8];
      Status st = file_->ReadAt((id + 1) * page_size_ - 8, sizeof(buf), buf);
      if (!st.ok()) return st;
      next = GetU64(buf);
    }
    free_head_ = next;
    free_count_.fetch_sub(1, std::memory_order_acq_rel);
    return id;
  }
  return page_count_.fetch_add(1, std::memory_order_acq_rel);
}

Result<PageId> PageFile::AllocateRun(uint64_t count) {
  if (count == 0) return Status::InvalidArgument("empty allocation run");
  std::lock_guard<std::mutex> lock(meta_mu_);
  // Bounded free-list walk: enough to find runs in a churned list without
  // turning allocation into a full-file scan.
  constexpr size_t kFreeScanLimit = 1024;
  if (free_head_ != kInvalidPageId &&
      free_count_.load(std::memory_order_relaxed) >= count) {
    TransactionContext* txn = ActiveTxn();
    std::vector<PageId> walked;
    walked.reserve(std::min<uint64_t>(kFreeScanLimit,
                                      free_count_.load(std::memory_order_relaxed)));
    PageId cursor = free_head_;
    PageId tail_next = kInvalidPageId;
    while (cursor != kInvalidPageId && walked.size() < kFreeScanLimit) {
      walked.push_back(cursor);
      PageId next = kInvalidPageId;
      if (txn == nullptr || !txn->StagedFreeLink(cursor, &next)) {
        uint8_t buf[8];
        Status st =
            file_->ReadAt((cursor + 1) * page_size_ - 8, sizeof(buf), buf);
        if (!st.ok()) return st;
        next = GetU64(buf);
      }
      tail_next = next;
      cursor = next;
    }
    if (cursor != kInvalidPageId) {
      // Stopped at the scan limit: the unwalked remainder hangs off the
      // last walked node's link, which is exactly `tail_next`.
      tail_next = cursor;
    } else {
      tail_next = kInvalidPageId;
    }

    // Look for `count` consecutive ids among the walked nodes (lowest run
    // wins, pulling reuse toward the front of the file).
    std::vector<PageId> sorted = walked;
    std::sort(sorted.begin(), sorted.end());
    PageId run_first = kInvalidPageId;
    uint64_t run_len = 0;
    for (size_t i = 0; i < sorted.size() && run_first == kInvalidPageId; ++i) {
      if (run_len == 0 || sorted[i] != sorted[i - 1] + 1) {
        run_len = 1;
      } else {
        ++run_len;
      }
      if (run_len >= count) run_first = sorted[i] - count + 1;
    }
    if (run_first != kInvalidPageId) {
      // Unlink the run: relink the surviving walked nodes in their original
      // order, ending at the unwalked remainder. Link writes follow the
      // FreePage rule — staged inside a transaction, written through
      // otherwise.
      std::vector<PageId> remaining;
      remaining.reserve(walked.size() - count);
      for (PageId id : walked) {
        if (id < run_first || id >= run_first + count) remaining.push_back(id);
      }
      for (size_t i = 0; i < remaining.size(); ++i) {
        const PageId next =
            i + 1 < remaining.size() ? remaining[i + 1] : tail_next;
        if (txn != nullptr) {
          txn->StageFreeLink(remaining[i], next);
        } else {
          uint8_t buf[8];
          PutU64(buf, next);
          Status st = file_->WriteAt((remaining[i] + 1) * page_size_ - 8, buf,
                                     sizeof(buf));
          if (!st.ok()) return st;
          if (remaining[i] < crcs_.size()) crcs_[remaining[i]] = 0;
        }
      }
      free_head_ = remaining.empty() ? tail_next : remaining.front();
      free_count_.fetch_sub(count, std::memory_order_acq_rel);
      return run_first;
    }
  }
  // No reusable run: extend at the tail, which is contiguous by
  // construction.
  return page_count_.fetch_add(count, std::memory_order_acq_rel);
}

Status PageFile::FreePage(PageId id) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  std::lock_guard<std::mutex> lock(meta_mu_);
  TransactionContext* txn = ActiveTxn();
  if (txn != nullptr) {
    // Journaled: the link write is logged and applied at commit.
    txn->StageFreeLink(id, free_head_);
  } else {
    uint8_t buf[8];
    PutU64(buf, free_head_);
    st = file_->WriteAt((id + 1) * page_size_ - 8, buf, sizeof(buf));
    if (!st.ok()) return st;
    if (id < crcs_.size()) crcs_[id] = 0;
  }
  free_head_ = id;
  free_count_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status PageFile::ApplyFreeLink(PageId id, PageId next) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  std::lock_guard<std::mutex> lock(meta_mu_);
  uint8_t buf[8];
  PutU64(buf, next);
  st = file_->WriteAt((id + 1) * page_size_ - 8, buf, sizeof(buf));
  if (!st.ok()) return st;
  if (id < crcs_.size()) crcs_[id] = 0;
  return Status::OK();
}

Result<PageId> PageFile::ReadFreeLink(PageId id) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  uint8_t buf[8];
  st = file_->ReadAt((id + 1) * page_size_ - 8, sizeof(buf), buf);
  if (!st.ok()) return st;
  return GetU64(buf);
}

void PageFile::RestoreMeta(const PageFileMeta& meta) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  page_count_.store(meta.page_count, std::memory_order_release);
  free_head_ = meta.free_head;
  free_count_.store(meta.free_count, std::memory_order_release);
  user_root_ = meta.user_root;
  if (crcs_.size() > meta.page_count) crcs_.resize(meta.page_count);
}

PageFileMeta PageFile::meta() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  PageFileMeta m;
  m.page_count = page_count_.load(std::memory_order_relaxed);
  m.free_head = free_head_;
  m.free_count = free_count_.load(std::memory_order_relaxed);
  m.user_root = user_root_;
  return m;
}

uint64_t PageFile::epoch() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return epoch_;
}

uint64_t PageFile::checkpoint_lsn() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return checkpoint_lsn_;
}

uint32_t PageFile::page_crc(PageId id) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return id < crcs_.size() ? crcs_[id] : 0;
}

Status PageFile::ReadPage(PageId id, uint8_t* out) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  st = file_->ReadAt(id * page_size_, page_size_, out);
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) disk_model_->OnRead(id, page_size_);
  NoteAccess(id, 1);
  if (metrics_.reads != nullptr) {
    metrics_.reads->Add(1);
    metrics_.bytes_read->Add(page_size_);
  }
  return Status::OK();
}

Status PageFile::ReadRun(PageId first, uint64_t count, uint8_t* out) {
  Status st = ValidatePageRun(first, count);
  if (!st.ok()) return st;
  st = file_->ReadAt(first * page_size_,
                     static_cast<size_t>(count) * page_size_, out);
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) {
    disk_model_->OnReadRun(first, count,
                           static_cast<size_t>(count) * page_size_);
  }
  NoteAccess(first, count);
  if (metrics_.reads != nullptr) {
    metrics_.reads->Add(count);
    metrics_.read_runs->Add(1);
    metrics_.bytes_read->Add(static_cast<size_t>(count) * page_size_);
  }
  return Status::OK();
}

void PageFile::ChargeReadRun(PageId first, uint64_t count) {
  if (disk_model_ != nullptr) {
    disk_model_->OnReadRun(first, count,
                           static_cast<size_t>(count) * page_size_);
  }
  NoteAccess(first, count);
  if (metrics_.reads != nullptr) {
    metrics_.reads->Add(count);
    metrics_.read_runs->Add(1);
    metrics_.bytes_read->Add(static_cast<size_t>(count) * page_size_);
  }
}

Status PageFile::ReadBatch(std::span<const PageRunRead> runs,
                           bool charge_model) {
  if (runs.empty()) return Status::OK();
  for (const PageRunRead& run : runs) {
    Status st = ValidatePageRun(run.first, run.count);
    if (!st.ok()) return st;
  }
  std::vector<ReadOp> ops(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    ops[i].file = file_.get();
    ops[i].offset = runs[i].first * page_size_;
    ops[i].size = runs[i].count * page_size_;
    ops[i].out = runs[i].out;
  }
  IoBackend* backend =
      io_backend_ != nullptr ? io_backend_ : DefaultIoBackend();
  const Status st = backend->SubmitBatch(std::span<ReadOp>(ops));
  if (metrics_.io_batches != nullptr) {
    metrics_.io_batches->Add(1);
    const int64_t size = static_cast<int64_t>(runs.size());
    int64_t peak = io_inflight_peak_.load(std::memory_order_relaxed);
    while (size > peak && !io_inflight_peak_.compare_exchange_weak(
                              peak, size, std::memory_order_relaxed)) {
    }
    metrics_.io_inflight_peak->Set(
        io_inflight_peak_.load(std::memory_order_relaxed));
  }
  if (!st.ok()) return st;
  if (charge_model) {
    for (const PageRunRead& run : runs) ChargeReadRun(run.first, run.count);
  }
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const uint8_t* data) {
  Status st = ValidatePageId(id);
  if (!st.ok()) return st;
  st = file_->WriteAt(id * page_size_, data, page_size_);
  if (!st.ok()) return st;
  if (disk_model_ != nullptr) disk_model_->OnWrite(id, page_size_);
  NoteAccess(id, 1);
  if (metrics_.writes != nullptr) {
    metrics_.writes->Add(1);
    metrics_.bytes_written->Add(page_size_);
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (crcs_.size() <= id) crcs_.resize(id + 1, 0);
  crcs_[id] = Crc32c(data, page_size_);
  return Status::OK();
}

Status PageFile::Flush() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  Status st = PersistChecksumTableLocked();
  if (!st.ok()) return st;
  ++epoch_;
  st = WriteSuperblockAtLocked(kBackupSuperblockOffset);
  if (!st.ok()) return st;
  st = WriteSuperblockAtLocked(0);
  if (!st.ok()) return st;
  return SyncLocked();
}

Status PageFile::Checkpoint(uint64_t checkpoint_lsn) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  // Order matters: everything the new superblock references (data pages,
  // checksum table, backup copy) becomes durable before the primary copy
  // flips, so a crash at any point leaves at least one valid copy whose
  // checkpoint LSN matches the surviving WAL suffix.
  Status st = PersistChecksumTableLocked();
  if (!st.ok()) return st;
  checkpoint_lsn_ = checkpoint_lsn;
  ++epoch_;
  st = WriteSuperblockAtLocked(kBackupSuperblockOffset);
  if (!st.ok()) return st;
  st = SyncLocked();
  if (!st.ok()) return st;
  st = WriteSuperblockAtLocked(0);
  if (!st.ok()) return st;
  return SyncLocked();
}

}  // namespace tilestore
