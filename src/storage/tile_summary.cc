#include "storage/tile_summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/checksum.h"
#include "common/serde.h"
#include "storage/env.h"

namespace tilestore {

namespace {

constexpr uint32_t kSidecarMagic = 0x4d535354;  // "TSSM"
constexpr uint16_t kSidecarVersion = 1;
// Guard against a corrupted length field allocating the moon.
constexpr uint64_t kMaxSidecarBytes = 256ull << 20;

template <typename T>
std::optional<TileSummary> BuildTyped(const uint8_t* cells,
                                      uint64_t cell_count, size_t cell_size,
                                      const uint8_t* default_cell) {
  TileSummary s;
  s.count = cell_count;
  if (cell_count == 0) return s;

  double lo = 0, hi = 0;
  for (uint64_t i = 0; i < cell_count; ++i) {
    T v;
    std::memcpy(&v, cells + i * cell_size, sizeof(T));
    const double d = static_cast<double>(v);
    if (std::isnan(d)) return std::nullopt;
    if (i == 0) {
      lo = hi = d;
    } else {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    if (default_cell != nullptr &&
        std::memcmp(cells + i * cell_size, default_cell, cell_size) == 0) {
      ++s.null_count;
    }
  }
  s.min = lo;
  s.max = hi;
  if (hi > lo) {
    s.has_histogram = true;
    for (uint64_t i = 0; i < cell_count; ++i) {
      T v;
      std::memcpy(&v, cells + i * cell_size, sizeof(T));
      ++s.histogram[s.BucketOf(static_cast<double>(v))];
    }
  }
  return s;
}

void WriteDouble(ByteWriter* w, double v) {
  static_assert(sizeof(double) == sizeof(uint64_t));
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  w->U64(bits);
}

Status ReadDouble(ByteReader* r, double* v) {
  uint64_t bits = 0;
  Status st = r->U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

}  // namespace

size_t TileSummary::BucketOf(double v) const {
  if (!(max > min)) return 0;
  const double w = (max - min) / static_cast<double>(kTileSummaryBuckets);
  const double idx = std::floor((v - min) / w);
  if (idx <= 0) return 0;
  if (idx >= static_cast<double>(kTileSummaryBuckets - 1)) {
    return kTileSummaryBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

TilePrune ClassifyTile(const TileSummary& s, const ValuePredicate& pred) {
  if (s.count == 0) return TilePrune::kSkip;
  switch (pred.kind) {
    case ValuePredicate::Kind::kLess:
      if (s.min >= pred.a) return TilePrune::kSkip;
      if (s.max < pred.a) return TilePrune::kAcceptAll;
      return TilePrune::kInspect;
    case ValuePredicate::Kind::kGreater:
      if (s.max <= pred.a) return TilePrune::kSkip;
      if (s.min > pred.a) return TilePrune::kAcceptAll;
      return TilePrune::kInspect;
    case ValuePredicate::Kind::kBetween: {
      if (s.max < pred.a || s.min > pred.b) return TilePrune::kSkip;
      if (s.min >= pred.a && s.max <= pred.b) return TilePrune::kAcceptAll;
      if (s.has_histogram) {
        // Cells inside [a,b] land in buckets [BucketOf(a'), BucketOf(b')]
        // (bucket index is monotonic in the value); all-empty proves no
        // cell matches.
        const size_t lo = s.BucketOf(std::max(pred.a, s.min));
        const size_t hi = s.BucketOf(std::min(pred.b, s.max));
        bool any = false;
        for (size_t i = lo; i <= hi; ++i) any = any || s.histogram[i] != 0;
        if (!any) return TilePrune::kSkip;
      }
      return TilePrune::kInspect;
    }
    case ValuePredicate::Kind::kEqual: {
      if (pred.a < s.min || pred.a > s.max) return TilePrune::kSkip;
      if (s.min == s.max && s.min == pred.a) return TilePrune::kAcceptAll;
      if (s.has_histogram && s.histogram[s.BucketOf(pred.a)] == 0) {
        return TilePrune::kSkip;
      }
      return TilePrune::kInspect;
    }
  }
  return TilePrune::kInspect;
}

std::optional<TileSummary> BuildTileSummary(CellType cell_type,
                                            const uint8_t* cells,
                                            uint64_t cell_count,
                                            const uint8_t* default_cell) {
  switch (cell_type.id()) {
    case CellTypeId::kUInt8:
      return BuildTyped<uint8_t>(cells, cell_count, cell_type.size(),
                                 default_cell);
    case CellTypeId::kInt8:
      return BuildTyped<int8_t>(cells, cell_count, cell_type.size(),
                                default_cell);
    case CellTypeId::kUInt16:
      return BuildTyped<uint16_t>(cells, cell_count, cell_type.size(),
                                  default_cell);
    case CellTypeId::kInt16:
      return BuildTyped<int16_t>(cells, cell_count, cell_type.size(),
                                 default_cell);
    case CellTypeId::kUInt32:
      return BuildTyped<uint32_t>(cells, cell_count, cell_type.size(),
                                  default_cell);
    case CellTypeId::kInt32:
      return BuildTyped<int32_t>(cells, cell_count, cell_type.size(),
                                 default_cell);
    case CellTypeId::kUInt64:
      return BuildTyped<uint64_t>(cells, cell_count, cell_type.size(),
                                  default_cell);
    case CellTypeId::kInt64:
      return BuildTyped<int64_t>(cells, cell_count, cell_type.size(),
                                 default_cell);
    case CellTypeId::kFloat32:
      return BuildTyped<float>(cells, cell_count, cell_type.size(),
                               default_cell);
    case CellTypeId::kFloat64:
      return BuildTyped<double>(cells, cell_count, cell_type.size(),
                                default_cell);
    case CellTypeId::kRGB8:
    case CellTypeId::kOpaque:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<TileSummary> TileSummaryIndex::Lookup(uint64_t object_id,
                                                    BlobId blob) const {
  if (!enabled_ || object_id == 0) return std::nullopt;
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(Key{object_id, blob});
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void TileSummaryIndex::Put(uint64_t object_id, BlobId blob,
                           const TileSummary& summary) {
  if (!enabled_ || object_id == 0) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_[Key{object_id, blob}] = summary;
}

void TileSummaryIndex::Erase(uint64_t object_id, BlobId blob) {
  if (!enabled_ || object_id == 0) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.erase(Key{object_id, blob});
}

void TileSummaryIndex::Move(uint64_t object_id, BlobId from, BlobId to) {
  if (!enabled_ || object_id == 0) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(Key{object_id, from});
  if (it == map_.end()) return;
  const TileSummary summary = it->second;
  map_.erase(it);
  map_[Key{object_id, to}] = summary;
}

void TileSummaryIndex::InvalidateObject(uint64_t object_id) {
  if (!enabled_ || object_id == 0) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.object_id == object_id) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

void TileSummaryIndex::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.clear();
}

size_t TileSummaryIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

std::vector<std::pair<BlobId, TileSummary>> TileSummaryIndex::ObjectEntries(
    uint64_t object_id) const {
  std::vector<std::pair<BlobId, TileSummary>> out;
  if (!enabled_ || object_id == 0) return out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, summary] : map_) {
    if (key.object_id == object_id) out.emplace_back(key.blob, summary);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return out;
}

Status SaveTileSummarySidecar(const std::string& path, uint64_t epoch,
                              const std::vector<ObjectSummaries>& objects) {
  ByteWriter w;
  size_t entry_total = 0;
  for (const ObjectSummaries& obj : objects) entry_total += obj.entries.size();
  w.Reserve(64 + objects.size() * 64 + entry_total * 128);
  w.U32(kSidecarMagic);
  w.U16(kSidecarVersion);
  w.U64(epoch);
  w.U32(static_cast<uint32_t>(objects.size()));
  for (const ObjectSummaries& obj : objects) {
    w.Str(obj.name);
    w.U64(obj.entries.size());
    for (const auto& [blob, s] : obj.entries) {
      w.U64(blob);
      WriteDouble(&w, s.min);
      WriteDouble(&w, s.max);
      w.U64(s.count);
      w.U64(s.null_count);
      w.U8(s.has_histogram ? 1 : 0);
      for (uint32_t bucket : s.histogram) w.U32(bucket);
    }
  }
  // The trailing CRC covers everything before it; U32 appends the same
  // little-endian bytes the loader reassembles.
  const uint32_t crc = Crc32c(w.data(), w.size());
  w.U32(crc);
  const std::vector<uint8_t> payload = w.Take();
  // tmp + rename: a crash mid-write leaves the previous sidecar (or
  // nothing) — never a torn file. A stale sidecar is caught by the epoch
  // check at load anyway.
  const std::string tmp = path + ".tmp";
  Result<std::unique_ptr<File>> file = File::Open(tmp, /*create=*/true);
  if (!file.ok()) return file.status();
  Status st = (*file)->Truncate(0);
  if (st.ok()) st = (*file)->WriteAt(0, payload.data(), payload.size());
  if (st.ok()) st = (*file)->Sync();
  file->reset();
  if (!st.ok()) {
    (void)RemoveFile(tmp);
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)RemoveFile(tmp);
    return Status::IOError("rename of summary sidecar failed: " + path);
  }
  return Status::OK();
}

Result<LoadedSummarySidecar> LoadTileSummarySidecar(const std::string& path) {
  if (!FileExists(path)) {
    return Status::NotFound("no summary sidecar at " + path);
  }
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/false);
  if (!file.ok()) return file.status();
  Result<uint64_t> size = (*file)->Size();
  if (!size.ok()) return size.status();
  if (*size < 4 || *size > kMaxSidecarBytes) {
    return Status::Corruption("summary sidecar has implausible size");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(*size));
  Status st = (*file)->ReadAt(0, bytes.size(), bytes.data());
  if (!st.ok()) return st;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
  }
  bytes.resize(bytes.size() - 4);
  if (Crc32c(bytes.data(), bytes.size()) != stored_crc) {
    return Status::Corruption("summary sidecar CRC mismatch");
  }

  LoadedSummarySidecar out;
  ByteReader r(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint32_t object_count = 0;
  if (!r.U32(&magic).ok() || magic != kSidecarMagic) {
    return Status::Corruption("summary sidecar magic mismatch");
  }
  if (!r.U16(&version).ok() || version != kSidecarVersion) {
    return Status::Corruption("summary sidecar version mismatch");
  }
  if (!r.U64(&out.epoch).ok() || !r.U32(&object_count).ok()) {
    return Status::Corruption("summary sidecar header truncated");
  }
  for (uint32_t i = 0; i < object_count; ++i) {
    ObjectSummaries obj;
    uint64_t entry_count = 0;
    if (!r.Str(&obj.name).ok() || !r.U64(&entry_count).ok()) {
      return Status::Corruption("summary sidecar object header truncated");
    }
    obj.entries.reserve(
        static_cast<size_t>(std::min<uint64_t>(entry_count, 1 << 20)));
    for (uint64_t e = 0; e < entry_count; ++e) {
      BlobId blob = kInvalidBlobId;
      TileSummary s;
      uint8_t has_hist = 0;
      if (!r.U64(&blob).ok() || !ReadDouble(&r, &s.min).ok() ||
          !ReadDouble(&r, &s.max).ok() || !r.U64(&s.count).ok() ||
          !r.U64(&s.null_count).ok() || !r.U8(&has_hist).ok()) {
        return Status::Corruption("summary sidecar entry truncated");
      }
      s.has_histogram = has_hist != 0;
      for (size_t bucket = 0; bucket < kTileSummaryBuckets; ++bucket) {
        if (!r.U32(&s.histogram[bucket]).ok()) {
          return Status::Corruption("summary sidecar histogram truncated");
        }
      }
      obj.entries.emplace_back(blob, s);
    }
    out.objects.push_back(std::move(obj));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("summary sidecar has trailing bytes");
  }
  return out;
}

}  // namespace tilestore
