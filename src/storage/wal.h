#ifndef TILESTORE_STORAGE_WAL_H_
#define TILESTORE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_model.h"
#include "storage/env.h"
#include "storage/page_file.h"

namespace tilestore {

/// WAL record types. Records are physical-logical: page images carry the
/// full post-write content of one page, free-link records the logical
/// free-list chain update, and commit records the post-transaction
/// allocation metadata snapshot.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kPageImage = 2,
  kFreeLink = 3,
  kCommit = 4,
};

/// One decoded WAL record (see `WriteAheadLog::ScanFile`).
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  PageId page = kInvalidPageId;       // kPageImage, kFreeLink
  PageId next = kInvalidPageId;       // kFreeLink
  std::vector<uint8_t> image;         // kPageImage
  PageFileMeta meta;                  // kCommit
};

/// \brief Sidecar write-ahead log of a page file (`<store>.wal`).
///
/// On-disk format: a sequence of records, each
///   u32 crc32c | u32 len | u64 lsn | u8 type | u64 txn_id | payload
/// where `len` counts everything after the first 8 bytes and the CRC
/// covers those `len` bytes. LSNs increase strictly; a scan stops at the
/// first record whose header, CRC, or LSN is wrong — by construction that
/// is the torn tail of a crashed append, never a gap (records are
/// appended strictly in order and the file is truncated, not rewritten).
///
/// Appends are buffered only in the OS; `Sync` is the group-commit
/// boundary. Appends and syncs are charged to the attached `DiskModel` as
/// WAL traffic (`OnWalAppend`/`OnFsync`), keeping write benchmarks honest
/// without touching read-path accounting.
class WriteAheadLog {
 public:
  /// Opens (or creates) the log at `path`. The next LSN starts after the
  /// highest LSN found in the existing log.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     DiskModel* model);

  /// Decodes every well-formed record of the log at `path` in order,
  /// stopping silently at a torn tail. A missing file yields no records.
  /// `truncated`, when non-null, reports whether undecodable bytes
  /// followed the last good record.
  static Status ScanFile(const std::string& path, std::vector<WalRecord>* out,
                         bool* truncated = nullptr);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  Status AppendBegin(uint64_t txn_id);
  Status AppendPageImage(uint64_t txn_id, PageId page, const uint8_t* data,
                         size_t n);
  Status AppendFreeLink(uint64_t txn_id, PageId page, PageId next);
  Status AppendCommit(uint64_t txn_id, const PageFileMeta& meta);

  /// Group-commit boundary: makes every append so far durable.
  Status Sync();

  /// Truncates the log to empty (after a checkpoint) and syncs. LSNs keep
  /// increasing across resets.
  Status Reset();

  /// Truncates the log back to `size` bytes (a prior `size_bytes()` value)
  /// and syncs. The commit path uses this to cut a transaction's records
  /// back out of the log when the group-commit fsync fails: a transaction
  /// reported as failed must not be replayable.
  Status TruncateTo(uint64_t size);

  /// Bytes currently in the log.
  uint64_t size_bytes() const { return end_; }
  /// LSN the next append will use.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Raises the next LSN (recovery aligns it past the replayed records).
  void set_next_lsn(uint64_t lsn) { next_lsn_ = lsn; }

  /// Attaches a metrics registry: appends and syncs are counted under
  /// `wal.*` (appends, bytes, syncs) and each group-commit fsync's real
  /// wall-clock latency is observed into the `wal.fsync_ms` histogram —
  /// the one place where measured time, not model time, is recorded.
  /// Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  const std::string& path() const { return file_->path(); }

 private:
  WriteAheadLog(std::unique_ptr<File> file, DiskModel* model)
      : file_(std::move(file)), model_(model) {}

  Status Append(WalRecordType type, uint64_t txn_id,
                const std::vector<uint8_t>& payload);

  std::unique_ptr<File> file_;
  DiskModel* model_;
  uint64_t end_ = 0;
  uint64_t next_lsn_ = 1;

  // Registry metrics (null when no registry is attached).
  struct {
    obs::Counter* appends = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* syncs = nullptr;
    obs::Histogram* fsync_ms = nullptr;
  } metrics_;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_WAL_H_
