#ifndef TILESTORE_STORAGE_PAGE_FILE_H_
#define TILESTORE_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_model.h"
#include "storage/env.h"
#include "storage/io_backend.h"

namespace tilestore {

class TransactionContext;
class TxnManager;

/// Identifier of a page within a page file. Page 0 is the superblock;
/// 0 therefore doubles as the invalid/"null" page id in chains.
using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = 0;

/// Default page size. The paper's storage substrate (the O2 system)
/// managed BLOBs on pages of this order of magnitude; tile sizes
/// (32 KiB .. 256 KiB) are intended to be integral multiples of it.
inline constexpr uint32_t kDefaultPageSize = 4096;

/// One coalesced page run in a `PageFile::ReadBatch` submission. `out`
/// must hold `count * page_size()` bytes.
struct PageRunRead {
  PageId first = kInvalidPageId;
  uint64_t count = 0;
  uint8_t* out = nullptr;
};

/// Snapshot of the page file's allocation metadata. Transactions capture
/// one at Begin so Abort can roll the free list / page count / user root
/// back, and commit records carry one so recovery can re-apply it.
struct PageFileMeta {
  uint64_t page_count = 1;  // includes the superblock
  PageId free_head = kInvalidPageId;
  uint64_t free_count = 0;
  uint64_t user_root = 0;
};

/// Decoded superblock copy, as read from disk (see `ParseSuperblockAt`).
/// Used by `tilestore_fsck` to inspect both copies independently.
struct SuperblockImage {
  uint32_t page_size = 0;
  PageFileMeta meta;
  uint64_t epoch = 0;
  uint64_t checkpoint_lsn = 0;
  /// First page of the persisted per-page checksum table (0 = none).
  uint64_t crc_table_offset_pages = 0;
};

/// \brief A file of fixed-size pages with a free list — the lowest layer
/// of the storage manager.
///
/// Layout: page 0 holds two checksummed superblock copies (primary at
/// byte 0, backup at byte `kBackupSuperblockOffset`), each carrying the
/// magic, page size, page count, free-list head, one user-root slot, a
/// monotonically increasing epoch, and the WAL checkpoint LSN. Updates
/// alternate backup-then-primary with an fsync between, so at least one
/// copy is always intact; `Open` picks the valid copy with the highest
/// epoch. Pages are allocated from the free list or by extending the
/// file; freed pages are chained through their *last* 8 bytes, so freeing
/// never clobbers BLOB headers or chain pointers of stale data.
///
/// A CRC32C per data page is kept in memory and persisted past the last
/// page at each checkpoint; it is verified by `tilestore_fsck` only —
/// never on the normal read path, which stays byte-for-byte identical in
/// cost to the unchecksummed implementation.
///
/// Every physical page read/write is reported to the attached `DiskModel`
/// (if any), which is how benchmarks obtain the paper's t_o. Superblock
/// and free-list maintenance is metadata traffic and is deliberately not
/// charged; fsyncs are charged via `DiskModel::OnFsync`.
///
/// Concurrency: the read path (`ReadPage`, `ReadRun`) is thread-safe —
/// reads go through positional `pread` and never touch shared mutable
/// state beyond the (synchronized) disk model. Allocation, freeing, and
/// superblock maintenance are serialized by an internal mutex but assume a
/// single logical writer (the MDD load/update path); concurrent writers
/// racing readers of the *same* page get no atomicity guarantee.
///
/// When a `TxnManager` is attached (`set_txn_manager`), free-list links
/// are journaled: `FreePage` stages the link in the active transaction
/// instead of writing it, and the commit path writes it through
/// `ApplyFreeLink` after the WAL records are durable.
class PageFile {
 public:
  /// Byte offset of the backup superblock copy inside page 0.
  static constexpr uint64_t kBackupSuperblockOffset = 256;

  /// Creates a new page file at `path` (fails with AlreadyExists).
  static Result<std::unique_ptr<PageFile>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Opens an existing page file, validating the superblock copies.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  /// Decodes one superblock copy at byte `offset`, verifying magic,
  /// version, and CRC. Used by `Open` and by `tilestore_fsck`.
  static Result<SuperblockImage> ParseSuperblockAt(const File& file,
                                                   uint64_t offset);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Allocates a page (reusing freed pages first). The caller must write
  /// the page before reading it back.
  Result<PageId> AllocatePage();

  /// Allocates `count` *consecutive* pages and returns the first id — the
  /// placement primitive behind SFC-contiguous blob chains. A bounded walk
  /// of the free list harvests an existing consecutive run when one is
  /// available (unlinking it in place, staging link rewrites inside an
  /// active transaction exactly like `FreePage`); otherwise the file is
  /// extended at the tail, which is trivially contiguous.
  Result<PageId> AllocateRun(uint64_t count);

  /// Returns `id` to the free list. Inside a transaction the link write is
  /// staged; outside it is written through immediately.
  Status FreePage(PageId id);

  /// Reads page `id` into `out` (page_size() bytes). Thread-safe.
  Status ReadPage(PageId id, uint8_t* out);

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (count * page_size() bytes) with one positional read, charging the
  /// disk model once for the whole run. Thread-safe.
  Status ReadRun(PageId first, uint64_t count, uint8_t* out);

  /// Submits every run as one batch to the attached `IoBackend`, so the
  /// runs can be in flight concurrently. With `charge_model` true each
  /// run is charged (model + metrics) in submission order after the I/O
  /// completes, exactly as the equivalent `ReadRun` loop would; with
  /// false the caller replays charges itself via `ChargeReadRun` — the
  /// hook that lets batched callers keep the cost model's access-order
  /// accounting identical to the sequential read path. Thread-safe.
  Status ReadBatch(std::span<const PageRunRead> runs, bool charge_model);

  /// Accounts for a `count`-page run at `first` (disk model, pagefile.*
  /// metrics, seek rule) without any I/O. Pair with a `ReadBatch(...,
  /// /*charge_model=*/false)` that physically read the pages.
  void ChargeReadRun(PageId first, uint64_t count);

  /// Writes page `id` from `data` (page_size() bytes).
  Status WritePage(PageId id, const uint8_t* data);

  /// Writes the free-list link of `id` (its last 8 bytes) directly,
  /// bypassing transaction staging. Called by the commit/recovery path
  /// after the corresponding WAL record is durable.
  Status ApplyFreeLink(PageId id, PageId next);

  /// Reads the free-list link stored in the last 8 bytes of `id`.
  Result<PageId> ReadFreeLink(PageId id);

  /// Replaces the allocation metadata wholesale: Abort rolls back to the
  /// Begin-time snapshot; recovery applies the snapshot carried by each
  /// committed WAL record.
  void RestoreMeta(const PageFileMeta& meta);

  /// Consistent snapshot of the allocation metadata.
  PageFileMeta meta() const;

  /// Durability point of the unlogged path: persists the checksum table
  /// and both superblock copies (bumping the epoch), then syncs once.
  Status Flush();

  /// Checkpoint with torn-write protection, recording `checkpoint_lsn`:
  /// syncs data, persists the checksum table + backup superblock, syncs,
  /// then the primary superblock, and syncs again. After it returns, WAL
  /// records with LSN <= `checkpoint_lsn` are no longer needed.
  Status Checkpoint(uint64_t checkpoint_lsn);

  uint32_t page_size() const { return page_size_; }
  /// Total pages including the superblock.
  uint64_t page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }
  uint64_t free_page_count() const {
    return free_count_.load(std::memory_order_acquire);
  }

  /// User-root slot: an opaque value (e.g. the catalog blob id) persisted
  /// in the superblock. Single-writer, like the rest of the metadata.
  uint64_t user_root() const { return user_root_; }
  void set_user_root(uint64_t root) { user_root_ = root; }

  /// Superblock epoch (bumped by Flush/Checkpoint) and the LSN up to
  /// which the WAL had been applied at the last checkpoint.
  uint64_t epoch() const;
  uint64_t checkpoint_lsn() const;

  /// In-memory CRC32C of page `id`'s last written content; 0 means free
  /// or not written since the table was (re)built.
  uint32_t page_crc(PageId id) const;

  /// Attaches a disk cost model; pass nullptr to detach. Not synchronized
  /// with in-flight I/O — attach before sharing the file across threads.
  void set_disk_model(DiskModel* model) { disk_model_ = model; }
  DiskModel* disk_model() const { return disk_model_; }

  /// Attaches a metrics registry: physical I/O is counted under
  /// `pagefile.*` (reads, read_runs, writes, fsyncs, bytes, and a seek
  /// count driven by the same continue-the-previous-access rule as the
  /// disk model). Pass nullptr to detach. Attach before sharing the file
  /// across threads, like `set_disk_model`.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches the transaction manager that journals free-list updates;
  /// pass nullptr to detach (restoring unlogged write-through behavior).
  void set_txn_manager(TxnManager* txns) { txns_ = txns; }

  /// Overrides the batched-read engine (default: `DefaultIoBackend()`).
  /// The caller keeps ownership. Attach before sharing the file across
  /// threads.
  void set_io_backend(IoBackend* backend);
  IoBackend* io_backend() const { return io_backend_; }

  const std::string& path() const { return file_->path(); }

 private:
  PageFile(std::unique_ptr<File> file, uint32_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  Status ValidatePageId(PageId id) const;
  Status ValidatePageRun(PageId first, uint64_t count) const;
  TransactionContext* ActiveTxn() const;

  /// Counts a `pagefile.seeks` increment when the access at `first` does
  /// not continue the previous physical access. No-op without metrics.
  void NoteAccess(PageId first, uint64_t count);

  // All *Locked helpers require meta_mu_ to be held.
  Status WriteSuperblockAtLocked(uint64_t offset);
  Status SyncLocked();
  Status PersistChecksumTableLocked();
  Status ReadSuperblock();
  void RebuildChecksumTable();

  std::unique_ptr<File> file_;
  uint32_t page_size_;
  std::atomic<uint64_t> page_count_{1};  // superblock
  // Guards allocation / free-list / superblock metadata and the crc table.
  mutable std::mutex meta_mu_;
  PageId free_head_ = kInvalidPageId;
  std::atomic<uint64_t> free_count_{0};
  uint64_t user_root_ = 0;
  uint64_t epoch_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t crc_table_offset_pages_ = 0;
  // crcs_[id] = CRC32C of page id's content; 0 = free/unknown. Indexed up
  // to page_count (extended lazily on write).
  std::vector<uint32_t> crcs_;
  DiskModel* disk_model_ = nullptr;
  TxnManager* txns_ = nullptr;
  IoBackend* io_backend_ = nullptr;  // resolved lazily to the default

  // Registry counters (null when no registry is attached).
  struct {
    obs::Counter* reads = nullptr;
    obs::Counter* read_runs = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* fsyncs = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* seeks = nullptr;
    obs::Counter* io_batches = nullptr;
    obs::Gauge* io_inflight_peak = nullptr;
    obs::Gauge* io_backend_code = nullptr;
  } metrics_;
  // Largest batch submitted so far, mirrored into `io.inflight_peak`.
  std::atomic<int64_t> io_inflight_peak_{0};
  // Page that would continue the previous access without a seek; only
  // consulted for the `pagefile.seeks` counter, never for model cost.
  std::atomic<uint64_t> metrics_expected_next_{UINT64_MAX};
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_PAGE_FILE_H_
