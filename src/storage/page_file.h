#ifndef TILESTORE_STORAGE_PAGE_FILE_H_
#define TILESTORE_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_model.h"
#include "storage/env.h"

namespace tilestore {

/// Identifier of a page within a page file. Page 0 is the superblock;
/// 0 therefore doubles as the invalid/"null" page id in chains.
using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = 0;

/// Default page size. The paper's storage substrate (the O2 system)
/// managed BLOBs on pages of this order of magnitude; tile sizes
/// (32 KiB .. 256 KiB) are intended to be integral multiples of it.
inline constexpr uint32_t kDefaultPageSize = 4096;

/// \brief A file of fixed-size pages with a free list — the lowest layer
/// of the storage manager.
///
/// Layout: page 0 is the superblock (magic, page size, page count, free
/// list head, and one user-root slot the catalog layer uses to find its
/// metadata). Pages are allocated from the free list or by extending the
/// file; freed pages are chained through their first 8 bytes.
///
/// Every physical page read/write is reported to the attached `DiskModel`
/// (if any), which is how benchmarks obtain the paper's t_o. Superblock
/// and free-list maintenance is metadata traffic and is deliberately not
/// charged.
///
/// Concurrency: the read path (`ReadPage`, `ReadRun`) is thread-safe —
/// reads go through positional `pread` and never touch shared mutable
/// state beyond the (synchronized) disk model. Allocation, freeing, and
/// superblock maintenance are serialized by an internal mutex but assume a
/// single logical writer (the MDD load/update path); concurrent writers
/// racing readers of the *same* page get no atomicity guarantee.
class PageFile {
 public:
  /// Creates a new page file at `path` (fails with AlreadyExists).
  static Result<std::unique_ptr<PageFile>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Opens an existing page file, validating the superblock.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Allocates a page (reusing freed pages first). The caller must write
  /// the page before reading it back.
  Result<PageId> AllocatePage();

  /// Returns `id` to the free list.
  Status FreePage(PageId id);

  /// Reads page `id` into `out` (page_size() bytes). Thread-safe.
  Status ReadPage(PageId id, uint8_t* out);

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (count * page_size() bytes) with one positional read, charging the
  /// disk model once for the whole run. Thread-safe.
  Status ReadRun(PageId first, uint64_t count, uint8_t* out);

  /// Writes page `id` from `data` (page_size() bytes).
  Status WritePage(PageId id, const uint8_t* data);

  /// Persists the superblock and syncs file contents.
  Status Flush();

  uint32_t page_size() const { return page_size_; }
  /// Total pages including the superblock.
  uint64_t page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }
  uint64_t free_page_count() const {
    return free_count_.load(std::memory_order_acquire);
  }

  /// User-root slot: an opaque value (e.g. the catalog blob id) persisted
  /// in the superblock. Single-writer, like the rest of the metadata.
  uint64_t user_root() const { return user_root_; }
  void set_user_root(uint64_t root) { user_root_ = root; }

  /// Attaches a disk cost model; pass nullptr to detach. Not synchronized
  /// with in-flight I/O — attach before sharing the file across threads.
  void set_disk_model(DiskModel* model) { disk_model_ = model; }
  DiskModel* disk_model() const { return disk_model_; }

 private:
  PageFile(std::unique_ptr<File> file, uint32_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  Status ValidatePageId(PageId id) const;
  Status ValidatePageRun(PageId first, uint64_t count) const;
  Status WriteSuperblock();
  Status ReadSuperblock();

  std::unique_ptr<File> file_;
  uint32_t page_size_;
  std::atomic<uint64_t> page_count_{1};  // superblock
  // Guards allocation / free-list / superblock metadata.
  std::mutex meta_mu_;
  PageId free_head_ = kInvalidPageId;
  std::atomic<uint64_t> free_count_{0};
  uint64_t user_root_ = 0;
  DiskModel* disk_model_ = nullptr;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_PAGE_FILE_H_
