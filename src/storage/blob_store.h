#ifndef TILESTORE_STORAGE_BLOB_STORE_H_
#define TILESTORE_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "layout/placement.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tilestore {

/// Identifier of a BLOB: the page id of its header page.
using BlobId = uint64_t;
inline constexpr BlobId kInvalidBlobId = 0;

/// Read-path accounting for one BLOB retrieval (see `GetCoalesced`).
struct BlobReadStats {
  /// Coalesced physical reads issued (cache hits issue none).
  uint64_t physical_runs = 0;
  /// Chain pages touched (cached or physical).
  uint64_t pages = 0;
  /// True when the page chain was not consecutive and the read fell back
  /// to pointer walking for the tail.
  bool fell_back = false;
  /// Number of BLOBs that fell back (equals `fell_back ? 1 : 0` for the
  /// single-BLOB calls; `GetBatch` counts each fragmented chain).
  uint64_t fallback_chains = 0;
  /// Header-page reads `GetBatch` merged into a neighbouring BLOB's run
  /// because the two chains sit on consecutive pages — the payoff of
  /// SFC-ordered placement: adjacent tiles of *different* waves (or
  /// objects) become one physical read. Always 0 for single-BLOB calls.
  uint64_t cross_object_coalesced = 0;
};

/// \brief Variable-length BLOBs on top of the page file — the storage
/// abstraction the paper assumes ("cells of each tile are stored in a
/// separate BLOB", Section 5).
///
/// A BLOB is a chain of pages: the header page carries a magic, the total
/// payload size, and the next-page pointer; continuation pages carry a
/// next-page pointer and payload. Pages are allocated together at `Put`
/// time, so a freshly written BLOB occupies (mostly) consecutive pages and
/// reads back with one seek plus sequential transfer — the behaviour the
/// disk model is calibrated for.
///
/// All I/O goes through the `BufferPool` handed to the constructor. `Get`
/// and `GetCoalesced` are thread-safe (they only read); `Put` and `Delete`
/// belong to the single-writer load/update path.
class BlobStore {
 public:
  explicit BlobStore(BufferPool* pool);

  /// Writes a new BLOB; returns its id. Empty BLOBs are allowed. Pages
  /// come one at a time off the free list under the default first-fit
  /// placement, or as one consecutive run under `kContiguous` (see
  /// `set_placement`).
  Result<BlobId> Put(const std::vector<uint8_t>& data);
  Result<BlobId> Put(const uint8_t* data, size_t size);

  /// Writes a new BLOB into one consecutive page run regardless of the
  /// installed placement mode — the compactor's relocation primitive.
  Result<BlobId> PutContiguous(const std::vector<uint8_t>& data);
  Result<BlobId> PutContiguous(const uint8_t* data, size_t size);

  /// Writes a batch of BLOBs back to back inside ONE consecutive page
  /// run: payload i+1's header page is the page after payload i's last
  /// page. Returns one id per payload, in order. This is the compaction
  /// step's placement primitive — per-blob `PutContiguous` takes a run
  /// *per blob*, so single-page blobs would still land on whatever
  /// scattered holes the free list offers first.
  Result<std::vector<BlobId>> PutContiguousBatch(
      const std::vector<std::vector<uint8_t>>& payloads);

  /// Reads a BLOB back in full, one page at a time (the paper-exact cost
  /// path: every chain page is a separate pool access).
  Result<std::vector<uint8_t>> Get(BlobId id);

  /// Reads a BLOB back in full, speculating that its chain occupies
  /// consecutive pages (true for freshly `Put` BLOBs): all continuation
  /// pages are fetched with one coalesced `BufferPool::ReadRun`, then the
  /// chain pointers are verified. On a chain jump the tail is re-walked
  /// pointer by pointer — correctness never depends on the speculation,
  /// only the run count does. Total disk-model cost equals `Get` for
  /// consecutive chains; fragmented chains may charge extra for the
  /// speculatively read pages.
  Result<std::vector<uint8_t>> GetCoalesced(BlobId id,
                                            BlobReadStats* stats = nullptr);

  /// Batched `GetCoalesced` over many BLOBs: all header pages are
  /// submitted as one `BufferPool::ReadRunBatch`, then all speculative
  /// continuation runs as a second one, so every miss span of the whole
  /// set is in flight concurrently instead of read in a blocking loop.
  /// Disk-model charges are *deferred* by the pool and replayed here per
  /// BLOB in `ids` order, which keeps seek accounting (and `model_ms`)
  /// identical to calling `GetCoalesced` once per id. Fragmented chains
  /// fall back to the pointer walk for their tail, exactly like
  /// `GetCoalesced`. `payloads` is resized to `ids.size()`; on error the
  /// first failure in `ids` order is returned. Thread-safe.
  Status GetBatch(std::span<const BlobId> ids,
                  std::vector<std::vector<uint8_t>>* payloads,
                  BlobReadStats* stats = nullptr);

  /// Payload size of a BLOB without reading the payload.
  Result<uint64_t> Size(BlobId id);

  /// Physical placement summary of a BLOB, from its header page alone.
  /// `starts_adjacent` reports whether the chain *begins* consecutively
  /// (always exact for 1- and 2-page chains; a cheap proxy for longer
  /// ones — blobs are written front to back, so a chain that starts
  /// adjacent almost always stays adjacent). The compactor's run-length
  /// fragmentation statistic is built from these.
  struct BlobExtent {
    BlobId id = kInvalidBlobId;
    uint64_t size = 0;
    uint64_t pages = 0;
    bool starts_adjacent = false;
  };
  Result<BlobExtent> Stat(BlobId id);

  /// Frees all pages of the BLOB.
  Status Delete(BlobId id);

  /// Payload bytes that fit in one header / continuation page.
  size_t header_capacity() const;
  size_t continuation_capacity() const;

  /// Pages a payload of `size` bytes occupies.
  uint64_t PagesFor(uint64_t size) const;

  /// Placement mode consulted by `Put` (default first-fit). Not
  /// synchronized with in-flight writes — install before sharing.
  void set_placement(layout::PlacementMode mode) { placement_ = mode; }
  layout::PlacementMode placement() const { return placement_; }

 private:
  Result<std::vector<uint8_t>> GetImpl(BlobId id, bool coalesce,
                                       BlobReadStats* stats);
  Result<BlobId> PutImpl(const uint8_t* data, size_t size, bool contiguous);
  Status WriteChain(const uint8_t* data, size_t size,
                    const std::vector<PageId>& chain);

  BufferPool* pool_;
  layout::PlacementMode placement_ = layout::PlacementMode::kFirstFit;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_BLOB_STORE_H_
