#ifndef TILESTORE_STORAGE_BLOB_STORE_H_
#define TILESTORE_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tilestore {

/// Identifier of a BLOB: the page id of its header page.
using BlobId = uint64_t;
inline constexpr BlobId kInvalidBlobId = 0;

/// \brief Variable-length BLOBs on top of the page file — the storage
/// abstraction the paper assumes ("cells of each tile are stored in a
/// separate BLOB", Section 5).
///
/// A BLOB is a chain of pages: the header page carries a magic, the total
/// payload size, and the next-page pointer; continuation pages carry a
/// next-page pointer and payload. Pages are allocated together at `Put`
/// time, so a freshly written BLOB occupies (mostly) consecutive pages and
/// reads back with one seek plus sequential transfer — the behaviour the
/// disk model is calibrated for.
///
/// All I/O goes through the `BufferPool` handed to the constructor.
class BlobStore {
 public:
  explicit BlobStore(BufferPool* pool);

  /// Writes a new BLOB; returns its id. Empty BLOBs are allowed.
  Result<BlobId> Put(const std::vector<uint8_t>& data);
  Result<BlobId> Put(const uint8_t* data, size_t size);

  /// Reads a BLOB back in full.
  Result<std::vector<uint8_t>> Get(BlobId id);

  /// Payload size of a BLOB without reading the payload.
  Result<uint64_t> Size(BlobId id);

  /// Frees all pages of the BLOB.
  Status Delete(BlobId id);

  /// Payload bytes that fit in one header / continuation page.
  size_t header_capacity() const;
  size_t continuation_capacity() const;

 private:
  BufferPool* pool_;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_BLOB_STORE_H_
