#include "storage/wal.h"

#include <chrono>
#include <cstring>

#include "common/checksum.h"
#include "common/serde.h"

namespace tilestore {

namespace {

// Bytes before the CRC-covered region: u32 crc + u32 len.
constexpr size_t kRecordHeaderBytes = 8;
// CRC-covered fixed prefix: u64 lsn + u8 type + u64 txn_id.
constexpr size_t kRecordFixedBytes = 8 + 1 + 8;
// Upper bound used to reject garbage length fields while scanning.
constexpr uint64_t kMaxRecordBytes = 64u << 20;

bool ValidType(uint8_t t) {
  return t >= static_cast<uint8_t>(WalRecordType::kBegin) &&
         t <= static_cast<uint8_t>(WalRecordType::kCommit);
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, DiskModel* model) {
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/false);
  if (!file.ok()) {
    if (!file.status().IsNotFound()) return file.status();
    file = File::Open(path, /*create=*/true);
    if (!file.ok()) return file.status();
  }
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(std::move(file).MoveValue(), model));
  Result<uint64_t> size = wal->file_->Size();
  if (!size.ok()) return size.status();
  wal->end_ = size.value();
  if (wal->end_ != 0) {
    std::vector<WalRecord> records;
    Status st = ScanFile(path, &records);
    if (!st.ok()) return st;
    for (const WalRecord& r : records) {
      if (r.lsn >= wal->next_lsn_) wal->next_lsn_ = r.lsn + 1;
    }
  }
  return wal;
}

Status WriteAheadLog::ScanFile(const std::string& path,
                               std::vector<WalRecord>* out, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/false);
  if (!file.ok()) {
    if (file.status().IsNotFound()) return Status::OK();
    return file.status();
  }
  Result<uint64_t> size = file.value()->Size();
  if (!size.ok()) return size.status();
  std::vector<uint8_t> raw(size.value());
  if (!raw.empty()) {
    Status st = file.value()->ReadAt(0, raw.size(), raw.data());
    if (!st.ok()) return st;
  }

  size_t pos = 0;
  uint64_t prev_lsn = 0;
  const auto torn = [&]() {
    if (truncated != nullptr) *truncated = pos < raw.size();
    return Status::OK();
  };
  while (raw.size() - pos >= kRecordHeaderBytes + kRecordFixedBytes) {
    uint32_t crc;
    uint32_t len;
    std::memcpy(&crc, raw.data() + pos, 4);
    std::memcpy(&len, raw.data() + pos + 4, 4);
    if (len < kRecordFixedBytes || len > kMaxRecordBytes ||
        raw.size() - pos - kRecordHeaderBytes < len) {
      return torn();
    }
    const uint8_t* body = raw.data() + pos + kRecordHeaderBytes;
    if (Crc32c(body, len) != crc) return torn();

    WalRecord record;
    std::memcpy(&record.lsn, body, 8);
    const uint8_t type = body[8];
    std::memcpy(&record.txn_id, body + 9, 8);
    if (!ValidType(type) || record.lsn <= prev_lsn) return torn();
    record.type = static_cast<WalRecordType>(type);

    const std::vector<uint8_t> payload(body + kRecordFixedBytes, body + len);
    ByteReader r(payload);
    Status st = Status::OK();
    switch (record.type) {
      case WalRecordType::kBegin:
        break;
      case WalRecordType::kPageImage: {
        st = r.U64(&record.page);
        if (st.ok()) {
          record.image.assign(payload.begin() + r.position(), payload.end());
        }
        break;
      }
      case WalRecordType::kFreeLink: {
        st = r.U64(&record.page);
        if (st.ok()) st = r.U64(&record.next);
        break;
      }
      case WalRecordType::kCommit: {
        st = r.U64(&record.meta.page_count);
        if (st.ok()) st = r.U64(&record.meta.free_head);
        if (st.ok()) st = r.U64(&record.meta.free_count);
        if (st.ok()) st = r.U64(&record.meta.user_root);
        break;
      }
    }
    if (!st.ok()) return torn();
    prev_lsn = record.lsn;
    out->push_back(std::move(record));
    pos += kRecordHeaderBytes + len;
  }
  return torn();
}

Status WriteAheadLog::Append(WalRecordType type, uint64_t txn_id,
                             const std::vector<uint8_t>& payload) {
  const uint32_t len = static_cast<uint32_t>(kRecordFixedBytes +
                                             payload.size());
  std::vector<uint8_t> buf(kRecordHeaderBytes + len);
  const uint64_t lsn = next_lsn_;
  std::memcpy(buf.data() + 8, &lsn, 8);
  buf[16] = static_cast<uint8_t>(type);
  std::memcpy(buf.data() + 17, &txn_id, 8);
  if (!payload.empty()) {
    std::memcpy(buf.data() + kRecordHeaderBytes + kRecordFixedBytes,
                payload.data(), payload.size());
  }
  const uint32_t crc = Crc32c(buf.data() + kRecordHeaderBytes, len);
  std::memcpy(buf.data(), &crc, 4);
  std::memcpy(buf.data() + 4, &len, 4);

  Status st = file_->WriteAt(end_, buf.data(), buf.size());
  if (!st.ok()) return st;
  if (model_ != nullptr) model_->OnWalAppend(end_, buf.size());
  if (metrics_.appends != nullptr) {
    metrics_.appends->Add(1);
    metrics_.bytes->Add(buf.size());
  }
  end_ += buf.size();
  next_lsn_ = lsn + 1;
  return Status::OK();
}

void WriteAheadLog::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.appends = registry->counter("wal.appends");
  metrics_.bytes = registry->counter("wal.bytes");
  metrics_.syncs = registry->counter("wal.syncs");
  metrics_.fsync_ms = registry->latency_histogram("wal.fsync_ms");
}

Status WriteAheadLog::AppendBegin(uint64_t txn_id) {
  return Append(WalRecordType::kBegin, txn_id, {});
}

Status WriteAheadLog::AppendPageImage(uint64_t txn_id, PageId page,
                                      const uint8_t* data, size_t n) {
  ByteWriter w;
  w.U64(page);
  w.Bytes(data, n);
  return Append(WalRecordType::kPageImage, txn_id, w.Take());
}

Status WriteAheadLog::AppendFreeLink(uint64_t txn_id, PageId page,
                                     PageId next) {
  ByteWriter w;
  w.U64(page);
  w.U64(next);
  return Append(WalRecordType::kFreeLink, txn_id, w.Take());
}

Status WriteAheadLog::AppendCommit(uint64_t txn_id, const PageFileMeta& meta) {
  ByteWriter w;
  w.U64(meta.page_count);
  w.U64(meta.free_head);
  w.U64(meta.free_count);
  w.U64(meta.user_root);
  return Append(WalRecordType::kCommit, txn_id, w.Take());
}

Status WriteAheadLog::Sync() {
  const auto start = std::chrono::steady_clock::now();
  Status st = file_->Sync();
  if (!st.ok()) return st;
  if (model_ != nullptr) model_->OnFsync();
  if (metrics_.syncs != nullptr) {
    metrics_.syncs->Add(1);
    metrics_.fsync_ms->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  Status st = file_->Truncate(0);
  if (!st.ok()) return st;
  end_ = 0;
  return Sync();
}

Status WriteAheadLog::TruncateTo(uint64_t size) {
  if (size > end_) {
    return Status::InvalidArgument("WAL TruncateTo beyond the log end");
  }
  // This also cuts off any torn bytes a failed append left past end_.
  Status st = file_->Truncate(size);
  if (!st.ok()) return st;
  end_ = size;
  // The truncation itself must be durable: if it is not, a crash could
  // resurrect the records that were just cut off.
  return Sync();
}

}  // namespace tilestore
