#include "storage/blob_store.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

namespace tilestore {

namespace {

constexpr uint32_t kBlobMagic = 0x5453424c;  // "TSBL"

// Header page layout:  u32 magic, u32 reserved, u64 size, u64 next, payload
// Continuation layout: u64 next, payload
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr size_t kContinuationBytes = 8;

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

BlobStore::BlobStore(BufferPool* pool) : pool_(pool) {}

size_t BlobStore::header_capacity() const {
  return pool_->page_file()->page_size() - kHeaderBytes;
}

size_t BlobStore::continuation_capacity() const {
  return pool_->page_file()->page_size() - kContinuationBytes;
}

Result<BlobId> BlobStore::Put(const std::vector<uint8_t>& data) {
  return Put(data.data(), data.size());
}

Result<BlobId> BlobStore::Put(const uint8_t* data, size_t size) {
  return PutImpl(data, size,
                 placement_ == layout::PlacementMode::kContiguous);
}

Result<BlobId> BlobStore::PutContiguous(const std::vector<uint8_t>& data) {
  return PutContiguous(data.data(), data.size());
}

Result<BlobId> BlobStore::PutContiguous(const uint8_t* data, size_t size) {
  return PutImpl(data, size, /*contiguous=*/true);
}

uint64_t BlobStore::PagesFor(uint64_t size) const {
  uint64_t pages = 1;
  if (size > header_capacity()) {
    const uint64_t overflow = size - header_capacity();
    pages += (overflow + continuation_capacity() - 1) / continuation_capacity();
  }
  return pages;
}

Result<BlobId> BlobStore::PutImpl(const uint8_t* data, size_t size,
                                  bool contiguous) {
  PageFile* file = pool_->page_file();

  // Number of pages: one header plus continuations for the overflow.
  const size_t pages = static_cast<size_t>(PagesFor(size));

  // Allocate the whole chain up front. Contiguous placement takes one
  // consecutive run; first-fit pops the free list page by page, which is
  // (mostly) consecutive only while the list is unchurned.
  std::vector<PageId> chain(pages);
  if (contiguous) {
    Result<PageId> first = file->AllocateRun(pages);
    if (!first.ok()) return first.status();
    for (size_t i = 0; i < pages; ++i) chain[i] = first.value() + i;
  } else {
    for (size_t i = 0; i < pages; ++i) {
      Result<PageId> id = file->AllocatePage();
      if (!id.ok()) return id.status();
      chain[i] = id.value();
    }
  }

  Status st = WriteChain(data, size, chain);
  if (!st.ok()) return st;
  return chain[0];
}

Status BlobStore::WriteChain(const uint8_t* data, size_t size,
                             const std::vector<PageId>& chain) {
  const size_t page_size = pool_->page_file()->page_size();
  const size_t pages = chain.size();
  std::vector<uint8_t> page(page_size, 0);
  size_t consumed = 0;
  for (size_t i = 0; i < pages; ++i) {
    std::memset(page.data(), 0, page_size);
    const PageId next = (i + 1 < pages) ? chain[i + 1] : kInvalidPageId;
    size_t capacity;
    uint8_t* payload;
    if (i == 0) {
      PutU32(page.data() + 0, kBlobMagic);
      PutU32(page.data() + 4, 0);
      PutU64(page.data() + 8, size);
      PutU64(page.data() + 16, next);
      payload = page.data() + kHeaderBytes;
      capacity = header_capacity();
    } else {
      PutU64(page.data(), next);
      payload = page.data() + kContinuationBytes;
      capacity = continuation_capacity();
    }
    const size_t chunk = std::min(capacity, size - consumed);
    if (chunk > 0) {
      std::memcpy(payload, data + consumed, chunk);
    }
    consumed += chunk;
    Status st = pool_->WritePage(chain[i], page.data());
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Result<std::vector<BlobId>> BlobStore::PutContiguousBatch(
    const std::vector<std::vector<uint8_t>>& payloads) {
  std::vector<BlobId> ids;
  ids.reserve(payloads.size());
  if (payloads.empty()) return ids;
  uint64_t total = 0;
  for (const std::vector<uint8_t>& p : payloads) total += PagesFor(p.size());
  Result<PageId> first = pool_->page_file()->AllocateRun(total);
  if (!first.ok()) return first.status();
  PageId cursor = first.value();
  for (const std::vector<uint8_t>& p : payloads) {
    const size_t pages = static_cast<size_t>(PagesFor(p.size()));
    std::vector<PageId> chain(pages);
    for (size_t i = 0; i < pages; ++i) {
      chain[i] = cursor + static_cast<PageId>(i);
    }
    Status st = WriteChain(p.data(), p.size(), chain);
    if (!st.ok()) return st;
    ids.push_back(chain[0]);
    cursor += static_cast<PageId>(pages);
  }
  return ids;
}

Result<std::vector<uint8_t>> BlobStore::Get(BlobId id) {
  return GetImpl(id, /*coalesce=*/false, nullptr);
}

Result<std::vector<uint8_t>> BlobStore::GetCoalesced(BlobId id,
                                                     BlobReadStats* stats) {
  return GetImpl(id, /*coalesce=*/true, stats);
}

Result<std::vector<uint8_t>> BlobStore::GetImpl(BlobId id, bool coalesce,
                                                BlobReadStats* stats) {
  PageFile* file = pool_->page_file();
  const size_t page_size = file->page_size();
  std::vector<uint8_t> page(page_size);

  uint64_t runs = 0;
  uint64_t pages_touched = 1;
  bool fell_back = false;

  Status st = coalesce ? pool_->ReadRun(id, 1, page.data(), &runs)
                       : pool_->ReadPage(id, page.data());
  if (!st.ok()) return st;
  if (GetU32(page.data()) != kBlobMagic) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a BLOB header");
  }
  const uint64_t size = GetU64(page.data() + 8);
  PageId next = GetU64(page.data() + 16);

  std::vector<uint8_t> out;
  out.reserve(size);
  const size_t head_chunk =
      std::min<uint64_t>(size, header_capacity());
  out.insert(out.end(), page.data() + kHeaderBytes,
             page.data() + kHeaderBytes + head_chunk);

  if (coalesce && out.size() < size) {
    // Speculate that the continuation chain is the consecutive page run
    // [id+1, id+1+rem): fetch it in one coalesced read, then verify the
    // pointers while copying payload out. A chain jump just ends the
    // verified prefix; the classic walk below finishes the tail.
    const uint64_t rem = (size - out.size() + continuation_capacity() - 1) /
                         continuation_capacity();
    if (next == id + 1 && id + 1 + rem <= file->page_count()) {
      std::vector<uint8_t> buf(rem * page_size);
      st = pool_->ReadRun(id + 1, rem, buf.data(), &runs);
      if (!st.ok()) return st;
      for (uint64_t j = 0; j < rem && out.size() < size; ++j) {
        if (next != id + 1 + j) {
          fell_back = true;
          break;
        }
        const uint8_t* p = buf.data() + j * page_size;
        next = GetU64(p);
        const size_t chunk =
            std::min<uint64_t>(size - out.size(), continuation_capacity());
        out.insert(out.end(), p + kContinuationBytes,
                   p + kContinuationBytes + chunk);
        ++pages_touched;
      }
    } else if (next != kInvalidPageId) {
      fell_back = true;
    }
  }

  while (out.size() < size) {
    if (next == kInvalidPageId) {
      return Status::Corruption("BLOB chain of " + std::to_string(id) +
                                " ends before its declared size");
    }
    st = coalesce ? pool_->ReadRun(next, 1, page.data(), &runs)
                  : pool_->ReadPage(next, page.data());
    if (!st.ok()) return st;
    next = GetU64(page.data());
    const size_t chunk =
        std::min<uint64_t>(size - out.size(), continuation_capacity());
    out.insert(out.end(), page.data() + kContinuationBytes,
               page.data() + kContinuationBytes + chunk);
    ++pages_touched;
  }
  if (stats != nullptr) {
    stats->physical_runs += runs;
    stats->pages += pages_touched;
    stats->fell_back = stats->fell_back || fell_back;
    if (fell_back) ++stats->fallback_chains;
  }
  return out;
}

Status BlobStore::GetBatch(std::span<const BlobId> ids,
                           std::vector<std::vector<uint8_t>>* payloads,
                           BlobReadStats* stats) {
  PageFile* file = pool_->page_file();
  const size_t page_size = file->page_size();
  const size_t n = ids.size();
  payloads->assign(n, {});
  if (n == 0) return Status::OK();

  uint64_t runs = 0;
  uint64_t pages_touched = 0;
  bool fell_back = false;
  uint64_t fallback_chain_count = 0;

  // Repeated ids are served through the sequential path at their logical
  // position (all cache hits by then), so the batch never reads one page
  // twice where the sequential loop would have hit the pool.
  std::unordered_set<BlobId> seen;
  std::vector<uint8_t> dup(n, 0);
  std::vector<size_t> batch_index(n, 0);  // request index in phase A
  size_t unique = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!seen.insert(ids[i]).second) {
      dup[i] = 1;
    } else {
      batch_index[i] = unique++;
    }
  }

  // Phase A: every header page, one batch. Header pages of *different*
  // BLOBs that sit on consecutive pages — the normal layout for
  // SFC-placed single-page tiles — are merged into one physical run;
  // their destination slots are already adjacent because unique ids fill
  // `headers` in first-appearance order. Charges are deferred so they can
  // be replayed interleaved with each BLOB's continuation charges.
  std::vector<uint8_t> headers(unique * page_size);
  std::vector<PageRunRequest> header_runs;
  std::vector<size_t> header_run_of(unique, 0);  // unique index -> run
  header_runs.reserve(unique);
  for (size_t i = 0; i < n; ++i) {
    if (dup[i] != 0) continue;
    uint8_t* dst = headers.data() + batch_index[i] * page_size;
    if (!header_runs.empty()) {
      PageRunRequest& prev = header_runs.back();
      if (prev.first + prev.count == ids[i] &&
          prev.out + prev.count * page_size == dst) {
        header_run_of[batch_index[i]] = header_runs.size() - 1;
        ++prev.count;
        continue;
      }
    }
    header_run_of[batch_index[i]] = header_runs.size();
    header_runs.push_back(PageRunRequest{ids[i], 1, dst});
  }
  const uint64_t merged_headers =
      unique - static_cast<uint64_t>(header_runs.size());
  std::vector<DeferredPageCharge> header_charges;
  Status st = pool_->ReadRunBatch(header_runs, &runs, &header_charges);
  if (!st.ok()) return st;

  // Parse headers and plan the speculative continuation runs.
  struct Plan {
    uint64_t size = 0;
    PageId next = kInvalidPageId;
    bool speculate = false;
    size_t cont_index = 0;  // request index in phase B
    uint64_t rem = 0;
  };
  std::vector<Plan> plans(n);
  std::vector<PageRunRequest> cont_runs;
  std::vector<std::vector<uint8_t>> cont_bufs;
  for (size_t i = 0; i < n; ++i) {
    if (dup[i] != 0) continue;
    const uint8_t* header = headers.data() + batch_index[i] * page_size;
    if (GetU32(header) != kBlobMagic) {
      return Status::Corruption("page " + std::to_string(ids[i]) +
                                " is not a BLOB header");
    }
    Plan& plan = plans[i];
    plan.size = GetU64(header + 8);
    plan.next = GetU64(header + 16);
    const uint64_t head_chunk =
        std::min<uint64_t>(plan.size, header_capacity());
    if (head_chunk < plan.size) {
      plan.rem = (plan.size - head_chunk + continuation_capacity() - 1) /
                 continuation_capacity();
      if (plan.next == ids[i] + 1 &&
          ids[i] + 1 + plan.rem <= file->page_count()) {
        plan.speculate = true;
        plan.cont_index = cont_runs.size();
        cont_bufs.emplace_back(plan.rem * page_size);
        cont_runs.push_back(
            PageRunRequest{ids[i] + 1, plan.rem, cont_bufs.back().data()});
      }
    }
  }

  // Phase B: every speculative continuation run, one batch.
  std::vector<DeferredPageCharge> cont_charges;
  st = pool_->ReadRunBatch(cont_runs, &runs, &cont_charges);
  if (!st.ok()) return st;

  // Assembly: per BLOB in `ids` order, replay its deferred charges
  // (header span, then continuation spans) and walk any fragmented tail
  // with immediately-charged reads — the exact charge sequence of a
  // sequential GetCoalesced loop.
  size_t header_cursor = 0;
  size_t cont_cursor = 0;
  std::vector<uint8_t> page(page_size);
  for (size_t i = 0; i < n; ++i) {
    if (dup[i] != 0) {
      BlobReadStats dup_stats;
      Result<std::vector<uint8_t>> copy =
          GetImpl(ids[i], /*coalesce=*/true, &dup_stats);
      if (!copy.ok()) return copy.status();
      runs += dup_stats.physical_runs;
      pages_touched += dup_stats.pages;
      fell_back = fell_back || dup_stats.fell_back;
      fallback_chain_count += dup_stats.fallback_chains;
      (*payloads)[i] = std::move(copy).MoveValue();
      continue;
    }
    const Plan& plan = plans[i];
    // A merged header run carries the charges of every BLOB it covers;
    // they replay once, at the first covered BLOB (the cursor only moves
    // forward, so later members of the group find it already past).
    while (header_cursor < header_charges.size() &&
           header_charges[header_cursor].request ==
               header_run_of[batch_index[i]]) {
      file->ChargeReadRun(header_charges[header_cursor].first,
                          header_charges[header_cursor].count);
      ++header_cursor;
    }

    const uint8_t* header = headers.data() + batch_index[i] * page_size;
    std::vector<uint8_t>& out = (*payloads)[i];
    out.reserve(plan.size);
    const size_t head_chunk =
        std::min<uint64_t>(plan.size, header_capacity());
    out.insert(out.end(), header + kHeaderBytes,
               header + kHeaderBytes + head_chunk);
    ++pages_touched;
    PageId next = plan.next;
    bool blob_fell_back = false;

    if (plan.speculate) {
      while (cont_cursor < cont_charges.size() &&
             cont_charges[cont_cursor].request == plan.cont_index) {
        file->ChargeReadRun(cont_charges[cont_cursor].first,
                            cont_charges[cont_cursor].count);
        ++cont_cursor;
      }
      const std::vector<uint8_t>& buf = cont_bufs[plan.cont_index];
      for (uint64_t j = 0; j < plan.rem && out.size() < plan.size; ++j) {
        if (next != ids[i] + 1 + j) {
          blob_fell_back = true;
          break;
        }
        const uint8_t* p = buf.data() + j * page_size;
        next = GetU64(p);
        const size_t chunk = std::min<uint64_t>(plan.size - out.size(),
                                                continuation_capacity());
        out.insert(out.end(), p + kContinuationBytes,
                   p + kContinuationBytes + chunk);
        ++pages_touched;
      }
    } else if (plan.rem > 0 && next != kInvalidPageId) {
      blob_fell_back = true;
    }
    if (blob_fell_back) {
      fell_back = true;
      ++fallback_chain_count;
    }

    while (out.size() < plan.size) {
      if (next == kInvalidPageId) {
        return Status::Corruption("BLOB chain of " + std::to_string(ids[i]) +
                                  " ends before its declared size");
      }
      st = pool_->ReadRun(next, 1, page.data(), &runs);
      if (!st.ok()) return st;
      next = GetU64(page.data());
      const size_t chunk = std::min<uint64_t>(plan.size - out.size(),
                                              continuation_capacity());
      out.insert(out.end(), page.data() + kContinuationBytes,
                 page.data() + kContinuationBytes + chunk);
      ++pages_touched;
    }
  }

  if (stats != nullptr) {
    stats->physical_runs += runs;
    stats->pages += pages_touched;
    stats->fell_back = stats->fell_back || fell_back;
    stats->fallback_chains += fallback_chain_count;
    stats->cross_object_coalesced += merged_headers;
  }
  return Status::OK();
}

Result<uint64_t> BlobStore::Size(BlobId id) {
  std::vector<uint8_t> page(pool_->page_file()->page_size());
  Status st = pool_->ReadPage(id, page.data());
  if (!st.ok()) return st;
  if (GetU32(page.data()) != kBlobMagic) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a BLOB header");
  }
  return GetU64(page.data() + 8);
}

Result<BlobStore::BlobExtent> BlobStore::Stat(BlobId id) {
  std::vector<uint8_t> page(pool_->page_file()->page_size());
  Status st = pool_->ReadPage(id, page.data());
  if (!st.ok()) return st;
  if (GetU32(page.data()) != kBlobMagic) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a BLOB header");
  }
  BlobExtent extent;
  extent.id = id;
  extent.size = GetU64(page.data() + 8);
  extent.pages = PagesFor(extent.size);
  const PageId next = GetU64(page.data() + 16);
  extent.starts_adjacent = extent.pages == 1 || next == id + 1;
  return extent;
}

Status BlobStore::Delete(BlobId id) {
  PageFile* file = pool_->page_file();
  std::vector<uint8_t> page(file->page_size());

  Status st = pool_->ReadPage(id, page.data());
  if (!st.ok()) return st;
  if (GetU32(page.data()) != kBlobMagic) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is not a BLOB header");
  }
  const uint64_t size = GetU64(page.data() + 8);
  PageId next = GetU64(page.data() + 16);
  pool_->Invalidate(id);
  st = file->FreePage(id);
  if (!st.ok()) return st;

  uint64_t remaining =
      size > header_capacity() ? size - header_capacity() : 0;
  while (remaining > 0) {
    if (next == kInvalidPageId) {
      return Status::Corruption("BLOB chain of " + std::to_string(id) +
                                " ends before its declared size");
    }
    st = pool_->ReadPage(next, page.data());
    if (!st.ok()) return st;
    const PageId current = next;
    next = GetU64(page.data());
    pool_->Invalidate(current);
    st = file->FreePage(current);
    if (!st.ok()) return st;
    remaining -= std::min<uint64_t>(remaining, continuation_capacity());
  }
  return Status::OK();
}

}  // namespace tilestore
