#ifndef TILESTORE_STORAGE_TILE_CACHE_H_
#define TILESTORE_STORAGE_TILE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/tile.h"
#include "obs/metrics.h"
#include "storage/blob_store.h"

namespace tilestore {

/// \brief A memory-bounded, sharded LRU cache of *decoded* tiles, sitting
/// above the buffer pool (which caches raw pages).
///
/// The buffer pool makes repeated queries cheap on the t_o axis, but a
/// warm query still re-assembles each tile's BLOB page chain and re-runs
/// decompression on every execution — the t_cpu the paper charges for
/// "composing tile parts" is paid again and again. This cache keeps the
/// finished product: entries are keyed by `(object id, blob id)` where the
/// object id is a store-assigned epoch (`MDDObject::cache_id`), and values
/// are immutable decoded tiles behind `shared_ptr` pins, so any number of
/// concurrent queries share one decoded copy and an eviction or
/// invalidation never frees a tile a reader still holds.
///
/// Staleness protocol (see DESIGN.md §10, §12): every object mutation
/// (`InsertTile`, `RemoveTile`, `WriteRegion`, `RetileRegion`, drop)
/// invalidates the object's entries, transaction rollback invalidates
/// exactly the objects the transaction touched (per-MDD epochs — other
/// objects keep their warm entries), and WAL recovery starts from an
/// empty cache by construction. BLOB ids may
/// be reused after a free, but a free is only ever triggered by one of the
/// invalidating mutations of the owning object, so a key can never
/// resurrect with different bytes.
///
/// A capacity of 0 disables the cache entirely (the default — cold-run
/// cost-model numbers must stay bit-identical to the uncached paths).
/// All methods are thread-safe.
class TileCache {
 public:
  /// `capacity_bytes` is the byte budget over all shards (decoded tile
  /// payload bytes); 0 disables caching. `shards` spreads lock contention
  /// and is rounded up to at least 1.
  explicit TileCache(size_t capacity_bytes, size_t shards = 8);

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// Registers `tilecache.*` metrics (hits/misses/inserts/evictions/
  /// invalidations counters, bytes/entries gauges); nullptr detaches.
  /// Attach before sharing across threads.
  void set_metrics(obs::MetricsRegistry* registry);

  bool enabled() const { return capacity_bytes_ > 0; }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Returns a pinned handle to the cached tile, or null on a miss. The
  /// handle stays valid after eviction/invalidation (the cache drops its
  /// reference; the reader keeps its own).
  std::shared_ptr<const Tile> Lookup(uint64_t object_id, BlobId blob);

  /// Inserts a decoded tile, evicting LRU entries of the shard until the
  /// shard budget holds. Returns the canonical handle: if another thread
  /// raced the same key in first, the already-cached tile wins and is
  /// returned instead of `tile`. No-op (returns `tile`) when disabled or
  /// the tile alone exceeds the shard budget.
  std::shared_ptr<const Tile> Insert(uint64_t object_id, BlobId blob,
                                     std::shared_ptr<const Tile> tile);

  /// Negative-region cache: remembers that `region` (its canonical string
  /// form) intersected no tiles of `object_id`, so a repeated probe of the
  /// same empty space skips the index walk entirely. Exact-match only —
  /// the full region string is stored, so a hit can never be a hash
  /// collision. Shares the invalidation protocol of the tile entries:
  /// `InvalidateObject` and `Clear` drop negatives too, and the store's
  /// cache-epoch key makes stale entries unreachable besides.
  bool LookupNegativeRegion(uint64_t object_id, const std::string& region);

  /// Records a "no tiles here" answer. Bounded (a full set is cleared
  /// wholesale — empty-space probes are cheap to relearn); no-op when the
  /// cache is disabled.
  void InsertNegativeRegion(uint64_t object_id, const std::string& region);

  /// Drops every entry of `object_id` (mutation/drop invalidation),
  /// including its negative regions.
  void InvalidateObject(uint64_t object_id);

  /// Drops everything (transaction rollback).
  void Clear();

  /// Cached decoded bytes / entry count over all shards.
  size_t size_bytes() const;
  size_t entry_count() const;

 private:
  struct Key {
    uint64_t object_id;
    BlobId blob;
    bool operator==(const Key& other) const {
      return object_id == other.object_id && blob == other.blob;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Split-mix finish over the two ids; cheap and well-distributed.
      uint64_t h = k.object_id * 0x9E3779B97F4A7C15ull ^ k.blob;
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ull;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const Tile> tile;
    size_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map points into the list.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }
  // Evicts from the back of `shard` until its budget holds; caller locks.
  void EvictLocked(Shard* shard);

  const size_t capacity_bytes_;
  const size_t shard_capacity_bytes_;
  std::vector<Shard> shards_;

  // Negative-region set, keyed "<object_id>|<region string>". Small and
  // exact; one mutex suffices (a lookup is one set probe).
  static constexpr size_t kNegativeCapacity = 1024;
  std::mutex negative_mu_;
  std::unordered_set<std::string> negative_;

  struct {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* inserts = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* invalidations = nullptr;
    obs::Counter* negative_hits = nullptr;
    obs::Counter* negative_misses = nullptr;
    obs::Counter* negative_inserts = nullptr;
    obs::Gauge* bytes = nullptr;
    obs::Gauge* entries = nullptr;
  } metrics_;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_TILE_CACHE_H_
