#include "storage/disk_model.h"

namespace tilestore {

void DiskModel::OnRead(uint64_t page_id, size_t bytes) {
  if (page_id != expected_next_) {
    ++read_seeks_;
    read_ms_ += params_.seek_ms;
  }
  read_ms_ += TransferMs(bytes);
  ++pages_read_;
  bytes_read_ += bytes;
  expected_next_ = page_id + 1;
}

void DiskModel::OnWrite(uint64_t page_id, size_t bytes) {
  if (page_id != expected_next_) {
    ++write_seeks_;
    write_ms_ += params_.seek_ms;
  }
  write_ms_ += TransferMs(bytes);
  ++pages_written_;
  bytes_written_ += bytes;
  expected_next_ = page_id + 1;
}

void DiskModel::Reset() {
  expected_next_ = UINT64_MAX;
  read_ms_ = 0;
  write_ms_ = 0;
  pages_read_ = 0;
  pages_written_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  read_seeks_ = 0;
  write_seeks_ = 0;
}

}  // namespace tilestore
