#include "storage/disk_model.h"

namespace tilestore {

DiskModel::DiskModel(DiskParams params, obs::MetricsRegistry* metrics)
    : params_(params) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  pages_read_ = metrics->counter("disk.pages_read");
  pages_written_ = metrics->counter("disk.pages_written");
  bytes_read_ = metrics->counter("disk.bytes_read");
  bytes_written_ = metrics->counter("disk.bytes_written");
  read_seeks_ = metrics->counter("disk.read_seeks");
  write_seeks_ = metrics->counter("disk.write_seeks");
  wal_appends_ = metrics->counter("disk.wal_appends");
  wal_bytes_ = metrics->counter("disk.wal_bytes");
  fsyncs_ = metrics->counter("disk.fsyncs");
  read_ms_gauge_ = metrics->double_gauge("disk.read_ms");
  write_ms_gauge_ = metrics->double_gauge("disk.write_ms");
  wal_ms_gauge_ = metrics->double_gauge("disk.wal_ms");
  fsync_ms_gauge_ = metrics->double_gauge("disk.fsync_ms");
}

void DiskModel::PublishMsLocked() {
  read_ms_gauge_->Set(read_ms_);
  write_ms_gauge_->Set(write_ms_);
  wal_ms_gauge_->Set(wal_ms_);
  fsync_ms_gauge_->Set(fsync_ms_);
}

void DiskModel::OnRead(uint64_t page_id, size_t bytes) {
  OnReadRun(page_id, 1, bytes);
}

void DiskModel::OnReadRun(uint64_t first_page, uint64_t pages, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_page != expected_next_) {
    read_seeks_->Add(1);
    read_ms_ += params_.seek_ms;
  }
  read_ms_ += TransferMs(bytes);
  pages_read_->Add(pages);
  bytes_read_->Add(bytes);
  expected_next_ = first_page + pages;
  wal_expected_offset_ = UINT64_MAX;
  PublishMsLocked();
}

void DiskModel::OnWrite(uint64_t page_id, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id != expected_next_) {
    write_seeks_->Add(1);
    write_ms_ += params_.seek_ms;
  }
  write_ms_ += TransferMs(bytes);
  pages_written_->Add(1);
  bytes_written_->Add(bytes);
  expected_next_ = page_id + 1;
  wal_expected_offset_ = UINT64_MAX;
  PublishMsLocked();
}

void DiskModel::OnWalAppend(uint64_t offset, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset != wal_expected_offset_) {
    wal_ms_ += params_.seek_ms;
  }
  wal_ms_ += TransferMs(bytes);
  wal_appends_->Add(1);
  wal_bytes_->Add(bytes);
  wal_expected_offset_ = offset + bytes;
  expected_next_ = UINT64_MAX;
  PublishMsLocked();
}

void DiskModel::OnFsync() {
  std::lock_guard<std::mutex> lock(mu_);
  fsync_ms_ += params_.seek_ms;
  fsyncs_->Add(1);
  PublishMsLocked();
}

void DiskModel::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  expected_next_ = UINT64_MAX;
  wal_expected_offset_ = UINT64_MAX;
  read_ms_ = 0;
  write_ms_ = 0;
  wal_ms_ = 0;
  fsync_ms_ = 0;
  pages_read_->Reset();
  pages_written_->Reset();
  bytes_read_->Reset();
  bytes_written_->Reset();
  read_seeks_->Reset();
  write_seeks_->Reset();
  wal_appends_->Reset();
  wal_bytes_->Reset();
  fsyncs_->Reset();
  PublishMsLocked();
}

}  // namespace tilestore
