#include "storage/disk_model.h"

namespace tilestore {

void DiskModel::OnRead(uint64_t page_id, size_t bytes) {
  OnReadRun(page_id, 1, bytes);
}

void DiskModel::OnReadRun(uint64_t first_page, uint64_t pages, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_page != expected_next_) {
    ++read_seeks_;
    read_ms_ += params_.seek_ms;
  }
  read_ms_ += TransferMs(bytes);
  pages_read_ += pages;
  bytes_read_ += bytes;
  expected_next_ = first_page + pages;
  wal_expected_offset_ = UINT64_MAX;
}

void DiskModel::OnWrite(uint64_t page_id, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id != expected_next_) {
    ++write_seeks_;
    write_ms_ += params_.seek_ms;
  }
  write_ms_ += TransferMs(bytes);
  ++pages_written_;
  bytes_written_ += bytes;
  expected_next_ = page_id + 1;
  wal_expected_offset_ = UINT64_MAX;
}

void DiskModel::OnWalAppend(uint64_t offset, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset != wal_expected_offset_) {
    wal_ms_ += params_.seek_ms;
  }
  wal_ms_ += TransferMs(bytes);
  ++wal_appends_;
  wal_bytes_ += bytes;
  wal_expected_offset_ = offset + bytes;
  expected_next_ = UINT64_MAX;
}

void DiskModel::OnFsync() {
  std::lock_guard<std::mutex> lock(mu_);
  fsync_ms_ += params_.seek_ms;
  ++fsyncs_;
}

void DiskModel::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  expected_next_ = UINT64_MAX;
  wal_expected_offset_ = UINT64_MAX;
  read_ms_ = 0;
  write_ms_ = 0;
  pages_read_ = 0;
  pages_written_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  read_seeks_ = 0;
  write_seeks_ = 0;
  wal_ms_ = 0;
  wal_appends_ = 0;
  wal_bytes_ = 0;
  fsync_ms_ = 0;
  fsyncs_ = 0;
}

}  // namespace tilestore
