#include "storage/txn.h"

#include <chrono>
#include <cstring>

#include "storage/buffer_pool.h"

namespace tilestore {

// ---------------------------------------------------------------------------
// TransactionContext

void TransactionContext::StagePageImage(PageId page, const uint8_t* data,
                                        size_t n) {
  // Always append rather than overwrite in place: a free-link record for
  // the same page may sit between two images of it, and apply/replay
  // depend on operation order (the link write clobbers the image's last
  // 8 bytes, so it must not move after a newer image).
  ops_.push_back(Op{WalRecordType::kPageImage, page, kInvalidPageId,
                    std::vector<uint8_t>(data, data + n)});
  latest_image_[page] = ops_.size() - 1;
}

bool TransactionContext::ReadStagedPage(PageId page, uint8_t* out) const {
  auto it = latest_image_.find(page);
  if (it == latest_image_.end()) return false;
  const std::vector<uint8_t>& image = ops_[it->second].image;
  std::memcpy(out, image.data(), image.size());
  return true;
}

bool TransactionContext::HasStagedInRange(PageId first, uint64_t count) const {
  if (latest_image_.empty()) return false;
  for (uint64_t i = 0; i < count; ++i) {
    if (latest_image_.count(first + i) > 0) return true;
  }
  return false;
}

void TransactionContext::StageFreeLink(PageId page, PageId next) {
  ops_.push_back(Op{WalRecordType::kFreeLink, page, next, {}});
  free_links_[page] = next;
}

bool TransactionContext::StagedFreeLink(PageId page, PageId* next) const {
  auto it = free_links_.find(page);
  if (it == free_links_.end()) return false;
  *next = it->second;
  return true;
}

// ---------------------------------------------------------------------------
// TxnManager

TxnManager::TxnManager(PageFile* file, BufferPool* pool, WriteAheadLog* wal,
                       uint64_t checkpoint_threshold_bytes,
                       obs::MetricsRegistry* metrics)
    : file_(file),
      pool_(pool),
      wal_(wal),
      checkpoint_threshold_(checkpoint_threshold_bytes),
      last_durable_lsn_(wal != nullptr && wal->next_lsn() > 0
                            ? wal->next_lsn() - 1
                            : 0) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  commits_ = metrics->counter("txn.commits");
  aborts_ = metrics->counter("txn.aborts");
  checkpoints_ = metrics->counter("txn.checkpoints");
  commit_ops_ = metrics->size_histogram("txn.commit_ops");
  checkpoint_ms_ = metrics->latency_histogram("txn.checkpoint_ms");
}

Status TxnManager::Begin() {
  if (poisoned_) {
    return Status::IOError(
        "transaction manager poisoned by a half-applied commit; reopen the "
        "store to recover");
  }
  if (active_ != nullptr) {
    return Status::InvalidArgument("a transaction is already active");
  }
  active_ = std::make_unique<TransactionContext>(next_txn_id_++,
                                                 file_->meta());
  active_raw_.store(active_.get(), std::memory_order_release);
  return Status::OK();
}

Status TxnManager::ApplyOps(const std::vector<TransactionContext::Op>& ops) {
  for (const TransactionContext::Op& op : ops) {
    Status st = op.kind == WalRecordType::kPageImage
                    ? pool_->ApplyCommitted(op.page, op.image.data())
                    : file_->ApplyFreeLink(op.page, op.next);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status TxnManager::Commit() {
  if (active_ == nullptr) {
    return Status::InvalidArgument("no active transaction to commit");
  }
  std::unique_ptr<TransactionContext> txn = std::move(active_);
  // Readers may no longer see the staging overlay once apply starts; the
  // applied pages carry the same bytes.
  active_raw_.store(nullptr, std::memory_order_release);

  if (txn->ops().empty()) return Status::OK();  // e.g. metadata-only no-op

  const uint64_t wal_end_at_begin = wal_->size_bytes();

  // 1. Log: Begin, every staged op in order, then the commit record with
  //    the post-transaction allocation metadata.
  Status st = wal_->AppendBegin(txn->id());
  for (const TransactionContext::Op& op : txn->ops()) {
    if (!st.ok()) break;
    st = op.kind == WalRecordType::kPageImage
             ? wal_->AppendPageImage(txn->id(), op.page, op.image.data(),
                                     op.image.size())
             : wal_->AppendFreeLink(txn->id(), op.page, op.next);
  }
  if (st.ok()) st = wal_->AppendCommit(txn->id(), file_->meta());
  // 2. The group-commit fsync: the transaction is durable after this.
  if (st.ok()) st = wal_->Sync();
  if (!st.ok()) {
    // Not durable and nothing applied: roll back as a plain abort. The
    // record bytes may nonetheless have reached the log (e.g. the fsync
    // failed after successful appends), so cut them back out — a
    // transaction reported as failed must not replay on reopen. If even
    // the truncation cannot be made durable, the log's contents are
    // unknowable and only a reopen (which re-scans it) is safe.
    if (!wal_->TruncateTo(wal_end_at_begin).ok()) poisoned_ = true;
    file_->RestoreMeta(txn->meta_at_begin());
    return st;
  }
  last_durable_lsn_ = wal_->next_lsn() - 1;

  // 3. Apply to the data file, through the pool so the cache warms exactly
  //    as write-through would have.
  st = ApplyOps(txn->ops());
  if (!st.ok()) {
    // Durable but half-applied: only recovery replay can finish the job.
    poisoned_ = true;
    return st;
  }
  commits_->Add(1);
  commit_ops_->Observe(static_cast<double>(txn->ops().size()));

  if (checkpoint_threshold_ != 0 &&
      wal_->size_bytes() >= checkpoint_threshold_) {
    // Best effort: a failed checkpoint leaves a longer log, not a broken
    // store.
    (void)CheckpointNow();
  }
  return Status::OK();
}

Status TxnManager::Abort() {
  if (active_ == nullptr) {
    return Status::InvalidArgument("no active transaction to abort");
  }
  std::unique_ptr<TransactionContext> txn = std::move(active_);
  active_raw_.store(nullptr, std::memory_order_release);
  file_->RestoreMeta(txn->meta_at_begin());
  aborts_->Add(1);
  return Status::OK();
}

Status TxnManager::CheckpointNow() {
  if (active_ != nullptr) {
    return Status::InvalidArgument("cannot checkpoint inside a transaction");
  }
  if (poisoned_) {
    return Status::IOError("transaction manager poisoned; reopen to recover");
  }
  const auto start = std::chrono::steady_clock::now();
  Status st = file_->Checkpoint(last_durable_lsn_);
  if (!st.ok()) return st;
  st = wal_->Reset();
  if (!st.ok()) return st;
  checkpoints_->Add(1);
  checkpoint_ms_->Observe(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ScopedTxn

ScopedTxn::ScopedTxn(TxnManager* txns) : txns_(txns) {
  if (txns_ != nullptr && !txns_->in_txn()) {
    begin_status_ = txns_->Begin();
    owner_ = begin_status_.ok();
  }
}

ScopedTxn::~ScopedTxn() {
  if (owner_ && !done_) (void)txns_->Abort();
}

Status ScopedTxn::Commit() {
  done_ = true;
  if (!owner_) return Status::OK();
  return txns_->Commit();
}

// ---------------------------------------------------------------------------
// Recovery

Result<uint64_t> RecoverFromWal(PageFile* file, const std::string& wal_path,
                                uint64_t* max_lsn) {
  if (max_lsn != nullptr) *max_lsn = 0;
  std::vector<WalRecord> records;
  Status st = WriteAheadLog::ScanFile(wal_path, &records);
  if (!st.ok()) return st;
  const uint64_t checkpoint_lsn = file->checkpoint_lsn();

  uint64_t applied_txns = 0;
  // Gather each transaction's ops; apply them only when its commit record
  // is present (uncommitted tails are discarded wholesale).
  uint64_t open_txn = 0;
  std::vector<const WalRecord*> pending;
  for (const WalRecord& r : records) {
    if (max_lsn != nullptr && r.lsn > *max_lsn) *max_lsn = r.lsn;
    if (r.lsn <= checkpoint_lsn) continue;  // already checkpointed
    switch (r.type) {
      case WalRecordType::kBegin:
        open_txn = r.txn_id;
        pending.clear();
        break;
      case WalRecordType::kPageImage:
      case WalRecordType::kFreeLink:
        if (r.txn_id == open_txn) pending.push_back(&r);
        break;
      case WalRecordType::kCommit: {
        if (r.txn_id != open_txn) break;
        // The commit snapshot first: it extends page_count so the
        // physical redo below passes validation.
        file->RestoreMeta(r.meta);
        for (const WalRecord* op : pending) {
          st = op->type == WalRecordType::kPageImage
                   ? file->WritePage(op->page, op->image.data())
                   : file->ApplyFreeLink(op->page, op->next);
          if (!st.ok()) return st;
        }
        pending.clear();
        open_txn = 0;
        ++applied_txns;
        break;
      }
    }
  }
  return applied_txns;
}

}  // namespace tilestore
