#ifndef TILESTORE_STORAGE_TILE_SUMMARY_H_
#define TILESTORE_STORAGE_TILE_SUMMARY_H_

#include <array>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/cell_type.h"
#include "core/predicate.h"
#include "storage/blob_store.h"

namespace tilestore {

/// Buckets of the optional equi-width histogram. Small on purpose: a
/// summary is ~100 bytes per tile, so a million-tile store carries ~100MB
/// of summaries at most — and typical stores far less.
inline constexpr size_t kTileSummaryBuckets = 16;

/// \brief Per-tile value statistics used for predicate pushdown
/// (DESIGN.md §15): min/max over all cells (widened to double, like the
/// aggregation kernels), the cell count, the number of cells equal to the
/// object's default value, and an equi-width histogram over [min, max].
///
/// A summary describes the *whole* tile. Query regions may intersect only
/// part of a tile, which keeps both pruning directions conservative-safe:
/// "no cell of the tile can match" implies no cell of any sub-region can,
/// and "every cell matches" covers every sub-region too.
///
/// Tiles containing NaN cells get no summary (NaN never matches a
/// comparison but would make an accept-all classification wrong), and
/// neither do non-numeric cell types — such tiles are always inspected.
struct TileSummary {
  double min = 0;
  double max = 0;
  uint64_t count = 0;       // cells in the tile
  uint64_t null_count = 0;  // cells equal to the object's default cell
  bool has_histogram = false;
  /// Bucket i covers [min + i*w, min + (i+1)*w) with w = (max-min)/B
  /// (the last bucket is closed at max). All cells land in some bucket.
  std::array<uint32_t, kTileSummaryBuckets> histogram{};

  /// Bucket index of `v` (clamped); only meaningful with has_histogram.
  /// Monotonic in v, so the buckets intersecting [a,b] are exactly
  /// [BucketOf(a), BucketOf(b)] — the refinement is exact-safe.
  size_t BucketOf(double v) const;
};

/// How the planner treats one candidate tile under a predicate.
enum class TilePrune {
  kSkip,       // no cell can match: no fetch, no decode
  kAcceptAll,  // every cell matches: existing unfiltered fast path
  kInspect,    // undecided: fetch + filtered decode
};

/// Classifies a tile against `pred` using its summary alone. Pure
/// min/max/histogram reasoning; conservative in both directions (kSkip
/// and kAcceptAll are only returned when provable).
TilePrune ClassifyTile(const TileSummary& summary, const ValuePredicate& pred);

/// Builds the summary of one tile from its decoded cells. Returns nullopt
/// for non-numeric cell types (rgb8/opaque) and for tiles containing NaN.
/// `default_cell` (the object's fill value, `cell_type.size()` bytes) is
/// what null_count counts; pass nullptr to count nothing as null.
std::optional<TileSummary> BuildTileSummary(CellType cell_type,
                                            const uint8_t* cells,
                                            uint64_t cell_count,
                                            const uint8_t* default_cell);

/// \brief In-memory summary index, keyed (cache epoch, blob id) exactly
/// like the TileCache — so the store-level re-epoch protocol (mutation,
/// txn rollback, drop/recreate, WAL replay) orphans stale summaries
/// automatically; see DESIGN.md §15. Thread-safe. Summaries are
/// rebuildable from tile data, so losing one merely costs an inspect.
class TileSummaryIndex {
 public:
  explicit TileSummaryIndex(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  std::optional<TileSummary> Lookup(uint64_t object_id, BlobId blob) const;
  void Put(uint64_t object_id, BlobId blob, const TileSummary& summary);
  void Erase(uint64_t object_id, BlobId blob);
  /// Re-keys one entry (tile relocation: same bytes, new blob).
  void Move(uint64_t object_id, BlobId from, BlobId to);
  /// Drops every summary of one cache epoch (mutation-failure unwind,
  /// DropMDD, txn rollback).
  void InvalidateObject(uint64_t object_id);
  void Clear();
  size_t size() const;

  /// Snapshot of one epoch's entries (sidecar persistence).
  std::vector<std::pair<BlobId, TileSummary>> ObjectEntries(
      uint64_t object_id) const;

 private:
  struct Key {
    uint64_t object_id;
    BlobId blob;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t x = k.object_id * 0x9E3779B97F4A7C15ull ^ (k.blob + 0x7F4A7C15ull);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x * 0x94D049BB133111EBull);
    }
  };

  bool enabled_;
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, TileSummary, KeyHash> map_;
};

/// One object's summaries in sidecar form (object *names* are stable
/// across reopen; cache epochs are not, so the sidecar maps names).
struct ObjectSummaries {
  std::string name;
  std::vector<std::pair<BlobId, TileSummary>> entries;
};

/// Writes the `<db>.summ` sidecar (CRC'd, tmp+rename atomic). `epoch` is
/// the page file's superblock epoch at write time: a sidecar whose epoch
/// does not match the file at open is stale and gets discarded —
/// summaries rebuild lazily, so a discard is merely a warm-up cost.
Status SaveTileSummarySidecar(const std::string& path, uint64_t epoch,
                              const std::vector<ObjectSummaries>& objects);

/// Loads and validates the sidecar. NotFound when absent; Corruption on a
/// bad CRC/magic/structure (callers treat both as "no sidecar").
struct LoadedSummarySidecar {
  uint64_t epoch = 0;
  std::vector<ObjectSummaries> objects;
};
Result<LoadedSummarySidecar> LoadTileSummarySidecar(const std::string& path);

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_TILE_SUMMARY_H_
