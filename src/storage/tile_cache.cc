#include "storage/tile_cache.h"

#include <algorithm>

namespace tilestore {

namespace {

std::string NegativeKey(uint64_t object_id, const std::string& region) {
  return std::to_string(object_id) + "|" + region;
}

}  // namespace

TileCache::TileCache(size_t capacity_bytes, size_t shards)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_bytes_(capacity_bytes / std::max<size_t>(shards, 1)),
      shards_(std::max<size_t>(shards, 1)) {}

void TileCache::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.hits = registry->counter("tilecache.hits");
  metrics_.misses = registry->counter("tilecache.misses");
  metrics_.inserts = registry->counter("tilecache.inserts");
  metrics_.evictions = registry->counter("tilecache.evictions");
  metrics_.invalidations = registry->counter("tilecache.invalidations");
  metrics_.negative_hits = registry->counter("tilecache.negative_hits");
  metrics_.negative_misses = registry->counter("tilecache.negative_misses");
  metrics_.negative_inserts = registry->counter("tilecache.negative_inserts");
  metrics_.bytes = registry->gauge("tilecache.bytes");
  metrics_.entries = registry->gauge("tilecache.entries");
}

std::shared_ptr<const Tile> TileCache::Lookup(uint64_t object_id,
                                              BlobId blob) {
  if (!enabled()) return nullptr;
  const Key key{object_id, blob};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (metrics_.misses != nullptr) metrics_.misses->Add(1);
    return nullptr;
  }
  // Move to the LRU front; the handle pins the tile past any eviction.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (metrics_.hits != nullptr) metrics_.hits->Add(1);
  return it->second->tile;
}

void TileCache::EvictLocked(Shard* shard) {
  while (shard->bytes > shard_capacity_bytes_ && !shard->lru.empty()) {
    Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    if (metrics_.bytes != nullptr) {
      metrics_.bytes->Add(-static_cast<int64_t>(victim.bytes));
      metrics_.entries->Add(-1);
      metrics_.evictions->Add(1);
    }
    shard->index.erase(victim.key);
    shard->lru.pop_back();
  }
}

std::shared_ptr<const Tile> TileCache::Insert(
    uint64_t object_id, BlobId blob, std::shared_ptr<const Tile> tile) {
  if (!enabled() || tile == nullptr) return tile;
  const size_t bytes = tile->size_bytes();
  if (bytes > shard_capacity_bytes_) return tile;  // would evict everything
  const Key key{object_id, blob};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost a populate race: the first decoded copy is canonical.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->tile;
  }
  shard.lru.push_front(Entry{key, std::move(tile), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  if (metrics_.inserts != nullptr) {
    metrics_.inserts->Add(1);
    metrics_.bytes->Add(static_cast<int64_t>(bytes));
    metrics_.entries->Add(1);
  }
  EvictLocked(&shard);
  return shard.lru.front().tile;
}

bool TileCache::LookupNegativeRegion(uint64_t object_id,
                                     const std::string& region) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(negative_mu_);
  const bool hit = negative_.count(NegativeKey(object_id, region)) > 0;
  if (hit) {
    if (metrics_.negative_hits != nullptr) metrics_.negative_hits->Add(1);
  } else {
    if (metrics_.negative_misses != nullptr) metrics_.negative_misses->Add(1);
  }
  return hit;
}

void TileCache::InsertNegativeRegion(uint64_t object_id,
                                     const std::string& region) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(negative_mu_);
  if (negative_.size() >= kNegativeCapacity) negative_.clear();
  if (negative_.insert(NegativeKey(object_id, region)).second &&
      metrics_.negative_inserts != nullptr) {
    metrics_.negative_inserts->Add(1);
  }
}

void TileCache::InvalidateObject(uint64_t object_id) {
  if (!enabled()) return;
  {
    const std::string prefix = std::to_string(object_id) + "|";
    std::lock_guard<std::mutex> lock(negative_mu_);
    for (auto it = negative_.begin(); it != negative_.end();) {
      if (it->compare(0, prefix.size(), prefix) == 0) {
        it = negative_.erase(it);
      } else {
        ++it;
      }
    }
  }
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.object_id != object_id) {
        ++it;
        continue;
      }
      shard.bytes -= it->bytes;
      if (metrics_.bytes != nullptr) {
        metrics_.bytes->Add(-static_cast<int64_t>(it->bytes));
        metrics_.entries->Add(-1);
      }
      shard.index.erase(it->key);
      it = shard.lru.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0 && metrics_.invalidations != nullptr) {
    metrics_.invalidations->Add(dropped);
  }
}

void TileCache::Clear() {
  {
    std::lock_guard<std::mutex> lock(negative_mu_);
    negative_.clear();
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (metrics_.bytes != nullptr) {
      metrics_.bytes->Add(-static_cast<int64_t>(shard.bytes));
      metrics_.entries->Add(-static_cast<int64_t>(shard.lru.size()));
      metrics_.invalidations->Add(shard.lru.size());
    }
    shard.index.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

size_t TileCache::size_bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

size_t TileCache::entry_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace tilestore
