#include "storage/compression.h"

namespace tilestore {

std::string_view CompressionToString(Compression compression) {
  switch (compression) {
    case Compression::kNone:
      return "none";
    case Compression::kRle:
      return "rle";
  }
  return "unknown";
}

namespace {

// PackBits-style byte RLE. Control byte c:
//   0x00..0x7F: literal run of (c + 1) bytes follows;
//   0x81..0xFF: the next byte repeats (257 - c) times (2..128);
//   0x80: reserved (never emitted).
std::vector<uint8_t> RleCompress(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> out;
  out.reserve(data.size() / 4 + 16);
  size_t i = 0;
  const size_t n = data.size();
  while (i < n) {
    // Measure the run starting at i.
    size_t run = 1;
    while (i + run < n && run < 128 && data[i + run] == data[i]) ++run;
    if (run >= 2) {
      out.push_back(static_cast<uint8_t>(257 - run));
      out.push_back(data[i]);
      i += run;
      continue;
    }
    // Literal run: until the next 3-byte repeat or 128 bytes.
    size_t lit = 1;
    while (i + lit < n && lit < 128) {
      if (i + lit + 2 < n && data[i + lit] == data[i + lit + 1] &&
          data[i + lit] == data[i + lit + 2]) {
        break;
      }
      ++lit;
    }
    out.push_back(static_cast<uint8_t>(lit - 1));
    out.insert(out.end(), data.begin() + static_cast<ptrdiff_t>(i),
               data.begin() + static_cast<ptrdiff_t>(i + lit));
    i += lit;
  }
  return out;
}

Result<std::vector<uint8_t>> RleDecompress(const std::vector<uint8_t>& data,
                                           size_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  size_t i = 0;
  const size_t n = data.size();
  while (i < n) {
    const uint8_t control = data[i++];
    if (control == 0x80) {
      return Status::Corruption("reserved RLE control byte");
    }
    if (control < 0x80) {
      const size_t lit = static_cast<size_t>(control) + 1;
      if (i + lit > n) return Status::Corruption("truncated RLE literal run");
      out.insert(out.end(), data.begin() + static_cast<ptrdiff_t>(i),
                 data.begin() + static_cast<ptrdiff_t>(i + lit));
      i += lit;
    } else {
      if (i >= n) return Status::Corruption("truncated RLE repeat run");
      const size_t run = 257 - static_cast<size_t>(control);
      out.insert(out.end(), run, data[i++]);
    }
    if (out.size() > expected_size) {
      return Status::Corruption("RLE stream longer than declared size");
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("RLE stream shorter than declared size");
  }
  return out;
}

}  // namespace

std::vector<uint8_t> Compress(Compression compression,
                              const std::vector<uint8_t>& data) {
  switch (compression) {
    case Compression::kNone:
      return data;
    case Compression::kRle:
      return RleCompress(data);
  }
  return data;
}

Result<std::vector<uint8_t>> Decompress(Compression compression,
                                        const std::vector<uint8_t>& data,
                                        size_t expected_size) {
  switch (compression) {
    case Compression::kNone:
      if (data.size() != expected_size) {
        return Status::Corruption("uncompressed blob size mismatch");
      }
      return data;
    case Compression::kRle:
      return RleDecompress(data, expected_size);
  }
  return Status::InvalidArgument("unknown compression codec");
}

Compression CompressIfSmaller(Compression preferred,
                              const std::vector<uint8_t>& data,
                              std::vector<uint8_t>* out) {
  if (preferred == Compression::kNone) {
    *out = data;
    return Compression::kNone;
  }
  std::vector<uint8_t> compressed = Compress(preferred, data);
  if (compressed.size() < data.size()) {
    *out = std::move(compressed);
    return preferred;
  }
  *out = data;
  return Compression::kNone;
}

}  // namespace tilestore
