#ifndef TILESTORE_STORAGE_IO_BACKEND_H_
#define TILESTORE_STORAGE_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"

namespace tilestore {

class ThreadPool;

/// \brief One read in a batch handed to an `IoBackend`.
///
/// The caller owns `out` (at least `size` bytes) and keeps `file` alive
/// for the duration of `SubmitBatch`. `status` is the per-op result; a
/// batch never stops early, so every op carries its own verdict and the
/// caller can attribute failures to logical requests.
struct ReadOp {
  const File* file = nullptr;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint8_t* out = nullptr;
  Status status;
};

/// \brief Pluggable batched-read engine under `PageFile::ReadBatch`.
///
/// The contract is deliberately synchronous at the batch granularity: the
/// caller hands over every coalesced run of one query at once, the backend
/// overlaps them however it can (worker threads, io_uring submission
/// queue), and `SubmitBatch` returns only when all ops have completed.
/// Backends must behave byte-identically to a loop of `File::ReadAt`
/// calls — including short-read errors and fault-injection
/// (`FaultInjector::OnReadAt` fires once per op on every backend), so the
/// crash matrix exercises the same boundaries regardless of engine.
/// Implementations are thread-safe: concurrent queries may submit batches
/// to the same backend instance.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual const char* name() const = 0;

  /// Stable numeric id for the `io.backend` gauge (metrics are numeric):
  /// 1 = threaded_pread, 2 = io_uring.
  virtual int64_t code() const = 0;

  /// Executes every op, filling each `op.status`. Returns the first
  /// failure in op order, OK when all succeeded.
  virtual Status SubmitBatch(std::span<ReadOp> ops) = 0;
};

/// \brief Portable backend: `pread` per op, optionally spread over a
/// small worker pool for large batches.
///
/// With `threads` <= 1 (the default on single-core machines) the ops run
/// inline on the submitting thread, which is byte- and order-identical to
/// the historical read loop.
class ThreadedPreadBackend final : public IoBackend {
 public:
  explicit ThreadedPreadBackend(size_t threads = 0);
  ~ThreadedPreadBackend() override;

  const char* name() const override { return "threaded_pread"; }
  int64_t code() const override { return 1; }
  Status SubmitBatch(std::span<ReadOp> ops) override;

 private:
  size_t threads_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

/// \brief Linux io_uring backend over raw syscalls (no liburing).
///
/// One ring, guarded by a mutex: a batch is the unit of concurrency, and
/// submission blocks until its completions drain, so serializing batches
/// at the ring keeps the implementation simple while still overlapping
/// all runs *within* a query. Partial completions are finished through
/// `File::ReadAt`, which also keeps error text identical to the portable
/// backend.
class IoUringBackend final : public IoBackend {
 public:
  /// Probes `io_uring_setup`; fails with Unavailable when the kernel (or
  /// a seccomp policy) refuses, and Unimplemented off Linux.
  static Result<std::unique_ptr<IoUringBackend>> Create(
      unsigned queue_depth = 64);

  /// True when `Create` would succeed on this machine.
  static bool Available();

  ~IoUringBackend() override;

  const char* name() const override { return "io_uring"; }
  int64_t code() const override { return 2; }
  Status SubmitBatch(std::span<ReadOp> ops) override;

  /// True while the registered-buffer (`IORING_OP_READ_FIXED`) fast path
  /// is active. Probe-gated at construction; `TILESTORE_IO_URING_FIXED=0`
  /// disables it, and a kernel rejection at runtime turns it off for the
  /// backend's lifetime (reads silently fall back, byte-identically).
  bool fixed_buffers_active() const;

 private:
  struct Ring;
  explicit IoUringBackend(std::unique_ptr<Ring> ring);

  std::mutex mu_;
  std::unique_ptr<Ring> ring_;
};

/// Constructs a backend by name, for tool flags and tests:
/// "pread"/"threaded"/"threaded_pread", "uring"/"io_uring", or "auto"
/// (io_uring when available, else threaded pread). Unknown names are
/// InvalidArgument; an explicit "uring" on a kernel without support is
/// Unavailable (no silent substitution — tools decide how to fall back).
Result<std::unique_ptr<IoBackend>> MakeIoBackend(const std::string& name);

/// Process-wide default backend, resolved once: honors the
/// `TILESTORE_IO_BACKEND` environment override (same names as
/// `MakeIoBackend`), otherwise probes io_uring and falls back to threaded
/// pread. An unsatisfiable override degrades to the portable backend with
/// a one-time stderr notice instead of failing the store.
IoBackend* DefaultIoBackend();

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_IO_BACKEND_H_
