#include "storage/fsck.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/checksum.h"
#include "common/serde.h"
#include "index/packed_rtree.h"
#include "storage/blob_store.h"
#include "storage/env.h"
#include "storage/page_file.h"
#include "storage/tile_summary.h"
#include "storage/wal.h"

namespace tilestore {

namespace {

constexpr uint32_t kTableMagic = 0x5453434b;  // "TSCK" (page_file.cc)
constexpr size_t kTableHeaderBytes = 4 + 4 + 8;

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Walks the free list through the per-page tail links, collecting members
// and reporting structural damage.
void CheckFreeList(const File& file, const SuperblockImage& sb,
                   FsckReport* report, std::unordered_set<uint64_t>* free_set) {
  uint64_t cursor = sb.meta.free_head;
  while (cursor != kInvalidPageId) {
    if (cursor >= sb.meta.page_count) {
      report->errors.push_back("free list links to page " +
                               std::to_string(cursor) +
                               " beyond page count " +
                               std::to_string(sb.meta.page_count));
      return;
    }
    if (!free_set->insert(cursor).second) {
      report->errors.push_back("free list cycles at page " +
                               std::to_string(cursor));
      return;
    }
    if (free_set->size() > sb.meta.free_count) {
      report->errors.push_back(
          "free list is longer than the recorded free count " +
          std::to_string(sb.meta.free_count));
      return;
    }
    uint8_t link[8];
    Status st = file.ReadAt((cursor + 1) * sb.page_size - 8, 8, link);
    if (!st.ok()) {
      report->errors.push_back("cannot read free link of page " +
                               std::to_string(cursor) + ": " + st.message());
      return;
    }
    cursor = GetU64(link);
  }
  if (free_set->size() != sb.meta.free_count) {
    report->errors.push_back(
        "free list has " + std::to_string(free_set->size()) +
        " pages but the superblock records " +
        std::to_string(sb.meta.free_count));
  }
}

// Verifies data pages against the persisted checksum table, when one is
// present and trustworthy.
void CheckPageChecksums(const File& file, const SuperblockImage& sb,
                        const std::unordered_set<uint64_t>& free_set,
                        FsckReport* report) {
  if (sb.crc_table_offset_pages == 0) {
    report->warnings.push_back(
        "no persisted checksum table (store never checkpointed); page "
        "checksums not verified");
    return;
  }
  if (sb.crc_table_offset_pages < sb.meta.page_count) {
    // Allocations after the last checkpoint overwrote the table region.
    report->warnings.push_back(
        "checksum table predates the latest allocations; page checksums "
        "not verified");
    return;
  }
  const uint64_t base = sb.crc_table_offset_pages * sb.page_size;
  uint8_t header[kTableHeaderBytes];
  if (!file.ReadAt(base, sizeof(header), header).ok() ||
      GetU32(header) != kTableMagic) {
    report->warnings.push_back(
        "checksum table header unreadable; page checksums not verified");
    return;
  }
  const uint64_t table_count = GetU64(header + 8);
  const size_t image_bytes =
      kTableHeaderBytes + static_cast<size_t>(table_count) * 4 + 4;
  std::vector<uint8_t> image(image_bytes);
  if (!file.ReadAt(base, image_bytes, image.data()).ok() ||
      GetU32(image.data() + image_bytes - 4) !=
          Crc32c(image.data(), image_bytes - 4)) {
    report->warnings.push_back(
        "checksum table fails its own CRC; page checksums not verified");
    return;
  }

  const uint64_t verifiable = std::min(table_count, sb.meta.page_count);
  std::vector<uint8_t> page(sb.page_size);
  for (uint64_t id = 1; id < verifiable; ++id) {
    const uint32_t expected =
        GetU32(image.data() + kTableHeaderBytes + id * 4);
    if (expected == 0) continue;          // free or never written
    if (free_set.count(id) > 0) continue; // freed after the checkpoint
    Status st = file.ReadAt(id * sb.page_size, sb.page_size, page.data());
    if (!st.ok()) {
      report->errors.push_back("cannot read page " + std::to_string(id) +
                               ": " + st.message());
      continue;
    }
    ++report->pages_checksummed;
    if (Crc32c(page.data(), sb.page_size) != expected) {
      ++report->checksum_mismatches;
      report->errors.push_back("checksum mismatch on page " +
                               std::to_string(id));
    }
  }
}

// ---------------------------------------------------------------------------
// Tile→page mapping walk.

constexpr uint32_t kBlobMagic = 0x5453424c;     // "TSBL" (blob_store.cc)
constexpr uint32_t kCatalogMagic = 0x54534354;  // "TSCT" (mdd_store.cc)
constexpr uint32_t kCatalogVersion = 2;
constexpr size_t kBlobHeaderBytes = 4 + 4 + 8 + 8;
constexpr size_t kBlobContinuationBytes = 8;

// Walks one blob chain from its header page, claiming every page in
// `owner` and verifying structure. Returns false when the chain is
// broken (an error has been reported); `data`, when non-null, receives
// the reassembled payload.
bool WalkBlob(const File& file, const SuperblockImage& sb, uint64_t blob,
              const std::string& what,
              const std::unordered_set<uint64_t>& free_set,
              std::unordered_map<uint64_t, std::string>* owner,
              FsckReport* report, std::vector<uint8_t>* data,
              std::vector<uint64_t>* pages_out) {
  const size_t page_size = sb.page_size;
  const size_t header_capacity = page_size - kBlobHeaderBytes;
  const size_t continuation_capacity = page_size - kBlobContinuationBytes;
  std::vector<uint8_t> page(page_size);

  uint64_t cursor = blob;
  uint64_t remaining_pages = 0;  // set after the header is read
  uint64_t size = 0;
  bool first = true;
  bool contiguous = true;
  uint64_t prev = 0;
  while (cursor != kInvalidPageId) {
    if (cursor >= sb.meta.page_count) {
      report->errors.push_back(what + " links to page " +
                               std::to_string(cursor) +
                               " beyond page count " +
                               std::to_string(sb.meta.page_count));
      return false;
    }
    if (free_set.count(cursor) > 0) {
      report->errors.push_back(what + " maps page " + std::to_string(cursor) +
                               " which is on the free list");
      return false;
    }
    auto claimed = owner->emplace(cursor, what);
    if (!claimed.second) {
      report->errors.push_back("page " + std::to_string(cursor) +
                               " mapped by both " + claimed.first->second +
                               " and " + what);
      return false;
    }
    Status st = file.ReadAt(cursor * page_size, page_size, page.data());
    if (!st.ok()) {
      report->errors.push_back("cannot read page " + std::to_string(cursor) +
                               " of " + what + ": " + st.message());
      return false;
    }
    uint64_t next;
    if (first) {
      if (GetU32(page.data()) != kBlobMagic) {
        report->errors.push_back(what + " header page " +
                                 std::to_string(cursor) +
                                 " has no blob magic");
        return false;
      }
      size = GetU64(page.data() + 8);
      next = GetU64(page.data() + 16);
      // Chain length implied by the stored size; bound it so a garbage
      // size cannot spin the walk.
      remaining_pages = 1;
      if (size > header_capacity) {
        remaining_pages +=
            (size - header_capacity + continuation_capacity - 1) /
            continuation_capacity;
      }
      if (remaining_pages > sb.meta.page_count) {
        report->errors.push_back(what + " records an impossible size of " +
                                 std::to_string(size) + " bytes");
        return false;
      }
      if (data != nullptr) data->reserve(size);
      if (data != nullptr) {
        const size_t chunk = std::min<uint64_t>(size, header_capacity);
        data->insert(data->end(), page.data() + kBlobHeaderBytes,
                     page.data() + kBlobHeaderBytes + chunk);
      }
      first = false;
    } else {
      next = GetU64(page.data());
      if (data != nullptr) {
        const size_t chunk =
            std::min<uint64_t>(size - data->size(), continuation_capacity);
        data->insert(data->end(), page.data() + kBlobContinuationBytes,
                     page.data() + kBlobContinuationBytes + chunk);
      }
    }
    ++report->mapped_pages;
    if (pages_out != nullptr) pages_out->push_back(cursor);
    if (prev != 0 && cursor != prev + 1) contiguous = false;
    prev = cursor;
    --remaining_pages;
    if (remaining_pages == 0) {
      if (next != kInvalidPageId) {
        report->errors.push_back(what + " chain is longer than its " +
                                 std::to_string(size) + " bytes need");
        return false;
      }
      break;
    }
    if (next == kInvalidPageId) {
      report->errors.push_back(what + " chain ends " +
                               std::to_string(remaining_pages) +
                               " pages early");
      return false;
    }
    cursor = next;
  }
  ++report->mapped_blobs;
  if (!contiguous) ++report->fragmented_chains;
  return true;
}

// Skips one catalog interval (u8 dim, dim × two i64 bounds).
Status SkipInterval(ByteReader* r) {
  uint8_t dim = 0;
  Status st = r->U8(&dim);
  if (!st.ok()) return st;
  for (size_t i = 0; i < 2 * static_cast<size_t>(dim); ++i) {
    int64_t v;
    st = r->I64(&v);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

// Walks the whole tile→page mapping from the catalog root: the catalog
// blob, every object's index image, every tile blob. Fills the mapping
// counters and reports dangling/double-mapped pages as errors, leaked
// pages as a warning.
void CheckTileMapping(
    const File& file, const SuperblockImage& sb,
    const std::unordered_set<uint64_t>& free_set, FsckReport* report,
    std::map<std::string, std::unordered_set<uint64_t>>* live_tile_blobs) {
  std::unordered_map<uint64_t, std::string> owner;
  const uint64_t root = sb.meta.user_root;
  if (root != kInvalidBlobId) {
    std::vector<uint8_t> catalog;
    if (!WalkBlob(file, sb, root, "catalog blob", free_set, &owner, report,
                  &catalog, nullptr)) {
      return;
    }
    ByteReader r(catalog);
    uint32_t magic = 0, version = 0, count = 0;
    Status st = r.U32(&magic);
    if (st.ok()) st = r.U32(&version);
    if (st.ok()) st = r.U32(&count);
    if (!st.ok() || magic != kCatalogMagic || version != kCatalogVersion) {
      report->errors.push_back("catalog blob does not parse");
      return;
    }
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      uint8_t type_id = 0, index_kind = 0;
      uint32_t cell_size = 0;
      uint64_t index_blob = 0;
      st = r.Str(&name);
      if (st.ok()) st = r.U8(&type_id);
      if (st.ok()) st = r.U32(&cell_size);
      if (st.ok()) st = r.U8(&index_kind);
      if (st.ok()) st = SkipInterval(&r);
      if (st.ok()) {
        std::vector<uint8_t> cell(cell_size);
        st = r.Bytes(cell.data(), cell_size);
      }
      if (st.ok()) st = r.U64(&index_blob);
      if (!st.ok()) {
        report->errors.push_back("catalog entry " + std::to_string(i) +
                                 " is truncated");
        return;
      }
      std::vector<uint8_t> image;
      if (!WalkBlob(file, sb, index_blob, "index of '" + name + "'",
                    free_set, &owner, report, &image, nullptr)) {
        continue;
      }
      Result<std::unique_ptr<PackedRTree>> index =
          PackedRTree::Parse(std::move(image));
      if (!index.ok()) {
        report->errors.push_back("index image of '" + name +
                                 "' does not parse: " +
                                 index.status().message());
        continue;
      }
      std::vector<TileEntry> entries;
      (*index)->GetAll(&entries);
      // Tile blobs, plus the physical-adjacency fragmentation stat:
      // sort tile chains by first page and count runs where one chain
      // starts right after the previous one ends.
      std::vector<std::vector<uint64_t>> chains;
      for (const TileEntry& entry : entries) {
        std::vector<uint64_t> pages;
        if (WalkBlob(file, sb, entry.blob, "tile blob of '" + name + "'",
                     free_set, &owner, report, nullptr, &pages)) {
          ++report->tile_blobs;
          (*live_tile_blobs)[name].insert(entry.blob);
          chains.push_back(std::move(pages));
        }
      }
      std::sort(chains.begin(), chains.end());
      for (size_t c = 0; c < chains.size(); ++c) {
        if (c == 0 || chains[c].front() != chains[c - 1].back() + 1) {
          ++report->tile_extents;
        }
      }
    }
  }
  // Every allocated page should now be free or mapped; the remainder
  // leaked in a crash between a data commit and the next catalog write.
  for (uint64_t id = 1; id < sb.meta.page_count; ++id) {
    if (free_set.count(id) > 0 || owner.count(id) > 0) continue;
    ++report->leaked_pages;
  }
  if (report->leaked_pages > 0) {
    report->warnings.push_back(
        std::to_string(report->leaked_pages) +
        " allocated pages are referenced by nothing (leaked by a crash "
        "before the catalog write; harmless, but the space is dead until "
        "the file is rebuilt)");
  }
}

// Validates the `<db>.summ` summary sidecar (DESIGN.md §15): its own CRC
// and structure, its epoch against the superblock, and — when the tile
// mapping walk produced the live blob sets — that every entry names a
// live tile blob of its object. All advisory: Open discards a bad or
// stale sidecar and the summaries rebuild lazily, so nothing here can
// make the store CORRUPT.
void CheckSummarySidecar(
    const std::string& db_path, const SuperblockImage& sb,
    bool mapping_walked,
    const std::map<std::string, std::unordered_set<uint64_t>>& live_tile_blobs,
    FsckReport* report) {
  Result<LoadedSummarySidecar> side =
      LoadTileSummarySidecar(db_path + ".summ");
  if (!side.ok()) {
    if (side.status().IsNotFound()) return;  // no sidecar: nothing to check
    report->warnings.push_back("summary sidecar invalid (" +
                               side.status().message() +
                               "); it will be discarded at open");
    return;
  }
  report->summ_present = true;
  for (const ObjectSummaries& obj : side->objects) {
    report->summ_entries += obj.entries.size();
  }
  if (side->epoch != sb.epoch) {
    report->summ_stale = true;
    report->warnings.push_back(
        "summary sidecar epoch " + std::to_string(side->epoch) +
        " does not match superblock epoch " + std::to_string(sb.epoch) +
        "; it is stale and will be discarded at open");
    // Cross-checking a stale sidecar's blob ids against the current
    // mapping would only generate noise — the whole file is dead.
    return;
  }
  if (!mapping_walked) return;
  uint64_t covered = 0;
  for (const ObjectSummaries& obj : side->objects) {
    auto live = live_tile_blobs.find(obj.name);
    for (const auto& [blob, summary] : obj.entries) {
      if (live == live_tile_blobs.end() || live->second.count(blob) == 0) {
        ++report->summ_orphans;
      } else {
        ++covered;
      }
    }
  }
  if (report->summ_orphans > 0) {
    report->warnings.push_back(
        std::to_string(report->summ_orphans) +
        " summary entries reference no live tile blob (left behind by a "
        "mutation; dropped at open)");
  }
  for (const auto& [name, blobs] : live_tile_blobs) {
    (void)name;
    report->summ_uncovered += blobs.size();
  }
  report->summ_uncovered -= covered;
}

}  // namespace

Result<FsckReport> FsckStore(const std::string& db_path) {
  Result<std::unique_ptr<File>> file = File::Open(db_path, /*create=*/false);
  if (!file.ok()) return file.status();

  FsckReport report;

  // Superblock copies: at least one must be intact; recovery uses the
  // valid copy with the highest epoch, and so does fsck.
  Result<SuperblockImage> primary =
      PageFile::ParseSuperblockAt(*file.value(), 0);
  Result<SuperblockImage> backup = PageFile::ParseSuperblockAt(
      *file.value(), PageFile::kBackupSuperblockOffset);
  if (!primary.ok()) {
    report.warnings.push_back("primary superblock invalid: " +
                              primary.status().message());
  }
  if (!backup.ok()) {
    report.warnings.push_back("backup superblock invalid: " +
                              backup.status().message());
  }
  const SuperblockImage* sb = nullptr;
  if (primary.ok()) sb = &primary.value();
  if (backup.ok() && (sb == nullptr || backup.value().epoch > sb->epoch)) {
    sb = &backup.value();
  }
  if (sb == nullptr) {
    report.errors.push_back("both superblock copies are invalid");
    return report;
  }
  report.page_size = sb->page_size;
  report.page_count = sb->meta.page_count;
  report.free_pages = sb->meta.free_count;
  report.epoch = sb->epoch;
  report.checkpoint_lsn = sb->checkpoint_lsn;

  Result<uint64_t> size = file.value()->Size();
  if (!size.ok()) return size.status();
  // Page 0 holds only the superblock copies and may be short on a store
  // that never allocated; data pages are always written in full.
  if (sb->meta.page_count > 1 &&
      size.value() < sb->meta.page_count * sb->page_size) {
    report.errors.push_back(
        "file is " + std::to_string(size.value()) + " bytes but " +
        std::to_string(sb->meta.page_count) + " pages of " +
        std::to_string(sb->page_size) + " bytes are recorded");
  }

  // WAL: a torn tail is the normal signature of a crash mid-append; only
  // undecodable *structure* before the tail would have surfaced as fewer
  // committed transactions, which recovery handles by discarding them.
  std::vector<WalRecord> records;
  bool torn = false;
  Status st = WriteAheadLog::ScanFile(db_path + ".wal", &records, &torn);
  if (!st.ok()) {
    report.errors.push_back("cannot scan WAL: " + st.message());
    return report;
  }
  report.wal_records = records.size();
  report.wal_torn_tail = torn;
  if (torn) {
    report.warnings.push_back(
        "WAL has a torn tail (crash mid-append); the incomplete "
        "transaction will be discarded on recovery");
  }
  uint64_t open_txn = 0;
  bool open_has_ops = false;
  for (const WalRecord& r : records) {
    switch (r.type) {
      case WalRecordType::kBegin:
        open_txn = r.txn_id;
        open_has_ops = false;
        break;
      case WalRecordType::kPageImage:
      case WalRecordType::kFreeLink:
        if (r.txn_id == open_txn) open_has_ops = true;
        break;
      case WalRecordType::kCommit:
        if (r.txn_id == open_txn) {
          ++report.wal_committed_txns;
          if (r.lsn > sb->checkpoint_lsn) report.needs_recovery = true;
          open_txn = 0;
        }
        break;
    }
  }
  (void)open_has_ops;

  // Free-list and page-checksum verification are only meaningful when no
  // replay is pending: the on-disk superblock describes the last
  // checkpoint, while an applied-but-uncheckpointed commit has already
  // rewritten pages and free links that recovery's metadata snapshot will
  // re-legitimize. Anything checked here would be checked against the
  // wrong epoch.
  std::map<std::string, std::unordered_set<uint64_t>> live_tile_blobs;
  bool mapping_walked = false;
  if (report.needs_recovery) {
    report.warnings.push_back(
        "store needs WAL recovery; free list, page checksums and tile "
        "mapping not verified");
  } else {
    std::unordered_set<uint64_t> free_set;
    CheckFreeList(*file.value(), *sb, &report, &free_set);
    CheckPageChecksums(*file.value(), *sb, free_set, &report);
    // The mapping walk trusts the free set; a broken free list already
    // failed the check, and walking on top of it would double-report.
    if (report.errors.empty()) {
      CheckTileMapping(*file.value(), *sb, free_set, &report,
                       &live_tile_blobs);
      mapping_walked = true;
    }
  }
  CheckSummarySidecar(db_path, *sb, mapping_walked, live_tile_blobs,
                      &report);
  return report;
}

std::string FormatFsckReport(const FsckReport& report) {
  std::ostringstream out;
  out << "page_size:          " << report.page_size << "\n"
      << "page_count:         " << report.page_count << "\n"
      << "free_pages:         " << report.free_pages << "\n"
      << "epoch:              " << report.epoch << "\n"
      << "checkpoint_lsn:     " << report.checkpoint_lsn << "\n"
      << "wal_records:        " << report.wal_records << "\n"
      << "wal_committed_txns: " << report.wal_committed_txns << "\n"
      << "wal_torn_tail:      " << (report.wal_torn_tail ? "yes" : "no")
      << "\n"
      << "needs_recovery:     " << (report.needs_recovery ? "yes" : "no")
      << "\n"
      << "pages_checksummed:  " << report.pages_checksummed << "\n"
      << "checksum_mismatch:  " << report.checksum_mismatches << "\n"
      << "mapped_blobs:       " << report.mapped_blobs << "\n"
      << "mapped_pages:       " << report.mapped_pages << "\n"
      << "leaked_pages:       " << report.leaked_pages << "\n"
      << "tile_blobs:         " << report.tile_blobs << "\n"
      << "tile_extents:       " << report.tile_extents << "\n"
      << "fragmented_chains:  " << report.fragmented_chains << "\n"
      << "summ_sidecar:       "
      << (report.summ_present ? (report.summ_stale ? "stale" : "ok")
                              : "absent")
      << "\n"
      << "summ_entries:       " << report.summ_entries << "\n"
      << "summ_orphans:       " << report.summ_orphans << "\n"
      << "summ_uncovered:     " << report.summ_uncovered << "\n";
  for (const std::string& w : report.warnings) out << "warning: " << w << "\n";
  for (const std::string& e : report.errors) out << "ERROR: " << e << "\n";
  out << (report.clean() ? "status: CLEAN" : "status: CORRUPT") << "\n";
  return out.str();
}

}  // namespace tilestore
