#ifndef TILESTORE_STORAGE_FSCK_H_
#define TILESTORE_STORAGE_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tilestore {

/// \brief Outcome of an offline consistency check (see `FsckStore`).
///
/// `errors` are integrity violations (corrupt superblock, broken free
/// list, page checksum mismatches); `warnings` are survivable oddities
/// (torn WAL tail, unverifiable checksum table). A store that merely
/// crashed is *not* an error: its committed WAL suffix shows up as
/// `needs_recovery` and the next `MDDStore::Open` replays it.
struct FsckReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  uint32_t page_size = 0;
  uint64_t page_count = 0;
  uint64_t free_pages = 0;
  uint64_t epoch = 0;
  uint64_t checkpoint_lsn = 0;

  uint64_t wal_records = 0;
  uint64_t wal_committed_txns = 0;
  bool wal_torn_tail = false;
  /// Committed transactions in the WAL past the checkpoint LSN: Open will
  /// replay them.
  bool needs_recovery = false;

  uint64_t pages_checksummed = 0;
  uint64_t checksum_mismatches = 0;

  /// Tile→page mapping walk (catalog, index images, tile blob chains) —
  /// only when no recovery is pending. `mapped_pages` are pages owned by
  /// exactly one blob chain; a page both free and mapped, mapped twice,
  /// or a chain running off the file is an error. `leaked_pages`
  /// (allocated but referenced by nothing) are a warning: a committed
  /// data transaction whose catalog write never happened leaves them
  /// behind legitimately.
  uint64_t mapped_blobs = 0;
  uint64_t mapped_pages = 0;
  uint64_t leaked_pages = 0;
  /// Fragmentation: tile blobs per object sorted by first page, counting
  /// physically adjacent runs. `tile_extents == objects` means every
  /// object reads in one sequential sweep; `fragmented_chains` counts
  /// blob chains whose own pages are non-consecutive.
  uint64_t tile_blobs = 0;
  uint64_t tile_extents = 0;
  uint64_t fragmented_chains = 0;

  /// `<db>.summ` summary-sidecar check (DESIGN.md §15) — advisory only:
  /// summaries are rebuildable, so every problem here is a warning, never
  /// an error. `summ_stale` means the sidecar's epoch does not match the
  /// superblock (Open discards it wholesale); `summ_orphans` counts
  /// entries whose blob is not a live tile blob of the named object
  /// (Open's live-blob filter drops them); `summ_uncovered` counts live
  /// tile blobs with no persisted summary (they rebuild lazily on the
  /// next filtered query).
  bool summ_present = false;
  bool summ_stale = false;
  uint64_t summ_entries = 0;
  uint64_t summ_orphans = 0;
  uint64_t summ_uncovered = 0;

  bool clean() const { return errors.empty(); }
};

/// Offline integrity check of the page file at `db_path` and its sidecar
/// WAL (`<db_path>.wal`). Read-only; safe on a crashed store. Verifies:
///   - both superblock copies (at least one must parse),
///   - the free-list chain (bounds, length, cycles),
///   - the WAL record chain,
///   - per-page CRC32C against the persisted checksum table — only when
///     the store needs no recovery, since replay legitimately changes
///     pages,
///   - the `<db_path>.summ` summary sidecar (CRC, epoch, one entry per
///     live tile blob) — warnings only, since summaries are rebuildable.
/// Fails (the Result) only when the file cannot be read at all; integrity
/// problems are reported inside the FsckReport.
Result<FsckReport> FsckStore(const std::string& db_path);

/// Renders the report in a human-readable form for the CLI tool.
std::string FormatFsckReport(const FsckReport& report);

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_FSCK_H_
