#ifndef TILESTORE_STORAGE_ENV_H_
#define TILESTORE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace tilestore {

/// \brief Minimal random-access file abstraction over POSIX pread/pwrite.
///
/// The storage manager needs only offset-addressed reads and writes of
/// whole pages; this thin wrapper keeps the rest of the storage layer
/// portable and testable.
class File {
 public:
  /// Opens `path` read-write, creating it when `create` is true (failing
  /// with AlreadyExists if it already exists in that case).
  static Result<std::unique_ptr<File>> Open(const std::string& path,
                                            bool create);

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Reads exactly `n` bytes at `offset`. Short reads are IOErrors.
  Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const;

  /// Writes exactly `n` bytes at `offset`, extending the file as needed.
  Status WriteAt(uint64_t offset, const uint8_t* data, size_t n);

  /// Flushes file contents to stable storage (fdatasync).
  Status Sync();

  /// Current size in bytes.
  Result<uint64_t> Size() const;

  const std::string& path() const { return path_; }

 private:
  File(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
};

/// True if a file exists at `path`.
bool FileExists(const std::string& path);

/// Removes the file at `path` if present (OK when absent).
Status RemoveFile(const std::string& path);

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_ENV_H_
