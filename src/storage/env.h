#ifndef TILESTORE_STORAGE_ENV_H_
#define TILESTORE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tilestore {

/// \brief Deterministic fault-injection hook for the file layer.
///
/// Crash-recovery tests install an injector (see `SetFaultInjector`) to
/// simulate power loss: after a scripted point every write is torn or
/// dropped and every fsync fails, exactly as a dying machine would behave.
/// Production code never installs one, so the hot path costs a single
/// relaxed atomic load.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted before each `File::WriteAt`. `allowed` bytes (possibly 0)
  /// are written before the call fails when `fail` is true — a torn write.
  struct WriteDecision {
    size_t allowed;
    bool fail;
  };
  virtual WriteDecision OnWriteAt(const std::string& path, uint64_t offset,
                                  size_t n) = 0;

  /// Consulted before each `File::Sync`; returning true fails the sync.
  virtual bool OnSync(const std::string& path) = 0;

  /// Consulted before each `File::Truncate`; returning true fails it.
  virtual bool OnTruncate(const std::string& path) {
    (void)path;
    return false;
  }

  /// Consulted before each read — both `File::ReadAt` and every op an
  /// `IoBackend` submits — so batched and sequential reads fail at the
  /// same boundaries. Returning true fails the read with an IOError.
  virtual bool OnReadAt(const std::string& path, uint64_t offset, size_t n) {
    (void)path;
    (void)offset;
    (void)n;
    return false;
  }
};

/// Installs `injector` globally (nullptr uninstalls). The caller keeps
/// ownership and must keep it alive until uninstalled. Test-only; not
/// meant to race live I/O — install before the store under test is opened.
void SetFaultInjector(FaultInjector* injector);
FaultInjector* ActiveFaultInjector();

/// \brief Scriptable `FaultInjector`: records every write for crash-point
/// discovery and simulates a crash after a byte budget or at a given sync.
///
/// Once the scripted point is reached the injector is "crashed": all
/// subsequent matching writes are dropped whole and all syncs fail, so the
/// process under test can keep running (and destructing) without touching
/// the disk again — the moral equivalent of pulling the plug.
class ScriptedFaultInjector final : public FaultInjector {
 public:
  struct WriteEvent {
    std::string path;
    uint64_t offset;
    size_t size;
  };

  /// Only operations on files whose path contains `substr` are recorded /
  /// failed; empty (the default) matches every file.
  void set_path_filter(std::string substr);

  /// Crash after `budget` total matching bytes have been written: the
  /// write that crosses the budget is torn at the boundary.
  void FailWritesAfter(uint64_t budget);

  /// Crash at the `nth` (1-based) matching sync: it fails, as does
  /// everything after it.
  void FailSyncAt(uint64_t nth);

  /// Every matching sync fails (writes still succeed) — a persistently
  /// broken fsync rather than a crash.
  void FailAllSyncs();

  /// Matching writes observed so far, in order (recorded while healthy).
  std::vector<WriteEvent> writes() const;
  uint64_t bytes_written() const;
  uint64_t syncs_seen() const;
  bool crashed() const;

  WriteDecision OnWriteAt(const std::string& path, uint64_t offset,
                          size_t n) override;
  bool OnSync(const std::string& path) override;
  bool OnTruncate(const std::string& path) override;

 private:
  bool Matches(const std::string& path) const;

  mutable std::mutex mu_;
  std::string filter_;
  uint64_t write_budget_ = UINT64_MAX;
  uint64_t fail_sync_at_ = 0;  // 0 = never
  bool fail_all_syncs_ = false;
  bool crashed_ = false;
  uint64_t bytes_ = 0;
  uint64_t syncs_ = 0;
  std::vector<WriteEvent> events_;
};

/// \brief Minimal random-access file abstraction over POSIX pread/pwrite.
///
/// The storage manager needs only offset-addressed reads and writes of
/// whole pages; this thin wrapper keeps the rest of the storage layer
/// portable and testable. Writes, syncs, and truncations consult the
/// installed `FaultInjector`, which is how crash tests tear the store at
/// byte granularity.
class File {
 public:
  /// Opens `path` read-write, creating it when `create` is true (failing
  /// with AlreadyExists if it already exists in that case).
  static Result<std::unique_ptr<File>> Open(const std::string& path,
                                            bool create);

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Reads exactly `n` bytes at `offset`. Short reads are IOErrors.
  Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const;

  /// Writes exactly `n` bytes at `offset`, extending the file as needed.
  Status WriteAt(uint64_t offset, const uint8_t* data, size_t n);

  /// Flushes file contents to stable storage (fdatasync).
  Status Sync();

  /// Truncates the file to `size` bytes.
  Status Truncate(uint64_t size);

  /// Current size in bytes.
  Result<uint64_t> Size() const;

  const std::string& path() const { return path_; }

  /// Raw descriptor, for `IoBackend` implementations that submit reads
  /// directly to the kernel (io_uring). Read-only use; the `File` keeps
  /// ownership.
  int fd() const { return fd_; }

 private:
  File(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
};

/// \brief Advisory exclusive lock on a sidecar file (POSIX flock).
///
/// `MDDStore` takes one on `<db>.lock` so a second process (or a second
/// store instance in the same process) opening the same database gets a
/// clear `Unavailable` error instead of undefined concurrent access. The
/// lock is advisory: tools that merely read bytes (fsck on a crashed
/// image) are not blocked by it. Released on destruction; the sidecar
/// file itself is left in place — flock state dies with the descriptor,
/// so a stale file never locks anyone out.
class FileLock {
 public:
  /// Creates `path` if needed and acquires an exclusive non-blocking
  /// flock on it. A held lock yields `Unavailable` naming the path.
  static Result<std::unique_ptr<FileLock>> Acquire(const std::string& path);

  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  const std::string& path() const { return path_; }

 private:
  FileLock(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
};

/// True if a file exists at `path`.
bool FileExists(const std::string& path);

/// Removes the file at `path` if present (OK when absent).
Status RemoveFile(const std::string& path);

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_ENV_H_
