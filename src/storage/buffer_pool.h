#ifndef TILESTORE_STORAGE_BUFFER_POOL_H_
#define TILESTORE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace tilestore {

/// \brief Write-through LRU page cache in front of a `PageFile`.
///
/// Reads served from the pool do not touch the page file and therefore do
/// not accrue disk-model cost — exactly like a database buffer pool hiding
/// repeated tile accesses. Benchmarks call `Clear()` between queries to
/// measure the cold (disk-bound) regime the paper reports.
///
/// Not thread-safe, like the rest of the storage layer.
class BufferPool {
 public:
  /// `capacity_pages` of zero disables caching (all calls pass through).
  BufferPool(PageFile* file, size_t capacity_pages);

  /// Reads a page through the cache.
  Status ReadPage(PageId id, uint8_t* out);

  /// Writes a page through to the file and refreshes any cached copy.
  Status WritePage(PageId id, const uint8_t* data);

  /// Drops a page from the cache (e.g. when it is freed).
  void Invalidate(PageId id);

  /// Drops all cached pages. Hit/miss counters are cumulative and are not
  /// reset.
  void Clear();

  size_t capacity_pages() const { return capacity_; }
  size_t cached_pages() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  PageFile* page_file() const { return file_; }

 private:
  struct Entry {
    PageId id;
    std::vector<uint8_t> data;
  };
  using LruList = std::list<Entry>;

  void Touch(LruList::iterator it);
  void InsertEntry(PageId id, const uint8_t* data);

  PageFile* file_;
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<PageId, LruList::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_BUFFER_POOL_H_
