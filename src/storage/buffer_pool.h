#ifndef TILESTORE_STORAGE_BUFFER_POOL_H_
#define TILESTORE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace tilestore {

class TxnManager;

/// One logical page run in a `BufferPool::ReadRunBatch` request.
struct PageRunRequest {
  PageId first = kInvalidPageId;
  uint64_t count = 0;
  uint8_t* out = nullptr;
};

/// A disk-model charge owed for a physical miss span read by
/// `ReadRunBatch`: `request` indexes the originating `PageRunRequest`.
/// The caller replays these through `PageFile::ChargeReadRun` in its own
/// logical order, which is how the batched path reproduces the
/// access-order-dependent seek accounting of the sequential path.
struct DeferredPageCharge {
  size_t request = 0;
  PageId first = kInvalidPageId;
  uint64_t count = 0;
};

/// \brief Write-through LRU page cache in front of a `PageFile`.
///
/// Reads served from the pool do not touch the page file and therefore do
/// not accrue disk-model cost — exactly like a database buffer pool hiding
/// repeated tile accesses. Benchmarks call `Clear()` between queries to
/// measure the cold (disk-bound) regime the paper reports.
///
/// With a `TxnManager` attached, writes inside an active transaction are
/// *staged* in the transaction instead of written through (no-steal), and
/// reads consult the staged overlay first (read-your-writes). The commit
/// path re-enters via `ApplyCommitted`, which writes through and warms
/// the cache exactly as the unlogged path would have.
///
/// Concurrency: the pool is thread-safe. The LRU is striped — page ids
/// hash to one of several shards, each with its own mutex, list, and map —
/// so concurrent readers on different pages rarely contend. Small pools
/// (and the pools unit tests use) collapse to a single shard, preserving
/// the exact global-LRU eviction order of the serial implementation.
///
/// Observability: hit/miss/eviction counts live per stripe in the attached
/// `obs::MetricsRegistry` (`bufferpool.shard<i>.hits` etc.), plus a
/// `bufferpool.miss_run_pages` histogram of the coalesced miss-run sizes
/// `ReadRun` turns into physical reads. The legacy `stats()` / `hits()` /
/// `misses()` / `evictions()` accessors are shims summing the per-stripe
/// registry counters; without an attached registry the pool owns a private
/// one, so standalone pools behave identically.
class BufferPool {
 public:
  /// Counter snapshot; see `stats()`. Deprecated shim over the registry —
  /// new code should read `bufferpool.*` from `MDDStore::metrics()`.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `capacity_pages` of zero disables caching (all calls pass through).
  BufferPool(PageFile* file, size_t capacity_pages,
             obs::MetricsRegistry* metrics = nullptr);

  /// Reads a page through the cache.
  Status ReadPage(PageId id, uint8_t* out);

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (count * page_size bytes). Cached pages are served from the pool;
  /// maximal spans of misses are coalesced into single `PageFile::ReadRun`
  /// calls — charged to the disk model once per span — and inserted into
  /// the cache page by page. `physical_runs`, when non-null, receives the
  /// number of coalesced physical reads issued.
  Status ReadRun(PageId first, uint64_t count, uint8_t* out,
                 uint64_t* physical_runs = nullptr);

  /// Batched `ReadRun`: serves cached pages, then submits every miss span
  /// of every run as one `PageFile::ReadBatch`, so the spans overlap in
  /// flight. Hit/miss/eviction counters and the miss-run histogram are
  /// identical to the equivalent `ReadRun` loop. With `deferred_charges`
  /// non-null the physical reads are NOT charged to the disk model —
  /// the spans are appended there instead for the caller to replay; with
  /// null each span is charged immediately in span order. Falls back to
  /// sequential `ReadRun` calls when the active transaction stages pages
  /// (the single-writer mutation path, which never batches anyway).
  Status ReadRunBatch(std::span<const PageRunRequest> runs,
                      uint64_t* physical_runs,
                      std::vector<DeferredPageCharge>* deferred_charges);

  /// Writes a page. Outside a transaction: through to the file, refreshing
  /// any cached copy. Inside one: staged in the transaction only.
  Status WritePage(PageId id, const uint8_t* data);

  /// Commit-path write-through: bypasses transaction staging, writes the
  /// page to the file and refreshes the cache.
  Status ApplyCommitted(PageId id, const uint8_t* data);

  /// Attaches the transaction manager consulted for staging/overlay reads;
  /// nullptr detaches (plain write-through). Attach before sharing the
  /// pool across threads.
  void set_txn_manager(TxnManager* txns) { txns_ = txns; }

  /// Drops a page from the cache (e.g. when it is freed).
  void Invalidate(PageId id);

  /// Drops all cached pages. Hit/miss counters are cumulative and are not
  /// reset; use `ResetCounters()` for that.
  void Clear();

  /// Zeroes this pool's hit/miss/eviction counters (cached pages are
  /// kept). Other metrics in a shared registry are untouched.
  void ResetCounters();

  /// Consistent snapshot of the cumulative counters (registry shim).
  Stats stats() const;

  size_t capacity_pages() const { return capacity_; }
  size_t cached_pages() const;
  size_t shard_count() const { return shards_.size(); }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

  PageFile* page_file() const { return file_; }

 private:
  struct Entry {
    PageId id;
    std::vector<uint8_t> data;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<PageId, LruList::iterator> map;
    // Per-stripe registry counters (resolved at pool construction).
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }
  const Shard& ShardFor(PageId id) const {
    return *shards_[id % shards_.size()];
  }

  /// Copies the page out of the cache if present (counts a hit).
  bool TryReadCached(PageId id, uint8_t* out);

  /// Inserts or refreshes `id`; caller must NOT hold the shard mutex.
  void InsertEntry(PageId id, const uint8_t* data);

  /// The active transaction, or nullptr.
  TransactionContext* ActiveTxn() const;

  PageFile* file_;
  TxnManager* txns_ = nullptr;
  size_t capacity_;
  size_t shard_capacity_;
  // Private fallback when no registry is attached at construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Histogram* miss_run_pages_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_BUFFER_POOL_H_
