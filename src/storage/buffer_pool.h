#ifndef TILESTORE_STORAGE_BUFFER_POOL_H_
#define TILESTORE_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page_file.h"

namespace tilestore {

class TxnManager;

/// \brief Write-through LRU page cache in front of a `PageFile`.
///
/// Reads served from the pool do not touch the page file and therefore do
/// not accrue disk-model cost — exactly like a database buffer pool hiding
/// repeated tile accesses. Benchmarks call `Clear()` between queries to
/// measure the cold (disk-bound) regime the paper reports.
///
/// With a `TxnManager` attached, writes inside an active transaction are
/// *staged* in the transaction instead of written through (no-steal), and
/// reads consult the staged overlay first (read-your-writes). The commit
/// path re-enters via `ApplyCommitted`, which writes through and warms
/// the cache exactly as the unlogged path would have.
///
/// Concurrency: the pool is thread-safe. The LRU is striped — page ids
/// hash to one of several shards, each with its own mutex, list, and map —
/// so concurrent readers on different pages rarely contend. Small pools
/// (and the pools unit tests use) collapse to a single shard, preserving
/// the exact global-LRU eviction order of the serial implementation.
/// Hit/miss/eviction counters are atomic.
class BufferPool {
 public:
  /// Counter snapshot; see `stats()`.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `capacity_pages` of zero disables caching (all calls pass through).
  BufferPool(PageFile* file, size_t capacity_pages);

  /// Reads a page through the cache.
  Status ReadPage(PageId id, uint8_t* out);

  /// Reads `count` consecutive pages starting at `first` into `out`
  /// (count * page_size bytes). Cached pages are served from the pool;
  /// maximal spans of misses are coalesced into single `PageFile::ReadRun`
  /// calls — charged to the disk model once per span — and inserted into
  /// the cache page by page. `physical_runs`, when non-null, receives the
  /// number of coalesced physical reads issued.
  Status ReadRun(PageId first, uint64_t count, uint8_t* out,
                 uint64_t* physical_runs = nullptr);

  /// Writes a page. Outside a transaction: through to the file, refreshing
  /// any cached copy. Inside one: staged in the transaction only.
  Status WritePage(PageId id, const uint8_t* data);

  /// Commit-path write-through: bypasses transaction staging, writes the
  /// page to the file and refreshes the cache.
  Status ApplyCommitted(PageId id, const uint8_t* data);

  /// Attaches the transaction manager consulted for staging/overlay reads;
  /// nullptr detaches (plain write-through). Attach before sharing the
  /// pool across threads.
  void set_txn_manager(TxnManager* txns) { txns_ = txns; }

  /// Drops a page from the cache (e.g. when it is freed).
  void Invalidate(PageId id);

  /// Drops all cached pages. Hit/miss counters are cumulative and are not
  /// reset; use `ResetCounters()` for that.
  void Clear();

  /// Zeroes the hit/miss/eviction counters (cached pages are kept).
  void ResetCounters();

  /// Consistent snapshot of the cumulative counters.
  Stats stats() const;

  size_t capacity_pages() const { return capacity_; }
  size_t cached_pages() const;
  size_t shard_count() const { return shards_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  PageFile* page_file() const { return file_; }

 private:
  struct Entry {
    PageId id;
    std::vector<uint8_t> data;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<PageId, LruList::iterator> map;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  /// Copies the page out of the cache if present (counts a hit).
  bool TryReadCached(PageId id, uint8_t* out);

  /// Inserts or refreshes `id`; caller must NOT hold the shard mutex.
  void InsertEntry(PageId id, const uint8_t* data);

  /// The active transaction, or nullptr.
  TransactionContext* ActiveTxn() const;

  PageFile* file_;
  TxnManager* txns_ = nullptr;
  size_t capacity_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_BUFFER_POOL_H_
