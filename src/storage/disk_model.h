#ifndef TILESTORE_STORAGE_DISK_MODEL_H_
#define TILESTORE_STORAGE_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace tilestore {

/// Physical parameters of the modelled disk. Defaults approximate the
/// paper's 1997 testbed (Sun Ultra 1/140, one local 4 GB SCSI disk): ~8 ms
/// average positioning time and ~4 MiB/s sustained transfer. All benchmark
/// tables report model times computed from these parameters alongside the
/// (much smaller) measured wall-clock times; the *ratios* between tiling
/// schemes are what the reproduction targets.
struct DiskParams {
  double seek_ms = 8.0;
  double transfer_mib_per_s = 4.0;
};

/// \brief Deterministic disk cost accountant.
///
/// The page file reports every physical page access; the model charges one
/// seek whenever an access does not continue the previous one
/// contiguously, plus transfer time proportional to bytes moved. Reads and
/// writes are tracked separately so benchmarks can report retrieval cost
/// (the paper's t_o) without load-time noise.
///
/// Accounting is internally synchronized (one mutex guards the position
/// and every counter), so concurrent readers may report accesses safely.
/// Note that with concurrent reporters the *seek* attribution depends on
/// the interleaving of accesses — single-stream determinism holds only
/// when one thread at a time drives the model (the `parallelism = 1`
/// query path).
class DiskModel {
 public:
  explicit DiskModel(DiskParams params = DiskParams()) : params_(params) {}

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Records a physical read of `bytes` at page `page_id`.
  void OnRead(uint64_t page_id, size_t bytes);

  /// Records one coalesced physical read run of `pages` consecutive pages
  /// starting at `first_page`, `bytes` in total. Charges at most one seek
  /// for the whole run — the same total cost as reporting the pages one at
  /// a time in ascending order.
  void OnReadRun(uint64_t first_page, uint64_t pages, size_t bytes);

  /// Records a physical write of `bytes` at page `page_id`.
  void OnWrite(uint64_t page_id, size_t bytes);

  /// Records a WAL append of `bytes` at byte `offset` of the log file.
  /// Appends that continue the previous one are sequential; anything else
  /// (including interleaved data-page I/O, which moves the single modelled
  /// arm) charges a seek.
  void OnWalAppend(uint64_t offset, size_t bytes);

  /// Records one fsync (WAL group commit or checkpoint): a rotational
  /// latency charge of one seek, no transfer.
  void OnFsync();

  /// Clears counters (typically between benchmark queries). The head
  /// position is also forgotten, so the next access charges a seek.
  void Reset();

  double read_ms() const { return Locked(read_ms_); }
  double write_ms() const { return Locked(write_ms_); }
  uint64_t pages_read() const { return Locked(pages_read_); }
  uint64_t pages_written() const { return Locked(pages_written_); }
  uint64_t bytes_read() const { return Locked(bytes_read_); }
  uint64_t bytes_written() const { return Locked(bytes_written_); }
  uint64_t read_seeks() const { return Locked(read_seeks_); }
  uint64_t write_seeks() const { return Locked(write_seeks_); }
  double wal_ms() const { return Locked(wal_ms_); }
  uint64_t wal_appends() const { return Locked(wal_appends_); }
  uint64_t wal_bytes() const { return Locked(wal_bytes_); }
  double fsync_ms() const { return Locked(fsync_ms_); }
  uint64_t fsyncs() const { return Locked(fsyncs_); }

  const DiskParams& params() const { return params_; }

 private:
  double TransferMs(size_t bytes) const {
    return static_cast<double>(bytes) /
           (params_.transfer_mib_per_s * 1024.0 * 1024.0) * 1000.0;
  }

  template <typename T>
  T Locked(const T& field) const {
    std::lock_guard<std::mutex> lock(mu_);
    return field;
  }

  const DiskParams params_;

  mutable std::mutex mu_;
  // Next page id that would continue the current arm position without a
  // seek; UINT64_MAX means "unknown position". The model has a single arm:
  // a WAL append invalidates this, and a page access invalidates
  // `wal_expected_offset_`.
  uint64_t expected_next_ = UINT64_MAX;
  // Next WAL byte offset that would continue sequentially.
  uint64_t wal_expected_offset_ = UINT64_MAX;

  double read_ms_ = 0;
  double write_ms_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t read_seeks_ = 0;
  uint64_t write_seeks_ = 0;
  double wal_ms_ = 0;
  uint64_t wal_appends_ = 0;
  uint64_t wal_bytes_ = 0;
  double fsync_ms_ = 0;
  uint64_t fsyncs_ = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_DISK_MODEL_H_
