#ifndef TILESTORE_STORAGE_DISK_MODEL_H_
#define TILESTORE_STORAGE_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace tilestore {

/// Physical parameters of the modelled disk. Defaults approximate the
/// paper's 1997 testbed (Sun Ultra 1/140, one local 4 GB SCSI disk): ~8 ms
/// average positioning time and ~4 MiB/s sustained transfer. All benchmark
/// tables report model times computed from these parameters alongside the
/// (much smaller) measured wall-clock times; the *ratios* between tiling
/// schemes are what the reproduction targets.
struct DiskParams {
  double seek_ms = 8.0;
  double transfer_mib_per_s = 4.0;
};

/// \brief Deterministic disk cost accountant.
///
/// The page file reports every physical page access; the model charges one
/// seek whenever an access does not continue the previous one
/// contiguously, plus transfer time proportional to bytes moved. Reads and
/// writes are tracked separately so benchmarks can report retrieval cost
/// (the paper's t_o) without load-time noise.
///
/// Accounting is internally synchronized (one mutex guards the position
/// and the model-time accumulators), so concurrent readers may report
/// accesses safely. Note that with concurrent reporters the *seek*
/// attribution depends on the interleaving of accesses — single-stream
/// determinism holds only when one thread at a time drives the model (the
/// `parallelism = 1` query path).
///
/// Observability: every integer counter lives in the attached
/// `obs::MetricsRegistry` under `disk.*` (the legacy accessors below are
/// shims reading those registry counters), and the accumulated model
/// milliseconds are mirrored bit-exactly into `disk.*_ms` double gauges
/// after each event. Without an attached registry the model owns a
/// private one, so the accessors behave identically either way. `Reset()`
/// zeroes only the model's own metrics, never its registry neighbours'.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params = DiskParams(),
                     obs::MetricsRegistry* metrics = nullptr);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Records a physical read of `bytes` at page `page_id`.
  void OnRead(uint64_t page_id, size_t bytes);

  /// Records one coalesced physical read run of `pages` consecutive pages
  /// starting at `first_page`, `bytes` in total. Charges at most one seek
  /// for the whole run — the same total cost as reporting the pages one at
  /// a time in ascending order.
  void OnReadRun(uint64_t first_page, uint64_t pages, size_t bytes);

  /// Records a physical write of `bytes` at page `page_id`.
  void OnWrite(uint64_t page_id, size_t bytes);

  /// Records a WAL append of `bytes` at byte `offset` of the log file.
  /// Appends that continue the previous one are sequential; anything else
  /// (including interleaved data-page I/O, which moves the single modelled
  /// arm) charges a seek.
  void OnWalAppend(uint64_t offset, size_t bytes);

  /// Records one fsync (WAL group commit or checkpoint): a rotational
  /// latency charge of one seek, no transfer.
  void OnFsync();

  /// Clears this model's counters and model times (typically between
  /// benchmark queries). The head position is also forgotten, so the next
  /// access charges a seek. Other metrics in a shared registry are
  /// untouched.
  void Reset();

  double read_ms() const { return LockedMs(read_ms_); }
  double write_ms() const { return LockedMs(write_ms_); }
  uint64_t pages_read() const { return pages_read_->Value(); }
  uint64_t pages_written() const { return pages_written_->Value(); }
  uint64_t bytes_read() const { return bytes_read_->Value(); }
  uint64_t bytes_written() const { return bytes_written_->Value(); }
  uint64_t read_seeks() const { return read_seeks_->Value(); }
  uint64_t write_seeks() const { return write_seeks_->Value(); }
  double wal_ms() const { return LockedMs(wal_ms_); }
  uint64_t wal_appends() const { return wal_appends_->Value(); }
  uint64_t wal_bytes() const { return wal_bytes_->Value(); }
  double fsync_ms() const { return LockedMs(fsync_ms_); }
  uint64_t fsyncs() const { return fsyncs_->Value(); }

  const DiskParams& params() const { return params_; }

 private:
  double TransferMs(size_t bytes) const {
    return static_cast<double>(bytes) /
           (params_.transfer_mib_per_s * 1024.0 * 1024.0) * 1000.0;
  }

  double LockedMs(const double& field) const {
    std::lock_guard<std::mutex> lock(mu_);
    return field;
  }

  /// Publishes the four ms accumulators into their double gauges; caller
  /// holds mu_, so the published bits are exactly the accumulated bits.
  void PublishMsLocked();

  const DiskParams params_;

  // Private fallback when no registry is attached at construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;

  // Registry-backed counters (resolved once; see `disk.*`).
  obs::Counter* pages_read_;
  obs::Counter* pages_written_;
  obs::Counter* bytes_read_;
  obs::Counter* bytes_written_;
  obs::Counter* read_seeks_;
  obs::Counter* write_seeks_;
  obs::Counter* wal_appends_;
  obs::Counter* wal_bytes_;
  obs::Counter* fsyncs_;
  obs::DoubleGauge* read_ms_gauge_;
  obs::DoubleGauge* write_ms_gauge_;
  obs::DoubleGauge* wal_ms_gauge_;
  obs::DoubleGauge* fsync_ms_gauge_;

  mutable std::mutex mu_;
  // Next page id that would continue the current arm position without a
  // seek; UINT64_MAX means "unknown position". The model has a single arm:
  // a WAL append invalidates this, and a page access invalidates
  // `wal_expected_offset_`.
  uint64_t expected_next_ = UINT64_MAX;
  // Next WAL byte offset that would continue sequentially.
  uint64_t wal_expected_offset_ = UINT64_MAX;

  // Model-time accumulators: doubles summed under mu_ in event order, so
  // the paper's deterministic cost numbers stay bit-identical regardless
  // of the metrics plumbing.
  double read_ms_ = 0;
  double write_ms_ = 0;
  double wal_ms_ = 0;
  double fsync_ms_ = 0;
};

}  // namespace tilestore

#endif  // TILESTORE_STORAGE_DISK_MODEL_H_
