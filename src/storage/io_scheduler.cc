#include "storage/io_scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <vector>

#include "storage/compression.h"
#include "storage/tile_cache.h"

namespace tilestore {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

void TileIOScheduler::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.batches = registry->counter("scheduler.batches");
  metrics_.tiles = registry->counter("scheduler.tiles");
  metrics_.coalesced_runs = registry->counter("scheduler.coalesced_runs");
  metrics_.chain_fallbacks = registry->counter("scheduler.chain_fallbacks");
  metrics_.cross_object_coalesced =
      registry->counter("io.cross_object_coalesced");
  metrics_.queue_depth = registry->gauge("scheduler.queue_depth");
  metrics_.batch_tiles = registry->size_histogram("scheduler.batch_tiles");
  metrics_.fetch_ms = registry->latency_histogram("scheduler.fetch_ms");
}

void TileIOStats::Add(const TileIOStats& other) {
  tiles += other.tiles;
  tile_bytes += other.tile_bytes;
  coalesced_runs += other.coalesced_runs;
  chain_fallbacks += other.chain_fallbacks;
  cross_object_coalesced += other.cross_object_coalesced;
  cache_hits += other.cache_hits;
  io_summed_ms += other.io_summed_ms;
  decode_summed_ms += other.decode_summed_ms;
  wall_ms += other.wall_ms;
}

Result<Tile> TileIOScheduler::FetchOne(const TileEntry& entry,
                                       CellType cell_type, bool coalesce,
                                       TileIOStats* stats) {
  const Clock::time_point io_start = Clock::now();
  Result<std::vector<uint8_t>> data =
      coalesce ? [&] {
        BlobReadStats blob_stats;
        Result<std::vector<uint8_t>> r =
            blobs_->GetCoalesced(entry.blob, &blob_stats);
        if (stats != nullptr) {
          stats->coalesced_runs += blob_stats.physical_runs;
          if (blob_stats.fell_back) ++stats->chain_fallbacks;
        }
        return r;
      }()
               : blobs_->Get(entry.blob);
  if (!data.ok()) return data.status();
  if (stats != nullptr) stats->io_summed_ms += ElapsedMs(io_start);
  return DecodePayload(entry, cell_type, std::move(data).MoveValue(), stats);
}

Result<Tile> TileIOScheduler::DecodePayload(const TileEntry& entry,
                                            CellType cell_type,
                                            std::vector<uint8_t>&& data,
                                            TileIOStats* stats) {
  const Clock::time_point decode_start = Clock::now();
  const size_t raw_size = entry.domain.CellCountOrDie() * cell_type.size();
  Result<std::vector<uint8_t>> cells =
      Decompress(entry.compression, data, raw_size);
  if (!cells.ok()) return cells.status();
  Result<Tile> tile =
      Tile::FromBuffer(entry.domain, cell_type, std::move(cells).MoveValue());
  if (!tile.ok()) return tile.status();

  if (stats != nullptr) {
    ++stats->tiles;
    stats->tile_bytes += tile->size_bytes();
    stats->decode_summed_ms += ElapsedMs(decode_start);
  }
  return tile;
}

Status TileIOScheduler::FetchBatch(
    std::span<const TileEntry> entries, CellType cell_type,
    const TileIOOptions& options,
    const std::function<Status(size_t, Tile&&)>& consume,
    TileIOStats* stats) {
  const Clock::time_point wall_start = Clock::now();

  // Physical page order: ascending BLOB id (BLOB pages are allocated front
  // to back). Stable so equal ids keep their submission order.
  std::vector<size_t> order(entries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries[a].blob < entries[b].blob;
  });

  const int parallelism =
      options.pool != nullptr
          ? std::min<int>(std::max(options.parallelism, 1),
                          static_cast<int>(options.pool->size()))
          : 1;

  if (metrics_.batches != nullptr) {
    metrics_.batches->Add(1);
    metrics_.batch_tiles->Observe(static_cast<double>(entries.size()));
    metrics_.queue_depth->Add(static_cast<int64_t>(entries.size()));
  }
  // The queue-depth gauge must come back down on every exit path,
  // including errors, by whatever is still outstanding.
  uint64_t completed = 0;
  auto settle_queue = [&]() {
    if (metrics_.queue_depth != nullptr) {
      metrics_.queue_depth->Add(-static_cast<int64_t>(entries.size() -
                                                      completed));
    }
  };

  if (parallelism <= 1) {
    // Serial mode: byte-for-byte the original tile-at-a-time loop — page
    // by page through the pool, no speculative reads — so the paper's
    // deterministic cost numbers are reproduced exactly.
    TileIOStats local;
    for (size_t idx : order) {
      const Clock::time_point fetch_start = Clock::now();
      Result<Tile> tile = [&] {
        obs::TraceScope span(options.trace, options.trace_id, "tile_fetch");
        return FetchOne(entries[idx], cell_type, /*coalesce=*/false, &local);
      }();
      if (metrics_.fetch_ms != nullptr) {
        metrics_.fetch_ms->Observe(ElapsedMs(fetch_start));
      }
      if (!tile.ok()) {
        settle_queue();
        return tile.status();
      }
      const Clock::time_point consume_start = Clock::now();
      Status st = [&] {
        obs::TraceScope span(options.trace, options.trace_id, "tile_decode");
        return consume(idx, std::move(tile).MoveValue());
      }();
      if (!st.ok()) {
        settle_queue();
        return st;
      }
      local.decode_summed_ms += ElapsedMs(consume_start);
      ++completed;
      if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(-1);
    }
    local.wall_ms = ElapsedMs(wall_start);
    if (stats != nullptr) stats->Add(local);
    if (metrics_.tiles != nullptr) {
      metrics_.tiles->Add(local.tiles);
      metrics_.coalesced_runs->Add(local.coalesced_runs);
      metrics_.chain_fallbacks->Add(local.chain_fallbacks);
    }
    return Status::OK();
  }

  // Parallel mode: one `GetBatch` covers the whole sorted batch, so every
  // miss span is handed to the page file's IoBackend in a single
  // submission; `parallelism` workers then drain decode + composition
  // through a shared cursor. Charges were replayed inside GetBatch in
  // sorted-id order, identical to a sequential coalesced loop.
  std::vector<BlobId> ids(order.size());
  for (size_t i = 0; i < order.size(); ++i) ids[i] = entries[order[i]].blob;

  const Clock::time_point io_start = Clock::now();
  std::vector<std::vector<uint8_t>> payloads;
  BlobReadStats batch_stats;
  Status batch_status = blobs_->GetBatch(ids, &payloads, &batch_stats);
  const double batch_io_ms = ElapsedMs(io_start);
  if (metrics_.fetch_ms != nullptr) metrics_.fetch_ms->Observe(batch_io_ms);
  if (!batch_status.ok()) {
    settle_queue();
    return batch_status;
  }

  std::atomic<size_t> cursor{0};
  std::atomic<uint64_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex result_mu;
  Status first_error;
  TileIOStats merged;

  TaskGroup group(options.pool);
  for (int w = 0; w < parallelism; ++w) {
    group.Run([&] {
      TileIOStats local;
      size_t i;
      while (!failed.load(std::memory_order_acquire) &&
             (i = cursor.fetch_add(1, std::memory_order_relaxed)) <
                 order.size()) {
        const size_t idx = order[i];
        // The payload is already in memory; the span marks the per-tile
        // handoff + decode so traces keep one tile_fetch per tile.
        Result<Tile> tile = [&] {
          obs::TraceScope span(options.trace, options.trace_id, "tile_fetch");
          return DecodePayload(entries[idx], cell_type,
                               std::move(payloads[i]), &local);
        }();
        Status st = tile.ok()
                        ? [&] {
                            obs::TraceScope span(options.trace,
                                                 options.trace_id,
                                                 "tile_decode");
                            const Clock::time_point consume_start =
                                Clock::now();
                            Status cs =
                                consume(idx, std::move(tile).MoveValue());
                            local.decode_summed_ms += ElapsedMs(consume_start);
                            return cs;
                          }()
                        : tile.status();
        if (!st.ok()) {
          failed.store(true, std::memory_order_release);
          std::lock_guard<std::mutex> lock(result_mu);
          if (first_error.ok()) first_error = st;
          break;
        }
        done.fetch_add(1, std::memory_order_relaxed);
        if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(-1);
      }
      std::lock_guard<std::mutex> lock(result_mu);
      merged.Add(local);
    });
  }
  group.Wait();
  completed = done.load(std::memory_order_relaxed);

  merged.coalesced_runs += batch_stats.physical_runs;
  merged.chain_fallbacks += batch_stats.fallback_chains;
  merged.cross_object_coalesced += batch_stats.cross_object_coalesced;
  merged.io_summed_ms += batch_io_ms;
  if (metrics_.tiles != nullptr) {
    metrics_.tiles->Add(merged.tiles);
    metrics_.coalesced_runs->Add(merged.coalesced_runs);
    metrics_.chain_fallbacks->Add(merged.chain_fallbacks);
    metrics_.cross_object_coalesced->Add(merged.cross_object_coalesced);
  }
  settle_queue();
  if (!first_error.ok()) return first_error;
  merged.wall_ms = ElapsedMs(wall_start);
  if (stats != nullptr) stats->Add(merged);
  return Status::OK();
}

Status TileIOScheduler::FetchBatchShared(
    std::span<const TileEntry> entries, CellType cell_type,
    const TileIOOptions& options,
    const std::function<Status(size_t, const Tile&)>& consume,
    TileIOStats* stats) {
  const Clock::time_point wall_start = Clock::now();

  // Physical page order, exactly as in FetchBatch.
  std::vector<size_t> order(entries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries[a].blob < entries[b].blob;
  });

  const int parallelism =
      options.pool != nullptr
          ? std::min<int>(std::max(options.parallelism, 1),
                          static_cast<int>(options.pool->size()))
          : 1;

  TileCache* cache = options.cache != nullptr && options.cache->enabled() &&
                             options.cache_object_id != 0
                         ? options.cache
                         : nullptr;

  if (metrics_.batches != nullptr) {
    metrics_.batches->Add(1);
    metrics_.batch_tiles->Observe(static_cast<double>(entries.size()));
    metrics_.queue_depth->Add(static_cast<int64_t>(entries.size()));
  }
  uint64_t completed = 0;
  auto settle_queue = [&]() {
    if (metrics_.queue_depth != nullptr) {
      metrics_.queue_depth->Add(-static_cast<int64_t>(entries.size() -
                                                      completed));
    }
  };

  // One entry end to end: cache hit > encoded fast path > fetch + decode
  // (+ optional populate). Runs on the caller (serial) or a worker.
  auto process = [&](size_t idx, bool coalesce, TileIOStats* local) {
    const TileEntry& entry = entries[idx];
    if (cache != nullptr) {
      std::shared_ptr<const Tile> hit =
          cache->Lookup(options.cache_object_id, entry.blob);
      if (hit != nullptr) {
        // Traffic totals stay identical to the uncached path; only the
        // measured io/decode times (and fetch_ms) reflect the skip.
        ++local->tiles;
        local->tile_bytes += hit->size_bytes();
        ++local->cache_hits;
        obs::TraceScope span(options.trace, options.trace_id,
                             "tile_cache_hit");
        return consume(idx, *hit);
      }
    }
    if (options.encoded_filter && options.encoded_filter(idx)) {
      const Clock::time_point io_start = Clock::now();
      Result<std::vector<uint8_t>> data = [&] {
        obs::TraceScope span(options.trace, options.trace_id, "tile_fetch");
        if (!coalesce) return blobs_->Get(entry.blob);
        BlobReadStats blob_stats;
        Result<std::vector<uint8_t>> r =
            blobs_->GetCoalesced(entry.blob, &blob_stats);
        local->coalesced_runs += blob_stats.physical_runs;
        if (blob_stats.fell_back) ++local->chain_fallbacks;
        return r;
      }();
      if (!data.ok()) return data.status();
      ++local->tiles;
      // Charge the logical decoded size: the cost model's t_cpu is a
      // function of cells processed, not of the codec that carried them.
      local->tile_bytes += entry.domain.CellCountOrDie() * cell_type.size();
      local->io_summed_ms += ElapsedMs(io_start);
      const Clock::time_point consume_start = Clock::now();
      Status st = [&] {
        obs::TraceScope span(options.trace, options.trace_id,
                             "tile_reduce_encoded");
        return options.consume_encoded(idx, data.value());
      }();
      local->decode_summed_ms += ElapsedMs(consume_start);
      return st;
    }
    const Clock::time_point fetch_start = Clock::now();
    Result<Tile> tile = [&] {
      obs::TraceScope span(options.trace, options.trace_id, "tile_fetch");
      return FetchOne(entry, cell_type, coalesce, local);
    }();
    if (metrics_.fetch_ms != nullptr) {
      metrics_.fetch_ms->Observe(ElapsedMs(fetch_start));
    }
    if (!tile.ok()) return tile.status();
    const Clock::time_point consume_start = Clock::now();
    Status st = [&] {
      obs::TraceScope span(options.trace, options.trace_id, "tile_decode");
      if (cache != nullptr && options.cache_populate) {
        std::shared_ptr<const Tile> canonical = cache->Insert(
            options.cache_object_id, entry.blob,
            std::make_shared<const Tile>(std::move(tile).MoveValue()));
        return consume(idx, *canonical);
      }
      const Tile owned = std::move(tile).MoveValue();
      return consume(idx, owned);
    }();
    local->decode_summed_ms += ElapsedMs(consume_start);
    return st;
  };

  if (parallelism <= 1) {
    TileIOStats local;
    for (size_t idx : order) {
      Status st = process(idx, /*coalesce=*/false, &local);
      if (!st.ok()) {
        settle_queue();
        return st;
      }
      ++completed;
      if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(-1);
    }
    local.wall_ms = ElapsedMs(wall_start);
    if (stats != nullptr) stats->Add(local);
    if (metrics_.tiles != nullptr) {
      metrics_.tiles->Add(local.tiles);
      metrics_.coalesced_runs->Add(local.coalesced_runs);
      metrics_.chain_fallbacks->Add(local.chain_fallbacks);
    }
    return Status::OK();
  }

  // Parallel mode: cache hits are resolved inline on the caller first, so
  // the single `GetBatch` submission covers exactly the misses; workers
  // then drain decode/consume through a shared cursor.
  std::atomic<size_t> cursor{0};
  std::atomic<uint64_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex result_mu;
  Status first_error;
  TileIOStats merged;

  auto publish_metrics = [&] {
    if (metrics_.tiles != nullptr) {
      metrics_.tiles->Add(merged.tiles);
      metrics_.coalesced_runs->Add(merged.coalesced_runs);
      metrics_.chain_fallbacks->Add(merged.chain_fallbacks);
      metrics_.cross_object_coalesced->Add(merged.cross_object_coalesced);
    }
  };

  std::vector<size_t> miss_idx;  // entry indices, still in sorted order
  miss_idx.reserve(order.size());
  for (size_t idx : order) {
    std::shared_ptr<const Tile> hit =
        cache != nullptr
            ? cache->Lookup(options.cache_object_id, entries[idx].blob)
            : nullptr;
    if (hit == nullptr) {
      miss_idx.push_back(idx);
      continue;
    }
    ++merged.tiles;
    merged.tile_bytes += hit->size_bytes();
    ++merged.cache_hits;
    Status st = [&] {
      obs::TraceScope span(options.trace, options.trace_id, "tile_cache_hit");
      return consume(idx, *hit);
    }();
    if (!st.ok()) {
      publish_metrics();
      settle_queue();
      return st;
    }
    ++completed;
    if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(-1);
  }

  std::vector<BlobId> miss_ids(miss_idx.size());
  for (size_t i = 0; i < miss_idx.size(); ++i) {
    miss_ids[i] = entries[miss_idx[i]].blob;
  }

  const Clock::time_point io_start = Clock::now();
  std::vector<std::vector<uint8_t>> payloads;
  BlobReadStats batch_stats;
  Status batch_status = blobs_->GetBatch(miss_ids, &payloads, &batch_stats);
  if (!miss_idx.empty()) {
    const double batch_io_ms = ElapsedMs(io_start);
    merged.io_summed_ms += batch_io_ms;
    if (metrics_.fetch_ms != nullptr) metrics_.fetch_ms->Observe(batch_io_ms);
  }
  merged.coalesced_runs += batch_stats.physical_runs;
  merged.chain_fallbacks += batch_stats.fallback_chains;
  merged.cross_object_coalesced += batch_stats.cross_object_coalesced;
  if (!batch_status.ok()) {
    publish_metrics();
    settle_queue();
    return batch_status;
  }

  TaskGroup group(options.pool);
  for (int w = 0; w < parallelism; ++w) {
    group.Run([&] {
      TileIOStats local;
      size_t i;
      while (!failed.load(std::memory_order_acquire) &&
             (i = cursor.fetch_add(1, std::memory_order_relaxed)) <
                 miss_idx.size()) {
        const size_t idx = miss_idx[i];
        const TileEntry& entry = entries[idx];
        Status st;
        if (options.encoded_filter && options.encoded_filter(idx)) {
          {
            // The raw bytes were fetched in the batch; the empty span
            // keeps traces at one tile_fetch per tile.
            obs::TraceScope span(options.trace, options.trace_id,
                                 "tile_fetch");
          }
          ++local.tiles;
          local.tile_bytes +=
              entry.domain.CellCountOrDie() * cell_type.size();
          const Clock::time_point consume_start = Clock::now();
          st = [&] {
            obs::TraceScope span(options.trace, options.trace_id,
                                 "tile_reduce_encoded");
            return options.consume_encoded(idx, payloads[i]);
          }();
          local.decode_summed_ms += ElapsedMs(consume_start);
        } else {
          Result<Tile> tile = [&] {
            obs::TraceScope span(options.trace, options.trace_id,
                                 "tile_fetch");
            return DecodePayload(entry, cell_type, std::move(payloads[i]),
                                 &local);
          }();
          st = tile.ok()
                   ? [&] {
                       obs::TraceScope span(options.trace, options.trace_id,
                                            "tile_decode");
                       const Clock::time_point consume_start = Clock::now();
                       Status cs;
                       if (cache != nullptr && options.cache_populate) {
                         std::shared_ptr<const Tile> canonical =
                             cache->Insert(options.cache_object_id,
                                           entry.blob,
                                           std::make_shared<const Tile>(
                                               std::move(tile).MoveValue()));
                         cs = consume(idx, *canonical);
                       } else {
                         const Tile owned = std::move(tile).MoveValue();
                         cs = consume(idx, owned);
                       }
                       local.decode_summed_ms += ElapsedMs(consume_start);
                       return cs;
                     }()
                   : tile.status();
        }
        if (!st.ok()) {
          failed.store(true, std::memory_order_release);
          std::lock_guard<std::mutex> lock(result_mu);
          if (first_error.ok()) first_error = st;
          break;
        }
        done.fetch_add(1, std::memory_order_relaxed);
        if (metrics_.queue_depth != nullptr) metrics_.queue_depth->Add(-1);
      }
      std::lock_guard<std::mutex> lock(result_mu);
      merged.Add(local);
    });
  }
  group.Wait();
  completed += done.load(std::memory_order_relaxed);

  publish_metrics();
  settle_queue();
  if (!first_error.ok()) return first_error;
  merged.wall_ms = ElapsedMs(wall_start);
  if (stats != nullptr) stats->Add(merged);
  return Status::OK();
}

std::future<Result<Tile>> TileIOScheduler::FetchAsync(const TileEntry& entry,
                                                      CellType cell_type,
                                                      ThreadPool* pool) {
  auto promise = std::make_shared<std::promise<Result<Tile>>>();
  std::future<Result<Tile>> future = promise->get_future();
  // Copy the entry: the caller's batch may go away before the worker runs.
  TileEntry owned = entry;
  auto work = [this, owned = std::move(owned), cell_type,
               promise = std::move(promise),
               coalesce = pool != nullptr]() mutable {
    TileIOStats stats;
    promise->set_value(FetchOne(owned, cell_type, coalesce, &stats));
  };
  if (pool != nullptr) {
    pool->Submit(std::move(work));
  } else {
    work();
  }
  return future;
}

}  // namespace tilestore
