#include "storage/buffer_pool.h"

#include <cstring>

namespace tilestore {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {}

void BufferPool::Touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void BufferPool::InsertEntry(PageId id, const uint8_t* data) {
  if (capacity_ == 0) return;
  while (lru_.size() >= capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Entry{id, std::vector<uint8_t>(
                                data, data + file_->page_size())});
  map_[id] = lru_.begin();
}

Status BufferPool::ReadPage(PageId id, uint8_t* out) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    ++hits_;
    Touch(it->second);
    std::memcpy(out, it->second->data.data(), file_->page_size());
    return Status::OK();
  }
  ++misses_;
  Status st = file_->ReadPage(id, out);
  if (!st.ok()) return st;
  InsertEntry(id, out);
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const uint8_t* data) {
  Status st = file_->WritePage(id, data);
  if (!st.ok()) return st;
  auto it = map_.find(id);
  if (it != map_.end()) {
    std::memcpy(it->second->data.data(), data, file_->page_size());
    Touch(it->second);
  } else {
    InsertEntry(id, data);
  }
  return Status::OK();
}

void BufferPool::Invalidate(PageId id) {
  auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace tilestore
