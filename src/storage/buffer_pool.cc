#include "storage/buffer_pool.h"

#include <cstring>
#include <string>

#include "storage/txn.h"

namespace tilestore {

namespace {

// Pools with at least kStripeThreshold pages get kMaxShards stripes;
// smaller pools use one shard so per-shard capacities stay meaningful and
// eviction order matches the classic single-LRU semantics exactly.
constexpr size_t kMaxShards = 8;
constexpr size_t kStripeThreshold = 256;

}  // namespace

BufferPool::BufferPool(PageFile* file, size_t capacity_pages,
                       obs::MetricsRegistry* metrics)
    : file_(file), capacity_(capacity_pages) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  miss_run_pages_ = metrics->size_histogram("bufferpool.miss_run_pages");
  const size_t shards = capacity_ >= kStripeThreshold ? kMaxShards : 1;
  shard_capacity_ = capacity_ / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string prefix = "bufferpool.shard" + std::to_string(i);
    shard->hits = metrics->counter(prefix + ".hits");
    shard->misses = metrics->counter(prefix + ".misses");
    shard->evictions = metrics->counter(prefix + ".evictions");
    shards_.push_back(std::move(shard));
  }
}

bool BufferPool::TryReadCached(PageId id, uint8_t* out) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) return false;
  shard.hits->Add(1);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  std::memcpy(out, it->second->data.data(), file_->page_size());
  return true;
}

void BufferPool::InsertEntry(PageId id, const uint8_t* data) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it != shard.map.end()) {
    std::memcpy(it->second->data.data(), data, file_->page_size());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.lru.size() >= shard_capacity_ && !shard.lru.empty()) {
    shard.map.erase(shard.lru.back().id);
    shard.lru.pop_back();
    shard.evictions->Add(1);
  }
  if (shard_capacity_ == 0) return;
  shard.lru.push_front(Entry{
      id, std::vector<uint8_t>(data, data + file_->page_size())});
  shard.map[id] = shard.lru.begin();
}

TransactionContext* BufferPool::ActiveTxn() const {
  return txns_ != nullptr ? txns_->active() : nullptr;
}

Status BufferPool::ReadPage(PageId id, uint8_t* out) {
  // Read-your-writes: pages staged by the active transaction shadow both
  // the cache and the file. Not counted as hits or misses — the page has
  // no physical existence yet.
  if (TransactionContext* txn = ActiveTxn(); txn != nullptr) {
    if (txn->ReadStagedPage(id, out)) return Status::OK();
  }
  if (TryReadCached(id, out)) return Status::OK();
  ShardFor(id).misses->Add(1);
  Status st = file_->ReadPage(id, out);
  if (!st.ok()) return st;
  InsertEntry(id, out);
  return Status::OK();
}

Status BufferPool::ReadRun(PageId first, uint64_t count, uint8_t* out,
                           uint64_t* physical_runs) {
  const size_t page_size = file_->page_size();
  // If any page of the run is staged in the active transaction, fall back
  // to page-at-a-time reads so the overlay is honored (runs mixing staged
  // and committed pages only occur on the single-writer mutation path).
  if (TransactionContext* txn = ActiveTxn();
      txn != nullptr && txn->HasStagedInRange(first, count)) {
    for (uint64_t i = 0; i < count; ++i) {
      Status st = ReadPage(first + i, out + i * page_size);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }
  uint64_t runs = 0;
  // Pending span of consecutive cache misses, flushed as one physical read.
  uint64_t span_begin = 0;
  uint64_t span_len = 0;
  auto flush_span = [&]() -> Status {
    if (span_len == 0) return Status::OK();
    uint8_t* dst = out + span_begin * page_size;
    Status st = file_->ReadRun(first + span_begin, span_len, dst);
    if (!st.ok()) return st;
    for (uint64_t i = 0; i < span_len; ++i) {
      const PageId id = first + span_begin + i;
      ShardFor(id).misses->Add(1);
      InsertEntry(id, dst + i * page_size);
    }
    miss_run_pages_->Observe(static_cast<double>(span_len));
    ++runs;
    span_len = 0;
    return Status::OK();
  };

  for (uint64_t i = 0; i < count; ++i) {
    if (TryReadCached(first + i, out + i * page_size)) {
      Status st = flush_span();
      if (!st.ok()) return st;
      continue;
    }
    if (span_len == 0) span_begin = i;
    ++span_len;
  }
  Status st = flush_span();
  if (!st.ok()) return st;
  if (physical_runs != nullptr) *physical_runs += runs;
  return Status::OK();
}

Status BufferPool::ReadRunBatch(
    std::span<const PageRunRequest> runs, uint64_t* physical_runs,
    std::vector<DeferredPageCharge>* deferred_charges) {
  const size_t page_size = file_->page_size();
  // The staged-overlay path is sequential by construction; honor it the
  // same way ReadRun does. Charges happen inline, in request order.
  if (TransactionContext* txn = ActiveTxn(); txn != nullptr) {
    bool staged = false;
    for (const PageRunRequest& run : runs) {
      if (txn->HasStagedInRange(run.first, run.count)) {
        staged = true;
        break;
      }
    }
    if (staged) {
      for (const PageRunRequest& run : runs) {
        Status st = ReadRun(run.first, run.count, run.out, physical_runs);
        if (!st.ok()) return st;
      }
      return Status::OK();
    }
  }

  // Pass 1: serve cached pages and collect the maximal miss spans of every
  // run, in request order — the same spans the sequential path would read.
  struct MissSpan {
    size_t request;
    uint64_t begin;  // page offset within the request's run
    uint64_t len;
  };
  std::vector<MissSpan> spans;
  for (size_t r = 0; r < runs.size(); ++r) {
    const PageRunRequest& run = runs[r];
    uint64_t span_begin = 0;
    uint64_t span_len = 0;
    for (uint64_t i = 0; i < run.count; ++i) {
      if (TryReadCached(run.first + i, run.out + i * page_size)) {
        if (span_len != 0) {
          spans.push_back(MissSpan{r, span_begin, span_len});
          span_len = 0;
        }
        continue;
      }
      if (span_len == 0) span_begin = i;
      ++span_len;
    }
    if (span_len != 0) spans.push_back(MissSpan{r, span_begin, span_len});
  }
  if (spans.empty()) return Status::OK();

  // Pass 2: one physical batch for every span, charged later (or not at
  // all here, when the caller replays the deferred charges).
  std::vector<PageRunRead> reads(spans.size());
  for (size_t s = 0; s < spans.size(); ++s) {
    const MissSpan& span = spans[s];
    const PageRunRequest& run = runs[span.request];
    reads[s].first = run.first + span.begin;
    reads[s].count = span.len;
    reads[s].out = run.out + span.begin * page_size;
  }
  Status st = file_->ReadBatch(reads, /*charge_model=*/false);
  if (!st.ok()) return st;

  // Pass 3: account and cache in span order, exactly like flush_span.
  for (size_t s = 0; s < spans.size(); ++s) {
    const MissSpan& span = spans[s];
    const PageRunRead& read = reads[s];
    for (uint64_t i = 0; i < span.len; ++i) {
      const PageId id = read.first + i;
      ShardFor(id).misses->Add(1);
      InsertEntry(id, read.out + i * page_size);
    }
    miss_run_pages_->Observe(static_cast<double>(span.len));
    if (deferred_charges != nullptr) {
      deferred_charges->push_back(
          DeferredPageCharge{span.request, read.first, span.len});
    } else {
      file_->ChargeReadRun(read.first, span.len);
    }
  }
  if (physical_runs != nullptr) *physical_runs += spans.size();
  return Status::OK();
}

Status BufferPool::WritePage(PageId id, const uint8_t* data) {
  // No-steal: inside a transaction nothing reaches the file until commit.
  if (TransactionContext* txn = ActiveTxn(); txn != nullptr) {
    txn->StagePageImage(id, data, file_->page_size());
    return Status::OK();
  }
  return ApplyCommitted(id, data);
}

Status BufferPool::ApplyCommitted(PageId id, const uint8_t* data) {
  Status st = file_->WritePage(id, data);
  if (!st.ok()) return st;
  InsertEntry(id, data);
  return Status::OK();
}

void BufferPool::Invalidate(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) return;
  shard.lru.erase(it->second);
  shard.map.erase(it);
}

void BufferPool::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
  }
}

void BufferPool::ResetCounters() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->hits->Reset();
    shard->misses->Reset();
    shard->evictions->Reset();
  }
  miss_run_pages_->Reset();
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits();
  s.misses = misses();
  s.evictions = evictions();
  return s;
}

uint64_t BufferPool::hits() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->hits->Value();
  }
  return total;
}

uint64_t BufferPool::misses() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->misses->Value();
  }
  return total;
}

uint64_t BufferPool::evictions() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->evictions->Value();
  }
  return total;
}

size_t BufferPool::cached_pages() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace tilestore
