#ifndef TILESTORE_TILESTORE_H_
#define TILESTORE_TILESTORE_H_

/// \file
/// \brief Umbrella public header of the tilestore library.
///
/// Applications (and this repo's examples and tools) include this single
/// header instead of reaching into layer-private ones. It pulls in the
/// public surface:
///
///  - `MDDStore` / `MDDStoreOptions` / `MDDObject`   (mdd/)
///  - `RangeQueryExecutor` / `RangeQueryOptions` / `QueryStats`,
///    `SubaggregateExecutor`, `TileScan`, rasQL parsing, `AccessLog`
///    (query/)
///  - the tiling strategies and the tiling advisor   (tiling/)
///  - `obs::MetricsRegistry` / `MetricsSnapshot` / `obs::TraceRing`
///    (obs/ — reachable as `store->metrics()` / `store->trace()`)
///  - `net::TileServer` / `net::TileClient` / `net::ServerConfig` and the
///    wire protocol constants (net/ — the TCP serving layer, DESIGN.md §9)
///  - `cluster::ShardMap` / `cluster::RoutingTileClient`  (cluster/ — the
///    horizontally sharded serving layer, DESIGN.md §13)
///  - filesystem helpers (`RemoveFileIfExists`, ...) and the offline
///    checker entry point (storage/env.h, storage/fsck.h)
///
/// Layer-private headers (buffer_pool.h, wal.h, txn.h, ...) remain
/// includable for tests and embedders that need the internals, but are
/// not part of the stable surface this header defines.

#include "cluster/routing_client.h"
#include "cluster/shard_map.h"
#include "common/random.h"
#include "core/array.h"
#include "core/cell_type.h"
#include "core/minterval.h"
#include "core/tile.h"
#include "layout/compactor.h"
#include "layout/sfc.h"
#include "mdd/mdd_object.h"
#include "mdd/mdd_store.h"
#include "net/client.h"
#include "net/client_api.h"
#include "net/server.h"
#include "net/server_config.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/access_log.h"
#include "query/query_stats.h"
#include "query/range_query.h"
#include "query/rasql.h"
#include "query/subaggregate.h"
#include "query/tile_scan.h"
#include "storage/env.h"
#include "storage/fsck.h"
#include "storage/io_backend.h"
#include "tiling/advisor.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/chunking.h"
#include "tiling/directional.h"
#include "tiling/ordering.h"
#include "tiling/retiler.h"
#include "tiling/statistic.h"
#include "tiling/tiling.h"
#include "tiling/workload_recorder.h"

#endif  // TILESTORE_TILESTORE_H_
