#ifndef TILESTORE_TILING_TILE_CONFIG_H_
#define TILESTORE_TILING_TILE_CONFIG_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tilestore {

/// \brief A tile configuration (Section 5.2, "Aligned Tiling"): a tuple
/// (r_1, ..., r_d) of *relative* sizes along each direction, where an entry
/// may also be '*' ("infinite"), requesting that tiles be maximally
/// stretched along that direction (a preferential scan direction).
///
/// The paper deliberately lets users give relative sizes rather than exact
/// tile formats, since the exact format depends on low-level parameters
/// (page size, cell size) the user should not need to know. The aligned
/// tiling algorithm converts a configuration into an exact tile format for
/// a given domain, cell size and MaxTileSize.
class TileConfig {
 public:
  /// The regular configuration (1, 1, ..., 1): cubic tiles. This is the
  /// paper's default tiling and the "regular tiling" baseline of Section 6.
  static TileConfig Regular(size_t dim);

  /// Finite relative sizes, e.g. {4, 1} for tiles 4x wider than tall.
  /// All values must be >= 1.
  static Result<TileConfig> FromRelativeSizes(std::vector<double> sizes);

  /// Parses the paper notation, e.g. "[*,1,*]" (Figure 4's frame-wise
  /// animation access) or "[1,2,4]". Entries are '*' or positive numbers.
  static Result<TileConfig> Parse(std::string_view text);

  /// Builder-style: marks axis `i` as a preferential ('*') direction.
  TileConfig& SetStar(size_t i);

  size_t dim() const { return relative_.size(); }
  bool is_star(size_t i) const { return star_[i]; }
  /// Relative size of axis i; meaningless when `is_star(i)`.
  double relative(size_t i) const { return relative_[i]; }
  /// True if no axis is starred.
  bool AllFinite() const;

  std::string ToString() const;

 private:
  TileConfig(std::vector<double> relative, std::vector<bool> star)
      : relative_(std::move(relative)), star_(std::move(star)) {}

  std::vector<double> relative_;
  std::vector<bool> star_;
};

}  // namespace tilestore

#endif  // TILESTORE_TILING_TILE_CONFIG_H_
