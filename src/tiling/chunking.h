#ifndef TILESTORE_TILING_CHUNKING_H_
#define TILESTORE_TILING_CHUNKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "tiling/tiling.h"

namespace tilestore {

/// One access class of a Sarawagi/Stonebraker-style access pattern: only
/// the *shape* (per-axis extents) of accesses and their probability of
/// occurrence — deliberately NOT their position. This is the access model
/// of the paper's main related work [13] ("an access is modeled as a
/// rectangle anywhere in the array ... since the relative position of
/// different accesses is not taken into account, only the configuration").
struct AccessShape {
  std::vector<Coord> extents;
  double probability = 1.0;
};

/// \brief Regular chunking with a pattern-optimized chunk format — a
/// reimplementation of the strongest *regular* competitor the paper
/// discusses (Sarawagi & Stonebraker, ICDE'94 [13]).
///
/// For chunks of format (c_1..c_d), an access of shape (a_1..a_d) placed
/// uniformly at random touches
///     E[chunks] = prod_i ((a_i - 1)/c_i + 1)
/// chunks in expectation. The strategy picks the format minimizing the
/// probability-weighted expectation subject to CellSize * prod c_i <=
/// MaxTileSize, by greedy steepest-descent growth from (1,...,1) — each
/// step extends the axis with the largest marginal reduction.
///
/// Because the model ignores access *positions*, the resulting tiling
/// cannot align chunk boundaries to hot areas — exactly the limitation
/// (Section 2) that motivates the paper's arbitrary tiling. The
/// `bench_chunking` experiment quantifies this.
class PatternOptimizedChunking : public TilingStrategy {
 public:
  PatternOptimizedChunking(std::vector<AccessShape> pattern,
                           uint64_t max_tile_bytes);

  Result<TilingSpec> ComputeTiling(const MInterval& domain,
                                   size_t cell_size) const override;
  std::string name() const override;

  /// The optimized chunk format; exposed for tests and diagnostics.
  Result<std::vector<Coord>> ComputeChunkFormat(const MInterval& domain,
                                                size_t cell_size) const;

  /// The cost model: expected chunks touched per access under `format`.
  static double ExpectedChunksPerAccess(const std::vector<AccessShape>& pattern,
                                        const std::vector<Coord>& format);

 private:
  std::vector<AccessShape> pattern_;
  uint64_t max_tile_bytes_;
};

}  // namespace tilestore

#endif  // TILESTORE_TILING_CHUNKING_H_
