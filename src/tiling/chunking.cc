#include "tiling/chunking.h"

#include <algorithm>

#include "tiling/aligned.h"

namespace tilestore {

PatternOptimizedChunking::PatternOptimizedChunking(
    std::vector<AccessShape> pattern, uint64_t max_tile_bytes)
    : pattern_(std::move(pattern)), max_tile_bytes_(max_tile_bytes) {}

std::string PatternOptimizedChunking::name() const {
  return "pattern_chunking{" + std::to_string(pattern_.size()) + " shapes}/" +
         std::to_string(max_tile_bytes_);
}

double PatternOptimizedChunking::ExpectedChunksPerAccess(
    const std::vector<AccessShape>& pattern,
    const std::vector<Coord>& format) {
  double expectation = 0;
  for (const AccessShape& shape : pattern) {
    double chunks = 1;
    for (size_t i = 0; i < format.size(); ++i) {
      chunks *= (static_cast<double>(shape.extents[i]) - 1.0) /
                    static_cast<double>(format[i]) +
                1.0;
    }
    expectation += shape.probability * chunks;
  }
  return expectation;
}

Result<std::vector<Coord>> PatternOptimizedChunking::ComputeChunkFormat(
    const MInterval& domain, size_t cell_size) const {
  const size_t d = domain.dim();
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("chunking needs a fixed domain: " +
                                   domain.ToString());
  }
  if (pattern_.empty()) {
    return Status::InvalidArgument("empty access pattern");
  }
  for (const AccessShape& shape : pattern_) {
    if (shape.extents.size() != d) {
      return Status::InvalidArgument(
          "access shape dimensionality does not match the domain");
    }
    for (Coord e : shape.extents) {
      if (e < 1) {
        return Status::InvalidArgument("access shape extents must be >= 1");
      }
    }
    if (!(shape.probability > 0)) {
      return Status::InvalidArgument("access probabilities must be positive");
    }
  }
  if (cell_size == 0 || cell_size > max_tile_bytes_) {
    return Status::InvalidArgument("cell size incompatible with MaxTileSize");
  }

  const uint64_t budget_cells = max_tile_bytes_ / cell_size;
  std::vector<Coord> format(d, 1);
  uint64_t cells = 1;

  // Greedy steepest descent: grow the axis with the largest reduction of
  // the expected chunk count until the budget or the extents stop us.
  while (true) {
    const double current = ExpectedChunksPerAccess(pattern_, format);
    size_t best_axis = SIZE_MAX;
    double best_cost = current;
    for (size_t i = 0; i < d; ++i) {
      if (format[i] >= domain.Extent(i)) continue;
      if (cells / static_cast<uint64_t>(format[i]) *
              static_cast<uint64_t>(format[i] + 1) >
          budget_cells) {
        continue;
      }
      ++format[i];
      const double cost = ExpectedChunksPerAccess(pattern_, format);
      --format[i];
      if (cost < best_cost) {
        best_cost = cost;
        best_axis = i;
      }
    }
    if (best_axis == SIZE_MAX) break;
    cells = cells / static_cast<uint64_t>(format[best_axis]) *
            static_cast<uint64_t>(format[best_axis] + 1);
    ++format[best_axis];
  }
  return format;
}

Result<TilingSpec> PatternOptimizedChunking::ComputeTiling(
    const MInterval& domain, size_t cell_size) const {
  Result<std::vector<Coord>> format = ComputeChunkFormat(domain, cell_size);
  if (!format.ok()) return format.status();
  return GridTiling(domain, format.value());
}

}  // namespace tilestore
