#include "tiling/workload_recorder.h"

namespace tilestore {

std::vector<AccessRecord> WorkloadRecorder::Snapshot(
    const std::string& object) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(object);
  if (it == objects_.end()) return {};
  // Merge identical boxes: repeated hotspot queries collapse into one
  // record with the combined count, which is the frequency evidence the
  // advisor's clustering thresholds act on.
  std::map<std::string, AccessRecord> merged;
  for (const MInterval& region : it->second.recent) {
    auto [entry, inserted] =
        merged.try_emplace(region.ToString(), AccessRecord{region, 0});
    entry->second.count += 1;
    (void)inserted;
  }
  std::vector<AccessRecord> records;
  records.reserve(merged.size());
  for (auto& [key, record] : merged) records.push_back(std::move(record));
  return records;
}

}  // namespace tilestore
