#ifndef TILESTORE_TILING_ADVISOR_H_
#define TILESTORE_TILING_ADVISOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "tiling/statistic.h"
#include "tiling/tiling.h"

namespace tilestore {

/// How the advisor classified the workload (Section 5.1 access types).
enum class WorkloadKind {
  kWholeObject,      // type (a): mostly full scans -> aligned (regular)
  kSections,         // type (d): directional sections -> aligned with '*'
  kAreasOfInterest,  // type (b): repeated subareas -> areas of interest
  kMixed,            // no dominant pattern -> default aligned tiling
};

std::string_view WorkloadKindToString(WorkloadKind kind);

/// The advisor's output: a ready-to-use strategy plus the evidence.
struct TilingAdvice {
  WorkloadKind kind = WorkloadKind::kMixed;
  std::shared_ptr<TilingStrategy> strategy;
  std::string rationale;
  // Workload composition (fractions of all in-domain accesses).
  double full_scan_fraction = 0;
  double section_fraction = 0;
  double subarea_fraction = 0;
};

/// \brief Automates Section 5.1's access-pattern analysis: given a log of
/// accesses to an object, classify the workload and recommend the tiling
/// strategy the paper prescribes for it.
///
/// - Mostly whole-object scans (type a)   -> aligned regular tiling;
/// - a dominant *section* signature — thin along some axes, spanning the
///   others (types c/d)                   -> aligned tiling with '*' along
///                                           the spanned axes;
/// - repeated subarea accesses (type b)   -> areas-of-interest tiling with
///                                           areas derived from the log
///                                           (via StatisticTiling's
///                                           clustering);
/// - anything else                        -> the default aligned tiling.
///
/// This generalizes `StatisticTiling` (which always derives areas of
/// interest) by first deciding *which* strategy family fits.
class TilingAdvisor {
 public:
  struct Options {
    uint64_t max_tile_bytes = kDefaultMaxTileBytes;
    /// Fraction of accesses a pattern needs to dominate the workload.
    double dominance_threshold = 0.5;
    /// An axis is "thin" when the access spans at most this fraction of
    /// it, and "spanned" when it covers at least `spanned_fraction`.
    double thin_fraction = 0.1;
    double spanned_fraction = 0.9;
    /// Area-of-interest clustering (see StatisticTiling).
    uint64_t frequency_threshold = 3;
    Coord distance_threshold = 0;
  };

  TilingAdvisor() = default;
  explicit TilingAdvisor(Options options) : options_(options) {}

  /// Analyzes `accesses` against `domain` (must be fixed) and returns the
  /// recommendation. Accesses outside the domain are clipped/ignored; an
  /// empty or unusable log yields the default aligned strategy.
  Result<TilingAdvice> Advise(
      const MInterval& domain,
      const std::vector<AccessRecord>& accesses) const;

 private:
  Options options_{};
};

}  // namespace tilestore

#endif  // TILESTORE_TILING_ADVISOR_H_
