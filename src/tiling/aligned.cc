#include "tiling/aligned.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tilestore {

namespace {

// Product of the entries of `t`, saturating at UINT64_MAX.
uint64_t Product(const std::vector<Coord>& t) {
  unsigned __int128 prod = 1;
  for (Coord v : t) {
    prod *= static_cast<unsigned __int128>(v);
    if (prod > UINT64_MAX) return UINT64_MAX;
  }
  return static_cast<uint64_t>(prod);
}

}  // namespace

AlignedTiling::AlignedTiling(TileConfig config, uint64_t max_tile_bytes)
    : config_(std::move(config)), max_tile_bytes_(max_tile_bytes) {}

AlignedTiling AlignedTiling::Regular(size_t dim, uint64_t max_tile_bytes) {
  return AlignedTiling(TileConfig::Regular(dim), max_tile_bytes);
}

std::string AlignedTiling::name() const {
  return "aligned" + config_.ToString() + "/" +
         std::to_string(max_tile_bytes_);
}

Result<std::vector<Coord>> AlignedTiling::ComputeTileFormat(
    const MInterval& domain, size_t cell_size) const {
  const size_t d = domain.dim();
  if (config_.dim() != d) {
    return Status::InvalidArgument(
        "tile configuration " + config_.ToString() +
        " does not match domain dimensionality of " + domain.ToString());
  }
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("aligned tiling needs a fixed domain: " +
                                   domain.ToString());
  }
  if (cell_size == 0) {
    return Status::InvalidArgument("cell size must be positive");
  }
  if (cell_size > max_tile_bytes_) {
    return Status::InvalidArgument(
        "a single cell (" + std::to_string(cell_size) +
        " bytes) exceeds MaxTileSize (" + std::to_string(max_tile_bytes_) +
        " bytes)");
  }

  const uint64_t budget_cells = max_tile_bytes_ / cell_size;  // >= 1
  std::vector<Coord> t(d, 1);

  // Phase 1: starred (preferential) directions, highest axis first, so that
  // cells consecutive along the highest starred axis group into one tile
  // first (they are adjacent in row-major order).
  uint64_t used = 1;  // product of assigned tile lengths so far
  bool exhausted = false;
  for (size_t i = d; i > 0; --i) {
    const size_t axis = i - 1;
    if (!config_.is_star(axis)) continue;
    if (exhausted) {
      t[axis] = 1;
      continue;
    }
    const uint64_t allowed = budget_cells / used;
    const uint64_t extent = static_cast<uint64_t>(domain.Extent(axis));
    if (extent <= allowed) {
      t[axis] = static_cast<Coord>(extent);
      used *= extent;
    } else {
      t[axis] = static_cast<Coord>(std::max<uint64_t>(1, allowed));
      used *= static_cast<uint64_t>(t[axis]);
      exhausted = true;
    }
  }

  // Phase 2: finite directions share the remaining budget by relative size.
  std::vector<size_t> finite;
  for (size_t i = 0; i < d; ++i) {
    if (!config_.is_star(i)) finite.push_back(i);
  }
  if (!finite.empty() && !exhausted) {
    const uint64_t allowed = std::max<uint64_t>(1, budget_cells / used);
    double prod_r = 1.0;
    for (size_t i : finite) prod_r *= config_.relative(i);
    // The paper's stretch factor: f = (MaxTileSize/(CellSize*prod r))^(1/k)
    // over the k finite axes (the budget already excludes starred axes).
    const double f = std::pow(static_cast<double>(allowed) / prod_r,
                              1.0 / static_cast<double>(finite.size()));
    for (size_t i : finite) {
      const Coord extent = domain.Extent(i);
      Coord len = static_cast<Coord>(std::floor(f * config_.relative(i)));
      t[i] = std::clamp<Coord>(len, 1, extent);
    }
    // Clamping lengths up to 1 can overshoot the budget; shrink the largest
    // shrinkable axis until the product fits again.
    auto finite_product = [&]() {
      unsigned __int128 prod = 1;
      for (size_t i : finite) prod *= static_cast<unsigned __int128>(t[i]);
      return prod;
    };
    while (finite_product() > allowed) {
      size_t largest = finite.front();
      for (size_t i : finite) {
        if (t[i] > t[largest]) largest = i;
      }
      if (t[largest] <= 1) break;  // only 1-cell axes left: give up shrinking
      --t[largest];
    }
    // Greedily fill the rest of the budget ("tiles are sized in a way to
    // optimally fill MaxTileSize"): repeatedly grow the axis furthest below
    // its configured proportion.
    while (true) {
      size_t best = SIZE_MAX;
      double best_ratio = 0;
      const unsigned __int128 prod = finite_product();
      for (size_t i : finite) {
        if (t[i] >= domain.Extent(i)) continue;
        if (prod / static_cast<unsigned __int128>(t[i]) *
                static_cast<unsigned __int128>(t[i] + 1) >
            allowed) {
          continue;
        }
        const double ratio = static_cast<double>(t[i]) / config_.relative(i);
        if (best == SIZE_MAX || ratio < best_ratio) {
          best = i;
          best_ratio = ratio;
        }
      }
      if (best == SIZE_MAX) break;
      ++t[best];
    }
  }

  // Invariant: the format never exceeds the budget (single-cell tiles are
  // always allowed since cell_size <= max_tile_bytes was checked above).
  const uint64_t cells = Product(t);
  if (cells > budget_cells && cells != 1) {
    return Status::Internal("aligned tile format " +
                            std::to_string(cells) +
                            " cells exceeds the budget of " +
                            std::to_string(budget_cells));
  }
  return t;
}

Result<TilingSpec> AlignedTiling::ComputeTiling(const MInterval& domain,
                                                size_t cell_size) const {
  Result<std::vector<Coord>> format = ComputeTileFormat(domain, cell_size);
  if (!format.ok()) return format.status();
  return GridTiling(domain, format.value());
}

TilingSpec GridTiling(const MInterval& domain,
                      const std::vector<Coord>& format) {
  const size_t d = domain.dim();
  assert(format.size() == d);

  // Number of tiles per axis.
  std::vector<uint64_t> counts(d);
  uint64_t total = 1;
  for (size_t i = 0; i < d; ++i) {
    assert(format[i] >= 1);
    counts[i] = static_cast<uint64_t>(
        (domain.Extent(i) + format[i] - 1) / format[i]);
    total *= counts[i];
  }

  TilingSpec spec;
  spec.reserve(total);
  std::vector<uint64_t> idx(d, 0);
  while (true) {
    std::vector<Coord> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      lo[i] = domain.lo(i) + static_cast<Coord>(idx[i]) * format[i];
      hi[i] = std::min(lo[i] + format[i] - 1, domain.hi(i));
    }
    spec.push_back(MInterval::Create(std::move(lo), std::move(hi)).value());
    size_t axis = d;
    bool done = true;
    while (axis > 0) {
      --axis;
      if (++idx[axis] < counts[axis]) {
        done = false;
        break;
      }
      idx[axis] = 0;
    }
    if (done) break;
  }
  return spec;
}

}  // namespace tilestore
