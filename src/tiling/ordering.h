#ifndef TILESTORE_TILING_ORDERING_H_
#define TILESTORE_TILING_ORDERING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "core/tile.h"

namespace tilestore {

/// Physical placement order of a tiling's tiles on disk. Tiles are written
/// in spec order, so reordering the spec clusters tiles that are spatially
/// close onto neighbouring pages — the related-work [11] question
/// (Lamb, "Tiling Very Large Rasters": scanline vs Hilbert ordering).
enum class TileOrder {
  /// Row-major over the tiles' low corners (scanline order) — the default
  /// produced by the tiling algorithms.
  kScanline,
  /// Order along a Hilbert space-filling curve through the tile centers.
  /// Preserves spatial locality: most range queries then read runs of
  /// consecutive pages. Any dimensionality (bits-per-axis x dim <= 62).
  kHilbert,
};

/// The Hilbert index of point (x, y) on the order-`bits` curve over the
/// [0, 2^bits) x [0, 2^bits) grid. Exposed for tests.
uint64_t HilbertIndex2D(uint32_t bits, uint64_t x, uint64_t y);

/// The Hilbert index of an n-dimensional point on the order-`bits` curve
/// (Skilling's transform). Requires bits * coords.size() <= 62 so the
/// index fits a uint64. Exposed for tests.
Result<uint64_t> HilbertIndexND(uint32_t bits,
                                const std::vector<uint64_t>& coords);

/// Returns `spec` reordered for physical placement. `domain` is the tiled
/// object's domain (used to normalize coordinates).
Result<TilingSpec> OrderTiles(const MInterval& domain, TilingSpec spec,
                              TileOrder order);

}  // namespace tilestore

#endif  // TILESTORE_TILING_ORDERING_H_
