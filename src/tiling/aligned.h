#ifndef TILESTORE_TILING_ALIGNED_H_
#define TILESTORE_TILING_ALIGNED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "tiling/tile_config.h"
#include "tiling/tiling.h"

namespace tilestore {

/// \brief Aligned tiling (Section 5.2, "Aligned Tiling").
///
/// Cuts the whole domain by hyperplanes orthogonal to the axes into a grid
/// of congruent tiles (border tiles are clipped to the domain). The tile
/// format (t_1, ..., t_d) is derived from a relative `TileConfig`
/// (r_1, ..., r_d):
///
///  * If all r_i are finite, tiles are stretched equally by the factor
///    f = (MaxTileSize / (CellSize * prod r_i))^(1/d), i.e.
///    t_i = floor(f * r_i), so that CellSize * prod t_i <= MaxTileSize.
///    Remaining budget is then greedily used to fill MaxTileSize as well as
///    possible while preserving the configured proportions.
///
///  * '*' entries mark preferential scan directions: tile length is
///    maximised along the *highest* starred axis first (cells with
///    consecutive coordinates along that axis are contiguous in row-major
///    order), then the next-lower starred axis, until the budget is
///    exhausted. If the budget runs out, all remaining axes get length 1;
///    otherwise the finite axes share the remaining budget by relative
///    size.
///
/// With the regular configuration (1,...,1) this is exactly the
/// regular/chunked tiling used as the baseline in Section 6.
class AlignedTiling : public TilingStrategy {
 public:
  AlignedTiling(TileConfig config, uint64_t max_tile_bytes);

  /// The regular-tiling baseline: cubic tiles of at most `max_tile_bytes`.
  static AlignedTiling Regular(size_t dim, uint64_t max_tile_bytes);

  Result<TilingSpec> ComputeTiling(const MInterval& domain,
                                   size_t cell_size) const override;
  std::string name() const override;

  /// Computes only the tile format (t_1, ..., t_d); exposed for tests and
  /// for the directional algorithm's subpartitioning step.
  Result<std::vector<Coord>> ComputeTileFormat(const MInterval& domain,
                                               size_t cell_size) const;

  const TileConfig& config() const { return config_; }
  uint64_t max_tile_bytes() const { return max_tile_bytes_; }

 private:
  TileConfig config_;
  uint64_t max_tile_bytes_;
};

/// Generates the grid of tiles of format `format` anchored at
/// `domain.LowCorner()`; border tiles are clipped to `domain`. Exposed for
/// reuse by other strategies and tests.
TilingSpec GridTiling(const MInterval& domain,
                      const std::vector<Coord>& format);

}  // namespace tilestore

#endif  // TILESTORE_TILING_ALIGNED_H_
