#include "tiling/tile_config.h"

#include <charconv>
#include <sstream>

namespace tilestore {

TileConfig TileConfig::Regular(size_t dim) {
  return TileConfig(std::vector<double>(dim, 1.0),
                    std::vector<bool>(dim, false));
}

Result<TileConfig> TileConfig::FromRelativeSizes(std::vector<double> sizes) {
  if (sizes.empty()) {
    return Status::InvalidArgument("tile configuration must not be empty");
  }
  for (double r : sizes) {
    if (!(r >= 1.0)) {
      return Status::InvalidArgument(
          "relative tile sizes must be >= 1 (got " + std::to_string(r) + ")");
    }
  }
  std::vector<bool> star(sizes.size(), false);
  return TileConfig(std::move(sizes), std::move(star));
}

Result<TileConfig> TileConfig::Parse(std::string_view text) {
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    return Status::InvalidArgument("tile configuration must be bracketed: " +
                                   std::string(text));
  }
  std::string_view body = text.substr(1, text.size() - 2);
  std::vector<double> relative;
  std::vector<bool> star;
  while (!body.empty()) {
    size_t comma = body.find(',');
    std::string_view token =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    if (comma != std::string_view::npos && comma + 1 == body.size()) {
      return Status::InvalidArgument("trailing comma in tile configuration " +
                                     std::string(text));
    }
    body = comma == std::string_view::npos ? std::string_view()
                                           : body.substr(comma + 1);
    if (token == "*") {
      relative.push_back(1.0);
      star.push_back(true);
      continue;
    }
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        !(value >= 1.0)) {
      return Status::InvalidArgument("malformed tile configuration entry '" +
                                     std::string(token) + "'");
    }
    relative.push_back(value);
    star.push_back(false);
  }
  if (relative.empty()) {
    return Status::InvalidArgument("tile configuration must not be empty");
  }
  return TileConfig(std::move(relative), std::move(star));
}

TileConfig& TileConfig::SetStar(size_t i) {
  star_[i] = true;
  return *this;
}

bool TileConfig::AllFinite() const {
  for (bool s : star_) {
    if (s) return false;
  }
  return true;
}

std::string TileConfig::ToString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dim(); ++i) {
    if (i > 0) os << ',';
    if (star_[i]) {
      os << '*';
    } else {
      os << relative_[i];
    }
  }
  os << ']';
  return os.str();
}

}  // namespace tilestore
