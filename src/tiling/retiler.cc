#include "tiling/retiler.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/checksum.h"
#include "common/serde.h"
#include "mdd/mdd_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/env.h"

namespace tilestore {

namespace {

// Persisted-plan sidecar format: magic, version, then the pending map,
// closed by a CRC-32C of everything before it. Intervals travel as
// dim + (lo, hi) pairs, mirroring the catalog encoding.
constexpr uint32_t kPendingMagic = 0x54535250;  // "TSRP"
constexpr uint16_t kPendingVersion = 1;

void WritePendingInterval(ByteWriter* w, const MInterval& iv) {
  w->U8(static_cast<uint8_t>(iv.dim()));
  for (size_t i = 0; i < iv.dim(); ++i) {
    w->I64(iv.lo(i));
    w->I64(iv.hi(i));
  }
}

Status ReadPendingInterval(ByteReader* r, MInterval* out) {
  uint8_t dim = 0;
  Status st = r->U8(&dim);
  if (!st.ok()) return st;
  if (dim == 0) return Status::Corruption("zero-dimensional interval");
  std::vector<Coord> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    st = r->I64(&lo[i]);
    if (!st.ok()) return st;
    st = r->I64(&hi[i]);
    if (!st.ok()) return st;
  }
  Result<MInterval> iv = MInterval::Create(std::move(lo), std::move(hi));
  if (!iv.ok()) return Status::Corruption("invalid interval bounds");
  *out = std::move(iv).MoveValue();
  return Status::OK();
}

// A default-constructed std::shared_lock / std::unique_lock owns nothing;
// with a null catalog guard the caller serializes externally and the lock
// degenerates to a no-op.
std::shared_lock<std::shared_mutex> MaybeShared(std::shared_mutex* mu) {
  return mu != nullptr ? std::shared_lock<std::shared_mutex>(*mu)
                       : std::shared_lock<std::shared_mutex>();
}

std::unique_lock<std::shared_mutex> MaybeUnique(std::shared_mutex* mu) {
  return mu != nullptr ? std::unique_lock<std::shared_mutex>(*mu)
                       : std::unique_lock<std::shared_mutex>();
}

}  // namespace

struct Retiler::Metrics {
  obs::Counter* evaluations;
  obs::Counter* migrations;
  obs::Counter* steps;
  obs::Counter* skipped_no_gain;
  obs::Counter* errors;
  obs::Counter* tiles_removed;
  obs::Counter* tiles_written;
  obs::Counter* cells_moved;
  obs::Counter* bytes_written;
  // Work a background migration still owes (pending steps), per object.
  std::map<std::string, std::vector<Step>> pending;
};

Retiler::Retiler(MDDStore* store, RetilerOptions options)
    : store_(store), options_(options) {
  TilingAdvisor::Options advisor_options;
  advisor_options.max_tile_bytes = options_.max_tile_bytes;
  advisor_ = TilingAdvisor(advisor_options);
  metrics_ = std::make_unique<Metrics>();
  obs::MetricsRegistry* registry = store_->metrics();
  metrics_->evaluations = registry->counter("retile.evaluations");
  metrics_->migrations = registry->counter("retile.migrations");
  metrics_->steps = registry->counter("retile.steps");
  metrics_->skipped_no_gain = registry->counter("retile.skipped_no_gain");
  metrics_->errors = registry->counter("retile.errors");
  metrics_->tiles_removed = registry->counter("retile.tiles_removed");
  metrics_->tiles_written = registry->counter("retile.tiles_written");
  metrics_->cells_moved = registry->counter("retile.cells_moved");
  metrics_->bytes_written = registry->counter("retile.bytes_written");
  LoadPending();
}

void Retiler::PersistPendingLocked() {
  if (options_.pending_path.empty()) return;
  if (metrics_->pending.empty()) {
    if (FileExists(options_.pending_path)) {
      (void)RemoveFile(options_.pending_path);  // best-effort
    }
    return;
  }
  ByteWriter w;
  w.U32(kPendingMagic);
  w.U16(kPendingVersion);
  w.U32(static_cast<uint32_t>(metrics_->pending.size()));
  for (const auto& [name, steps] : metrics_->pending) {
    w.Str(name);
    w.U32(static_cast<uint32_t>(steps.size()));
    for (const Step& step : steps) {
      WritePendingInterval(&w, step.region);
      w.U32(static_cast<uint32_t>(step.tiles.size()));
      for (const MInterval& tile : step.tiles) {
        WritePendingInterval(&w, tile);
      }
    }
  }
  std::vector<uint8_t> payload = w.Take();
  const uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  // tmp + rename so a crash mid-write leaves the previous plan (or
  // nothing), never a torn file a future session would have to distrust.
  const std::string tmp = options_.pending_path + ".tmp";
  Result<std::unique_ptr<File>> file = File::Open(tmp, /*create=*/true);
  if (!file.ok()) return;
  Status st = (*file)->Truncate(0);
  if (st.ok()) st = (*file)->WriteAt(0, payload.data(), payload.size());
  if (st.ok()) st = (*file)->Sync();
  file->reset();
  if (!st.ok() ||
      std::rename(tmp.c_str(), options_.pending_path.c_str()) != 0) {
    (void)RemoveFile(tmp);
  }
}

void Retiler::LoadPending() {
  if (options_.pending_path.empty() || !FileExists(options_.pending_path)) {
    return;
  }
  Result<std::unique_ptr<File>> file =
      File::Open(options_.pending_path, /*create=*/false);
  if (!file.ok()) return;
  Result<uint64_t> size = (*file)->Size();
  if (!size.ok() || *size < 4 || *size > (64u << 20)) return;
  std::vector<uint8_t> bytes(static_cast<size_t>(*size));
  if (!(*file)->ReadAt(0, bytes.size(), bytes.data()).ok()) return;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(bytes[bytes.size() - 4 + i])
                  << (8 * i);
  }
  bytes.resize(bytes.size() - 4);
  if (Crc32c(bytes.data(), bytes.size()) != stored_crc) return;

  std::map<std::string, std::vector<Step>> loaded;
  ByteReader r(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint32_t objects = 0;
  if (!r.U32(&magic).ok() || magic != kPendingMagic) return;
  if (!r.U16(&version).ok() || version != kPendingVersion) return;
  if (!r.U32(&objects).ok()) return;
  for (uint32_t i = 0; i < objects; ++i) {
    std::string name;
    uint32_t step_count = 0;
    if (!r.Str(&name).ok() || !r.U32(&step_count).ok()) return;
    std::vector<Step> steps;
    steps.reserve(std::min<uint32_t>(step_count, 1024));
    for (uint32_t s = 0; s < step_count; ++s) {
      Step step;
      if (!ReadPendingInterval(&r, &step.region).ok()) return;
      uint32_t tiles = 0;
      if (!r.U32(&tiles).ok()) return;
      for (uint32_t t = 0; t < tiles; ++t) {
        MInterval tile;
        if (!ReadPendingInterval(&r, &tile).ok()) return;
        step.tiles.push_back(std::move(tile));
      }
      if (step.tiles.empty()) return;
      steps.push_back(std::move(step));
    }
    if (!steps.empty()) loaded[std::move(name)] = std::move(steps);
  }
  if (!r.AtEnd()) return;
  metrics_->pending = std::move(loaded);
}

Retiler::~Retiler() { Stop(); }

void Retiler::Start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void Retiler::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  wake_.notify_all();
  thread_.join();
  stop_.store(false, std::memory_order_relaxed);
}

void Retiler::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_.wait_for(lock, options_.poll_interval, [this] {
        return stop_.load(std::memory_order_relaxed);
      });
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    if (paused_.load(std::memory_order_relaxed)) continue;

    // Hot objects this tick: anything past the query trigger, plus
    // migrations still owing steps from a previous (budget-capped) tick.
    std::vector<std::string> names;
    for (const std::string& name : store_->workload()->Objects()) {
      if (InCooldown(name)) continue;
      if (store_->workload()->TotalSince(name) >= options_.min_queries) {
        names.push_back(name);
      }
    }
    {
      std::lock_guard<std::mutex> lock(migrate_mu_);
      for (const auto& [name, steps] : metrics_->pending) {
        if (std::find(names.begin(), names.end(), name) == names.end()) {
          names.push_back(name);
        }
      }
    }
    for (const std::string& name : names) {
      if (stop_.load(std::memory_order_relaxed) ||
          paused_.load(std::memory_order_relaxed)) {
        break;
      }
      Result<RetileReport> report =
          EvaluateAndMigrate(name, options_.step_cell_budget);
      if (!report.ok()) metrics_->errors->Add(1);
    }
  }
}

Result<RetileReport> Retiler::RetileNow(const std::string& name,
                                        uint64_t budget) {
  // Fresh evidence beats a stale plan: an admin-triggered run re-evaluates
  // even when a background migration still owes steps.
  {
    std::lock_guard<std::mutex> lock(migrate_mu_);
    if (metrics_->pending.erase(name) > 0) PersistPendingLocked();
  }
  return EvaluateAndMigrate(name, budget);
}

Result<RetileReport> Retiler::Continue(const std::string& name) {
  // Budgeted like a background tick, so a resumed plan keeps spreading
  // across calls instead of finishing in one burst.
  return EvaluateAndMigrate(name, options_.step_cell_budget,
                            /*resume_only=*/true);
}

bool Retiler::InCooldown(const std::string& name) const {
  if (options_.cooldown.count() <= 0) return false;
  std::lock_guard<std::mutex> lock(cooldown_mu_);
  auto it = last_migration_.find(name);
  if (it == last_migration_.end()) return false;
  return std::chrono::steady_clock::now() - it->second < options_.cooldown;
}

std::vector<std::string> Retiler::PendingObjects() const {
  std::lock_guard<std::mutex> lock(migrate_mu_);
  std::vector<std::string> names;
  names.reserve(metrics_->pending.size());
  for (const auto& [name, steps] : metrics_->pending) names.push_back(name);
  return names;
}

uint64_t Retiler::WorkloadCost(const std::vector<MInterval>& tiles,
                               const std::vector<AccessRecord>& accesses,
                               size_t cell_size) {
  uint64_t total = 0;
  for (const AccessRecord& access : accesses) {
    uint64_t bytes = 0;
    for (const MInterval& tile : tiles) {
      if (access.region.Intersects(tile)) {
        bytes += tile.CellCountOrDie() * cell_size;
      }
    }
    total += access.count * bytes;
  }
  return total;
}

Result<std::vector<Retiler::Step>> Retiler::PlanSteps(
    const std::vector<TileEntry>& current, const TilingSpec& target) {
  // Closure grouping: every group's hull must intersect no tile outside
  // the group, in either generation — then each group is one atomic
  // RetileRegion whose region contains complete tiles only, and distinct
  // steps touch disjoint regions (so partially applied plans are valid
  // mixed-generation tilings). Start with one group per tile and merge
  // until all hulls are pairwise disjoint.
  struct Group {
    MInterval region;
    std::vector<MInterval> old_tiles;
    TilingSpec new_tiles;
    bool dead = false;
  };
  std::vector<Group> groups;
  groups.reserve(current.size() + target.size());
  for (const TileEntry& entry : current) {
    groups.push_back(Group{entry.domain, {entry.domain}, {}, false});
  }
  for (const MInterval& domain : target) {
    groups.push_back(Group{domain, {}, {domain}, false});
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].dead) continue;
      for (size_t j = i + 1; j < groups.size(); ++j) {
        if (groups[j].dead) continue;
        if (!groups[i].region.Intersects(groups[j].region)) continue;
        groups[i].region = groups[i].region.Hull(groups[j].region);
        groups[i].old_tiles.insert(groups[i].old_tiles.end(),
                                   groups[j].old_tiles.begin(),
                                   groups[j].old_tiles.end());
        groups[i].new_tiles.insert(groups[i].new_tiles.end(),
                                   groups[j].new_tiles.begin(),
                                   groups[j].new_tiles.end());
        groups[j].dead = true;
        changed = true;
      }
    }
  }

  std::vector<Step> steps;
  for (Group& group : groups) {
    if (group.dead) continue;
    // No old tiles: the target would materialize default-filled tiles over
    // space no data occupies — skip, sparse objects stay sparse.
    if (group.old_tiles.empty()) continue;
    if (group.new_tiles.empty()) {
      return Status::InvalidArgument(
          "target tiling leaves old tiles uncovered near " +
          group.region.ToString());
    }
    // Converged group (same domains in both generations): rewriting it
    // would be pure churn, and skipping makes migration idempotent.
    std::vector<std::string> old_keys, new_keys;
    for (const MInterval& domain : group.old_tiles) {
      old_keys.push_back(domain.ToString());
    }
    for (const MInterval& domain : group.new_tiles) {
      new_keys.push_back(domain.ToString());
    }
    std::sort(old_keys.begin(), old_keys.end());
    std::sort(new_keys.begin(), new_keys.end());
    if (old_keys == new_keys) continue;
    std::sort(group.new_tiles.begin(), group.new_tiles.end(),
              MIntervalLess());
    steps.push_back(Step{group.region, std::move(group.new_tiles)});
  }
  std::sort(steps.begin(), steps.end(), [](const Step& a, const Step& b) {
    return MIntervalLess()(a.region, b.region);
  });
  return steps;
}

Result<RetileReport> Retiler::EvaluateAndMigrate(const std::string& name,
                                                 uint64_t budget,
                                                 bool resume_only) {
  std::lock_guard<std::mutex> migrate_lock(migrate_mu_);
  RetileReport report;

  size_t cell_size = 0;
  std::vector<Step> steps;
  auto pending_it = metrics_->pending.find(name);
  const bool resuming = pending_it != metrics_->pending.end();
  if (resume_only && !resuming) {
    return Status::NotFound("no parked migration plan for " + name);
  }
  if (resuming) {
    steps = std::move(pending_it->second);
    metrics_->pending.erase(pending_it);
    auto lock = MaybeShared(options_.catalog_mu);
    Result<MDDObject*> object_or = store_->GetMDD(name);
    if (!object_or.ok()) {
      PersistPendingLocked();  // dropped; forget the plan durably too
      return object_or.status();
    }
    cell_size = object_or.value()->cell_size();
    report.tiles_before = object_or.value()->tile_count();
    report.kind = "resumed";
  } else {
    metrics_->evaluations->Add(1);

    // Snapshot the object and its evidence under a reader lock.
    MInterval domain;
    std::vector<TileEntry> current;
    std::vector<AccessRecord> records;
    {
      auto lock = MaybeShared(options_.catalog_mu);
      Result<MDDObject*> object_or = store_->GetMDD(name);
      if (!object_or.ok()) return object_or.status();
      MDDObject* object = object_or.value();
      if (!object->current_domain().has_value()) {
        report.rationale = "object is empty";
        return report;
      }
      domain = *object->current_domain();
      cell_size = object->cell_size();
      current = object->AllTiles();
      records = store_->workload()->Snapshot(name);
    }
    if (records.empty()) {
      report.rationale = "no recorded workload";
      return report;
    }

    Result<TilingAdvice> advice_or = advisor_.Advise(domain, records);
    if (!advice_or.ok()) return advice_or.status();
    const TilingAdvice advice = std::move(advice_or).MoveValue();
    report.kind = std::string(WorkloadKindToString(advice.kind));
    report.rationale = advice.rationale;

    Result<TilingSpec> target_or =
        advice.strategy->ComputeTiling(domain, cell_size);
    if (!target_or.ok()) return target_or.status();
    const TilingSpec target = std::move(target_or).MoveValue();

    // Migration trigger: predicted fetched-bytes ratio over the recorded
    // workload must clear the improvement bar.
    std::vector<MInterval> old_domains;
    old_domains.reserve(current.size());
    for (const TileEntry& entry : current) {
      old_domains.push_back(entry.domain);
    }
    const uint64_t old_cost = WorkloadCost(old_domains, records, cell_size);
    const uint64_t new_cost = WorkloadCost(target, records, cell_size);
    report.predicted_gain =
        new_cost != 0 ? static_cast<double>(old_cost) /
                            static_cast<double>(new_cost)
                      : (old_cost != 0 ? 1e9 : 1.0);
    report.tiles_before = current.size();
    if (report.predicted_gain < options_.min_improvement) {
      metrics_->skipped_no_gain->Add(1);
      return report;
    }

    Result<std::vector<Step>> steps_or = PlanSteps(current, target);
    if (!steps_or.ok()) return steps_or.status();
    steps = std::move(steps_or).MoveValue();
    if (steps.empty()) {
      metrics_->skipped_no_gain->Add(1);
      report.rationale += " (already tiled this way)";
      return report;
    }

    // Hysteresis: charge the migration's own write volume against the
    // predicted gain, so a marginal win on a huge object does not pay for
    // itself. report.predicted_gain stays the raw workload ratio.
    if (options_.migration_cost_weight > 0) {
      uint64_t migration_cells = 0;
      for (const Step& step : steps) {
        for (const MInterval& domain : step.tiles) {
          migration_cells += domain.CellCountOrDie();
        }
      }
      const double migration_bytes =
          static_cast<double>(migration_cells) *
          static_cast<double>(cell_size);
      const double effective =
          static_cast<double>(old_cost) /
          (static_cast<double>(new_cost) +
           options_.migration_cost_weight * migration_bytes);
      if (effective < options_.min_improvement) {
        metrics_->skipped_no_gain->Add(1);
        report.rationale += " (migration cost outweighs predicted gain)";
        return report;
      }
    }
  }

  // Migrate step by step. Each step is one atomic RetileRegion under the
  // exclusive lock; between steps readers run against a valid
  // mixed-generation tiling. Stop() abandons remaining steps (drain);
  // a nonzero budget defers them to the next background tick.
  const uint64_t trace_id = store_->trace()->NextTraceId();
  obs::TraceScope retile_span(store_->trace(), trace_id, "retile");
  size_t applied = 0;
  uint64_t moved_cells = 0;
  for (const Step& step : steps) {
    if (applied > 0 && stop_.load(std::memory_order_relaxed)) break;
    if (applied > 0 && budget != 0 && moved_cells >= budget) break;
    {
      auto lock = MaybeUnique(options_.catalog_mu);
      Result<MDDObject*> object_or = store_->GetMDD(name);
      if (!object_or.ok()) return object_or.status();
      MDDObject* object = object_or.value();
      const size_t replaced = object->FindTiles(step.region).size();
      obs::TraceScope step_span(store_->trace(), trace_id, "retile_step");
      Status st = object->RetileRegion(step.region, step.tiles);
      if (!st.ok()) return st;  // plan discarded; object unchanged
      metrics_->tiles_removed->Add(replaced);
    }
    ++applied;
    uint64_t step_cells = 0;
    for (const MInterval& domain : step.tiles) {
      step_cells += domain.CellCountOrDie();
    }
    moved_cells += step_cells;
    metrics_->steps->Add(1);
    metrics_->tiles_written->Add(step.tiles.size());
    metrics_->cells_moved->Add(step_cells);
    metrics_->bytes_written->Add(step_cells * cell_size);
  }
  report.steps = applied;
  report.cells_moved = moved_cells;
  report.migrated = applied > 0;

  if (applied < steps.size()) {
    // Budget-capped or draining: park the remainder; the next tick (or a
    // later session, via the persisted plan) resumes it. The mixed state
    // left behind is a valid tiling, so nothing breaks if it never
    // resumes.
    metrics_->pending[name] =
        std::vector<Step>(steps.begin() + applied, steps.end());
    PersistPendingLocked();
    auto lock = MaybeShared(options_.catalog_mu);
    Result<MDDObject*> object_or = store_->GetMDD(name);
    if (object_or.ok()) report.tiles_after = object_or.value()->tile_count();
    return report;
  }
  // Completed a resumed plan: retire its persisted copy.
  if (resuming) PersistPendingLocked();

  // Migration complete: persist the new tiling, drop the evidence that
  // drove it (the next decision needs post-migration boxes), and start
  // the cool-down clock so the loop cannot thrash this object.
  metrics_->migrations->Add(1);
  store_->workload()->Forget(name);
  if (options_.cooldown.count() > 0) {
    std::lock_guard<std::mutex> lock(cooldown_mu_);
    last_migration_[name] = std::chrono::steady_clock::now();
  }
  {
    auto lock = MaybeUnique(options_.catalog_mu);
    if (options_.save_after_migration) {
      Status st = store_->Save();
      if (!st.ok()) return st;
    }
    Result<MDDObject*> object_or = store_->GetMDD(name);
    if (object_or.ok()) report.tiles_after = object_or.value()->tile_count();
  }
  return report;
}

}  // namespace tilestore
