#ifndef TILESTORE_TILING_TILING_H_
#define TILESTORE_TILING_TILING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "core/tile.h"

namespace tilestore {

/// Default upper limit on the size of a tile (the paper's MaxTileSize
/// parameter, taken by every tiling algorithm). 64 KiB sits in the middle
/// of the range the paper evaluates (32 KiB .. 256 KiB).
inline constexpr uint64_t kDefaultMaxTileBytes = 64 * 1024;

/// \brief Interface of all tiling algorithms (Section 5.2).
///
/// A strategy computes a *partition of the spatial domain* (a tiling
/// specification); materializing the actual tiles happens in a second phase
/// (`CutTiles`). All algorithms receive MaxTileSize through their
/// constructor parameters and guarantee every returned tile holds at most
/// MaxTileSize bytes — except for the unavoidable case of a single cell
/// larger than MaxTileSize, which is rejected with InvalidArgument.
class TilingStrategy {
 public:
  virtual ~TilingStrategy() = default;

  /// Computes the tiling of `domain` for cells of `cell_size` bytes.
  /// `domain` must be fixed. The returned intervals are pairwise disjoint
  /// and contained in `domain`; whether they cover `domain` completely
  /// depends on the strategy (all strategies in this library cover it).
  virtual Result<TilingSpec> ComputeTiling(const MInterval& domain,
                                           size_t cell_size) const = 0;

  /// Human-readable strategy name for logs and benchmark tables.
  virtual std::string name() const = 0;
};

namespace tiling_internal {

/// Cut positions along each axis: a sorted list `c_0 < c_1 < ... < c_m`
/// with `c_0 == domain.lo(i)` and `c_m == domain.hi(i) + 1`; block `j`
/// along the axis is `[c_j, c_{j+1} - 1]`. This is the internal form the
/// directional and areas-of-interest algorithms share.
using AxisCuts = std::vector<Coord>;

/// Validates and normalizes cut lists (sorts, deduplicates, checks range).
Result<std::vector<AxisCuts>> NormalizeCuts(const MInterval& domain,
                                            std::vector<AxisCuts> cuts);

/// Cartesian product of per-axis blocks: the iso-oriented grid of blocks
/// defined by the cuts, in row-major block order.
TilingSpec GridBlocks(const MInterval& domain,
                      const std::vector<AxisCuts>& cuts);

}  // namespace tiling_internal

}  // namespace tilestore

#endif  // TILESTORE_TILING_TILING_H_
