#include "tiling/ordering.h"

#include <algorithm>

namespace tilestore {

uint64_t HilbertIndex2D(uint32_t bits, uint64_t x, uint64_t y) {
  // Classic iterative xy -> d conversion: walk the quadrants from the
  // most significant bit down, rotating the frame as the curve prescribes.
  uint64_t d = 0;
  for (uint64_t s = bits == 0 ? 0 : (1ull << (bits - 1)); s > 0; s >>= 1) {
    const uint64_t rx = (x & s) > 0 ? 1 : 0;
    const uint64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

Result<uint64_t> HilbertIndexND(uint32_t bits,
                                const std::vector<uint64_t>& coords) {
  const size_t n = coords.size();
  if (n == 0 || bits == 0 || static_cast<uint64_t>(bits) * n > 62) {
    return Status::InvalidArgument(
        "Hilbert index needs 1 <= bits*dim <= 62 (got bits=" +
        std::to_string(bits) + ", dim=" + std::to_string(n) + ")");
  }
  for (uint64_t c : coords) {
    if (c >= (1ull << bits)) {
      return Status::InvalidArgument("coordinate out of the curve's grid");
    }
  }

  // Skilling's AxesToTranspose: in-place conversion of the coordinates to
  // the "transposed" Hilbert index.
  std::vector<uint64_t> x = coords;
  const uint64_t m = 1ull << (bits - 1);
  for (uint64_t q = m; q > 1; q >>= 1) {
    const uint64_t p = q - 1;
    for (size_t i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const uint64_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (size_t i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint64_t t = 0;
  for (uint64_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (size_t i = 0; i < n; ++i) x[i] ^= t;

  // Interleave the transposed bits into a single index: bit b of axis i
  // lands at position (b * n + (n - 1 - i)).
  uint64_t d = 0;
  for (uint32_t b = bits; b > 0; --b) {
    for (size_t i = 0; i < n; ++i) {
      d = (d << 1) | ((x[i] >> (b - 1)) & 1);
    }
  }
  return d;
}

Result<TilingSpec> OrderTiles(const MInterval& domain, TilingSpec spec,
                              TileOrder order) {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("ordering needs a fixed domain: " +
                                   domain.ToString());
  }
  for (const MInterval& tile : spec) {
    if (tile.dim() != domain.dim() || !tile.IsFixed()) {
      return Status::InvalidArgument("bad tile domain in spec: " +
                                     tile.ToString());
    }
  }

  switch (order) {
    case TileOrder::kScanline: {
      std::sort(spec.begin(), spec.end(), MIntervalLess());
      return spec;
    }
    case TileOrder::kHilbert: {
      const size_t dim = domain.dim();
      // Curve order: enough bits to cover the longest axis.
      uint64_t longest = 1;
      for (size_t i = 0; i < dim; ++i) {
        longest = std::max(longest, static_cast<uint64_t>(domain.Extent(i)));
      }
      uint32_t bits = 1;
      while ((1ull << bits) < longest) ++bits;
      if (static_cast<uint64_t>(bits) * dim > 62) {
        return Status::InvalidArgument(
            "domain too large/deep for a 64-bit Hilbert index (bits=" +
            std::to_string(bits) + ", dim=" + std::to_string(dim) + ")");
      }

      struct Keyed {
        uint64_t key;
        MInterval tile;
      };
      std::vector<Keyed> keyed;
      keyed.reserve(spec.size());
      std::vector<uint64_t> center(dim);
      for (MInterval& tile : spec) {
        for (size_t i = 0; i < dim; ++i) {
          center[i] = static_cast<uint64_t>((tile.lo(i) + tile.hi(i)) / 2 -
                                            domain.lo(i));
        }
        Result<uint64_t> key =
            dim == 2 ? HilbertIndex2D(bits, center[0], center[1])
                     : HilbertIndexND(bits, center);
        if (!key.ok()) return key.status();
        keyed.push_back(Keyed{key.value(), std::move(tile)});
      }
      std::sort(keyed.begin(), keyed.end(),
                [](const Keyed& a, const Keyed& b) {
                  if (a.key != b.key) return a.key < b.key;
                  return MIntervalLess()(a.tile, b.tile);
                });
      TilingSpec out;
      out.reserve(keyed.size());
      for (Keyed& k : keyed) out.push_back(std::move(k.tile));
      return out;
    }
  }
  return Status::InvalidArgument("unknown tile order");
}

}  // namespace tilestore
