#include "tiling/advisor.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/tile_config.h"

namespace tilestore {

std::string_view WorkloadKindToString(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kWholeObject:
      return "whole-object";
    case WorkloadKind::kSections:
      return "sections";
    case WorkloadKind::kAreasOfInterest:
      return "areas-of-interest";
    case WorkloadKind::kMixed:
      return "mixed";
  }
  return "unknown";
}

Result<TilingAdvice> TilingAdvisor::Advise(
    const MInterval& domain,
    const std::vector<AccessRecord>& accesses) const {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("advisor needs a fixed domain: " +
                                   domain.ToString());
  }
  if (domain.dim() > 64) {
    return Status::InvalidArgument("advisor supports at most 64 axes");
  }
  const size_t d = domain.dim();

  uint64_t total = 0, scans = 0, sections = 0, subareas = 0;
  // Votes per spanned-axis signature of section accesses.
  std::vector<std::pair<uint64_t, uint64_t>> signatures;  // (mask, count)
  std::vector<AccessRecord> subarea_records;

  for (const AccessRecord& access : accesses) {
    if (access.region.dim() != d || !access.region.IsFixed()) {
      return Status::InvalidArgument("malformed access record " +
                                     access.region.ToString());
    }
    const std::optional<MInterval> clipped =
        access.region.Intersection(domain);
    if (!clipped.has_value()) continue;
    total += access.count;

    size_t spanned = 0, thin = 0;
    uint64_t mask = 0;
    for (size_t i = 0; i < d; ++i) {
      const double fraction = static_cast<double>(clipped->Extent(i)) /
                              static_cast<double>(domain.Extent(i));
      if (fraction >= options_.spanned_fraction) {
        ++spanned;
        mask |= (1ull << i);
      } else if (fraction <= options_.thin_fraction) {
        ++thin;
      }
    }
    if (spanned == d) {
      scans += access.count;
      continue;
    }
    if (spanned >= 1 && spanned + thin == d) {
      sections += access.count;
      bool found = false;
      for (auto& [sig, count] : signatures) {
        if (sig == mask) {
          count += access.count;
          found = true;
          break;
        }
      }
      if (!found) signatures.emplace_back(mask, access.count);
      continue;
    }
    subareas += access.count;
    subarea_records.push_back(AccessRecord{*clipped, access.count});
  }

  TilingAdvice advice;
  auto fallback = [&](std::string why) {
    advice.kind = WorkloadKind::kMixed;
    advice.strategy = std::make_shared<AlignedTiling>(
        AlignedTiling::Regular(d, options_.max_tile_bytes));
    advice.rationale = std::move(why);
  };

  if (total == 0) {
    fallback("no usable accesses in the log; default aligned tiling");
    return advice;
  }
  advice.full_scan_fraction = static_cast<double>(scans) / total;
  advice.section_fraction = static_cast<double>(sections) / total;
  advice.subarea_fraction = static_cast<double>(subareas) / total;

  std::ostringstream why;
  why << std::fixed;
  why.precision(0);
  why << "workload: " << advice.full_scan_fraction * 100 << "% scans, "
      << advice.section_fraction * 100 << "% sections, "
      << advice.subarea_fraction * 100 << "% subareas; ";

  if (advice.full_scan_fraction >= options_.dominance_threshold) {
    // Type (a): whole-object accesses -> aligned tiling (Section 5.1).
    advice.kind = WorkloadKind::kWholeObject;
    advice.strategy = std::make_shared<AlignedTiling>(
        AlignedTiling::Regular(d, options_.max_tile_bytes));
    why << "whole-object scans dominate: aligned (regular) tiling";
    advice.rationale = why.str();
    return advice;
  }

  if (advice.section_fraction >= options_.dominance_threshold &&
      !signatures.empty()) {
    // Types (c)/(d): find the dominant spanned-axis signature and stretch
    // tiles along those axes ('*' configuration, Figure 4).
    std::sort(signatures.begin(), signatures.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const auto [mask, count] = signatures.front();
    // Strictly dominant: at an exact tie between directions a star
    // configuration would severely degrade the losing half (Section 5.1's
    // warning), so fall through to the default instead.
    if (static_cast<double>(count) / sections >
        options_.dominance_threshold) {
      TileConfig config = TileConfig::Regular(d);
      why << "sections spanning axes {";
      bool first = true;
      for (size_t i = 0; i < d; ++i) {
        if ((mask & (1ull << i)) == 0) continue;
        config.SetStar(i);
        why << (first ? "" : ",") << i;
        first = false;
      }
      why << "} dominate: aligned tiling with '*' along them";
      advice.kind = WorkloadKind::kSections;
      advice.strategy = std::make_shared<AlignedTiling>(
          config, options_.max_tile_bytes);
      advice.rationale = why.str();
      return advice;
    }
    why << "sections dominate but disagree on direction; ";
  }

  if (advice.subarea_fraction >= options_.dominance_threshold) {
    // Type (b): repeated subareas -> areas of interest derived from the
    // log (StatisticTiling's clustering).
    StatisticTiling clustering(subarea_records, options_.max_tile_bytes,
                               options_.frequency_threshold,
                               options_.distance_threshold);
    Result<std::vector<MInterval>> areas =
        clustering.DeriveAreasOfInterest(domain);
    if (!areas.ok()) return areas.status();
    if (!areas->empty()) {
      why << "repeated subareas dominate: areas-of-interest tiling over "
          << areas->size() << " derived area(s)";
      advice.kind = WorkloadKind::kAreasOfInterest;
      advice.strategy = std::make_shared<AreasOfInterestTiling>(
          std::move(areas).MoveValue(), options_.max_tile_bytes);
      advice.rationale = why.str();
      return advice;
    }
    why << "subareas dominate but none repeats often enough; ";
  }

  why << "no dominant pattern: default aligned tiling";
  fallback(why.str());
  return advice;
}

}  // namespace tilestore
