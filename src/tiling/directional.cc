#include "tiling/directional.h"

#include <algorithm>

#include "tiling/aligned.h"

namespace tilestore {

using tiling_internal::AxisCuts;
using tiling_internal::GridBlocks;
using tiling_internal::NormalizeCuts;

DirectionalTiling::DirectionalTiling(std::vector<AxisPartition> partitions,
                                     uint64_t max_tile_bytes,
                                     std::optional<TileConfig> sub_config)
    : partitions_(std::move(partitions)),
      max_tile_bytes_(max_tile_bytes),
      sub_config_(std::move(sub_config)) {}

std::string DirectionalTiling::name() const {
  std::string out = "directional{";
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (i > 0) out += ';';
    out += "axis" + std::to_string(partitions_[i].axis) + ":" +
           std::to_string(partitions_[i].bounds.size()) + "pts";
  }
  out += "}/" + std::to_string(max_tile_bytes_);
  return out;
}

Result<TilingSpec> DirectionalTiling::ComputeBlocks(
    const MInterval& domain) const {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument(
        "directional tiling needs a fixed domain: " + domain.ToString());
  }
  const size_t d = domain.dim();
  std::vector<bool> seen(d, false);
  std::vector<AxisCuts> cuts(d);
  for (const AxisPartition& part : partitions_) {
    if (part.axis >= d) {
      return Status::InvalidArgument("partition axis " +
                                     std::to_string(part.axis) +
                                     " out of range for " + domain.ToString());
    }
    if (seen[part.axis]) {
      return Status::InvalidArgument("duplicate partition for axis " +
                                     std::to_string(part.axis));
    }
    seen[part.axis] = true;
    if (part.bounds.size() < 2 ||
        !std::is_sorted(part.bounds.begin(), part.bounds.end()) ||
        std::adjacent_find(part.bounds.begin(), part.bounds.end()) !=
            part.bounds.end()) {
      return Status::InvalidArgument(
          "axis partition bounds must be strictly increasing with >= 2 "
          "entries (axis " +
          std::to_string(part.axis) + ")");
    }
    if (part.bounds.front() != domain.lo(part.axis) ||
        part.bounds.back() != domain.hi(part.axis)) {
      return Status::InvalidArgument(
          "axis partition must start at the domain lower bound and end at "
          "the upper bound (axis " +
          std::to_string(part.axis) + " of " + domain.ToString() + ")");
    }
    // Interior bounds p_2..p_{n-1} become cut positions; the final bound
    // p_n == domain.hi closes the last block [p_{n-1}, p_n].
    AxisCuts& axis_cuts = cuts[part.axis];
    axis_cuts.assign(part.bounds.begin(), part.bounds.end() - 1);
  }
  Result<std::vector<AxisCuts>> normalized = NormalizeCuts(domain, cuts);
  if (!normalized.ok()) return normalized.status();
  return GridBlocks(domain, normalized.value());
}

Result<TilingSpec> DirectionalTiling::ComputeTiling(const MInterval& domain,
                                                    size_t cell_size) const {
  Result<TilingSpec> blocks = ComputeBlocks(domain);
  if (!blocks.ok()) return blocks.status();

  const TileConfig sub_config =
      sub_config_.has_value() ? *sub_config_ : TileConfig::Regular(domain.dim());
  const AlignedTiling subtiler(sub_config, max_tile_bytes_);

  TilingSpec spec;
  spec.reserve(blocks->size());
  for (const MInterval& block : blocks.value()) {
    const uint64_t bytes = block.CellCountOrDie() * cell_size;
    if (bytes <= max_tile_bytes_) {
      spec.push_back(block);
      continue;
    }
    // Oversized category block: subpartition with the aligned algorithm
    // inside the block, keeping all block boundaries as tile boundaries.
    Result<TilingSpec> sub = subtiler.ComputeTiling(block, cell_size);
    if (!sub.ok()) return sub.status();
    spec.insert(spec.end(), sub->begin(), sub->end());
  }
  return spec;
}

}  // namespace tilestore
