#include "tiling/areas_of_interest.h"

#include <algorithm>
#include <map>

#include "tiling/aligned.h"
#include "tiling/directional.h"

namespace tilestore {

namespace tiling_internal {

uint64_t IntersectCode(const MInterval& block,
                       const std::vector<MInterval>& areas) {
  uint64_t code = 0;
  for (size_t j = 0; j < areas.size(); ++j) {
    if (block.Intersects(areas[j])) code |= (1ull << j);
  }
  return code;
}

void MergeByCode(std::vector<MInterval>* spec, std::vector<uint64_t>* codes,
                 size_t dim, size_t cell_size, uint64_t max_bytes) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t axis = 0; axis < dim; ++axis) {
      // Group blocks sharing all bounds except on `axis`; within a group,
      // neighbours along `axis` are merge candidates.
      std::map<std::vector<Coord>, std::vector<size_t>> groups;
      for (size_t idx = 0; idx < spec->size(); ++idx) {
        std::vector<Coord> key;
        key.reserve(2 * (dim - 1));
        for (size_t i = 0; i < dim; ++i) {
          if (i == axis) continue;
          key.push_back((*spec)[idx].lo(i));
          key.push_back((*spec)[idx].hi(i));
        }
        groups[std::move(key)].push_back(idx);
      }

      std::vector<bool> dead(spec->size(), false);
      for (auto& [key, members] : groups) {
        std::sort(members.begin(), members.end(), [&](size_t a, size_t b) {
          return (*spec)[a].lo(axis) < (*spec)[b].lo(axis);
        });
        size_t cur = members[0];
        for (size_t m = 1; m < members.size(); ++m) {
          const size_t next = members[m];
          const bool adjacent =
              (*spec)[cur].hi(axis) + 1 == (*spec)[next].lo(axis);
          const MInterval merged = (*spec)[cur].Hull((*spec)[next]);
          const bool fits =
              merged.CellCountOrDie() * cell_size <= max_bytes;
          if (adjacent && (*codes)[cur] == (*codes)[next] && fits) {
            (*spec)[cur] = merged;
            dead[next] = true;
            changed = true;
          } else {
            cur = next;
          }
        }
      }

      // Compact the survivors.
      size_t out = 0;
      for (size_t idx = 0; idx < spec->size(); ++idx) {
        if (dead[idx]) continue;
        if (out != idx) {  // guard against self-move
          (*spec)[out] = std::move((*spec)[idx]);
          (*codes)[out] = (*codes)[idx];
        }
        ++out;
      }
      spec->resize(out);
      codes->resize(out);
    }
  }
}

}  // namespace tiling_internal

AreasOfInterestTiling::AreasOfInterestTiling(std::vector<MInterval> areas,
                                             uint64_t max_tile_bytes)
    : areas_(std::move(areas)), max_tile_bytes_(max_tile_bytes) {}

AreasOfInterestTiling& AreasOfInterestTiling::DisableMerge() {
  merge_enabled_ = false;
  return *this;
}

std::string AreasOfInterestTiling::name() const {
  return "areas_of_interest{" + std::to_string(areas_.size()) + "}/" +
         std::to_string(max_tile_bytes_);
}

Result<TilingSpec> AreasOfInterestTiling::ComputeTiling(
    const MInterval& domain, size_t cell_size) const {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument(
        "areas-of-interest tiling needs a fixed domain: " + domain.ToString());
  }
  if (areas_.empty()) {
    return Status::InvalidArgument("no areas of interest given");
  }
  if (areas_.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 areas of interest are supported (IntersectCode is a "
        "64-bit mask)");
  }
  const size_t d = domain.dim();
  for (const MInterval& area : areas_) {
    if (area.dim() != d || !domain.Contains(area)) {
      return Status::InvalidArgument("area of interest " + area.ToString() +
                                     " not inside domain " +
                                     domain.ToString());
    }
  }

  // Step 1+2 (Figure 6 lines 1-2): axis partitions from the areas' bounds;
  // cut the whole domain into the grid of blocks they induce.
  std::vector<tiling_internal::AxisCuts> cuts(d);
  for (const MInterval& area : areas_) {
    for (size_t i = 0; i < d; ++i) {
      cuts[i].push_back(area.lo(i));
      cuts[i].push_back(area.hi(i) + 1);
    }
  }
  Result<std::vector<tiling_internal::AxisCuts>> normalized =
      tiling_internal::NormalizeCuts(domain, std::move(cuts));
  if (!normalized.ok()) return normalized.status();
  TilingSpec blocks = tiling_internal::GridBlocks(domain, normalized.value());

  // Step 3 (line 3): classify blocks by IntersectCode.
  std::vector<uint64_t> codes;
  codes.reserve(blocks.size());
  for (const MInterval& block : blocks) {
    codes.push_back(tiling_internal::IntersectCode(block, areas_));
  }

  // Step 4 (line 4): merge neighbouring blocks with equal codes.
  if (merge_enabled_) {
    tiling_internal::MergeByCode(&blocks, &codes, d, cell_size,
                                 max_tile_bytes_);
  }

  // Step 5 (line 5): split blocks that still exceed MaxTileSize using the
  // aligned algorithm. Subdividing never crosses a code boundary, so the
  // IntersectCode guarantee survives.
  const AlignedTiling subtiler =
      AlignedTiling::Regular(d, max_tile_bytes_);
  TilingSpec spec;
  spec.reserve(blocks.size());
  for (const MInterval& block : blocks) {
    if (block.CellCountOrDie() * cell_size <= max_tile_bytes_) {
      spec.push_back(block);
      continue;
    }
    Result<TilingSpec> sub = subtiler.ComputeTiling(block, cell_size);
    if (!sub.ok()) return sub.status();
    spec.insert(spec.end(), sub->begin(), sub->end());
  }
  return spec;
}

}  // namespace tilestore
