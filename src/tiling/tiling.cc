#include "tiling/tiling.h"

#include <algorithm>

namespace tilestore {
namespace tiling_internal {

Result<std::vector<AxisCuts>> NormalizeCuts(const MInterval& domain,
                                            std::vector<AxisCuts> cuts) {
  if (cuts.size() != domain.dim()) {
    return Status::InvalidArgument("cut list count does not match dimension");
  }
  for (size_t i = 0; i < cuts.size(); ++i) {
    AxisCuts& axis = cuts[i];
    axis.push_back(domain.lo(i));
    axis.push_back(domain.hi(i) + 1);
    std::sort(axis.begin(), axis.end());
    axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
    if (axis.front() < domain.lo(i) || axis.back() > domain.hi(i) + 1) {
      return Status::InvalidArgument(
          "cut position outside domain on axis " + std::to_string(i) +
          " of " + domain.ToString());
    }
  }
  return cuts;
}

TilingSpec GridBlocks(const MInterval& domain,
                      const std::vector<AxisCuts>& cuts) {
  const size_t d = domain.dim();
  // Number of blocks per axis.
  std::vector<size_t> counts(d);
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) {
    counts[i] = cuts[i].size() - 1;
    total *= counts[i];
  }

  TilingSpec blocks;
  blocks.reserve(total);
  std::vector<size_t> idx(d, 0);
  while (true) {
    std::vector<Coord> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      lo[i] = cuts[i][idx[i]];
      hi[i] = cuts[i][idx[i] + 1] - 1;
    }
    blocks.push_back(MInterval::Create(std::move(lo), std::move(hi)).value());
    // Row-major odometer over block indices.
    size_t axis = d;
    bool done = true;
    while (axis > 0) {
      --axis;
      if (++idx[axis] < counts[axis]) {
        done = false;
        break;
      }
      idx[axis] = 0;
    }
    if (done) break;
  }
  return blocks;
}

}  // namespace tiling_internal
}  // namespace tilestore
