#include "tiling/statistic.h"

#include <algorithm>

#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"

namespace tilestore {

Coord BoxGap(const MInterval& a, const MInterval& b) {
  Coord gap = 0;
  for (size_t i = 0; i < a.dim(); ++i) {
    Coord axis_gap = 0;
    if (b.lo(i) > a.hi(i)) {
      axis_gap = b.lo(i) - a.hi(i) - 1;
    } else if (a.lo(i) > b.hi(i)) {
      axis_gap = a.lo(i) - b.hi(i) - 1;
    }
    gap = std::max(gap, axis_gap);
  }
  return gap;
}

StatisticTiling::StatisticTiling(std::vector<AccessRecord> accesses,
                                 uint64_t max_tile_bytes,
                                 uint64_t frequency_threshold,
                                 Coord distance_threshold)
    : accesses_(std::move(accesses)),
      max_tile_bytes_(max_tile_bytes),
      frequency_threshold_(frequency_threshold),
      distance_threshold_(distance_threshold) {}

std::string StatisticTiling::name() const {
  return "statistic{" + std::to_string(accesses_.size()) + " accesses,freq>=" +
         std::to_string(frequency_threshold_) + ",dist<=" +
         std::to_string(distance_threshold_) + "}/" +
         std::to_string(max_tile_bytes_);
}

Result<std::vector<MInterval>> StatisticTiling::DeriveAreasOfInterest(
    const MInterval& domain) const {
  const size_t d = domain.dim();
  struct Candidate {
    MInterval region;
    uint64_t count;
  };
  std::vector<Candidate> candidates;

  for (const AccessRecord& access : accesses_) {
    if (access.region.dim() != d || !access.region.IsFixed()) {
      return Status::InvalidArgument("malformed access record " +
                                     access.region.ToString());
    }
    // Accesses partially outside the domain are clipped; entirely-outside
    // accesses are ignored (they carry no tiling information).
    std::optional<MInterval> clipped = access.region.Intersection(domain);
    if (!clipped.has_value()) continue;

    // Greedy clustering: fold the access into the first candidate within
    // the distance threshold, then keep folding candidates that the grown
    // hull now reaches (transitive closure).
    MInterval region = *clipped;
    uint64_t count = access.count;
    bool absorbed = true;
    while (absorbed) {
      absorbed = false;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (BoxGap(candidates[i].region, region) <= distance_threshold_) {
          region = region.Hull(candidates[i].region);
          count += candidates[i].count;
          candidates.erase(candidates.begin() +
                           static_cast<ptrdiff_t>(i));
          absorbed = true;
          break;
        }
      }
    }
    candidates.push_back({std::move(region), count});
  }

  std::vector<MInterval> areas;
  for (const Candidate& c : candidates) {
    if (c.count >= frequency_threshold_) areas.push_back(c.region);
  }
  if (areas.size() > 64) {
    // Keep the 64 hottest areas; the IntersectCode mask is 64 bits wide.
    std::vector<Candidate> qualifying;
    for (const Candidate& c : candidates) {
      if (c.count >= frequency_threshold_) qualifying.push_back(c);
    }
    std::sort(qualifying.begin(), qualifying.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.count > b.count;
              });
    qualifying.resize(64);
    areas.clear();
    for (const Candidate& c : qualifying) areas.push_back(c.region);
  }
  return areas;
}

Result<TilingSpec> StatisticTiling::ComputeTiling(const MInterval& domain,
                                                  size_t cell_size) const {
  if (!domain.IsFixed()) {
    return Status::InvalidArgument("statistic tiling needs a fixed domain: " +
                                   domain.ToString());
  }
  Result<std::vector<MInterval>> areas = DeriveAreasOfInterest(domain);
  if (!areas.ok()) return areas.status();
  if (areas->empty()) {
    // No access pattern passed the filters: fall back to the default
    // (regular aligned) tiling, as an untuned object would get.
    return AlignedTiling::Regular(domain.dim(), max_tile_bytes_)
        .ComputeTiling(domain, cell_size);
  }
  return AreasOfInterestTiling(std::move(areas).MoveValue(), max_tile_bytes_)
      .ComputeTiling(domain, cell_size);
}

}  // namespace tilestore
