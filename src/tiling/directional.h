#ifndef TILESTORE_TILING_DIRECTIONAL_H_
#define TILESTORE_TILING_DIRECTIONAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "tiling/tile_config.h"
#include "tiling/tiling.h"

namespace tilestore {

/// \brief A partition of one axis of the domain (Section 5.2,
/// "Partitioning the Dimensions"): boundary values
/// p_1 < p_2 < ... < p_n with p_1 == domain.lo(axis) and
/// p_n == domain.hi(axis). The axis is divided into the n-1 category
/// blocks [p_1, p_2-1], [p_2, p_3-1], ..., [p_{n-1}, p_n].
///
/// Example from the paper's sales cube (Table 1): the time axis of 730
/// days partitions into 24 months with bounds {1, 31, 59, ..., 730}.
struct AxisPartition {
  size_t axis = 0;
  std::vector<Coord> bounds;
};

/// \brief Directional tiling (Section 5.2, "Partitioning the Dimensions").
///
/// The user supplies partitions along some or all axes (e.g. OLAP category
/// hierarchies: months, product classes, country districts). The space is
/// first cut by the hyperplanes x_axis = p_j into iso-oriented category
/// blocks; blocks exceeding MaxTileSize are then subpartitioned with the
/// aligned tiling algorithm. The resulting tiling guarantees that an
/// access to any union of category blocks reads no data outside those
/// blocks.
class DirectionalTiling : public TilingStrategy {
 public:
  /// `partitions` lists the partitioned axes (unlisted axes are not cut);
  /// `sub_config` optionally shapes the aligned subpartitioning of
  /// oversized blocks (defaults to the regular configuration).
  DirectionalTiling(std::vector<AxisPartition> partitions,
                    uint64_t max_tile_bytes,
                    std::optional<TileConfig> sub_config = std::nullopt);

  Result<TilingSpec> ComputeTiling(const MInterval& domain,
                                   size_t cell_size) const override;
  std::string name() const override;

  /// The category blocks alone, without size-driven subpartitioning
  /// (step 2 of the areas-of-interest algorithm, Figure 6).
  Result<TilingSpec> ComputeBlocks(const MInterval& domain) const;

  uint64_t max_tile_bytes() const { return max_tile_bytes_; }

 private:
  std::vector<AxisPartition> partitions_;
  uint64_t max_tile_bytes_;
  std::optional<TileConfig> sub_config_;
};

}  // namespace tilestore

#endif  // TILESTORE_TILING_DIRECTIONAL_H_
