#ifndef TILESTORE_TILING_AREAS_OF_INTEREST_H_
#define TILESTORE_TILING_AREAS_OF_INTEREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "tiling/tiling.h"

namespace tilestore {

/// \brief Tiling according to areas of interest (Section 5.2, Figure 6).
///
/// An area of interest is a frequently accessed subarray, given as a hint.
/// The algorithm:
///   1. derives axis partitions from the lower/upper bounds of all areas
///      of interest and cuts the domain into the resulting grid of blocks
///      (directional tiling without subpartitioning);
///   2. classifies each block by its IntersectCode — one bit per area of
///      interest, set iff the block intersects that area;
///   3. merges neighbouring blocks with identical IntersectCodes (only
///      when the union is a box and stays within MaxTileSize, so the
///      guarantee below is preserved);
///   4. splits blocks still exceeding MaxTileSize with aligned tiling.
///
/// Guarantee: every tile is fully inside or fully outside each area of
/// interest, so a query for an area of interest reads only bytes belonging
/// to that area.
class AreasOfInterestTiling : public TilingStrategy {
 public:
  /// At most 64 areas of interest are supported (the IntersectCode is one
  /// bit per area). Areas may overlap each other.
  AreasOfInterestTiling(std::vector<MInterval> areas, uint64_t max_tile_bytes);

  /// Disables the merge step (step 3); used by the merge ablation
  /// benchmark. Returns *this for chaining.
  AreasOfInterestTiling& DisableMerge();

  Result<TilingSpec> ComputeTiling(const MInterval& domain,
                                   size_t cell_size) const override;
  std::string name() const override;

  const std::vector<MInterval>& areas() const { return areas_; }

 private:
  std::vector<MInterval> areas_;
  uint64_t max_tile_bytes_;
  bool merge_enabled_ = true;
};

namespace tiling_internal {

/// The IntersectCode of `block`: bit j set iff block intersects areas[j].
uint64_t IntersectCode(const MInterval& block,
                       const std::vector<MInterval>& areas);

/// Merges axis-aligned neighbouring intervals whose codes match, when the
/// union is a box and its payload stays within `max_bytes`. `codes` is
/// kept in sync with `spec`. Iterates across axes until a fixpoint.
void MergeByCode(std::vector<MInterval>* spec, std::vector<uint64_t>* codes,
                 size_t dim, size_t cell_size, uint64_t max_bytes);

}  // namespace tiling_internal

}  // namespace tilestore

#endif  // TILESTORE_TILING_AREAS_OF_INTEREST_H_
