#ifndef TILESTORE_TILING_STATISTIC_H_
#define TILESTORE_TILING_STATISTIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/minterval.h"
#include "tiling/tiling.h"

namespace tilestore {

/// One recorded access: a query region and how many times it occurred.
struct AccessRecord {
  MInterval region;
  uint64_t count = 1;
};

/// \brief Statistic tiling (Section 5.2, "Statistic Tiling"): automatically
/// derives areas of interest from a log of accesses to an MDD object.
///
/// Accesses closer than `distance_threshold` (Chebyshev gap between the
/// two boxes, in cells) are merged into one candidate area (hull of the
/// group, accumulating counts); candidates occurring at least
/// `frequency_threshold` times become areas of interest, which are then
/// tiled with `AreasOfInterestTiling`. If no candidate passes the filter,
/// the algorithm falls back to regular aligned tiling so the object is
/// still completely tiled.
class StatisticTiling : public TilingStrategy {
 public:
  StatisticTiling(std::vector<AccessRecord> accesses, uint64_t max_tile_bytes,
                  uint64_t frequency_threshold = 2,
                  Coord distance_threshold = 0);

  Result<TilingSpec> ComputeTiling(const MInterval& domain,
                                   size_t cell_size) const override;
  std::string name() const override;

  /// The filtered areas of interest this log induces (exposed for tests
  /// and for inspecting what the automatic tiling decided).
  Result<std::vector<MInterval>> DeriveAreasOfInterest(
      const MInterval& domain) const;

 private:
  std::vector<AccessRecord> accesses_;
  uint64_t max_tile_bytes_;
  uint64_t frequency_threshold_;
  Coord distance_threshold_;
};

/// Chebyshev gap between two boxes: 0 if they intersect or touch; otherwise
/// the largest per-axis gap in cells between them. Exposed for tests.
Coord BoxGap(const MInterval& a, const MInterval& b);

}  // namespace tilestore

#endif  // TILESTORE_TILING_STATISTIC_H_
