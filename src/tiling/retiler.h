#ifndef TILESTORE_TILING_RETILER_H_
#define TILESTORE_TILING_RETILER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/minterval.h"
#include "core/tile.h"
#include "index/tile_index.h"
#include "tiling/advisor.h"
#include "tiling/statistic.h"

namespace tilestore {

class MDDStore;
class MDDObject;

/// Policy knobs of the online re-tiler (DESIGN.md §12).
struct RetilerOptions {
  /// Background poll period between policy evaluations.
  std::chrono::milliseconds poll_interval{1000};
  /// Queries an object must have seen (since the last migration) before
  /// the background loop evaluates it. `RetileNow` bypasses this.
  uint64_t min_queries = 32;
  /// Predicted fetched-bytes ratio (current tiling / candidate tiling over
  /// the recorded workload) required to migrate. 1.0 migrates on any
  /// predicted win; the default demands a solid one so the loop cannot
  /// thrash between near-equal tilings.
  double min_improvement = 1.3;
  /// Soft cap on cells migrated per background tick: steps are applied in
  /// plan order until the budget is exhausted, then the migration resumes
  /// on the next tick — readers run between ticks. One step is always
  /// applied (a step is the atomicity unit and cannot be split).
  uint64_t step_cell_budget = 1ull << 22;
  /// Tile size target handed to the advisor's strategies.
  uint64_t max_tile_bytes = kDefaultMaxTileBytes;
  /// Hysteresis: charges the migration's own cost against its predicted
  /// gain. With a nonzero weight the trigger becomes
  /// `old_cost / (new_cost + weight * migration_bytes) >= min_improvement`,
  /// where `migration_bytes` is the data the planned steps would rewrite —
  /// so a marginal win on a huge object no longer pays for itself and is
  /// skipped. 0 (the default) preserves the pure fetched-bytes trigger.
  double migration_cost_weight = 0.0;
  /// Per-object cool-down after a completed migration: the background
  /// loop does not re-evaluate the object until it elapses, so a hot
  /// object cannot thrash the WAL with back-to-back migrations. Parked
  /// plans still resume, and `RetileNow` (the admin surface) bypasses it.
  /// 0 disables.
  std::chrono::milliseconds cooldown{0};
  /// Persist the catalog after a completed migration so the new tiling is
  /// visible across reopen without an explicit Save.
  bool save_after_migration = true;
  /// Reader-coexistence lock (the server passes its catalog guard): steps
  /// and the final Save run under an exclusive lock, evaluation under a
  /// shared lock. Null means the caller serializes externally.
  std::shared_mutex* catalog_mu = nullptr;
  /// When non-empty, parked (budget-capped or drain-abandoned) migration
  /// plans are persisted to this file — CRC'd, written via tmp+rename —
  /// and loaded back on construction, so a restart resumes a
  /// mid-migration object instead of forgetting its remaining steps. The
  /// server derives it from the store path (`<db>.retile`). A corrupt or
  /// torn file is discarded silently: losing a plan is always safe, the
  /// mixed-generation tiling left behind is valid.
  std::string pending_path;
};

/// Outcome of one evaluation/migration of one object.
struct RetileReport {
  bool migrated = false;
  /// Advisor classification (WorkloadKindToString) and its evidence.
  std::string kind;
  std::string rationale;
  /// Predicted fetched-bytes ratio old/new over the recorded workload.
  double predicted_gain = 0;
  uint64_t steps = 0;
  uint64_t tiles_before = 0;
  uint64_t tiles_after = 0;
  uint64_t cells_moved = 0;
};

/// \brief The observe → advise → migrate loop: mines the store's
/// `WorkloadRecorder` for hot objects, asks `TilingAdvisor` for a better
/// tiling, and migrates tile-by-tile through `MDDObject::RetileRegion`
/// under store transactions (DESIGN.md §12).
///
/// Runs either as a background thread (`Start`/`Stop`, budgeted per tick,
/// pausable, drains its in-flight step on `Stop` — the server wires this
/// to SIGTERM) or synchronously (`RetileNow`, the admin surface). Each
/// migration step is one atomic `RetileRegion`; between steps the object
/// is a valid mixed-generation tiling, so readers interleave freely and a
/// drain mid-migration is safe — the remaining steps simply run later (or
/// never; the mixed state is durable and correct).
///
/// Observability: `retile.*` counters in the store registry
/// (evaluations, migrations, steps, skipped_no_gain, tiles_removed,
/// tiles_written, cells_moved, bytes_written) and "retile"/"retile_step"
/// spans in the trace ring.
class Retiler {
 public:
  explicit Retiler(MDDStore* store, RetilerOptions options = RetilerOptions());
  ~Retiler();

  Retiler(const Retiler&) = delete;
  Retiler& operator=(const Retiler&) = delete;

  /// Starts the background policy thread (idempotent).
  void Start();

  /// Drains and joins the background thread: the in-flight step (if any)
  /// completes, remaining steps are abandoned — safe, see above.
  void Stop();

  /// Pauses/resumes the background loop between steps.
  void Pause() { paused_.store(true, std::memory_order_relaxed); }
  void Resume() {
    paused_.store(false, std::memory_order_relaxed);
    wake_.notify_all();
  }
  bool running() const { return thread_.joinable(); }

  /// Synchronous evaluate-and-migrate of one object, bypassing the
  /// `min_queries` trigger (the `retile` admin op). Still subject to
  /// `min_improvement`: a workload the current tiling already serves well
  /// returns `migrated = false` with the advisor's reasoning. A nonzero
  /// `budget` caps migrated cells as in the background loop; the surplus
  /// steps are parked (and persisted with `pending_path`).
  Result<RetileReport> RetileNow(const std::string& name,
                                 uint64_t budget = 0);

  /// Applies up to one `step_cell_budget` worth of a parked plan — from an
  /// earlier budget-capped tick or a previous session via `pending_path` —
  /// without re-evaluating the workload, then parks the remainder again,
  /// so resumed plans spread across poll ticks exactly like fresh ones
  /// instead of finishing in one call. Call repeatedly (or let the
  /// background loop tick) to drain a plan. NotFound when none is parked.
  Result<RetileReport> Continue(const std::string& name);

  /// Objects with parked migration steps.
  std::vector<std::string> PendingObjects() const;

  /// True while `name` is inside the post-migration cool-down window (the
  /// background loop skips fresh evaluations of such objects).
  bool InCooldown(const std::string& name) const;

  /// One migration step: an atomic `RetileRegion(region, tiles)` call.
  struct Step {
    MInterval region;
    TilingSpec tiles;
  };

  /// Decomposes a migration to `target` into independent atomic steps.
  /// Steps are closure groups: starting from a target tile, old and target
  /// tiles intersecting the growing hull are merged until the hull is
  /// closed under intersection — so every step's region contains complete
  /// tiles of both generations and `RetileRegion`'s contract holds.
  /// Groups whose old and new tile sets coincide (already converged) and
  /// groups containing no old tile (nothing to migrate) are dropped.
  /// Exposed for the byte-identity and crash tests, which apply steps one
  /// at a time.
  static Result<std::vector<Step>> PlanSteps(
      const std::vector<TileEntry>& current, const TilingSpec& target);

  /// Fetched-bytes cost proxy: total logical tile bytes the workload drags
  /// in, Σ count × Σ bytes of tiles intersecting the box. The migration
  /// trigger compares this between the current and the candidate tiling.
  static uint64_t WorkloadCost(const std::vector<MInterval>& tiles,
                               const std::vector<AccessRecord>& accesses,
                               size_t cell_size);

 private:
  struct Metrics;

  // Evaluates one object and, when the predicted gain clears
  // `min_improvement`, migrates it (one step at a time, honoring
  // pause/stop between steps; `budget` caps cells when nonzero). With
  // `resume_only`, fails with NotFound instead of evaluating afresh when
  // no plan is parked.
  Result<RetileReport> EvaluateAndMigrate(const std::string& name,
                                          uint64_t budget,
                                          bool resume_only = false);

  // Writes the pending map to `options_.pending_path` (removes the file
  // when the map is empty). Caller holds `migrate_mu_`. Best-effort: an
  // I/O failure only costs restart-resumability.
  void PersistPendingLocked();
  // Loads `options_.pending_path` into the pending map (construction).
  void LoadPending();

  void Loop();

  MDDStore* store_;
  RetilerOptions options_;
  TilingAdvisor advisor_;
  std::unique_ptr<Metrics> metrics_;
  // Completion time of each object's last migration (cool-down gate).
  mutable std::mutex cooldown_mu_;
  std::map<std::string, std::chrono::steady_clock::time_point>
      last_migration_;
  // Serializes migrations (background loop vs RetileNow).
  mutable std::mutex migrate_mu_;
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::thread thread_;
};

}  // namespace tilestore

#endif  // TILESTORE_TILING_RETILER_H_
