#ifndef TILESTORE_TILING_WORKLOAD_RECORDER_H_
#define TILESTORE_TILING_WORKLOAD_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/minterval.h"
#include "tiling/statistic.h"

namespace tilestore {

/// \brief Store-level ring of recent query regions per MDD object — the
/// *observe* side of the re-tiling loop (DESIGN.md §12).
///
/// `AccessLog` is an opt-in, per-executor artifact for offline analysis;
/// the recorder is always on and store-owned, so the background re-tiler
/// can mine the live workload without any caller cooperation. Each object
/// keeps a bounded ring of its most recent query boxes (old boxes fall
/// off, so the evidence tracks a *shifting* hotspot) plus a monotone
/// total used as the trigger threshold. All methods are thread-safe; a
/// `Record` is one mutex acquisition and one interval copy, negligible
/// next to an index probe.
class WorkloadRecorder {
 public:
  /// `capacity_per_object` bounds each ring; the oldest box is evicted
  /// when a new one arrives at capacity.
  explicit WorkloadRecorder(size_t capacity_per_object = 256)
      : capacity_(capacity_per_object == 0 ? 1 : capacity_per_object) {}

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  void Record(const std::string& object, const MInterval& region) {
    std::lock_guard<std::mutex> lock(mu_);
    PerObject& entry = objects_[object];
    entry.recent.push_back(region);
    if (entry.recent.size() > capacity_) entry.recent.pop_front();
    ++entry.total;
  }

  /// The retained boxes of one object, identical regions merged into one
  /// record with the combined count — the advisor's input form.
  std::vector<AccessRecord> Snapshot(const std::string& object) const;

  /// Queries recorded for `object` since creation or the last `Forget`
  /// (monotone; not capped by the ring capacity).
  uint64_t TotalSince(const std::string& object) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(object);
    return it == objects_.end() ? 0 : it->second.total;
  }

  /// Drops everything recorded for `object`: after a migration (the next
  /// decision must be based on post-migration evidence) and on DropMDD
  /// (a recreated namesake must not inherit the old workload).
  void Forget(const std::string& object) {
    std::lock_guard<std::mutex> lock(mu_);
    objects_.erase(object);
  }

  /// Names of every object with at least one retained box.
  std::vector<std::string> Objects() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(objects_.size());
    for (const auto& [name, entry] : objects_) {
      if (!entry.recent.empty()) names.push_back(name);
    }
    return names;
  }

 private:
  struct PerObject {
    std::deque<MInterval> recent;
    uint64_t total = 0;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, PerObject> objects_;
};

}  // namespace tilestore

#endif  // TILESTORE_TILING_WORKLOAD_RECORDER_H_
