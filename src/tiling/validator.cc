#include "tiling/validator.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace tilestore {

Status CheckDisjoint(const TilingSpec& spec) {
  // Sort by lo on axis 0 so only pairs whose axis-0 ranges overlap are
  // compared; this makes the common (grid-like) case near-linear.
  std::vector<size_t> order(spec.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return spec[a].lo(0) < spec[b].lo(0);
  });
  for (size_t i = 0; i < order.size(); ++i) {
    const MInterval& a = spec[order[i]];
    for (size_t j = i + 1; j < order.size(); ++j) {
      const MInterval& b = spec[order[j]];
      if (b.lo(0) > a.hi(0)) break;  // all later tiles start past a on axis 0
      if (a.Intersects(b)) {
        return Status::Internal("tiles overlap: " + a.ToString() + " and " +
                                b.ToString());
      }
    }
  }
  return Status::OK();
}

Status CheckWithinDomain(const TilingSpec& spec, const MInterval& domain) {
  for (const MInterval& tile : spec) {
    if (tile.dim() != domain.dim()) {
      return Status::Internal("tile dimensionality mismatch: " +
                              tile.ToString());
    }
    if (!tile.IsFixed()) {
      return Status::Internal("tile with unbounded domain: " +
                              tile.ToString());
    }
    if (!domain.Contains(tile)) {
      return Status::Internal("tile " + tile.ToString() +
                              " outside domain " + domain.ToString());
    }
  }
  return Status::OK();
}

Status CheckCoverage(const TilingSpec& spec, const MInterval& domain) {
  Status st = CheckWithinDomain(spec, domain);
  if (!st.ok()) return st;
  st = CheckDisjoint(spec);
  if (!st.ok()) return st;
  const uint64_t covered = SpecCellCount(spec);
  const uint64_t total = domain.CellCountOrDie();
  if (covered != total) {
    return Status::Internal(
        "tiling covers " + std::to_string(covered) + " of " +
        std::to_string(total) + " cells of " + domain.ToString());
  }
  return Status::OK();
}

Status CheckMaxTileSize(const TilingSpec& spec, size_t cell_size,
                        uint64_t max_tile_bytes) {
  for (const MInterval& tile : spec) {
    const uint64_t cells = tile.CellCountOrDie();
    if (cells == 1) continue;  // unsplittable
    if (cells * cell_size > max_tile_bytes) {
      return Status::Internal("tile " + tile.ToString() + " holds " +
                              std::to_string(cells * cell_size) +
                              " bytes, above the limit of " +
                              std::to_string(max_tile_bytes));
    }
  }
  return Status::OK();
}

Status ValidateCompleteTiling(const TilingSpec& spec, const MInterval& domain,
                              size_t cell_size, uint64_t max_tile_bytes) {
  Status st = CheckCoverage(spec, domain);
  if (!st.ok()) return st;
  return CheckMaxTileSize(spec, cell_size, max_tile_bytes);
}

}  // namespace tilestore
