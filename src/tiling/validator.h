#ifndef TILESTORE_TILING_VALIDATOR_H_
#define TILESTORE_TILING_VALIDATOR_H_

#include <cstdint>

#include "common/status.h"
#include "core/minterval.h"
#include "core/tile.h"

namespace tilestore {

/// \file
/// Structural invariant checks over tiling specifications (Section 4: "a
/// particular tiling of a multidimensional array is a set of disjoint tiles
/// of the array"). Used by tests, by debug assertions in the MDD layer, and
/// available to applications that construct specs by hand.

/// All tiles pairwise disjoint. O(n^2) with early exit per pair; intended
/// for validation, not hot paths.
Status CheckDisjoint(const TilingSpec& spec);

/// Every tile fixed, non-degenerate and contained in `domain`.
Status CheckWithinDomain(const TilingSpec& spec, const MInterval& domain);

/// Tiles exactly cover `domain` (requires disjointness and containment,
/// then compares total cell counts — which together imply full coverage).
Status CheckCoverage(const TilingSpec& spec, const MInterval& domain);

/// Every tile holds at most `max_tile_bytes` bytes of `cell_size`-byte
/// cells. Single-cell tiles are exempt (a cell is unsplittable).
Status CheckMaxTileSize(const TilingSpec& spec, size_t cell_size,
                        uint64_t max_tile_bytes);

/// Runs all of the above (the full contract of a complete-coverage tiling
/// strategy).
Status ValidateCompleteTiling(const TilingSpec& spec, const MInterval& domain,
                              size_t cell_size, uint64_t max_tile_bytes);

}  // namespace tilestore

#endif  // TILESTORE_TILING_VALIDATOR_H_
