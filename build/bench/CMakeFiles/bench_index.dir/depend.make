# Empty dependencies file for bench_index.
# This may be replaced when dependencies are built.
