file(REMOVE_RECURSE
  "CMakeFiles/bench_growth.dir/bench_growth.cc.o"
  "CMakeFiles/bench_growth.dir/bench_growth.cc.o.d"
  "bench_growth"
  "bench_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
