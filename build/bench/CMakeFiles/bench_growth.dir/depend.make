# Empty dependencies file for bench_growth.
# This may be replaced when dependencies are built.
