file(REMOVE_RECURSE
  "CMakeFiles/bench_directional.dir/bench_directional.cc.o"
  "CMakeFiles/bench_directional.dir/bench_directional.cc.o.d"
  "bench_directional"
  "bench_directional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
