# Empty dependencies file for bench_directional.
# This may be replaced when dependencies are built.
